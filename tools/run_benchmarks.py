#!/usr/bin/env python
"""Benchmark the rollup-index hot paths against the naive traversals.

Runs the grouping/aggregation benchmarks at three workload scales and
writes a machine-readable ``BENCH_aggregate.json`` next to the repo
root (see ``docs/PERFORMANCE.md`` for how to read it):

* ``rollup`` — group counts for one category: per-value descendant
  walks (naive) versus the index's cached closure map (indexed);
* ``aggregate`` — the full α operator over two grouped dimensions with
  ``use_index=False`` versus ``use_index=True`` (warm index);
* ``cube_build`` — sizing every cuboid of a two-dimensional lattice
  from naive characterization maps versus the index's.

Each cell reports steady-state ops/sec (the index is built once, then
reused — the intended usage pattern); ``build`` records the one-time
per-scale index construction cost.  Each cell also carries a
``metrics`` snapshot from ``repro.obs`` (cache hits/misses, answer-path
counters — see ``docs/OBSERVABILITY.md``) taken over one instrumented
pass of the indexed operations.  Run with::

    PYTHONPATH=src python tools/run_benchmarks.py [--quick] [--scale N]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algebra import SetCount, aggregate
from repro.casestudy.icd import IcdShape
from repro.core.helpers import make_result_spec
from repro.obs import metrics
from repro.workloads import ClinicalConfig, generate_clinical

SCALES = (100, 300, 1000)
AGG_GROUPING = {"Diagnosis": "Diagnosis Group", "Residence": "Region"}
ROLLUP_DIMENSION = "Diagnosis"
ROLLUP_CATEGORY = "Diagnosis Group"
CUBE_DIMENSIONS = ("Diagnosis", "Residence")


def workload(n_patients: int):
    return generate_clinical(ClinicalConfig(
        n_patients=n_patients,
        icd=IcdShape(n_groups=5, families_per_group=(3, 6),
                     lowlevels_per_family=(3, 6), extra_parent_prob=0.1),
        seed=42,
    ))


def timed(op, min_seconds: float = 0.2, min_repeats: int = 3) -> float:
    """Steady-state ops/sec: repeat ``op`` until ``min_seconds`` of
    wall time has accumulated (at least ``min_repeats`` runs)."""
    op()  # warm caches exactly as a steady-state caller would
    repeats = 0
    elapsed = 0.0
    while elapsed < min_seconds or repeats < min_repeats:
        t0 = time.perf_counter()
        op()
        elapsed += time.perf_counter() - t0
        repeats += 1
    return repeats / elapsed


# -- the benchmarked operations ---------------------------------------------


def naive_group_counts(mo):
    dimension = mo.dimension(ROLLUP_DIMENSION)
    relation = mo.relation(ROLLUP_DIMENSION)
    return {
        value: len(relation.facts_characterized_by(value, dimension))
        for value in dimension.category(ROLLUP_CATEGORY).members()
    }


def indexed_group_counts(mo):
    return mo.rollup_index().group_counts(ROLLUP_DIMENSION, ROLLUP_CATEGORY)


def run_aggregate(mo, use_index: bool):
    return aggregate(mo, SetCount(), AGG_GROUPING, make_result_spec(),
                     strict_types=False, use_index=use_index)


def _cuboid_keys(mo):
    from itertools import product
    per_dim = [
        [c.name for c in mo.dimension(d).dtype.category_types()]
        for d in CUBE_DIMENSIONS
    ]
    return [tuple(combo) for combo in product(*per_dim)]


def _count_groups(maps) -> int:
    def rec(i, facts):
        if i == len(maps):
            return 1
        total = 0
        for value_facts in maps[i]:
            joined = value_facts if facts is None else facts & value_facts
            if joined:
                total += rec(i + 1, joined)
        return total

    return rec(0, None)


def _size_lattice(mo, char_map) -> list:
    """Size every cuboid of the two-dimensional lattice with the given
    ``char_map(dimension_name, category_name)`` provider."""
    sizes = []
    for key in _cuboid_keys(mo):
        nontrivial = [
            (name, cat) for name, cat in zip(CUBE_DIMENSIONS, key)
            if cat != mo.dimension(name).dtype.top_name
        ]
        if not nontrivial:
            sizes.append(1)
            continue
        maps = [
            [facts for facts in char_map(name, cat).values() if facts]
            for name, cat in nontrivial
        ]
        sizes.append(_count_groups(maps))
    return sizes


def naive_cube_sizes(mo):
    def char_map(name, cat):
        dimension = mo.dimension(name)
        relation = mo.relation(name)
        return {
            value: relation.facts_characterized_by(value, dimension)
            for value in dimension.category(cat).members()
        }

    return _size_lattice(mo, char_map)


def indexed_cube_sizes(mo):
    return _size_lattice(mo, mo.rollup_index().characterization_map)


# -- the sweep ---------------------------------------------------------------


def _canonical_rows(agg, names):
    rows = []
    for fact in agg.facts:
        rows.append((
            tuple(frozenset(agg.relation(n).values_of(fact)) for n in names),
            len(getattr(fact, "members", ())),
        ))
    return sorted(rows, key=repr)


def check_agreement(mo) -> None:
    """The benchmark refuses to report numbers for paths that disagree."""
    assert naive_group_counts(mo) == dict(indexed_group_counts(mo))
    assert naive_cube_sizes(mo) == indexed_cube_sizes(mo)
    names = sorted(AGG_GROUPING)
    indexed = _canonical_rows(run_aggregate(mo, use_index=True), names)
    naive = _canonical_rows(run_aggregate(mo, use_index=False), names)
    assert indexed == naive


def bench_scale(n_patients: int, min_seconds: float) -> dict:
    mo = workload(n_patients).mo
    t0 = time.perf_counter()
    for name in mo.dimension_names:
        mo.rollup_index().group_counts(
            name, mo.dimension(name).dtype.top_name)
    build_seconds = time.perf_counter() - t0
    check_agreement(mo)
    cell = {"n_patients": n_patients, "n_facts": len(mo.facts),
            "index_build_seconds": round(build_seconds, 6)}
    for bench, naive_op, indexed_op in (
        ("rollup", naive_group_counts, indexed_group_counts),
        ("aggregate", lambda m: run_aggregate(m, False),
         lambda m: run_aggregate(m, True)),
        ("cube_build", naive_cube_sizes, indexed_cube_sizes),
    ):
        naive = timed(lambda: naive_op(mo), min_seconds)
        indexed = timed(lambda: indexed_op(mo), min_seconds)
        cell[bench] = {
            "naive_ops_per_sec": round(naive, 3),
            "indexed_ops_per_sec": round(indexed, 3),
            "speedup": round(indexed / naive, 2),
        }
    cell["metrics"] = _metrics_snapshot(mo)
    return cell


def _metrics_snapshot(mo) -> dict:
    """One instrumented pass of the indexed operations, observed via
    the obs counters: reset, run, snapshot.  Timing is done above with
    warm caches; this pass shows *why* the indexed paths are fast
    (hit/miss ratios, answer paths)."""
    metrics.reset()
    indexed_group_counts(mo)
    run_aggregate(mo, use_index=True)
    indexed_cube_sizes(mo)
    return metrics.snapshot()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter timing windows (noisier numbers)")
    parser.add_argument("--scale", type=int, action="append",
                        metavar="N_PATIENTS",
                        help="benchmark only this workload scale "
                             "(repeatable; default: all of "
                             f"{', '.join(map(str, SCALES))})")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_aggregate.json")
    args = parser.parse_args(argv)
    min_seconds = 0.05 if args.quick else 0.3
    scales = tuple(args.scale) if args.scale else SCALES

    cells = []
    for n in scales:
        print(f"benchmarking n_patients={n} ...", flush=True)
        cells.append(bench_scale(n, min_seconds))
    largest = cells[-1]
    payload = {
        "generated_by": "tools/run_benchmarks.py",
        "workload": "clinical",
        "scales": list(scales),
        "aggregate_grouping": AGG_GROUPING,
        "rollup": {"dimension": ROLLUP_DIMENSION,
                   "category": ROLLUP_CATEGORY},
        "cube_dimensions": list(CUBE_DIMENSIONS),
        "results": cells,
        "largest_scale_speedups": {
            bench: largest[bench]["speedup"]
            for bench in ("rollup", "aggregate", "cube_build")
        },
        # the largest scale's instrumented pass, surfaced at top level
        # so dashboards need not dig into cells
        "metrics": largest["metrics"],
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["largest_scale_speedups"], indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
