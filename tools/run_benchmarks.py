#!/usr/bin/env python
"""Benchmark the rollup-index hot paths against the naive traversals.

Runs the grouping/aggregation benchmarks at three workload scales and
writes a machine-readable ``BENCH_aggregate.json`` next to the repo
root (see ``docs/PERFORMANCE.md`` for how to read it):

* ``rollup`` — group counts for one category: per-value descendant
  walks (naive) versus the index's cached closure map (indexed);
* ``aggregate`` — the full α operator over two grouped dimensions with
  ``use_index=False`` versus ``use_index=True`` (warm index);
* ``aggregate_grouping`` — the grouping + aggregation *core* of α
  (group formation plus function evaluation, no output-MO
  construction), at three rungs: naive per-value traversals, the
  interned object path, and the columnar batch kernel
  (``object_ops_per_sec`` vs ``kernel_ops_per_sec``;
  ``indexed_ops_per_sec`` aliases the kernel rung);
* ``cube_build`` — sizing every cuboid of a two-dimensional lattice
  from naive characterization maps versus the index's;
* ``cube_materialize_all`` — computing every cuboid of the lattice
  per-cuboid with the α operator and no index (the paper's direct
  aggregate formation, repeated once per cuboid) versus the shared-scan
  engine (base cells scanned once from the index's cached maps, coarser
  cuboids combined from their smallest stored parent wherever the
  per-dimension coverage gate allows); the extra
  ``unshared_indexed_ops_per_sec`` column records the middle rung —
  indexed maps, but every cuboid scanned independently;
* ``mutation_maintenance`` — a fixed interleaved sequence of fact
  relinks and group-count queries with delta maintenance disabled
  (every query after a mutation pays a full closure rebuild) versus
  enabled (the mutation applies as a closure delta);
* ``sql_pushdown`` — the two-dimensional roll-up query answered by the
  SQL backend (star export loaded into sqlite once, then queried warm)
  versus the in-memory engine; ``load_seconds`` records the one-time
  export+load cost, ``relative`` is sql/memory ops (no ``speedup``
  key — the SQL backend trades steady-state throughput for pushdown,
  it is not expected to win in-process).  The cell refuses to report
  if the two paths' rows differ or if any query fell back.
* ``query_result_cache`` — the same roll-up answered hot from the
  versioned result cache (canonical plan fingerprint + mutation-counter
  version vector) versus cold with ``cache=False`` (the uncached
  kernel path); ``speedup`` is hot/cold ops.  The cell refuses to
  report unless cached ≡ uncached byte-identically, including after
  mutations on a private clone (zero stale serves), and at least one
  hit was observed during the hot timing pass.
* ``shardability_analysis`` — plans analyzed per second by the MD07x
  static shard-safety fold (``plans_per_sec``; classification memoized,
  so this is the steady-state per-plan analysis cost).
* ``sharded_aggregate`` — the single-dimension integer-SUM roll-up
  (``Sum(Age)`` by Region — statically SHARDABLE) answered by the
  process-pool sharded backend at shard counts {1, 2, 4, 8} versus the
  in-memory engine (``shards["8"]`` etc. are ops/sec;
  ``shard_scaling`` is ops at 8 shards / ops at 1;
  ``relative_to_memory`` is ops at 8 shards / memory ops).  The cell
  refuses to report if any shard count's rows differ from the memory
  backend's (the agreement gate).  Shard scaling only materializes
  with real cores — ``environment.cpu_count`` records what was
  available.  Use ``--only sharded_aggregate`` to run this cell alone
  (skipping the full-lattice agreement oracle, which is what makes
  ``--scale 10000`` tractable).

Each cell reports steady-state ops/sec (the index is built once, then
reused — the intended usage pattern); ``build`` records the one-time
per-scale index construction cost.  Each cell also carries a
``metrics`` snapshot from ``repro.obs`` (cache hits/misses, answer-path
counters — see ``docs/OBSERVABILITY.md``) taken over one instrumented
pass of the indexed operations.  Run with::

    PYTHONPATH=src python tools/run_benchmarks.py [--quick] [--scale N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algebra import SetCount, Sum, aggregate
from repro.algebra.aggregate import _form_groups, _form_groups_interned
from repro.algebra.functions import Avg, Median
from repro.analyze import analyze_shardability
from repro.casestudy.icd import IcdShape
from repro.core.helpers import make_result_spec
from repro.engine.cube import CubeBuilder
from repro.engine.query import Query
from repro.engine.sharded import ShardedBackend
from repro.obs import metrics
from repro.relational.backend import sql_backend_for
from repro.workloads import ClinicalConfig, generate_clinical

SCALES = (100, 300, 1000)
AGG_GROUPING = {"Diagnosis": "Diagnosis Group", "Residence": "Region"}
ROLLUP_DIMENSION = "Diagnosis"
ROLLUP_CATEGORY = "Diagnosis Group"
CUBE_DIMENSIONS = ("Diagnosis", "Residence")
#: the materialization lattice — same as ``cube_build``'s.  Cuboids
#: coarsening Residence (one value per fact, strict hierarchy) roll up
#: from their stored parent; cuboids coarsening Diagnosis (many-to-many
#: and mixed-granularity) fail the per-dimension coverage check and
#: base-scan the index's cached maps instead
MATERIALIZE_DIMENSIONS = CUBE_DIMENSIONS
#: mutations interleaved with queries per mutation-maintenance op
MUTATION_BATCH = 24


def workload(n_patients: int):
    return generate_clinical(ClinicalConfig(
        n_patients=n_patients,
        icd=IcdShape(n_groups=5, families_per_group=(3, 6),
                     lowlevels_per_family=(3, 6), extra_parent_prob=0.1),
        seed=42,
    ))


def timed(op, min_seconds: float = 0.2, min_repeats: int = 3) -> float:
    """Steady-state ops/sec: repeat ``op`` until ``min_seconds`` of
    wall time has accumulated (at least ``min_repeats`` runs)."""
    op()  # warm caches exactly as a steady-state caller would
    repeats = 0
    elapsed = 0.0
    while elapsed < min_seconds or repeats < min_repeats:
        t0 = time.perf_counter()
        op()
        elapsed += time.perf_counter() - t0
        repeats += 1
    return repeats / elapsed


# -- the benchmarked operations ---------------------------------------------


def naive_group_counts(mo):
    dimension = mo.dimension(ROLLUP_DIMENSION)
    relation = mo.relation(ROLLUP_DIMENSION)
    return {
        value: len(relation.facts_characterized_by(value, dimension))
        for value in dimension.category(ROLLUP_CATEGORY).members()
    }


def indexed_group_counts(mo):
    return mo.rollup_index().group_counts(ROLLUP_DIMENSION, ROLLUP_CATEGORY)


def run_aggregate(mo, use_index: bool):
    return aggregate(mo, SetCount(), AGG_GROUPING, make_result_spec(),
                     strict_types=False, use_index=use_index)


def _full_grouping(mo):
    return {
        name: AGG_GROUPING.get(name, mo.dimension(name).dtype.top_name)
        for name in mo.dimension_names
    }


def grouping_core_op(mo, rung: str, function=None):
    """The grouping + aggregation core of α — group formation plus
    function evaluation, without the output-MO construction that
    dominates small full-α runs.  ``rung`` picks the path: ``kernel``
    (columnar layout + batch kernel), ``object`` (interned object
    groups + per-group apply) or ``naive`` (per-value traversals +
    per-group apply)."""
    function = function or SetCount()
    full = _full_grouping(mo)
    dim_order = list(mo.dimension_names)

    def kernel():
        layout = mo.rollup_index().columnar().grouping(full)
        return layout.groups(), layout.evaluate(function)

    def object_path():
        groups = _form_groups_interned(mo, full, dim_order)
        return groups, {combo: function.apply(members, mo)
                        for combo, members in groups.items()}

    def naive():
        groups = _form_groups(mo, full, dim_order, None, False)
        return groups, {combo: function.apply(members, mo)
                        for combo, members in groups.items()}

    return {"kernel": kernel, "object": object_path, "naive": naive}[rung]


def _cuboid_keys(mo):
    from itertools import product
    per_dim = [
        [c.name for c in mo.dimension(d).dtype.category_types()]
        for d in CUBE_DIMENSIONS
    ]
    return [tuple(combo) for combo in product(*per_dim)]


def _count_groups(maps) -> int:
    def rec(i, facts):
        if i == len(maps):
            return 1
        total = 0
        for value_facts in maps[i]:
            joined = value_facts if facts is None else facts & value_facts
            if joined:
                total += rec(i + 1, joined)
        return total

    return rec(0, None)


def _size_lattice(mo, char_map) -> list:
    """Size every cuboid of the two-dimensional lattice with the given
    ``char_map(dimension_name, category_name)`` provider."""
    sizes = []
    for key in _cuboid_keys(mo):
        nontrivial = [
            (name, cat) for name, cat in zip(CUBE_DIMENSIONS, key)
            if cat != mo.dimension(name).dtype.top_name
        ]
        if not nontrivial:
            sizes.append(1)
            continue
        maps = [
            [facts for facts in char_map(name, cat).values() if facts]
            for name, cat in nontrivial
        ]
        sizes.append(_count_groups(maps))
    return sizes


def naive_cube_sizes(mo):
    def char_map(name, cat):
        dimension = mo.dimension(name)
        relation = mo.relation(name)
        return {
            value: relation.facts_characterized_by(value, dimension)
            for value in dimension.category(cat).members()
        }

    return _size_lattice(mo, char_map)


def indexed_cube_sizes(mo):
    """Size the lattice the way :meth:`CubeBuilder.size_of` does — from
    the index's memoized non-empty fact-set lists, filtered once per
    category instead of once per candidate cuboid."""
    index = mo.rollup_index()
    sizes = []
    for key in _cuboid_keys(mo):
        maps = [
            index.nonempty_fact_sets(name, cat)
            for name, cat in zip(CUBE_DIMENSIONS, key)
            if cat != mo.dimension(name).dtype.top_name
        ]
        sizes.append(_count_groups(maps) if maps else 1)
    return sizes


def _materialize_lattice_keys(mo):
    from itertools import product
    per_dim = [
        [c.name for c in mo.dimension(d).dtype.category_types()]
        for d in MATERIALIZE_DIMENSIONS
    ]
    return [tuple(combo) for combo in product(*per_dim)]


def naive_materialize_all(mo):
    """The agreement oracle: every cuboid's groups and cell values
    computed from per-value descendant walks (no index, no parent
    reuse).  ``check_agreement`` asserts the shared-scan engine's
    stored cells are byte-identical to these."""
    function = SetCount()
    out = {}
    for key in _materialize_lattice_keys(mo):
        nontrivial = sorted(
            (name, cat) for name, cat in zip(MATERIALIZE_DIMENSIONS, key)
            if cat != mo.dimension(name).dtype.top_name
        )
        maps = []
        for name, cat in nontrivial:
            dimension = mo.dimension(name)
            relation = mo.relation(name)
            maps.append({
                value: relation.facts_characterized_by(value, dimension)
                for value in dimension.category(cat).members()
            })
        groups = {}

        def rec(i, prefix, facts):
            if i == len(maps):
                groups[prefix] = facts
                return
            for value, value_facts in maps[i].items():
                joined = (set(value_facts) if facts is None
                          else facts & value_facts)
                if joined:
                    rec(i + 1, prefix + (value,), joined)

        if maps:
            rec(0, (), None)
        elif mo.facts:
            groups[()] = set(mo.facts)
        out[tuple(nontrivial)] = (
            groups,
            {combo: function.apply(facts, mo)
             for combo, facts in groups.items()},
        )
    return out


def naive_cube_aggregate(mo):
    """Compute every cuboid of the lattice the pre-engine way: one full
    α aggregate formation per cuboid, naive per-value traversals
    (``use_index=False``), nothing shared between cuboids.  This is the
    paper's direct evaluation strategy and the baseline the shared-scan
    engine replaces."""
    spec = make_result_spec()
    out = []
    for key in _materialize_lattice_keys(mo):
        grouping = dict(zip(MATERIALIZE_DIMENSIONS, key))
        out.append(aggregate(mo, SetCount(), grouping, spec,
                             strict_types=False, use_index=False))
    return out


def materialize_all_op(mo, shared_scan: bool):
    """A zero-arg op materializing the full cuboid lattice in a fresh
    builder (fresh pre-aggregate store) — per-cuboid base scans over
    the index's maps when ``shared_scan`` is off, parent rollups when
    on."""

    def op():
        return CubeBuilder(mo, dimensions=MATERIALIZE_DIMENSIONS,
                           shared_scan=shared_scan).materialize_all()

    return op


def mutation_maintenance_op(mo, workload, delta_enabled: bool):
    """A zero-arg op running ``MUTATION_BATCH`` interleaved
    relate-then-query steps against a private clone of the MO.  The
    step sequence is a fixed function of how many steps ran before, so
    both variants apply the same mutations in the same order."""
    clone = mo.copy()
    index = clone.rollup_index()
    index.delta_enabled = delta_enabled
    index.group_counts(ROLLUP_DIMENSION, ROLLUP_CATEGORY)  # warm
    patients = workload.patients
    low_levels = workload.icd.low_levels
    state = {"step": 0}

    def op():
        step = state["step"]
        for k in range(MUTATION_BATCH):
            patient = patients[(step + k) % len(patients)]
            value = low_levels[(step * 7 + k * 3) % len(low_levels)]
            clone.relate(patient, ROLLUP_DIMENSION, value)
            index.group_counts(ROLLUP_DIMENSION, ROLLUP_CATEGORY)
        state["step"] = step + MUTATION_BATCH

    return op


def _pushdown_query(mo):
    q = Query(mo)
    for name, category in sorted(AGG_GROUPING.items()):
        q = q.rollup(name, category)
    return q


def sql_pushdown_cell(mo, min_seconds: float) -> dict:
    """The ``sql_pushdown`` cell: the standard two-dimensional roll-up
    answered via the sqlite star (warm, loaded once) versus the
    in-memory engine, with the load cost and an agreement gate."""
    q = _pushdown_query(mo)
    backend = sql_backend_for(mo)
    t0 = time.perf_counter()
    backend.ensure_loaded()
    load_seconds = time.perf_counter() - t0
    fallback = metrics.counter("sql.pushdown.fallback")
    before = fallback.value
    # cache=False throughout: this cell measures the SQL and in-memory
    # execution paths themselves, not result-cache hits
    sql_rows = q.execute(check=False, backend="sql", cache=False)
    memory_rows = q.execute(check=False, cache=False)
    assert sql_rows == memory_rows, "sql backend disagrees with engine"
    assert fallback.value == before, "sql backend fell back on clinical"
    sql = timed(lambda: q.execute(check=False, backend="sql", cache=False),
                min_seconds)
    memory = timed(lambda: q.execute(check=False, cache=False), min_seconds)
    return {
        "load_seconds": round(load_seconds, 6),
        "sql_ops_per_sec": round(sql, 3),
        "memory_ops_per_sec": round(memory, 3),
        "relative": round(sql / memory, 2),
    }


def shardability_analysis_cell(mo, min_seconds: float) -> dict:
    """The ``shardability_analysis`` cell: plans analyzed per second by
    the MD07x static shard-safety fold.  Function classification is
    memoized process-wide, so after the first pass this measures the
    steady-state per-plan cost — the purity walk over σ predicates plus
    the verdict fold — which is what ``Query.check()`` pays."""
    q = _pushdown_query(mo)
    plans = [
        q.to_plan(SetCount()),
        q.to_plan(Avg(ROLLUP_DIMENSION)),
        q.to_plan(Median(ROLLUP_DIMENSION)),
        Query(mo).rollup(ROLLUP_DIMENSION, ROLLUP_CATEGORY).to_plan(),
    ]
    for plan in plans:                   # warm the classification cache
        analyze_shardability(plan)
    batches = timed(
        lambda: [analyze_shardability(plan) for plan in plans],
        min_seconds)
    return {"plans_per_sec": round(batches * len(plans), 3)}


#: shard counts the ``sharded_aggregate`` cell sweeps.
SHARD_COUNTS = (1, 2, 4, 8)


def _sharded_query(mo):
    return Query(mo).rollup("Residence", "Region")


def sharded_aggregate_cell(mo, min_seconds: float) -> dict:
    """The ``sharded_aggregate`` cell: a SHARDABLE integer-SUM roll-up
    on the process-pool backend across shard counts versus the memory
    engine, gated on byte-identical rows at every count."""
    from repro.algebra.functions import Sum as SumFn

    function = SumFn("Age")
    q = _sharded_query(mo)
    memory_rows = q.execute(function, check=False, cache=False)
    shards = {}
    for n_shards in SHARD_COUNTS:
        backend = ShardedBackend(n_shards=n_shards)
        rows = q.execute(function, check=False, cache=False,
                         backend=backend)
        assert rows == memory_rows, (
            f"sharded backend at {n_shards} shard(s) disagrees with "
            f"the memory engine")
        shards[str(n_shards)] = round(timed(
            lambda: q.execute(function, check=False, cache=False,
                              backend=backend),
            min_seconds), 3)
    memory = timed(
        lambda: q.execute(function, check=False, cache=False),
        min_seconds)
    return {
        "memory_ops_per_sec": round(memory, 3),
        "shards": shards,
        "shard_scaling": round(shards["8"] / shards["1"], 2),
        "relative_to_memory": round(shards["8"] / memory, 2),
    }


def query_result_cache_cell(mo, generated, min_seconds: float) -> dict:
    """The ``query_result_cache`` cell: the standard two-dimensional
    roll-up answered hot (versioned result cache, fingerprint hit)
    versus cold (``cache=False``, the uncached kernel path), with a
    three-part agreement gate the cell refuses to report without:
    cached ≡ uncached before mutations, after mutations on a private
    clone (zero stale serves), and a hit actually observed during the
    hot timing pass."""
    q = _pushdown_query(mo)
    cold_rows = q.execute(check=False, cache=False)
    assert q.execute(check=False) == cold_rows   # miss: computes, stores
    assert q.execute(check=False) == cold_rows   # hit: served from cache
    clone = mo.copy()
    cq = _pushdown_query(clone)
    assert cq.execute(check=False) == cq.execute(check=False, cache=False)
    clone.relate(generated.patients[0], ROLLUP_DIMENSION,
                 generated.icd.low_levels[0])
    cached = cq.execute(check=False)
    uncached = cq.execute(check=False, cache=False)
    assert cached == uncached, "cache served stale rows after a mutation"
    hits = metrics.counter("query.cache.hit")
    before = hits.value
    hot = timed(lambda: q.execute(check=False), min_seconds)
    assert hits.value > before, "hot timing pass never hit the cache"
    cold = timed(lambda: q.execute(check=False, cache=False), min_seconds)
    return {
        "cold_ops_per_sec": round(cold, 3),
        "hot_ops_per_sec": round(hot, 3),
        "speedup": round(hot / cold, 2),
    }


# -- the sweep ---------------------------------------------------------------


def _canonical_rows(agg, names):
    rows = []
    for fact in agg.facts:
        rows.append((
            tuple(frozenset(agg.relation(n).values_of(fact)) for n in names),
            len(getattr(fact, "members", ())),
        ))
    return sorted(rows, key=repr)


def _canonical_core(groups, results):
    """Groups+results of one grouping-core rung in a path-independent
    form: combos keyed by their values' reprs (same dim_order on every
    rung), members by fact id."""
    return {
        tuple(repr(v) for v in combo): (
            sorted(f.fid for f in members),
            results[combo],
        )
        for combo, members in groups.items()
    }


def check_agreement(mo) -> None:
    """The benchmark refuses to report numbers for paths that disagree."""
    assert naive_group_counts(mo) == dict(indexed_group_counts(mo))
    assert naive_cube_sizes(mo) == indexed_cube_sizes(mo)
    names = sorted(AGG_GROUPING)
    indexed = _canonical_rows(run_aggregate(mo, use_index=True), names)
    naive = _canonical_rows(run_aggregate(mo, use_index=False), names)
    assert indexed == naive
    # the 3-way grouping-core ladder: kernel ≡ object ≡ naive, for the
    # count kernel and an integer-measure SUM (exact float sums)
    for function in (SetCount(), Sum("Age")):
        kernel, object_path, naive_core = (
            _canonical_core(*grouping_core_op(mo, rung, function)())
            for rung in ("kernel", "object", "naive")
        )
        assert kernel == naive_core, f"kernel != naive for {function.name}"
        assert object_path == naive_core, (
            f"object path != naive for {function.name}")
    function = SetCount()
    shared = CubeBuilder(mo, dimensions=MATERIALIZE_DIMENSIONS,
                         function=function, shared_scan=True)
    base = CubeBuilder(mo, dimensions=MATERIALIZE_DIMENSIONS,
                       function=function, shared_scan=False)
    shared.materialize_all()
    base.materialize_all()
    naive_cube = naive_materialize_all(mo)
    compared = 0
    for grouping, _function_name, stored in shared.store.entries():
        other = base.store.get(function, grouping)
        assert other is not None
        assert stored.results == other.results
        assert stored.groups == other.groups
        naive_groups, naive_results = naive_cube[
            tuple(sorted(grouping.items()))]
        assert stored.results == naive_results
        assert stored.groups == naive_groups
        compared += 1
    assert compared > 0


def bench_scale(n_patients: int, min_seconds: float,
                only: str = None) -> dict:
    generated = workload(n_patients)
    mo = generated.mo
    t0 = time.perf_counter()
    for name in mo.dimension_names:
        mo.rollup_index().group_counts(
            name, mo.dimension(name).dtype.top_name)
    build_seconds = time.perf_counter() - t0
    cell = {"n_patients": n_patients, "n_facts": len(mo.facts),
            "index_build_seconds": round(build_seconds, 6)}
    if only == "sharded_aggregate":
        # the cell carries its own agreement gate; the full-lattice
        # oracle in check_agreement is what makes large scales slow
        cell["sharded_aggregate"] = sharded_aggregate_cell(mo,
                                                           min_seconds)
        return cell
    check_agreement(mo)
    for bench, naive_op, indexed_op in (
        ("rollup", lambda: naive_group_counts(mo),
         lambda: indexed_group_counts(mo)),
        ("aggregate", lambda: run_aggregate(mo, False),
         lambda: run_aggregate(mo, True)),
        ("aggregate_grouping", grouping_core_op(mo, "naive"),
         grouping_core_op(mo, "kernel")),
        ("cube_build", lambda: naive_cube_sizes(mo),
         lambda: indexed_cube_sizes(mo)),
        ("cube_materialize_all", lambda: naive_cube_aggregate(mo),
         materialize_all_op(mo, True)),
        ("mutation_maintenance",
         mutation_maintenance_op(mo, generated, False),
         mutation_maintenance_op(mo, generated, True)),
    ):
        naive = timed(naive_op, min_seconds)
        indexed = timed(indexed_op, min_seconds)
        cell[bench] = {
            "naive_ops_per_sec": round(naive, 3),
            "indexed_ops_per_sec": round(indexed, 3),
            "speedup": round(indexed / naive, 2),
        }
    # the middle ground between the two cube_materialize_all variants:
    # indexed characterization maps, but every cuboid base-scanned
    cell["cube_materialize_all"]["unshared_indexed_ops_per_sec"] = round(
        timed(materialize_all_op(mo, False), min_seconds), 3)
    # the kernel vs object-path split of the grouping core (the kernel
    # rung is what indexed_ops_per_sec timed above)
    core = cell["aggregate_grouping"]
    core["kernel_ops_per_sec"] = core["indexed_ops_per_sec"]
    core["object_ops_per_sec"] = round(
        timed(grouping_core_op(mo, "object"), min_seconds), 3)
    core["kernel_vs_object_speedup"] = round(
        core["kernel_ops_per_sec"] / core["object_ops_per_sec"], 2)
    cell["sql_pushdown"] = sql_pushdown_cell(mo, min_seconds)
    cell["query_result_cache"] = query_result_cache_cell(
        mo, generated, min_seconds)
    cell["shardability_analysis"] = shardability_analysis_cell(
        mo, min_seconds)
    cell["sharded_aggregate"] = sharded_aggregate_cell(mo, min_seconds)
    cell["metrics"] = _metrics_snapshot(mo, generated)
    return cell


BENCH_NAMES = ("rollup", "aggregate", "aggregate_grouping", "cube_build",
               "cube_materialize_all", "mutation_maintenance",
               "query_result_cache")


def _metrics_snapshot(mo, generated) -> dict:
    """One instrumented pass of the indexed operations, observed via
    the obs counters: reset, run, snapshot.  Timing is done above with
    warm caches; this pass shows *why* the indexed paths are fast
    (hit/miss ratios, answer paths, parent rollups, closure deltas)."""
    metrics.reset()
    indexed_group_counts(mo)
    run_aggregate(mo, use_index=True)
    # one pushed-down query (backend already warm from the timing pass),
    # so the snapshot shows sql.pushdown.compiled > 0 with zero
    # fallbacks; cache=False so it exercises the SQL path, not a hit
    _pushdown_query(mo).execute(check=False, backend="sql", cache=False)
    # two cached executions so the snapshot shows query.cache.hit > 0
    # (the first may hit too — the timing pass warmed the cache)
    _pushdown_query(mo).execute(check=False)
    _pushdown_query(mo).execute(check=False)
    # one sharded execution (pool and payloads warm from the timing
    # pass) so the snapshot shows sharded.shards_run > 0
    from repro.algebra.functions import Sum as SumFn
    _sharded_query(mo).execute(SumFn("Age"), check=False, cache=False,
                               backend=ShardedBackend(n_shards=2))
    indexed_cube_sizes(mo)
    CubeBuilder(mo, dimensions=MATERIALIZE_DIMENSIONS,
                shared_scan=True).materialize_all()
    clone = mo.copy()
    index = clone.rollup_index()
    index.group_counts(ROLLUP_DIMENSION, ROLLUP_CATEGORY)
    clone.relate(generated.patients[0], ROLLUP_DIMENSION,
                 generated.icd.low_levels[0])
    index.group_counts(ROLLUP_DIMENSION, ROLLUP_CATEGORY)
    return metrics.snapshot()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter timing windows (noisier numbers)")
    parser.add_argument("--scale", type=int, action="append",
                        metavar="N_PATIENTS",
                        help="benchmark only this workload scale "
                             "(repeatable; default: all of "
                             f"{', '.join(map(str, SCALES))})")
    parser.add_argument("--only", metavar="CELL",
                        choices=("sharded_aggregate",),
                        help="run a single cell per scale (currently: "
                             "sharded_aggregate), skipping the "
                             "full-lattice agreement oracle — intended "
                             "for large --scale runs")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_aggregate.json")
    args = parser.parse_args(argv)
    min_seconds = 0.05 if args.quick else 0.3
    scales = tuple(args.scale) if args.scale else SCALES

    cells = []
    for n in scales:
        print(f"benchmarking n_patients={n} ...", flush=True)
        cells.append(bench_scale(n, min_seconds, only=args.only))
    largest = cells[-1]
    payload = {
        "generated_by": "tools/run_benchmarks.py",
        # environment provenance, so trajectories across runs compare
        # like with like
        "environment": {
            "python_version": sys.version.split()[0],
            "python_implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "workload": "clinical",
        "scales": list(scales),
        "aggregate_grouping": AGG_GROUPING,
        "rollup": {"dimension": ROLLUP_DIMENSION,
                   "category": ROLLUP_CATEGORY},
        "cube_dimensions": list(CUBE_DIMENSIONS),
        "results": cells,
        "materialize_dimensions": list(MATERIALIZE_DIMENSIONS),
        "largest_scale_speedups": {
            bench: largest[bench]["speedup"]
            for bench in BENCH_NAMES
            if bench in largest
        },
        # the largest scale's instrumented pass, surfaced at top level
        # so dashboards need not dig into cells (absent under --only)
        "metrics": largest.get("metrics", {}),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    summary = payload["largest_scale_speedups"] or \
        largest.get("sharded_aggregate", {})
    print(json.dumps(summary, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
