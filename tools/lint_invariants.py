#!/usr/bin/env python3
"""AST lint for engine invariants that plain style checkers can't see.

Seven rules, all load-bearing for the caching and execution layers:

1. **version/changelog pairing** — the rollup index and pre-aggregate
   store detect staleness by comparing version counters and replay
   mutations from bounded change logs.  A mutating method that bumps a
   version counter without recording a log entry (or vice versa) breaks
   delta maintenance silently: the index either misses a mutation or
   replays one that never happened.  Rule: inside any method of
   ``AnnotatedOrder``, ``FactDimensionRelation``, or
   ``MultidimensionalObject``, every ``self._*version* += 1`` must be
   paired with a ``self._*log*.record(...)`` call in the same method,
   and vice versa.

2. **observability names documented** — every *literal* metric/span
   name passed to ``metrics.counter``, ``metrics.gauge``,
   ``metrics.histogram``, or ``trace.span`` in ``src/`` must appear in
   ``docs/OBSERVABILITY.md``, so the catalogue stays the single source
   of truth.  Names built at runtime (f-strings such as
   ``analyze.diagnostics.{code}``) are skipped — the doc records those
   as patterns.

3. **diagnostic catalogue in sync** — every ``MDnnn`` code in the
   analyzer's ``CATALOG`` must be documented in ``docs/ANALYSIS.md``,
   and every ``MDnnn`` the doc mentions must exist in ``CATALOG``, so
   neither can drift from the other.

4. **kernel/object-path pairing** — an ``AggregationFunction`` subclass
   that overrides ``batch_apply`` (a columnar kernel) must override
   ``apply`` in the same class, and vice versa for any class that has a
   kernel anywhere below ``AggregationFunction`` in its bases.  A class
   inheriting a kernel but redefining only ``apply`` would silently
   compute different results on the columnar and object paths; the two
   are byte-identity oracles for each other and must evolve together.

5. **version-vector completeness** — every version-stamped cache
   (the SQL backend's star reload, the result cache) detects staleness
   by comparing the *documented* version vector: the MO's fact-set
   version plus, per dimension, the fact-dimension relation version
   and the containment-order version.  A stamp function that forgets
   one counter family serves stale results after exactly the mutations
   that bump only the forgotten counter.  Rule: every function named
   ``version_vector`` or ``_version_stamp`` under ``src/`` must read
   ``facts_version``, call ``.relation(...)`` and ``.dimension(...)``,
   and reach both ``.order`` and ``.version`` — and at least one such
   function must exist.

6. **lock discipline on shared registries** — the process-global
   mutable state (obs metric values, the trace ring buffer, the
   fingerprint token table, the SQL-backend LRU, the result cache's
   entry table) is mutated from arbitrary threads; every
   read-modify-write must happen inside ``with <owning lock>:`` in the
   same function.  Declarative per-file config (:data:`LOCK_RULES`)
   names the lock(s), the guarded names, and the deliberate
   exemptions: ``__init__`` (no concurrent aliases exist yet),
   ``*_locked`` helpers (the caller holds the lock — the suffix is the
   contract), and listed GIL-atomic single-op mutations (the trace
   buffer's lock-free ``_buffer.append`` hot path).

7. **execution-backend protocol surface** — every class below
   ``ExecutionBackend`` must carry the full protocol: a class-level
   ``name`` of its own (the base's empty string is unregistrable) and a
   ``run`` override somewhere below the base (the base raises).  A
   backend missing either would only fail at first dispatch, long after
   registration; ``plan_for``/``supports`` may inherit the base's
   no-op.  The registry itself is rule-6 state: ``engine/backends.py``
   is in :data:`LOCK_RULES`, so every ``_REGISTRY`` mutation must hold
   ``_REGISTRY_LOCK`` (and the sharded executor's pool/payload-cache
   globals their locks).

Zero dependencies; exits 1 on any violation.  Run from the repo root::

    python tools/lint_invariants.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import FrozenSet, Iterator, List, NamedTuple, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
OBS_DOC = REPO / "docs" / "OBSERVABILITY.md"
ANALYSIS_DOC = REPO / "docs" / "ANALYSIS.md"
DIAGNOSTICS = SRC / "analyze" / "diagnostics.py"

#: classes whose mutators must keep version counters and change logs in
#: lock step (the staleness/delta protocol of the rollup index).
VERSIONED_CLASSES = {
    "AnnotatedOrder",
    "FactDimensionRelation",
    "MultidimensionalObject",
}

#: obs factory calls whose first positional argument is the name.
OBS_CALLS = {
    ("metrics", "counter"),
    ("metrics", "gauge"),
    ("metrics", "histogram"),
    ("trace", "span"),
}


def _iter_sources() -> Iterator[Path]:
    return sorted(SRC.rglob("*.py"))


def _is_self_attr(node: ast.expr, fragment: str) -> bool:
    """``node`` is ``self.<name>`` with ``fragment`` in ``<name>``."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and fragment in node.attr)


def _bumps_version(node: ast.AST) -> bool:
    return (isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.Add)
            and _is_self_attr(node.target, "version"))


def _records_log(node: ast.AST) -> bool:
    """``self.<something log>.record(...)``"""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "record"
            and _is_self_attr(node.func.value, "log"))


def check_version_log_pairing(path: Path, tree: ast.AST) -> List[str]:
    problems = []
    for cls in ast.walk(tree):
        if not (isinstance(cls, ast.ClassDef)
                and cls.name in VERSIONED_CLASSES):
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            bumps = [n for n in ast.walk(method) if _bumps_version(n)]
            records = [n for n in ast.walk(method) if _records_log(n)]
            where = f"{path.relative_to(REPO)}:{method.lineno}"
            name = f"{cls.name}.{method.name}"
            if bumps and not records:
                problems.append(
                    f"{where}: {name} bumps a version counter but never "
                    f"records a change-log entry (delta maintenance "
                    f"would replay a hole)")
            if records and not bumps:
                problems.append(
                    f"{where}: {name} records a change-log entry but "
                    f"never bumps a version counter (the entry would "
                    f"shadow an existing version)")
            if bumps and records and len(bumps) != len(records):
                problems.append(
                    f"{where}: {name} has {len(bumps)} version bump(s) "
                    f"but {len(records)} change-log record(s) — each "
                    f"bump needs exactly one log entry")
    return problems


def _obs_names(tree: ast.AST) -> Iterator[Tuple[int, str, bool]]:
    """``(lineno, name or '<dynamic>', is_literal)`` per obs call."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and (node.func.value.id, node.func.attr) in OBS_CALLS):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield node.lineno, first.value, True
        else:
            yield node.lineno, "<dynamic>", False


def check_obs_names_documented(path: Path, tree: ast.AST,
                               doc_text: str) -> List[str]:
    problems = []
    for lineno, name, literal in _obs_names(tree):
        if literal and name not in doc_text:
            problems.append(
                f"{path.relative_to(REPO)}:{lineno}: observability name "
                f"{name!r} is not documented in docs/OBSERVABILITY.md")
    return problems


def _catalog_codes() -> List[str]:
    """The ``MDnnn`` keys of ``CATALOG`` in the diagnostics module,
    read via AST so the lint stays importable without the package."""
    tree = ast.parse(DIAGNOSTICS.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "CATALOG"
                   for t in targets):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            return [k.value for k in value.keys
                    if isinstance(k, ast.Constant)
                    and isinstance(k.value, str)]
    raise RuntimeError("CATALOG dict not found in diagnostics.py")


#: ``class name -> (path, lineno, defined method names, base names,
#: class-level assignment names)``
ClassInfo = Tuple[Path, int, set, List[str], set]


def _collect_classes(
        forest: List[Tuple[Path, ast.AST]]) -> "dict[str, ClassInfo]":
    classes: dict = {}
    for path, tree in forest:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            assigns = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    assigns.update(t.id for t in stmt.targets
                                   if isinstance(t, ast.Name))
                elif (isinstance(stmt, ast.AnnAssign)
                        and stmt.value is not None
                        and isinstance(stmt.target, ast.Name)):
                    assigns.add(stmt.target.id)
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            classes[node.name] = (path, node.lineno, methods, bases,
                                  assigns)
    return classes


def _ancestry(classes: "dict[str, ClassInfo]", name: str) -> List[str]:
    """The class and its ancestors, nearest first (breadth-first over
    base lists — close enough to the MRO for this codebase's simple
    hierarchies)."""
    order, queue = [], [name]
    while queue:
        cls = queue.pop(0)
        if cls in order or cls not in classes:
            continue
        order.append(cls)
        queue.extend(classes[cls][3])
    return order


def _provider(classes: "dict[str, ClassInfo]", name: str,
              method: str) -> "str | None":
    """The nearest class in ``name``'s ancestry defining ``method``."""
    for cls in _ancestry(classes, name):
        if method in classes[cls][2]:
            return cls
    return None


def check_kernel_pairing(
        classes: "dict[str, ClassInfo]") -> List[str]:
    problems = []
    for name in sorted(classes):
        if name == "AggregationFunction":
            continue
        if "AggregationFunction" not in _ancestry(classes, name):
            continue
        path, lineno, _methods, _bases, _assigns = classes[name]
        provider_apply = _provider(classes, name, "apply")
        provider_batch = _provider(classes, name, "batch_apply")
        if (provider_batch is not None
                and provider_batch != "AggregationFunction"
                and provider_apply != provider_batch):
            problems.append(
                f"{path.relative_to(REPO)}:{lineno}: {name} resolves "
                f"apply from {provider_apply} but its batch_apply "
                f"kernel from {provider_batch} — the object path and "
                f"the columnar kernel must be overridden together or "
                f"not at all")
    return problems


def check_backend_protocol(
        classes: "dict[str, ClassInfo]") -> List[str]:
    """Rule 7: every class below ``ExecutionBackend`` must declare its
    own ``name`` and resolve ``run`` from below the base class."""
    problems = []
    for name in sorted(classes):
        if name == "ExecutionBackend":
            continue
        if "ExecutionBackend" not in _ancestry(classes, name):
            continue
        path, lineno, _methods, _bases, _assigns = classes[name]
        where = f"{path.relative_to(REPO)}:{lineno}"
        has_name = any(
            "name" in classes[cls][4]
            for cls in _ancestry(classes, name)
            if cls != "ExecutionBackend")
        if not has_name:
            problems.append(
                f"{where}: {name} inherits ExecutionBackend's empty "
                f"name — an unregistrable backend; declare a "
                f"class-level name")
        provider_run = _provider(classes, name, "run")
        if provider_run in (None, "ExecutionBackend"):
            problems.append(
                f"{where}: {name} never overrides "
                f"ExecutionBackend.run — registration would only fail "
                f"at first dispatch (the base raises "
                f"NotImplementedError)")
    return problems


#: functions that produce a staleness stamp for a versioned cache.
VERSION_STAMP_FUNCS = {"version_vector", "_version_stamp"}

#: every attribute a complete stamp must reach: the fact-set counter,
#: the relation and order lookups, and the ``version`` field on each.
VERSION_STAMP_ATTRS = ("facts_version", "relation", "dimension",
                       "order", "version")


def check_version_vector_completeness(
        forest: List[Tuple[Path, ast.AST]]) -> List[str]:
    problems: List[str] = []
    found = 0
    for path, tree in forest:
        for node in ast.walk(tree):
            if not (isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                    and node.name in VERSION_STAMP_FUNCS):
                continue
            found += 1
            attrs = {n.attr for n in ast.walk(node)
                     if isinstance(n, ast.Attribute)}
            missing = [a for a in VERSION_STAMP_ATTRS if a not in attrs]
            if missing:
                problems.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: "
                    f"{node.name} never reads {', '.join(missing)} — a "
                    f"version stamp must cover the fact-set, relation, "
                    f"and order counters or its cache serves stale "
                    f"results")
    if not found:
        problems.append(
            "no version_vector/_version_stamp function found under "
            "src/ — the versioned caches have lost their staleness "
            "stamp")
    return problems


def check_catalog_documented() -> List[str]:
    problems = []
    doc_text = ANALYSIS_DOC.read_text(encoding="utf-8")
    codes = _catalog_codes()
    for code in codes:
        if code not in doc_text:
            problems.append(
                f"{DIAGNOSTICS.relative_to(REPO)}: catalogue code "
                f"{code} is not documented in docs/ANALYSIS.md")
    for code in sorted(set(re.findall(r"MD\d{3}", doc_text))):
        if code not in codes:
            problems.append(
                f"docs/ANALYSIS.md mentions {code}, which is not in "
                f"the analyzer's CATALOG")
    return problems


class LockRule(NamedTuple):
    """Lock discipline for one file: mutations of ``guarded`` names
    must sit inside ``with <lock>:`` for one of ``locks``.

    Names are either module globals (``"_RECENT"``) or instance
    attributes spelled ``"self._entries"``; the same spelling works
    for locks.  ``atomic`` lists ``"name.method"`` calls exempted as
    single-bytecode GIL-atomic mutations."""

    file: str
    locks: FrozenSet[str]
    guarded: FrozenSet[str]
    atomic: FrozenSet[str] = frozenset()


#: rule 6's config — the owning lock per shared registry.
LOCK_RULES: Tuple[LockRule, ...] = (
    LockRule("obs/metrics.py",
             locks=frozenset({"_MUTATION_LOCK", "self._lock"}),
             guarded=frozenset({"self.value", "self.count", "self.total",
                                "self.min", "self.max", "self._counters",
                                "self._gauges", "self._histograms"})),
    LockRule("obs/trace.py",
             locks=frozenset({"_BUFFER_LOCK"}),
             guarded=frozenset({"_buffer"}),
             # the span hot path appends lock-free: one deque.append
             # is GIL-atomic, and the buffer-management docstring
             # documents the best-effort view readers get
             atomic=frozenset({"_buffer.append"})),
    LockRule("engine/plan_fingerprint.py",
             locks=frozenset({"_TOKEN_LOCK"}),
             guarded=frozenset({"_TOKENS"})),
    LockRule("engine/result_cache.py",
             locks=frozenset({"self._lock"}),
             guarded=frozenset({"self._entries", "self._nbytes"})),
    LockRule("relational/backend/__init__.py",
             locks=frozenset({"_REGISTRY_LOCK"}),
             guarded=frozenset({"_BACKENDS", "_RECENT"})),
    LockRule("engine/backends.py",
             locks=frozenset({"_REGISTRY_LOCK"}),
             guarded=frozenset({"_REGISTRY"})),
    LockRule("engine/sharded.py",
             locks=frozenset({"_POOL_LOCK", "self._cache_lock"}),
             guarded=frozenset({"_POOL", "_POOL_WORKERS",
                                "self._payload_cache"})),
)

#: method calls that mutate their receiver in place.
LOCK_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "setdefault", "add",
    "discard", "move_to_end", "sort", "reverse",
})


def _name_of(node: ast.expr) -> "str | None":
    """``"NAME"`` / ``"self.attr"`` for the expressions the lock rules
    spell, unwrapping subscripts (``_TOKENS[mo]`` mutates ``_TOKENS``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return f"self.{node.attr}"
    return None


#: statements with no statement children: safe to deep-scan for calls
#: without re-walking block bodies the visitor recurses into itself.
_SIMPLE_STMTS = (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign,
                 ast.Return, ast.Delete, ast.Assert, ast.Raise)


def _lock_mutations(node: ast.stmt,
                    rule: LockRule) -> Iterator[Tuple[int, str]]:
    """``(lineno, description)`` per guarded-name mutation in ``node``
    itself (not its block children — the walker handles recursion)."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        name = _name_of(target)
        if name in rule.guarded:
            yield node.lineno, f"assignment to {name}"
    if not isinstance(node, _SIMPLE_STMTS):
        return
    for call in ast.walk(node):
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in LOCK_MUTATOR_METHODS):
            continue
        name = _name_of(call.func.value)
        if name not in rule.guarded:
            continue
        if f"{name}.{call.func.attr}" in rule.atomic:
            continue
        yield call.lineno, f"{name}.{call.func.attr}(...)"


def _is_lock_with(stmt: ast.stmt, rule: LockRule) -> bool:
    return (isinstance(stmt, ast.With)
            and any(_name_of(item.context_expr) in rule.locks
                    for item in stmt.items))


def check_lock_discipline(path: Path, tree: ast.AST,
                          rule: LockRule) -> List[str]:
    problems: List[str] = []

    def visit(stmt: ast.stmt, func: str, locked: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a new runtime scope: the enclosing with-block does not
            # guard calls made later through this closure
            if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                return
            for child in stmt.body:
                visit(child, stmt.name, False)
            return
        if _is_lock_with(stmt, rule):
            for child in stmt.body:
                visit(child, func, True)
            return
        if not locked and func is not None:
            for lineno, what in _lock_mutations(stmt, rule):
                problems.append(
                    f"{path.relative_to(REPO) if path.is_absolute() else path}"
                    f":{lineno}: {what} in {func} runs outside "
                    f"`with {sorted(rule.locks)[0]}:` — a concurrent "
                    f"read-modify-write can interleave and corrupt the "
                    f"shared registry")
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                visit(child, func, locked)

    assert isinstance(tree, ast.Module)
    for stmt in tree.body:
        visit(stmt, None, False)
    return problems


def main() -> int:
    doc_text = OBS_DOC.read_text(encoding="utf-8")
    problems: List[str] = []
    forest: List[Tuple[Path, ast.AST]] = []
    for path in _iter_sources():
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        forest.append((path, tree))
        problems += check_version_log_pairing(path, tree)
        problems += check_obs_names_documented(path, tree, doc_text)
        rel = path.relative_to(SRC).as_posix()
        for rule in LOCK_RULES:
            if rule.file == rel:
                problems += check_lock_discipline(path, tree, rule)
    classes = _collect_classes(forest)
    problems += check_kernel_pairing(classes)
    problems += check_backend_protocol(classes)
    problems += check_catalog_documented()
    problems += check_version_vector_completeness(forest)
    if problems:
        print(f"lint_invariants: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
