"""Each of the nine requirement probes, run individually."""

import pytest

from repro.survey import run_all_probes, run_probe


class TestProbes:
    @pytest.mark.parametrize("number", range(1, 10))
    def test_probe_passes(self, number):
        result = run_probe(number)
        assert result.passed, (
            f"requirement {number} probe failed: {result.detail}"
        )

    @pytest.mark.parametrize("number", range(1, 10))
    def test_probe_reports_requirement(self, number):
        result = run_probe(number)
        assert result.requirement.number == number
        assert result.detail

    def test_run_all(self):
        results = run_all_probes()
        assert len(results) == 9
        assert [r.requirement.number for r in results] == list(range(1, 10))
