"""Tests for the Table 2 reproduction."""

from repro.survey import (
    OUR_MODEL_ROW,
    REQUIREMENTS,
    SURVEYED_MODELS,
    Support,
    as_matrix,
    render_table2,
    table2_matrix,
    verified_our_row,
)

F, P, N = Support.FULL, Support.PARTIAL, Support.NONE

#: the paper's Table 2, row by row (√ / p / -)
PAPER_TABLE_2 = {
    "Rafanelli": (F, N, N, F, P, N, N, N, N),
    "Agrawal":   (P, F, P, N, P, N, N, N, N),
    "Gray":      (N, F, P, P, N, N, N, N, N),
    "Kimball":   (N, N, F, P, N, N, P, N, N),
    "Li":        (P, N, F, P, N, N, N, N, N),
    "Gyssens":   (N, F, P, P, N, N, N, N, N),
    "Datta":     (N, F, P, N, P, N, N, N, N),
    "Lehner":    (F, N, N, F, N, N, N, N, N),
}


class TestMatrixMatchesPaper:
    def test_cell_for_cell(self):
        matrix = as_matrix()
        assert set(matrix) == set(PAPER_TABLE_2)
        for key, row in PAPER_TABLE_2.items():
            assert matrix[key] == row, f"row {key} differs from the paper"

    def test_nine_requirements(self):
        assert len(REQUIREMENTS) == 9
        assert [r.number for r in REQUIREMENTS] == list(range(1, 10))

    def test_eight_models(self):
        assert len(SURVEYED_MODELS) == 8

    def test_paper_headline_claims(self):
        """§2.3: no surveyed model supports requirements 6, 8, 9 at all;
        requirement 7 only partially by Kimball; requirement 5 partially
        by three models."""
        matrix = as_matrix()
        for req in (6, 8, 9):
            assert all(row[req - 1] is N for row in matrix.values())
        req7 = [k for k, row in matrix.items() if row[6] is not N]
        assert req7 == ["Kimball"]
        assert matrix["Kimball"][6] is P
        req5_partial = [k for k, row in matrix.items() if row[4] is P]
        assert len(req5_partial) == 3

    def test_our_row_claims_full_support(self):
        assert all(level is F for level in OUR_MODEL_ROW.support)


class TestVerifiedRow:
    def test_probes_back_the_claim(self):
        row, results = verified_our_row()
        assert all(level is F for level in row.support)
        assert all(r.passed for r in results)

    def test_level_accessor(self):
        assert SURVEYED_MODELS[0].level(1) is F
        assert SURVEYED_MODELS[0].level(2) is N


class TestRendering:
    def test_render_contains_all_models(self):
        text = render_table2()
        for model in SURVEYED_MODELS:
            assert model.citation in text

    def test_render_with_ours(self):
        text = render_table2(include_ours=True)
        assert "this paper" in text

    def test_render_matches_paper_symbols(self):
        text = render_table2()
        lehner_line = next(l for l in text.splitlines() if "Lehner" in l)
        assert lehner_line.split()[-9:] == \
            ["√", "-", "-", "√", "-", "-", "-", "-", "-"]

    def test_table2_matrix_helper(self):
        assert len(table2_matrix()) == 8
        assert len(table2_matrix(include_ours=True)) == 9
