"""Tests for the Table 2 rationale reconstruction."""

from repro.survey import RATIONALE, SURVEYED_MODELS, render_rationale


class TestRationale:
    def test_every_model_covered(self):
        assert set(RATIONALE) == {m.key for m in SURVEYED_MODELS}

    def test_rationales_are_substantive(self):
        for text in RATIONALE.values():
            assert len(text) > 100

    def test_render_contains_rows_and_texts(self):
        text = render_rationale()
        for model in SURVEYED_MODELS:
            assert model.citation in text
        assert "reconstruction" in text

    def test_rationale_consistent_with_matrix(self):
        """Each rationale's 'full N' claims must match the matrix."""
        from repro.survey.models import Support

        for model in SURVEYED_MODELS:
            text = RATIONALE[model.key]
            for req_number in range(1, 10):
                if f"full {req_number})" in text or \
                        f"full {req_number},"in text or \
                        f"full {req_number} " in text:
                    assert model.support[req_number - 1] is Support.FULL
