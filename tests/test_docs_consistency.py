"""The documentation must not drift from the code: every module the
DESIGN.md inventory lists exists, every example README mentions exists,
and the API reference is regenerable."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_design_module_map_matches_tree():
    text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    # lines like "    chronon.py       ..." under "src/repro/"
    block = re.search(r"```\nsrc/repro/\n(.*?)```", text, re.S).group(1)
    missing = []
    current_package = None
    for line in block.splitlines():
        package = re.match(r"  (\w+)/", line)
        if package:
            current_package = package.group(1)
            if not (ROOT / "src" / "repro" / current_package).is_dir():
                missing.append(current_package)
            continue
        module = re.match(r"    (\w+\.py)", line)
        if module and current_package:
            path = ROOT / "src" / "repro" / current_package / module.group(1)
            if not path.is_file():
                missing.append(f"{current_package}/{module.group(1)}")
    assert not missing, f"DESIGN.md lists missing modules: {missing}"


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    for name in re.findall(r"\| `(\w+\.py)` \|", text):
        if name.startswith("bench_"):
            continue  # the artifacts table, checked below
        assert (ROOT / "examples" / name).is_file(), name


def test_readme_bench_files_exist():
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    for name in re.findall(r"`(bench_\w+\.py)`", text):
        assert (ROOT / "benchmarks" / name).is_file(), name


def test_api_reference_lists_all_packages():
    text = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    for package in ("core", "algebra", "temporal", "uncertainty",
                    "casestudy", "survey", "relational", "engine",
                    "obs", "workloads", "io", "report"):
        assert f"## `repro.{package}`" in text, package
