"""Tests for the selection operator σ."""

import pytest

from repro.algebra import (
    characterized_by,
    characterized_during,
    conjunction,
    disjunction,
    negation,
    rep_equals,
    select,
    sid_satisfies,
    validate_closed,
)
from repro.algebra.predicates import Predicate
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.errors import SchemaError
from repro.temporal.chronon import day
from repro.temporal.timeset import TimeSet


class TestBasicSelection:
    def test_characterized_by_hierarchy(self, snapshot_mo):
        """Dicing on group 11 finds patients diagnosed at any level."""
        result = select(snapshot_mo,
                        characterized_by("Diagnosis", diagnosis_value(11)))
        assert {f.fid for f in result.facts} == {1, 2}

    def test_characterized_by_low_level(self, snapshot_mo):
        result = select(snapshot_mo,
                        characterized_by("Diagnosis", diagnosis_value(5)))
        assert {f.fid for f in result.facts} == {2}

    def test_no_match_empty(self, snapshot_mo):
        result = select(snapshot_mo,
                        characterized_by("Diagnosis", diagnosis_value(6)))
        assert result.facts == set()

    def test_schema_and_dimensions_unchanged(self, snapshot_mo):
        result = select(snapshot_mo,
                        characterized_by("Diagnosis", diagnosis_value(5)))
        assert result.schema == snapshot_mo.schema
        assert result.dimension("Diagnosis") is \
            snapshot_mo.dimension("Diagnosis")

    def test_relations_restricted(self, snapshot_mo):
        result = select(snapshot_mo,
                        characterized_by("Diagnosis", diagnosis_value(5)))
        assert result.relation("Diagnosis").facts() == {patient_fact(2)}

    def test_result_closed(self, snapshot_mo):
        result = select(snapshot_mo,
                        characterized_by("Diagnosis", diagnosis_value(11)))
        assert validate_closed(result).ok

    def test_kind_preserved(self, valid_time_mo):
        result = select(valid_time_mo,
                        characterized_by("Diagnosis", diagnosis_value(9)))
        assert result.kind is valid_time_mo.kind

    def test_unknown_dimension_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            select(snapshot_mo, characterized_by("Nope", diagnosis_value(1)))


class TestPredicateForms:
    def test_sid_satisfies_numeric(self, snapshot_mo):
        adults = select(snapshot_mo,
                        sid_satisfies("Age", lambda age: age >= 40))
        assert {f.fid for f in adults.facts} == {2}  # Jane, born 1950

    def test_rep_equals(self, snapshot_mo):
        result = select(snapshot_mo, rep_equals(
            "Diagnosis", "Diagnosis Family", "Code", "E10"))
        assert {f.fid for f in result.facts} == {1, 2}

    def test_rep_equals_time_qualified(self, valid_time_mo):
        """Code 'D1' denoted diagnosis 8 only during the 70s."""
        result = select(valid_time_mo, rep_equals(
            "Diagnosis", "Diagnosis Family", "Code", "D1",
            at=day(1975, 1, 1)))
        assert {f.fid for f in result.facts} == {2}

    def test_conjunction(self, snapshot_mo):
        p = conjunction(
            characterized_by("Diagnosis", diagnosis_value(11)),
            sid_satisfies("Age", lambda age: age >= 40),
        )
        result = select(snapshot_mo, p)
        assert {f.fid for f in result.facts} == {2}

    def test_disjunction(self, snapshot_mo):
        p = disjunction(
            characterized_by("Diagnosis", diagnosis_value(3)),
            sid_satisfies("Age", lambda age: age < 40),
        )
        result = select(snapshot_mo, p)
        assert {f.fid for f in result.facts} == {1, 2}

    def test_negation_existential(self, snapshot_mo):
        """¬p keeps facts with SOME non-matching characterizing value —
        everyone has e.g. ⊤ failing a concrete match, so both stay."""
        p = negation(characterized_by("Diagnosis", diagnosis_value(11)))
        result = select(snapshot_mo, p)
        assert len(result.facts) == 2

    def test_nullary_predicate(self, snapshot_mo):
        true_p = Predicate(dims=(), test=lambda values, ctx: True)
        false_p = Predicate(dims=(), test=lambda values, ctx: False)
        assert select(snapshot_mo, true_p).facts == snapshot_mo.facts
        assert select(snapshot_mo, false_p).facts == set()


class TestTemporalPredicates:
    def test_characterized_during(self, valid_time_mo):
        window = TimeSet.interval(day(1975, 1, 1), day(1976, 1, 1))
        p = characterized_during("Diagnosis", diagnosis_value(3), window)
        result = select(valid_time_mo, p)
        assert {f.fid for f in result.facts} == {2}

    def test_characterized_during_outside_window(self, valid_time_mo):
        window = TimeSet.interval(day(1976, 1, 1), day(1977, 1, 1))
        p = characterized_during("Diagnosis", diagnosis_value(3), window)
        assert select(valid_time_mo, p).facts == set()

    def test_selection_does_not_change_times(self, valid_time_mo):
        """§4.2: σ leaves time attachments untouched."""
        result = select(valid_time_mo,
                        characterized_by("Diagnosis", diagnosis_value(8)))
        original = valid_time_mo.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(8))
        preserved = result.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(8))
        assert original == preserved
