"""Tests for drill-across over MO families with shared dimensions."""

import pytest

from repro.algebra import SetCount, Sum, drill_across, drill_across_family
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import AlgebraError, SchemaError
from repro.core.mo import MOFamily, MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact


def _region_dimension():
    dim = Dimension(DimensionType(
        "Region",
        [CategoryType("City", is_bottom=True), CategoryType("Region")],
        [("City", "Region")]))
    for sid, label in (("c1", "Copenhagen"), ("c2", "Aarhus")):
        dim.add_value("City", DimensionValue(sid=sid, label=label))
    for sid, label in (("r1", "Zealand"), ("r2", "Jutland")):
        dim.add_value("Region", DimensionValue(sid=sid, label=label))
    dim.add_edge(DimensionValue("c1"), DimensionValue("r1"))
    dim.add_edge(DimensionValue("c2"), DimensionValue("r2"))
    return dim


def _mo(fact_type, n_facts, cities, extra_measure=None):
    dims = {"Region": _region_dimension()}
    if extra_measure:
        from repro.core.helpers import make_numeric_dimension

        dims[extra_measure] = make_numeric_dimension(
            extra_measure, range(1, 100), aggtype=AggregationType.SUM)
    schema = FactSchema(fact_type, [d.dtype for d in dims.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dims)
    for i in range(n_facts):
        fact = Fact(fid=(fact_type, i), ftype=fact_type)
        mo.relate(fact, "Region", DimensionValue(cities[i % len(cities)]))
        if extra_measure:
            mo.relate(fact, extra_measure, DimensionValue(sid=i + 1))
    return mo


@pytest.fixture()
def clinic_and_shop():
    clinic = _mo("Patient", 4, ["c1", "c1", "c2"])
    shop = _mo("Purchase", 6, ["c2"], extra_measure="Price")
    return clinic, shop


class TestDrillAcross:
    def test_outer_alignment(self, clinic_and_shop):
        clinic, shop = clinic_and_shop
        rows = drill_across(
            [("patients", clinic, None), ("purchases", shop, None)],
            "Region", "Region")
        by_label = {row["label"]: row for row in rows}
        assert by_label["Zealand"]["patients"] == 3
        assert by_label["Zealand"]["purchases"] is None
        assert by_label["Jutland"]["patients"] == 1
        assert by_label["Jutland"]["purchases"] == 6

    def test_city_level(self, clinic_and_shop):
        clinic, shop = clinic_and_shop
        rows = drill_across(
            [("patients", clinic, None), ("purchases", shop, None)],
            "Region", "City")
        by_label = {row["label"]: row for row in rows}
        assert by_label["Copenhagen"]["patients"] == 3
        assert by_label["Aarhus"]["purchases"] == 6

    def test_mixed_functions(self, clinic_and_shop):
        clinic, shop = clinic_and_shop
        rows = drill_across(
            [("patients", clinic, SetCount()),
             ("revenue", shop, Sum("Price"))],
            "Region", "Region")
        by_label = {row["label"]: row for row in rows}
        assert by_label["Jutland"]["revenue"] == sum(range(1, 7))

    def test_missing_dimension_rejected(self, clinic_and_shop):
        clinic, shop = clinic_and_shop
        with pytest.raises(SchemaError):
            drill_across([("x", clinic, None)], "Nope", "Region")

    def test_empty_input_rejected(self):
        with pytest.raises(AlgebraError):
            drill_across([], "Region", "Region")


class TestDrillAcrossFamily:
    def test_family_join(self, clinic_and_shop):
        clinic, shop = clinic_and_shop
        family = MOFamily()
        family.add("clinic", clinic)
        family.add("shop", shop)
        rows = drill_across_family(family, "Region", "Region")
        by_label = {row["label"]: row for row in rows}
        assert by_label["Jutland"]["clinic"] == 1
        assert by_label["Jutland"]["shop"] == 6

    def test_members_without_dimension_skipped(self, clinic_and_shop):
        clinic, _ = clinic_and_shop
        other = _mo("Other", 2, ["c1"])
        # rebuild "other" without the shared dimension
        from repro.core.helpers import make_simple_dimension

        lone = make_simple_dimension("X", ["x1"])
        solo = MultidimensionalObject(
            FactSchema("Solo", [lone.dtype]), dimensions={"X": lone})
        solo.relate(Fact(fid=1, ftype="Solo"), "X", DimensionValue("x1"))
        family = MOFamily()
        family.add("clinic", clinic)
        family.add("solo", solo)
        rows = drill_across_family(family, "Region", "Region")
        assert all("solo" not in row for row in rows)

    def test_no_participants_rejected(self):
        family = MOFamily()
        with pytest.raises(AlgebraError):
            drill_across_family(family, "Region", "Region")

    def test_value_mismatch_guard(self, clinic_and_shop):
        clinic, _ = clinic_and_shop
        # a same-named dimension whose city belongs to another region
        impostor_dim = Dimension(DimensionType(
            "Region",
            [CategoryType("City", is_bottom=True),
             CategoryType("Region")],
            [("City", "Region")]))
        impostor_dim.add_value("City", DimensionValue("c1"))
        impostor_dim.add_value("Region", DimensionValue("r2"))
        impostor_dim.add_edge(DimensionValue("c1"), DimensionValue("r2"))
        impostor = MultidimensionalObject(
            FactSchema("Imp", [impostor_dim.dtype]),
            dimensions={"Region": impostor_dim})
        impostor.relate(Fact(fid=1, ftype="Imp"), "Region",
                        DimensionValue("c1"))
        family = MOFamily()
        family.add("clinic", clinic)
        family.add("impostor", impostor)
        with pytest.raises(AlgebraError):
            drill_across_family(family, "Region", "Region")
        # without verification the join proceeds (caller's risk)
        rows = drill_across_family(family, "Region", "Region",
                                   verify_shared=False)
        assert rows
