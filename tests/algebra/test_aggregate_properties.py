"""Property tests for aggregate formation's invariants."""

from hypothesis import HealthCheck, given, settings

from repro.algebra import SetCount, aggregate, summarizability_of
from repro.core.aggtypes import AggregationType
from repro.core.helpers import make_result_spec
from tests.strategies import small_mos

_settings = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _bottom_grouping(mo):
    name = mo.dimension_names[0]
    return name, {name: mo.dimension(name).dtype.bottom_name}


@_settings
@given(small_mos())
def test_groups_are_exactly_the_characterized_facts(mo):
    name, grouping = _bottom_grouping(mo)
    agg = aggregate(mo, SetCount(), grouping, make_result_spec(),
                    strict_types=False)
    dimension = mo.dimension(name)
    relation = mo.relation(name)
    for fact, value in agg.relation(name).pairs():
        if value.is_top:
            continue
        expected = relation.facts_characterized_by(value, dimension)
        assert fact.members <= expected


@_settings
@given(small_mos())
def test_excluded_facts_lack_grouping_characterization(mo):
    name, grouping = _bottom_grouping(mo)
    agg = aggregate(mo, SetCount(), grouping, make_result_spec(),
                    strict_types=False)
    included = {m for f in agg.facts for m in f.members}
    dimension = mo.dimension(name)
    relation = mo.relation(name)
    members = dimension.bottom_category.members()
    for fact in mo.facts - included:
        assert not any(
            relation.characterizes(fact, value, dimension)
            for value in members
        )


@_settings
@given(small_mos())
def test_set_count_results_match_group_sizes(mo):
    name, grouping = _bottom_grouping(mo)
    agg = aggregate(mo, SetCount(), grouping, make_result_spec(),
                    strict_types=False)
    for fact in agg.facts:
        (result,) = {
            v.sid for v in agg.relation("Result").values_of(fact)
            if not v.is_top
        } or {None}
        assert result == len(fact.members)


@_settings
@given(small_mos())
def test_aggtype_propagation_consistent_with_verdict(mo):
    """Set-count has no argument dimensions, so min over Args(g) is ⊕:
    the result's ⊥ type is ⊕ exactly when the grouping is summarizable,
    c otherwise."""
    name, grouping = _bottom_grouping(mo)
    function = SetCount()
    verdict = summarizability_of(mo, function, grouping)
    agg = aggregate(mo, function, grouping, make_result_spec(),
                    strict_types=False)
    bottom = agg.dimension("Result").dtype.bottom.aggtype
    if verdict.summarizable:
        assert bottom is AggregationType.SUM
    else:
        assert bottom is AggregationType.CONSTANT


@_settings
@given(small_mos())
def test_argument_dimensions_restricted_upward(mo):
    name, grouping = _bottom_grouping(mo)
    agg = aggregate(mo, SetCount(), grouping, make_result_spec(),
                    strict_types=False)
    grouped_dtype = agg.dimension(name).dtype
    assert grouped_dtype.bottom_name == grouping[name]
    for other in mo.dimension_names:
        if other == name:
            continue
        dtype = agg.dimension(other).dtype
        assert dtype.bottom_name == dtype.top_name
