"""Tests for ∪ and \\ on MOs, including the §4.2 temporal rules."""

import pytest

from repro.algebra import (
    characterized_by,
    difference,
    select,
    union,
    validate_closed,
)
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.errors import AlgebraError
from repro.core.mo import TimeKind
from repro.temporal.chronon import day
from repro.temporal.timeset import TimeSet


def split(snapshot_mo):
    only1 = select(snapshot_mo,
                   characterized_by("Name", _name_value("John Doe")))
    only2 = select(snapshot_mo,
                   characterized_by("Name", _name_value("Jane Doe")))
    return only1, only2


def _name_value(name):
    from repro.core.values import DimensionValue

    return DimensionValue(sid=name)


class TestUnion:
    def test_union_restores_split(self, snapshot_mo):
        m1, m2 = split(snapshot_mo)
        merged = union(m1, m2)
        assert merged.facts == snapshot_mo.facts
        assert validate_closed(merged).ok

    def test_union_of_relations(self, snapshot_mo):
        m1, m2 = split(snapshot_mo)
        merged = union(m1, m2)
        assert set(merged.relation("Diagnosis").pairs()) == \
            set(snapshot_mo.relation("Diagnosis").pairs())

    def test_union_idempotent_on_facts(self, snapshot_mo):
        merged = union(snapshot_mo, snapshot_mo)
        assert merged.facts == snapshot_mo.facts

    def test_union_requires_common_schema(self, snapshot_mo, small_retail):
        with pytest.raises(AlgebraError):
            union(snapshot_mo, small_retail.mo)

    def test_union_requires_same_kind(self, snapshot_mo, valid_time_mo):
        with pytest.raises(AlgebraError):
            union(snapshot_mo, valid_time_mo)

    def test_temporal_union_merges_pair_times(self, valid_time_mo):
        """(f,e) ∈_T1 R1 ∧ (f,e) ∈_T2 R2 ⇒ (f,e) ∈_{T1∪T2} R'."""
        early = TimeSet.interval(day(1970, 1, 1), day(1974, 12, 31))
        late = TimeSet.interval(day(1975, 1, 1), day(1981, 12, 31))
        m1 = case_study_mo(temporal=True)
        m2 = case_study_mo(temporal=True)
        # shrink patient 2's (2,8) pair differently in each operand
        for mo, keep in ((m1, early), (m2, late)):
            rel = mo.relation("Diagnosis")
            rel.remove_fact(patient_fact(2))
            rel.add(patient_fact(2), diagnosis_value(8), time=keep)
        merged = union(m1, m2)
        merged_time = merged.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(8))
        assert merged_time == early.union(late)


class TestDifference:
    def test_difference_removes_facts(self, snapshot_mo):
        m1, m2 = split(snapshot_mo)
        result = difference(snapshot_mo, m2)
        assert result.facts == m1.facts
        assert validate_closed(result).ok

    def test_difference_keeps_first_dimensions(self, snapshot_mo):
        _, m2 = split(snapshot_mo)
        result = difference(snapshot_mo, m2)
        assert result.dimension("Diagnosis") is \
            snapshot_mo.dimension("Diagnosis")

    def test_difference_with_self_is_empty(self, snapshot_mo):
        result = difference(snapshot_mo, snapshot_mo)
        assert result.facts == set()
        assert len(result.relation("Diagnosis")) == 0

    def test_difference_requires_common_schema(self, snapshot_mo,
                                               small_retail):
        with pytest.raises(AlgebraError):
            difference(snapshot_mo, small_retail.mo)

    def test_temporal_difference_cuts_pair_times(self, valid_time_mo):
        """The §4.2 rule: (f,e) times in M1 are cut by M2's times for
        the same pair; facts survive while some pair time remains in
        every relation."""
        m2 = case_study_mo(temporal=True)
        # m2 asserts ONLY the pair (2, 8) for 1970-1975; every other
        # pair of M1 is untouched, so the difference leaves patient 2
        # with the remainder 1976-1981 of that one pair
        for name in m2.dimension_names:
            rel2 = m2.relation(name)
            rel2.remove_fact(patient_fact(1))
            rel2.remove_fact(patient_fact(2))
        m2.relation("Diagnosis").add(
            patient_fact(2), diagnosis_value(8),
            time=TimeSet.interval(day(1970, 1, 1), day(1975, 12, 31)))
        result = difference(valid_time_mo, m2)
        assert result.facts == valid_time_mo.facts
        remaining = result.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(8))
        assert remaining == TimeSet.interval(day(1976, 1, 1),
                                             day(1981, 12, 31))

    def test_temporal_difference_drops_fact_covered_anywhere(
            self, valid_time_mo):
        """A fact fully cut in even one dimension has no pair there and
        is dropped from the result's fact set."""
        m2 = case_study_mo(temporal=True)  # identical to M1
        result = difference(valid_time_mo, m2)
        assert result.facts == set()

    def test_temporal_difference_drops_fully_covered_facts(
            self, valid_time_mo):
        result = difference(valid_time_mo, valid_time_mo)
        assert result.facts == set()

    def test_snapshot_difference_is_set_semantics(self, snapshot_mo):
        m1, m2 = split(snapshot_mo)
        assert difference(m1, m2).facts == m1.facts


class TestSetLaws:
    def test_union_difference_absorption(self, snapshot_mo):
        m1, m2 = split(snapshot_mo)
        assert difference(union(m1, m2), m2).facts == \
            difference(m1, m2).facts

    def test_difference_of_union_parts(self, snapshot_mo):
        m1, m2 = split(snapshot_mo)
        merged = union(m1, m2)
        assert difference(merged, m1).facts == m2.facts
