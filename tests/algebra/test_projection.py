"""Tests for the projection operator π."""

import pytest

from repro.algebra import project, validate_closed
from repro.core.errors import SchemaError


class TestProjection:
    def test_keeps_named_dimensions(self, snapshot_mo):
        result = project(snapshot_mo, ["Diagnosis", "Age"])
        assert list(result.dimension_names) == ["Diagnosis", "Age"]
        assert result.n == 2

    def test_facts_unchanged(self, snapshot_mo):
        """π does not remove 'duplicate values' — facts keep identity."""
        result = project(snapshot_mo, ["Name"])
        assert result.facts == snapshot_mo.facts

    def test_relations_shared(self, snapshot_mo):
        result = project(snapshot_mo, ["Diagnosis"])
        assert result.relation("Diagnosis") is \
            snapshot_mo.relation("Diagnosis")

    def test_duplicate_value_combinations_kept(self, small_retail):
        """Several purchases can share a product; all facts survive."""
        result = project(small_retail.mo, ["Product"])
        assert len(result.facts) == len(small_retail.mo.facts)
        assert len(result.facts) > \
            len(result.relation("Product").values())

    def test_order_respected(self, snapshot_mo):
        result = project(snapshot_mo, ["Age", "Diagnosis"])
        assert list(result.dimension_names) == ["Age", "Diagnosis"]

    def test_result_closed(self, snapshot_mo):
        assert validate_closed(project(snapshot_mo, ["SSN"])).ok

    def test_kind_preserved(self, valid_time_mo):
        assert project(valid_time_mo, ["Diagnosis"]).kind is \
            valid_time_mo.kind

    def test_empty_projection_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            project(snapshot_mo, [])

    def test_duplicate_names_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            project(snapshot_mo, ["Age", "Age"])

    def test_unknown_dimension_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            project(snapshot_mo, ["Nope"])

    def test_projection_composes(self, snapshot_mo):
        once = project(snapshot_mo, ["Diagnosis", "Age", "Name"])
        twice = project(once, ["Age"])
        assert list(twice.dimension_names) == ["Age"]
        assert twice.facts == snapshot_mo.facts
