"""Tests for the rename operator ρ."""

import pytest

from repro.algebra import rename, rename_dimension, validate_closed
from repro.casestudy import diagnosis_value, patient_fact
from repro.core.errors import SchemaError


class TestRenameDimensions:
    def test_dimension_renamed(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx"})
        assert "Dx" in result.schema
        assert "Diagnosis" not in result.schema

    def test_contents_preserved(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx"})
        values = result.relation("Dx").values_of(patient_fact(2))
        assert {v.sid for v in values} == {3, 5, 8, 9}
        assert result.dimension("Dx").leq(diagnosis_value(5),
                                          diagnosis_value(4))

    def test_top_value_follows_new_name(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx"})
        top = result.dimension("Dx").top_value
        assert top.sid == ("⊤", "Dx")

    def test_representations_preserved(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx"})
        code = result.dimension("Dx").representation(
            "Diagnosis Family", "Code")
        assert code.of(diagnosis_value(9)) == "E10"

    def test_unmentioned_dimensions_shared(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx"})
        assert result.dimension("Age") is snapshot_mo.dimension("Age")

    def test_schema_isomorphic(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx"})
        assert result.schema.is_isomorphic_to(snapshot_mo.schema)

    def test_result_closed(self, snapshot_mo):
        result = rename(snapshot_mo, dimension_map={"Diagnosis": "Dx",
                                                    "Age": "Years"})
        assert validate_closed(result).ok

    def test_unknown_dimension_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            rename(snapshot_mo, dimension_map={"Nope": "X"})

    def test_name_collision_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            rename(snapshot_mo, dimension_map={"Diagnosis": "Age"})

    def test_swap_names(self, snapshot_mo):
        result = rename(snapshot_mo,
                        dimension_map={"Name": "SSN", "SSN": "Name"})
        assert validate_closed(result).ok
        # the dimension now under "SSN" holds names
        values = {v.sid for v in result.dimension("SSN").bottom_category}
        assert "John Doe" in values


class TestRenameFactType:
    def test_fact_type_renamed(self, snapshot_mo):
        result = rename(snapshot_mo, new_fact_type="Subject")
        assert result.schema.fact_type == "Subject"
        assert all(f.ftype == "Subject" for f in result.facts)
        assert {f.fid for f in result.facts} == {1, 2}

    def test_relations_follow_renamed_facts(self, snapshot_mo):
        result = rename(snapshot_mo, new_fact_type="Subject")
        assert validate_closed(result).ok

    def test_identity_rename_is_cheap(self, snapshot_mo):
        result = rename(snapshot_mo)
        assert result.schema.fact_type == snapshot_mo.schema.fact_type
        assert result.dimension("Age") is snapshot_mo.dimension("Age")


class TestRenameDimensionHelper:
    def test_standalone(self, snapshot_mo):
        renamed = rename_dimension(snapshot_mo.dimension("Diagnosis"), "Dx")
        assert renamed.name == "Dx"
        assert renamed.leq(diagnosis_value(5), diagnosis_value(9))
        assert renamed.dtype.top_name == "⊤Dx"

    def test_temporal_annotations_preserved(self, valid_time_mo):
        original = valid_time_mo.dimension("Diagnosis")
        renamed = rename_dimension(original, "Dx")
        v3, v7 = diagnosis_value(3), diagnosis_value(7)
        assert renamed.containment_time(v3, v7) == \
            original.containment_time(v3, v7)
