"""Property tests: algebraic laws of ∪ and \\ on random MOs."""

from hypothesis import HealthCheck, given, settings

from repro.algebra import difference, union
from tests.strategies import small_mos

_settings = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _pairs(mo):
    return {
        name: {
            (fact, value, time, prob)
            for fact, value, time, prob
            in mo.relation(name).annotated_pairs()
        }
        for name in mo.dimension_names
    }


def _compatible(m1, m2):
    return m1.schema == m2.schema and m1.kind == m2.kind


@_settings
@given(small_mos(n_dims=2), small_mos(n_dims=2))
def test_union_commutes(m1, m2):
    if not _compatible(m1, m2):
        return
    ab, ba = union(m1, m2), union(m2, m1)
    assert ab.facts == ba.facts
    assert _pairs(ab) == _pairs(ba)


@_settings
@given(small_mos(n_dims=1), small_mos(n_dims=1), small_mos(n_dims=1))
def test_union_associates_on_facts_and_pairs(m1, m2, m3):
    if not (_compatible(m1, m2) and _compatible(m2, m3)):
        return
    left = union(union(m1, m2), m3)
    right = union(m1, union(m2, m3))
    assert left.facts == right.facts
    assert _pairs(left) == _pairs(right)


@_settings
@given(small_mos(n_dims=2))
def test_union_idempotent(mo):
    merged = union(mo, mo)
    assert merged.facts == mo.facts
    assert _pairs(merged) == _pairs(mo)


@_settings
@given(small_mos(n_dims=2))
def test_difference_with_self_empties(mo):
    result = difference(mo, mo)
    assert result.facts == set()
    for name in mo.dimension_names:
        assert len(result.relation(name)) == 0


@_settings
@given(small_mos(n_dims=2), small_mos(n_dims=2))
def test_difference_subset_of_first(m1, m2):
    if not _compatible(m1, m2):
        return
    result = difference(m1, m2)
    assert result.facts <= m1.facts
    original = _pairs(m1)
    for name, pairs in _pairs(result).items():
        base = {(f, v) for f, v, _, _ in original[name]}
        assert {(f, v) for f, v, _, _ in pairs} <= base


@_settings
@given(small_mos(n_dims=1), small_mos(n_dims=1))
def test_union_absorbs_difference(m1, m2):
    """(M1 \\ M2) ∪ (restriction of M1 to M2) covers M1's facts for
    snapshot MOs: A = (A \\ B) ∪ (A ∩ B) at the fact level."""
    if not _compatible(m1, m2):
        return
    diff_facts = difference(m1, m2).facts
    common = m1.facts & m2.facts
    assert diff_facts | common == m1.facts
