"""Tests for the aggregate formation operator α (paper §4.1-§4.2)."""

import warnings

import pytest

from repro.algebra import (
    Avg,
    Max,
    Min,
    SetCount,
    Sum,
    aggregate,
    summarizability_of,
    validate_closed,
)
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.aggtypes import AggregationType
from repro.core.errors import (
    AggregationTypeError,
    SchemaError,
    SummarizabilityWarning,
)
from repro.core.helpers import Band, make_result_spec
from repro.core.values import Fact
from repro.temporal.chronon import day
from repro.temporal.timeset import TimeSet


def group_counts(aggregated, dimension_name, result_name):
    out = {}
    for fact in aggregated.facts:
        for value in aggregated.relation(dimension_name).values_of(fact):
            result = next(
                iter(aggregated.relation(result_name).values_of(fact))).sid
            out[value.sid] = result
    return out


class TestExample12:
    """The paper's Example 12, literally."""

    def test_fact_dimension_relation_r1(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        r1 = {(frozenset(m.fid for m in f.members), v.sid)
              for f, v in agg.relation("Diagnosis").pairs()}
        assert r1 == {(frozenset({1, 2}), 11), (frozenset({2}), 12)}

    def test_result_relation_r7(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        r7 = {(frozenset(m.fid for m in f.members), v.sid)
              for f, v in agg.relation("Result").pairs()}
        assert r7 == {(frozenset({1, 2}), 2), (frozenset({2}), 1)}

    def test_patient_counted_once_per_group(self, snapshot_mo):
        """Patient 2 has several diagnoses under group 11 but counts
        once — the model's requirement-4 behaviour."""
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        counts = group_counts(agg, "Diagnosis", "Result")
        assert counts == {11: 2, 12: 1}

    def test_fact_type_is_set_of_patient(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        assert agg.schema.fact_type == "Set-of-Patient"
        assert all(f.is_group for f in agg.facts)

    def test_diagnosis_dimension_cut_from_group_up(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        dtype = agg.dimension("Diagnosis").dtype
        assert dtype.bottom_name == "Diagnosis Group"
        assert "Low-level Diagnosis" not in dtype
        assert "Diagnosis Family" not in dtype

    def test_other_dimensions_become_trivial(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        for name in ("Name", "SSN", "Age", "DOB", "Residence"):
            dtype = agg.dimension(name).dtype
            assert dtype.bottom_name == dtype.top_name

    def test_result_ranges_of_figure3(self, snapshot_mo):
        spec = make_result_spec(bands=[Band(0, 2), Band(2, None)])
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, spec)
        rng = agg.dimension("Result")
        two = spec.value_for(2)
        assert {p.label for p in rng.order.parents(two)} == {">1"}

    def test_result_closed(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        assert validate_closed(agg).ok


class TestAggtypePropagation:
    def test_non_summarizable_result_is_constant(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        assert agg.dimension("Result").dtype.bottom.aggtype is \
            AggregationType.CONSTANT

    def test_summarizable_sum_keeps_argument_type(self, strict_clinical):
        agg = aggregate(strict_clinical.mo, Sum("Age"),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        assert agg.dimension("Result").dtype.bottom.aggtype is \
            AggregationType.SUM

    def test_avg_result_is_constant_even_when_strict(self, strict_clinical):
        """AVG is not distributive, so its results can never feed
        further aggregation."""
        agg = aggregate(strict_clinical.mo, Avg("Age"),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        assert agg.dimension("Result").dtype.bottom.aggtype is \
            AggregationType.CONSTANT

    def test_higher_result_categories_take_min(self, strict_clinical):
        spec = make_result_spec(bands=[Band(0, 1000)])
        agg = aggregate(strict_clinical.mo, Sum("Age"),
                        {"Diagnosis": "Diagnosis Group"}, spec)
        # Range category was c, min(c, ⊕) = c
        assert agg.dimension("Result").dtype.aggtype("Range") is \
            AggregationType.CONSTANT

    def test_summarizability_of_reporting(self, snapshot_mo,
                                          strict_clinical):
        bad = summarizability_of(snapshot_mo, SetCount(),
                                 {"Diagnosis": "Diagnosis Group"})
        good = summarizability_of(strict_clinical.mo, Sum("Age"),
                                  {"Diagnosis": "Diagnosis Group"})
        assert not bad.summarizable and good.summarizable


class TestApplicabilityCheck:
    def test_sum_over_constant_data_rejected(self, snapshot_mo):
        with pytest.raises(AggregationTypeError):
            aggregate(snapshot_mo, Sum("Name"), {}, make_result_spec())

    def test_min_over_average_data_allowed(self, snapshot_mo):
        agg = aggregate(snapshot_mo, Min("DOB"), {}, make_result_spec())
        (result,) = {v.sid for f in agg.facts
                     for v in agg.relation("Result").values_of(f)}
        assert result == min(
            v.sid for v in snapshot_mo.dimension("DOB").bottom_category
        )

    def test_sum_over_dob_rejected(self, snapshot_mo):
        """DOB is ⊘: adding dates of birth is meaningless."""
        with pytest.raises(AggregationTypeError):
            aggregate(snapshot_mo, Sum("DOB"), {}, make_result_spec())

    def test_permissive_mode_warns(self, snapshot_mo):
        """Summing dates of birth (⊘ data) is meaningless but numeric:
        permissive mode computes it and warns."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            aggregate(snapshot_mo, Sum("DOB"), {}, make_result_spec(),
                      strict_types=False)
        assert any(issubclass(w.category, SummarizabilityWarning)
                   for w in caught)


class TestGroupingVariants:
    def test_multi_dimension_grouping(self, snapshot_mo):
        agg = aggregate(
            snapshot_mo, SetCount(),
            {"Diagnosis": "Diagnosis Group", "Residence": "Region"},
            make_result_spec())
        assert validate_closed(agg).ok
        assert all(f.is_group for f in agg.facts)

    def test_top_grouping_single_group(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(), {}, make_result_spec())
        assert len(agg.facts) == 1
        (fact,) = agg.facts
        assert fact.members == snapshot_mo.facts
        (count,) = {v.sid for v in agg.relation("Result").values_of(fact)}
        assert count == 2

    def test_fact_without_characterization_excluded(self, snapshot_mo):
        """Grouping at Low-level excludes patient 1, whose only
        diagnosis is recorded at family granularity."""
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Low-level Diagnosis"},
                        make_result_spec())
        members = set()
        for f in agg.facts:
            members |= {m.fid for m in f.members}
        assert members == {2}

    def test_sum_of_ages(self, snapshot_mo):
        agg = aggregate(snapshot_mo, Sum("Age"),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec(),
                        strict_types=False)
        sums = group_counts(agg, "Diagnosis", "Result")
        assert sums == {11: 29 + 48, 12: 48}

    def test_unknown_grouping_dimension_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            aggregate(snapshot_mo, SetCount(), {"Nope": "X"},
                      make_result_spec())

    def test_result_name_collision_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            aggregate(snapshot_mo, SetCount(), {},
                      make_result_spec(name="Age"))

    def test_merged_groups_share_fact(self, snapshot_mo):
        """Combos selecting the same fact set merge into one set-fact
        related to several values — the paper's 2^F semantics."""
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group",
                         "Residence": "County"},
                        make_result_spec())
        just_two = Fact.group([patient_fact(2)])
        values = agg.relation("Diagnosis").values_of(just_two)
        assert {v.sid for v in values} == {11, 12}


class TestTemporalAggregation:
    def test_group_entry_time_is_member_intersection(self, valid_time_mo):
        agg = aggregate(valid_time_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        # group {1,2} under 11: patient 1 ⇝ 11 during [89, NOW],
        # patient 2 ⇝ 11 during [82, NOW] (via 9) — intersection [89, NOW]
        target = None
        for fact, value in agg.relation("Diagnosis").pairs():
            if value.sid == 11 and len(fact.members) == 2:
                target = agg.relation("Diagnosis").pair_time(fact, value)
        assert target is not None
        assert target.min() == day(1989, 1, 1)

    def test_grouping_at_chronon(self, valid_time_mo):
        agg75 = aggregate(valid_time_mo, SetCount(),
                          {"Diagnosis": "Diagnosis Family"},
                          make_result_spec(), at=day(1975, 6, 1))
        facts = {frozenset(m.fid for m in f.members) for f in agg75.facts}
        assert facts == {frozenset({2})}

    def test_result_kind_preserved(self, valid_time_mo):
        agg = aggregate(valid_time_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, make_result_spec())
        assert agg.kind is valid_time_mo.kind
