"""Direct tests for predicate helpers not covered elsewhere, plus the
rebuild helper of aggregate formation."""

import pytest

from repro.algebra import (
    characterized_with_certainty,
    rebuild_with_aggtypes,
    select,
    value_in_category,
)
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.aggtypes import AggregationType
from repro.core.category import ensure_member
from repro.core.errors import InstanceError


class TestValueInCategory:
    def test_accepts_only_named_category(self, snapshot_mo):
        p = value_in_category(
            "Diagnosis", "Diagnosis Family",
            lambda v: v.sid in (8, 9))
        result = select(snapshot_mo, p)
        assert {f.fid for f in result.facts} == {1, 2}

    def test_rejects_values_of_other_categories(self, snapshot_mo):
        p = value_in_category(
            "Diagnosis", "Diagnosis Group",
            lambda v: v.sid == 9)  # 9 is a Family, not a Group
        assert select(snapshot_mo, p).facts == set()


class TestCharacterizedWithCertainty:
    def test_predicate_form(self):
        mo = case_study_mo(temporal=False)
        mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10),
                  prob=0.7)
        keep = select(mo, characterized_with_certainty(
            "Diagnosis", diagnosis_value(10), 0.6))
        drop = select(mo, characterized_with_certainty(
            "Diagnosis", diagnosis_value(10), 0.8))
        assert {f.fid for f in keep.facts} == {1}
        assert drop.facts == set()


class TestCharacterizationProfile:
    def test_profile_matches_time_and_probability(self, valid_time_mo):
        rel = valid_time_mo.relation("Diagnosis")
        dim = valid_time_mo.dimension("Diagnosis")
        profile = rel.characterization_profile(
            patient_fact(2), diagnosis_value(7), dim)
        # (2,3) ∩ (3 ≤ 7 during the 70s): certain over the Has window
        assert len(profile) == 1
        time, prob = profile[0]
        assert prob == 1.0
        assert time == rel.characterization_time(
            patient_fact(2), diagnosis_value(7), dim)


class TestRebuildWithAggtypes:
    def test_retypes_categories(self, snapshot_mo):
        age = snapshot_mo.dimension("Age")
        rebuilt = rebuild_with_aggtypes(
            age, {"Age": AggregationType.CONSTANT})
        assert rebuilt.dtype.bottom.aggtype is AggregationType.CONSTANT
        # everything else preserved
        assert rebuilt.values() == age.values()
        assert rebuilt.dtype.pred("Age") == age.dtype.pred("Age")


class TestEnsureMember:
    def test_guard(self, snapshot_mo):
        category = snapshot_mo.dimension("Diagnosis").category(
            "Diagnosis Group")
        ensure_member(category, diagnosis_value(11))  # silent
        with pytest.raises(InstanceError):
            ensure_member(category, diagnosis_value(9))
