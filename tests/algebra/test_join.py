"""Tests for the identity-based join ⋈."""

import pytest

from repro.algebra import (
    JoinPredicate,
    identity_join,
    project,
    rename,
    validate_closed,
)
from repro.casestudy import diagnosis_value, patient_fact
from repro.core.errors import AlgebraError


@pytest.fixture()
def halves(snapshot_mo):
    """Two disjointly-named projections of the case study, ready to
    join (a 'self-join' in the paper's sense)."""
    left = project(snapshot_mo, ["Diagnosis"])
    right = rename(project(snapshot_mo, ["Residence", "Age"]),
                   dimension_map={"Residence": "Home", "Age": "Years"})
    return left, right


class TestCartesianProduct:
    def test_sizes(self, halves):
        left, right = halves
        result = identity_join(left, right, JoinPredicate.TRUE)
        assert len(result.facts) == len(left.facts) * len(right.facts)

    def test_schema_union(self, halves):
        left, right = halves
        result = identity_join(left, right, JoinPredicate.TRUE)
        assert set(result.dimension_names) == {"Diagnosis", "Home", "Years"}
        assert result.schema.fact_type == "(Patient,Patient)"

    def test_closed(self, halves):
        left, right = halves
        assert validate_closed(
            identity_join(left, right, JoinPredicate.TRUE)).ok


class TestEquiJoin:
    def test_reunites_facts(self, halves):
        """The equi-join re-joins each patient's two projections."""
        left, right = halves
        result = identity_join(left, right, JoinPredicate.EQUAL)
        assert {f.fid for f in result.facts} == {(1, 1), (2, 2)}

    def test_pairs_inherit_relations(self, halves):
        left, right = halves
        result = identity_join(left, right, JoinPredicate.EQUAL)
        from repro.core.values import Fact

        pair = Fact(fid=(2, 2), ftype="(Patient,Patient)")
        diagnosis_sids = {
            v.sid for v in result.relation("Diagnosis").values_of(pair)}
        assert diagnosis_sids == {3, 5, 8, 9}
        years = {v.sid for v in result.relation("Years").values_of(pair)}
        assert years == {48}

    def test_closed(self, halves):
        left, right = halves
        assert validate_closed(
            identity_join(left, right, JoinPredicate.EQUAL)).ok


class TestNonEquiJoin:
    def test_excludes_diagonal(self, halves):
        left, right = halves
        result = identity_join(left, right, JoinPredicate.NOT_EQUAL)
        assert {f.fid for f in result.facts} == {(1, 2), (2, 1)}


class TestPreconditions:
    def test_shared_names_rejected(self, snapshot_mo):
        with pytest.raises(AlgebraError):
            identity_join(snapshot_mo, snapshot_mo)

    def test_mixed_kinds_rejected(self, snapshot_mo, valid_time_mo):
        renamed = rename(
            valid_time_mo,
            dimension_map={n: f"{n}_2" for n in valid_time_mo.dimension_names})
        with pytest.raises(AlgebraError):
            identity_join(snapshot_mo, renamed)


class TestTemporalJoin:
    def test_pairs_inherit_times(self, valid_time_mo):
        """§4.2: ((f1,f2), e) gets its time from the operand that
        contributed the dimension."""
        left = project(valid_time_mo, ["Diagnosis"])
        right = rename(project(valid_time_mo, ["Residence"]),
                       dimension_map={"Residence": "Home"})
        result = identity_join(left, right, JoinPredicate.EQUAL)
        from repro.core.values import Fact

        pair = Fact(fid=(2, 2), ftype="(Patient,Patient)")
        original = valid_time_mo.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(8))
        inherited = result.relation("Diagnosis").pair_time(
            pair, diagnosis_value(8))
        assert inherited == original
