"""Tests for the aggregation function family."""

import math

import pytest

from repro.algebra.functions import (
    Avg,
    CountDim,
    Max,
    Median,
    Min,
    SetCount,
    Sum,
    measures_of,
)
from repro.casestudy import patient_fact
from repro.core.errors import AggregationTypeError, AlgebraError


class TestMeasures:
    def test_numeric_measures(self, snapshot_mo):
        assert measures_of(snapshot_mo, "Age", patient_fact(1)) == [29.0]

    def test_top_value_contributes_nothing(self, snapshot_mo):
        mo = snapshot_mo.copy()
        f = patient_fact(1)
        mo.relate_unknown(f, "Age")
        assert measures_of(mo, "Age", f) == [29.0]

    def test_non_numeric_rejected(self, snapshot_mo):
        with pytest.raises(AlgebraError):
            measures_of(snapshot_mo, "Name", patient_fact(1))


class TestApply:
    def test_set_count(self, snapshot_mo):
        assert SetCount().apply(snapshot_mo.facts, snapshot_mo) == 2

    def test_sum(self, snapshot_mo):
        assert Sum("Age").apply(snapshot_mo.facts, snapshot_mo) == 77.0

    def test_avg(self, snapshot_mo):
        assert Avg("Age").apply(snapshot_mo.facts, snapshot_mo) == 38.5

    def test_min_max(self, snapshot_mo):
        assert Min("Age").apply(snapshot_mo.facts, snapshot_mo) == 29.0
        assert Max("Age").apply(snapshot_mo.facts, snapshot_mo) == 48.0

    def test_count_dim(self, snapshot_mo):
        assert CountDim("Age").apply(snapshot_mo.facts, snapshot_mo) == 2

    def test_empty_group_statistics_nan(self, snapshot_mo):
        assert math.isnan(Avg("Age").apply([], snapshot_mo))
        assert math.isnan(Min("Age").apply([], snapshot_mo))
        assert math.isnan(Max("Age").apply([], snapshot_mo))
        assert Sum("Age").apply([], snapshot_mo) == 0
        assert SetCount().apply([], snapshot_mo) == 0


class TestCombine:
    def test_distributive_combiners(self):
        assert SetCount().combine([2, 3]) == 5
        assert Sum("Age").combine([10.0, 5.0]) == 15.0
        assert Min("Age").combine([3.0, 7.0]) == 3.0
        assert Max("Age").combine([3.0, 7.0]) == 7.0
        assert CountDim("Age").combine([1, 4]) == 5

    def test_avg_refuses_to_combine(self):
        with pytest.raises(AlgebraError):
            Avg("Age").combine([1.0, 2.0])

    def test_distributivity_flags(self):
        assert SetCount().distributive
        assert Sum("Age").distributive
        assert not Avg("Age").distributive


class TestApplicability:
    def test_set_count_always_applicable(self, snapshot_mo):
        assert SetCount().check_applicable(snapshot_mo)

    def test_sum_on_additive(self, snapshot_mo):
        assert Sum("Age").check_applicable(snapshot_mo)

    def test_sum_on_ordinal_rejected(self, snapshot_mo):
        with pytest.raises(AggregationTypeError):
            Sum("DOB").check_applicable(snapshot_mo)
        assert not Sum("DOB").check_applicable(snapshot_mo, strict=False)

    def test_min_on_ordinal(self, snapshot_mo):
        assert Min("DOB").check_applicable(snapshot_mo)

    def test_avg_on_constant_rejected(self, snapshot_mo):
        with pytest.raises(AggregationTypeError):
            Avg("Name").check_applicable(snapshot_mo)

    def test_count_on_constant(self, snapshot_mo):
        assert CountDim("Name").check_applicable(snapshot_mo)

    def test_names(self):
        assert SetCount().name == "SetCount"
        assert Sum("Age").name == "Sum(Age)"


class TestMedian:
    def test_odd_and_even(self, snapshot_mo):
        assert Median("Age").apply(snapshot_mo.facts, snapshot_mo) == 38.5
        one = [f for f in snapshot_mo.facts if f.fid == 1]
        assert Median("Age").apply(one, snapshot_mo) == 29.0

    def test_empty_is_nan(self, snapshot_mo):
        assert math.isnan(Median("Age").apply([], snapshot_mo))

    def test_holistic_refuses_combine(self):
        import pytest as _pytest

        from repro.core.errors import AlgebraError as _AlgebraError

        with _pytest.raises(_AlgebraError):
            Median("Age").combine([1.0, 2.0])
        assert not Median("Age").distributive

    def test_applicable_on_ordinal(self, snapshot_mo):
        assert Median("DOB").check_applicable(snapshot_mo)

    def test_result_aggtype_constant(self, strict_clinical):
        from repro.algebra import aggregate
        from repro.core.aggtypes import AggregationType
        from repro.core.helpers import make_result_spec

        agg = aggregate(strict_clinical.mo, Median("Age"),
                        {"Diagnosis": "Diagnosis Group"},
                        make_result_spec())
        assert agg.dimension("Result").dtype.bottom.aggtype is \
            AggregationType.CONSTANT


class TestSumProduct:
    def test_revenue_semantics(self, small_retail):
        """Revenue = Σ amount × price, the retail intro's measure."""
        from repro.algebra import SumProduct

        mo = small_retail.mo
        revenue = SumProduct("Amount", "Price")
        expected = 0.0
        for fact in mo.facts:
            amount = next(iter(
                mo.relation("Amount").values_of(fact))).sid
            price = next(iter(mo.relation("Price").values_of(fact))).sid
            expected += amount * price
        assert revenue.apply(mo.facts, mo) == expected

    def test_applicability_needs_both_additive(self, snapshot_mo):
        from repro.algebra import SumProduct
        from repro.core.errors import AggregationTypeError

        with pytest.raises(AggregationTypeError):
            SumProduct("Age", "DOB").check_applicable(snapshot_mo)
        assert SumProduct("Age", "Age").check_applicable(snapshot_mo)

    def test_distributive_combine(self):
        from repro.algebra import SumProduct

        assert SumProduct("A", "B").combine([10.0, 5.0]) == 15.0
        assert SumProduct("A", "B").distributive

    def test_args_reported(self):
        from repro.algebra import SumProduct

        assert SumProduct("Amount", "Price").args == ("Amount", "Price")
        assert SumProduct("Amount", "Price").name == \
            "SumProduct(Amount, Price)"

    def test_grouped_revenue(self, small_retail):
        from repro.algebra import SumProduct, aggregate
        from repro.core.helpers import make_result_spec

        mo = small_retail.mo
        agg = aggregate(mo, SumProduct("Amount", "Price"),
                        {"Product": "Department"}, make_result_spec())
        totals = sum(
            next(iter(agg.relation("Result").values_of(f))).sid
            for f in agg.facts
        )
        assert totals == SumProduct("Amount", "Price").apply(mo.facts, mo)
