"""Tests for the derived operators (paper §4.1, closing paragraph)."""

import pytest

from repro.algebra import (
    SetCount,
    Sum,
    drill_down,
    duplicate_removal,
    roll_up,
    sql_aggregation,
    star_join,
    validate_closed,
    value_based_join,
)
from repro.casestudy import diagnosis_value
from repro.core.errors import SchemaError
from repro.core.values import DimensionValue
from repro.workloads import RetailConfig, generate_retail


@pytest.fixture()
def collision_retail():
    """A retail workload with tiny domains, guaranteeing duplicate
    value combinations across purchases."""
    return generate_retail(RetailConfig(
        n_purchases=100, n_departments=1, categories_per_department=1,
        products_per_category=2, n_regions=1, cities_per_region=1,
        customers_per_city=1, n_days=2, max_amount=2, max_price=2,
        seed=7))


class TestDuplicateRemoval:
    def test_collapses_equal_combinations(self, collision_retail):
        slim = duplicate_removal(collision_retail.mo)
        assert len(slim.facts) < len(collision_retail.mo.facts)
        assert len(slim.facts) <= 2 * 1 * 2 * 2 * 2  # domain product
        assert validate_closed(slim).ok

    def test_set_facts_partition_original(self, collision_retail):
        slim = duplicate_removal(collision_retail.mo)
        members = [m for f in slim.facts for m in f.members]
        assert len(members) == len(collision_retail.mo.facts)
        assert set(members) == collision_retail.mo.facts

    def test_idempotent_cardinality(self, snapshot_mo):
        once = duplicate_removal(snapshot_mo)
        assert len(once.facts) == 2  # the two patients differ everywhere


class TestSqlAggregation:
    def test_rows_per_combination(self, snapshot_mo):
        rows = sql_aggregation(
            snapshot_mo, SetCount(),
            {"Diagnosis": "Diagnosis Group", "Residence": "County"},
            strict_types=False)
        as_tuples = {(r["Diagnosis"], r["Residence"], r["SetCount"])
                     for r in rows}
        assert as_tuples == {
            (11, 201, 2), (11, 202, 1), (12, 201, 1), (12, 202, 1)}

    def test_single_dimension(self, snapshot_mo):
        rows = sql_aggregation(snapshot_mo, SetCount(),
                               {"Diagnosis": "Diagnosis Group"},
                               strict_types=False)
        assert {(r["Diagnosis"], r["SetCount"]) for r in rows} == \
            {(11, 2), (12, 1)}

    def test_grand_total(self, snapshot_mo):
        rows = sql_aggregation(snapshot_mo, SetCount(), {},
                               strict_types=False)
        assert rows == [{"SetCount": 2}]

    def test_strict_type_check_applies(self, snapshot_mo):
        from repro.core.errors import AggregationTypeError

        with pytest.raises(AggregationTypeError):
            sql_aggregation(snapshot_mo, Sum("DOB"), {})


class TestValueBasedJoin:
    def test_join_on_shared_dimension(self, snapshot_mo):
        """Self-join patients on equal Residence values."""
        joined = value_based_join(snapshot_mo, snapshot_mo,
                                  on=[("Residence", "Residence")])
        assert validate_closed(joined).ok
        pair_ids = {f.fid for f in joined.facts}
        # patients share no area -> only self-pairs… except patient 2
        # lived (untimed) in two areas; both self-pairs must be present
        assert (1, 1) in pair_ids and (2, 2) in pair_ids
        assert (1, 2) not in pair_ids

    def test_join_is_value_equality(self, small_retail):
        mo = small_retail.mo
        joined = value_based_join(mo, mo, on=[("Product", "Product")])
        for fact in joined.facts:
            f1, f2 = fact.fid
            left = {v.sid for v in mo.relation("Product").values_of(
                _purchase(small_retail, f1))}
            right = {v.sid for v in mo.relation("Product").values_of(
                _purchase(small_retail, f2))}
            assert left & right


def _purchase(workload, fid):
    from repro.core.values import Fact

    return Fact(fid=fid, ftype="Purchase")


class TestStarJoin:
    def test_dice_and_keep(self, snapshot_mo):
        result = star_join(
            snapshot_mo,
            {"Diagnosis": diagnosis_value(11)},
            keep=["Diagnosis", "Age"],
        )
        assert {f.fid for f in result.facts} == {1, 2}
        assert list(result.dimension_names) == ["Diagnosis", "Age"]

    def test_multiple_constraints(self, snapshot_mo):
        result = star_join(
            snapshot_mo,
            {"Diagnosis": diagnosis_value(12),
             "Age": DimensionValue(48)},
        )
        assert {f.fid for f in result.facts} == {2}

    def test_no_constraints_is_projection(self, snapshot_mo):
        result = star_join(snapshot_mo, {}, keep=["Age"])
        assert result.facts == snapshot_mo.facts


class TestRollUpDrillDown:
    def test_roll_up(self, snapshot_mo):
        agg = roll_up(snapshot_mo, "Diagnosis", "Diagnosis Group",
                      strict_types=False)
        assert agg.dimension("Diagnosis").dtype.bottom_name == \
            "Diagnosis Group"

    def test_roll_up_unknown_category(self, snapshot_mo):
        with pytest.raises(SchemaError):
            roll_up(snapshot_mo, "Diagnosis", "Nope")

    def test_drill_down_reaggregates_finer(self, snapshot_mo):
        finer = drill_down(snapshot_mo, "Diagnosis", "Diagnosis Group",
                           strict_types=False)
        assert finer.dimension("Diagnosis").dtype.bottom_name == \
            "Diagnosis Family"

    def test_drill_down_below_bottom_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            drill_down(snapshot_mo, "Diagnosis", "Low-level Diagnosis")

    def test_revenue_rollup_matches_manual(self, small_retail):
        mo = small_retail.mo
        agg = roll_up(mo, "Product", "Department", function=Sum("Price"))
        by_dept = {}
        for fact in agg.facts:
            for value in agg.relation("Product").values_of(fact):
                result = next(iter(
                    agg.relation("__query_result" if False else "Result")
                    .values_of(fact))).sid
                by_dept[value.label] = result
        total = sum(by_dept.values())
        expected = Sum("Price").apply(mo.facts, mo)
        assert total == expected
