"""Property tests for the §4.2 temporal rules: timeslice interacts with
the operators as the snapshot-reducibility folklore demands."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import (
    difference,
    project,
    select,
    union,
    validate_closed,
)
from repro.algebra.predicates import Predicate
from repro.core.mo import TimeKind
from repro.temporal.timeslice import valid_timeslice
from tests.strategies import chronons, small_mos

_settings = settings(max_examples=30,
                     suppress_health_check=[HealthCheck.too_slow],
                     deadline=None)


def _pairs_at(mo):
    out = {}
    for name in mo.dimension_names:
        out[name] = {
            (fact, value)
            for fact, value in mo.relation(name).pairs()
            if not value.is_top
        }
    return out


@_settings
@given(small_mos(n_dims=2, temporal=True), small_mos(n_dims=2, temporal=True),
       chronons)
def test_timeslice_commutes_with_union(m1, m2, t):
    """τ_v(M1 ∪ M2, t) has the same non-⊤ pairs as τ_v(M1,t) ∪ τ_v(M2,t)."""
    if m1.schema != m2.schema:
        return
    merged = union(m1, m2)
    left = _pairs_at(valid_timeslice(merged, t))
    s1 = valid_timeslice(m1, t)
    s2 = valid_timeslice(m2, t)
    right = {
        name: ({p for p in s1.relation(name).pairs()
                if not p[1].is_top}
               | {p for p in s2.relation(name).pairs()
                  if not p[1].is_top})
        for name in merged.dimension_names
    }
    assert left == right


@_settings
@given(small_mos(n_dims=1, temporal=True), small_mos(n_dims=1, temporal=True),
       chronons)
def test_timeslice_of_difference_subset(m1, m2, t):
    """Every non-⊤ pair of τ_v(M1 \\ M2, t) is a pair of τ_v(M1, t) and
    not a pair of τ_v(M2, t)."""
    if m1.schema != m2.schema:
        return
    diff = difference(m1, m2)
    sliced = _pairs_at(valid_timeslice(diff, t))
    left = _pairs_at(valid_timeslice(m1, t))
    right = _pairs_at(valid_timeslice(m2, t))
    for name, pairs in sliced.items():
        assert pairs <= left[name]
        assert not (pairs & right[name])


@_settings
@given(small_mos(temporal=True), chronons)
def test_timeslice_commutes_with_projection(mo, t):
    kept = list(mo.dimension_names)[:1]
    a = valid_timeslice(project(mo, kept), t)
    b = project(valid_timeslice(mo, t), kept)
    assert _pairs_at(a) == _pairs_at(b)


@_settings
@given(small_mos(temporal=True), chronons)
def test_selection_then_slice_equals_slice_membership(mo, t):
    """σ does not change times: slicing a selection restricts the
    slice's facts to the selected ones."""
    name = mo.dimension_names[0]
    predicate = Predicate(
        dims=(name,), test=lambda values, ctx: not values[name].is_top)
    selected = select(mo, predicate)
    sliced = valid_timeslice(selected, t)
    assert sliced.facts == selected.facts
    assert validate_closed(sliced).ok


@_settings
@given(small_mos(temporal=True), chronons)
def test_timeslice_output_is_snapshot_and_closed(mo, t):
    sliced = valid_timeslice(mo, t)
    assert sliced.kind is TimeKind.SNAPSHOT
    assert validate_closed(sliced).ok
