"""Theorem 1, property-tested: every operator applied to random valid
MOs yields a valid MO (the algebra is closed)."""

from hypothesis import HealthCheck, given, settings

from repro.algebra import (
    JoinPredicate,
    Predicate,
    SetCount,
    aggregate,
    difference,
    duplicate_removal,
    identity_join,
    project,
    rename,
    select,
    union,
    validate_closed,
)
from repro.core.helpers import make_result_spec
from tests.strategies import small_mos

_settings = settings(max_examples=40,
                     suppress_health_check=[HealthCheck.too_slow],
                     deadline=None)


@_settings
@given(small_mos())
def test_input_strategy_produces_valid_mos(mo):
    assert validate_closed(mo).ok


@_settings
@given(small_mos())
def test_selection_closed(mo):
    name = mo.dimension_names[0]
    predicate = Predicate(
        dims=(name,),
        test=lambda values, ctx: not values[name].is_top,
    )
    assert validate_closed(select(mo, predicate)).ok


@_settings
@given(small_mos())
def test_projection_closed(mo):
    kept = list(mo.dimension_names)[:1]
    assert validate_closed(project(mo, kept)).ok


@_settings
@given(small_mos())
def test_rename_closed(mo):
    mapping = {name: f"{name}X" for name in mo.dimension_names}
    renamed = rename(mo, new_fact_type="U", dimension_map=mapping)
    assert validate_closed(renamed).ok


@_settings
@given(small_mos(n_dims=2), small_mos(n_dims=2))
def test_union_difference_closed_when_schemas_match(m1, m2):
    if m1.schema != m2.schema or m1.kind != m2.kind:
        return
    assert validate_closed(union(m1, m2)).ok
    assert validate_closed(difference(m1, m2)).ok


@_settings
@given(small_mos(n_dims=1), small_mos(n_dims=1))
def test_join_closed(m1, m2):
    if m1.kind != m2.kind:
        return
    m2 = rename(m2, dimension_map={
        name: f"{name}_r" for name in m2.dimension_names})
    for predicate in JoinPredicate:
        assert validate_closed(identity_join(m1, m2, predicate)).ok


@_settings
@given(small_mos())
def test_aggregate_closed(mo):
    grouping_dim = mo.dimension_names[0]
    dtype = mo.dimension(grouping_dim).dtype
    for category in (dtype.bottom_name, dtype.top_name):
        result = aggregate(mo, SetCount(), {grouping_dim: category},
                           make_result_spec(), strict_types=False)
        assert validate_closed(result).ok
        assert all(f.is_group for f in result.facts)


@_settings
@given(small_mos())
def test_duplicate_removal_closed(mo):
    slim = duplicate_removal(mo)
    assert validate_closed(slim).ok
    members = [m for f in slim.facts for m in f.members]
    assert len(members) == len(mo.facts)


@_settings
@given(small_mos(temporal=True))
def test_operators_closed_on_temporal_mos(mo):
    assert validate_closed(mo).ok
    kept = list(mo.dimension_names)[:1]
    assert validate_closed(project(mo, kept)).ok
    result = aggregate(
        mo, SetCount(),
        {kept[0]: mo.dimension(kept[0]).dtype.bottom_name},
        make_result_spec(), strict_types=False)
    assert validate_closed(result).ok


@_settings
@given(small_mos(probabilistic=True))
def test_operators_closed_on_probabilistic_mos(mo):
    assert validate_closed(mo).ok
    result = aggregate(mo, SetCount(), {}, make_result_spec(),
                       strict_types=False)
    assert validate_closed(result).ok
