"""Satellite: the 3-way α equivalence ladder.

``aggregate(use_kernel=True)`` (columnar batch kernels) ≡
``aggregate(use_kernel=False)`` (interned object path) ≡
``aggregate(use_index=False)`` (the naive oracle), across random MOs,
groupings, imprecise multi-valued characterizations, and post-mutation
replays — plus unit coverage for the columnar layer's fallback rules
and the new bulk accessors.

Identity caveat, documented in docs/PERFORMANCE.md: all measures here
are integers, for which the kernels' fact-id-order accumulation is
exactly equal to the object path's set-iteration-order accumulation.
The single representation difference the ladder tolerates is SUM of a
measureless group — ``int 0`` on the object path vs ``float 0.0`` from
the kernel — which the numeric canonicalization below equates (they
compare ``==`` everywhere in the engine).
"""

import math
import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra import (
    Avg,
    CountDim,
    Max,
    Median,
    Min,
    SetCount,
    Sum,
    aggregate,
)
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import AlgebraError
from repro.core.helpers import make_result_spec
from repro.core.interning import InternTable
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.engine import columnar as columnar_module
from repro.engine.rollup_index import MULTI_VALUED, UNCHARACTERIZED
from repro.obs import metrics

from tests.strategies import small_dimensions

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_MEASURE_VALUES = [DimensionValue(sid=j, label=str(j)) for j in range(5)]


def _measure_dimension():
    ctype = CategoryType("MeasureL0", AggregationType.SUM, is_bottom=True)
    dimension = Dimension(DimensionType("Measure", [ctype], []))
    for value in _MEASURE_VALUES:
        dimension.add_value("MeasureL0", value)
    return dimension


@st.composite
def measured_mos(draw, n_dims=None):
    """A small MO with 1-2 random grouping dimensions plus an integer
    ``Measure`` dimension (sids 0-4), so every measure function is
    exactly representable and the ladder can demand equality."""
    if n_dims is None:
        n_dims = draw(st.integers(min_value=1, max_value=2))
    dimensions, inventories = {}, {}
    for i in range(n_dims):
        name = f"Dim{i}"
        dimension, values = draw(small_dimensions(name=name))
        dimensions[name] = dimension
        inventories[name] = [v for level in values for v in level]
    dimensions["Measure"] = _measure_dimension()
    schema = FactSchema("T", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions,
                                kind=TimeKind.SNAPSHOT)
    n_facts = draw(st.integers(min_value=0, max_value=6))
    for fid in range(n_facts):
        fact = Fact(fid=fid, ftype="T")
        mo.add_fact(fact)
        for name in dimensions:
            if name == "Measure":
                chosen = draw(st.lists(st.sampled_from(_MEASURE_VALUES),
                                       min_size=0, max_size=2, unique=True))
                if not chosen:
                    mo.relate(fact, name, dimensions[name].top_value)
                for value in chosen:
                    mo.relate(fact, name, value)
                continue
            n_links = draw(st.integers(min_value=1, max_value=2))
            for _ in range(n_links):
                use_top = draw(st.booleans()) and n_links == 1
                if use_top or not inventories[name]:
                    value = dimensions[name].top_value
                else:
                    value = draw(st.sampled_from(inventories[name]))
                mo.relate(fact, name, value)
    grouping = {}
    for i in range(n_dims):
        name = f"Dim{i}"
        if draw(st.booleans()):
            categories = [c.name for c in
                          dimensions[name].dtype.category_types()]
            grouping[name] = draw(st.sampled_from(categories))
    return mo, grouping


_FUNCTIONS = [
    SetCount(),
    CountDim("Measure"),
    Sum("Measure"),
    Min("Measure"),
    Max("Measure"),
    Avg("Measure"),
]


def _canon_raw(sid):
    """Result surrogates, numerically canonicalized: NaN is one token
    (NaN != NaN would make equal results look distinct) and int/float
    zero collapse (SUM of a measureless group)."""
    if isinstance(sid, bool) or not isinstance(sid, (int, float)):
        return repr(sid)
    if isinstance(sid, float) and math.isnan(sid):
        return "nan"
    return repr(float(sid))


def _rows(agg, grouping_names):
    """Canonical output rows: (grouping values, member fids, results).
    Member fids are the true group identity; everything else is repr'd
    through sorted lists because frozenset iteration order is not
    canonical across construction orders."""
    rows = []
    for fact in agg.facts:
        combo = tuple(
            sorted(repr(v) for v in agg.relation(name).values_of(fact))
            for name in grouping_names
        )
        members = tuple(sorted(m.fid for m in fact.members))
        results = tuple(sorted(
            _canon_raw(v.sid)
            for v in agg.relation("Result").values_of(fact)
        ))
        rows.append((combo, members, results))
    return sorted(rows)


def _three_way(mo, function, grouping):
    names = sorted(grouping)
    ladder = []
    for kwargs in ({"use_kernel": True}, {"use_kernel": False},
                   {"use_index": False}):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            agg = aggregate(mo, function, dict(grouping), make_result_spec(),
                            strict_types=False, **kwargs)
        ladder.append(_rows(agg, names))
    kernel, object_path, naive = ladder
    assert kernel == naive, (
        f"kernel α disagrees with the naive oracle for {function.name} "
        f"grouped by {grouping}")
    assert object_path == naive, (
        f"object-path α disagrees with the naive oracle for "
        f"{function.name} grouped by {grouping}")


@_settings
@given(measured_mos())
def test_three_way_equivalence(case):
    mo, grouping = case
    for function in _FUNCTIONS:
        _three_way(mo, function, grouping)


@_settings
@given(measured_mos(), st.data())
def test_equivalence_survives_mutation(case, data):
    """Mutating the MO after a kernel α (new fact, plus an extra —
    possibly imprecision-introducing — characterization of an existing
    fact) must invalidate the columnar cache, not poison it: the ladder
    holds again on the replay."""
    mo, grouping = case
    _three_way(mo, SetCount(), grouping)
    builds = metrics.counter("columnar.build")
    before = builds.value

    fact = Fact(fid=len(mo.facts) + 100, ftype="T")
    mo.add_fact(fact)
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        bottom = dimension.bottom_category.members()
        value = (data.draw(st.sampled_from(sorted(bottom, key=repr)))
                 if bottom else dimension.top_value)
        mo.relate(fact, name, value)
    if mo.facts and grouping:
        name = sorted(grouping)[0]
        bottom = mo.dimension(name).bottom_category.members()
        if bottom:
            target = data.draw(st.sampled_from(sorted(mo.facts,
                                                      key=lambda f: f.fid)))
            extra = data.draw(st.sampled_from(sorted(bottom, key=repr)))
            mo.relate(target, name, extra)

    for function in (SetCount(), Sum("Measure")):
        _three_way(mo, function, grouping)
    assert builds.value > before, "mutation must force a columnar rebuild"


@_settings
@given(measured_mos())
def test_columnar_cache_reuses_fresh_layouts(case):
    mo, grouping = case
    spec = make_result_spec()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        aggregate(mo, SetCount(), dict(grouping), spec, strict_types=False)
        hits = metrics.counter("columnar.hit")
        before = hits.value
        aggregate(mo, SetCount(), dict(grouping), spec, strict_types=False)
    assert hits.value > before, "an unmutated replay must hit the cache"


# -- fallback rules ---------------------------------------------------------


def _tiny_mo():
    """Two facts over one 2-value grouping dimension and the integer
    measure dimension; one fact is imprecise (both grouping values)."""
    ctype = CategoryType("GL0", AggregationType.SUM, is_bottom=True)
    gdim = Dimension(DimensionType("G", [ctype], []))
    a = DimensionValue(sid=("G", 0), label="a")
    b = DimensionValue(sid=("G", 1), label="b")
    gdim.add_value("GL0", a)
    gdim.add_value("GL0", b)
    dimensions = {"G": gdim, "Measure": _measure_dimension()}
    schema = FactSchema("T", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions,
                                kind=TimeKind.SNAPSHOT)
    f0, f1 = Fact(fid=0, ftype="T"), Fact(fid=1, ftype="T")
    for fact in (f0, f1):
        mo.add_fact(fact)
    mo.relate(f0, "G", a)
    mo.relate(f1, "G", a)
    mo.relate(f1, "G", b)  # imprecise: two bottom values
    mo.relate(f0, "Measure", _MEASURE_VALUES[2])
    mo.relate(f1, "Measure", _MEASURE_VALUES[3])
    return mo


def test_radix_overflow_falls_back_to_object_path(monkeypatch):
    mo = _tiny_mo()
    monkeypatch.setattr(columnar_module, "MAX_COMPOSED_KEY", 1)
    fallbacks = metrics.counter("columnar.fallback.radix")
    indexed = metrics.counter("aggregate.path.indexed")
    f0, i0 = fallbacks.value, indexed.value
    _three_way(mo, Sum("Measure"), {"G": "GL0"})
    assert fallbacks.value > f0
    assert indexed.value > i0


def test_kernelless_function_counts_a_fallback():
    """Median has no batch kernel: α still forms columnar groups but
    evaluates per group, counting aggregate.kernel.fallback."""
    mo = _tiny_mo()
    fallbacks = metrics.counter("aggregate.kernel.fallback")
    before = fallbacks.value
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        aggregate(mo, Median("Measure"), {"G": "GL0"}, make_result_spec(),
                  strict_types=False)
    assert fallbacks.value > before
    _three_way(mo, Median("Measure"), {"G": "GL0"})


def test_poisoned_measure_column_matches_object_path():
    """A non-numeric surrogate poisons the measure column: the kernel
    path must fall back and raise the same AlgebraError the object and
    naive paths raise."""
    mo = _tiny_mo()
    bad = DimensionValue(sid=("not", "numeric"), label="bad")
    mo.dimension("Measure").add_value("MeasureL0", bad)
    mo.relate(next(iter(mo.facts)), "Measure", bad)
    fallbacks = metrics.counter("aggregate.kernel.fallback")
    before = fallbacks.value
    for kwargs in ({"use_kernel": True}, {"use_kernel": False},
                   {"use_index": False}):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(AlgebraError):
                aggregate(mo, Sum("Measure"), {"G": "GL0"},
                          make_result_spec(), strict_types=False, **kwargs)
    assert fallbacks.value > before


# -- bulk accessors ---------------------------------------------------------


def test_intern_table_ids_of():
    table = InternTable()
    x = table.intern("x")
    y = table.intern("y")
    assert table.ids_of(["y", "missing", "x", "y"]) == [y, None, x, y]
    assert table.ids_of([]) == []


def test_grouping_value_id_array_sentinels():
    mo = _tiny_mo()
    index = mo.rollup_index()
    column, multi = index.grouping_value_id_array("G", "GL0")
    fid0 = index.fact_id(next(f for f in mo.facts if f.fid == 0))
    fid1 = index.fact_id(next(f for f in mo.facts if f.fid == 1))
    assert column[fid0] >= 0  # precise: one value id
    assert column[fid1] == MULTI_VALUED
    assert len(multi[fid1]) == 2
    # the measureless grouping column of the other dimension: a fact
    # related only to ⊤ is uncharacterized at the bottom level
    mcolumn, mmulti = index.grouping_value_id_array("Measure", "MeasureL0")
    assert mmulti == {}
    assert all(vid != MULTI_VALUED for vid in mcolumn)
    assert UNCHARACTERIZED == -1 and MULTI_VALUED == -2


def test_grouping_value_id_array_evicts_on_mutation():
    mo = _tiny_mo()
    index = mo.rollup_index()
    column, _ = index.grouping_value_id_array("G", "GL0")
    again, _ = index.grouping_value_id_array("G", "GL0")
    assert again is column  # cached while fresh
    extra = Fact(fid=7, ftype="T")
    mo.add_fact(extra)
    mo.relate(extra, "G", next(iter(
        mo.dimension("G").bottom_category.members())))
    rebuilt, _ = index.grouping_value_id_array("G", "GL0")
    assert rebuilt is not column
    assert len(rebuilt) >= len(column)


def test_peek_never_builds():
    mo = _tiny_mo()
    store = mo.rollup_index().columnar()
    builds = metrics.counter("columnar.build")
    before = builds.value
    assert store.peek({"G": "GL0"}) is None
    assert builds.value == before
    built = store.grouping({"G": "GL0"})
    assert built is not None
    assert builds.value == before + 1
    assert store.peek({"G": "GL0"}) is built
