"""Failure injection: deliberately corrupted MOs must be caught by the
closure validator (the invariants Theorem 1 relies on are actually
checked, not assumed)."""

import pytest

from repro.algebra import validate_closed
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.dimension import Dimension
from repro.core.errors import InstanceError, SchemaError
from repro.core.values import DimensionValue, Fact


@pytest.fixture()
def mo():
    return case_study_mo(temporal=False)


class TestCorruptedRelations:
    def test_unknown_fact_in_relation(self, mo):
        ghost = Fact(fid=99, ftype="Patient")
        mo.relation("Diagnosis")._entries[(ghost, diagnosis_value(9))] = [
            (None, 1.0)]
        mo.relation("Diagnosis")._by_fact.setdefault(ghost, set()).add(
            diagnosis_value(9))
        report = validate_closed(mo)
        assert not report.ok
        assert any("unknown" in p for p in report.problems)

    def test_value_outside_dimension(self, mo):
        alien = DimensionValue(sid="alien")
        relation = mo.relation("Diagnosis")
        relation._entries[(patient_fact(1), alien)] = [(None, 1.0)]
        relation._by_fact[patient_fact(1)].add(alien)
        report = validate_closed(mo)
        assert not report.ok

    def test_missing_value_detected(self, mo):
        mo.relation("Diagnosis").remove_fact(patient_fact(1))
        report = validate_closed(mo)
        assert not report.ok
        assert any("missing values" in p for p in report.problems)

    def test_wrong_fact_type(self, mo):
        mo._facts.add(Fact(fid=3, ftype="Alien"))
        report = validate_closed(mo)
        assert not report.ok


class TestCorruptedDimensions:
    def test_extra_top_member(self, mo):
        diag = mo.dimension("Diagnosis")
        stray = DimensionValue(sid="stray")
        diag.top_category.add(stray)
        report = validate_closed(mo)
        assert not report.ok
        assert any("⊤ category" in p for p in report.problems)

    def test_orphaned_order_edge(self, mo):
        diag = mo.dimension("Diagnosis")
        ghost1, ghost2 = DimensionValue("g1"), DimensionValue("g2")
        diag.order.add_edge(ghost1, ghost2)
        report = validate_closed(mo)
        assert not report.ok

    def test_downward_order_edge(self, mo):
        diag = mo.dimension("Diagnosis")
        # inject an edge from a Group down to a Family, bypassing the
        # public API's category-order check
        diag.order.add_edge(diagnosis_value(12), diagnosis_value(7))
        report = validate_closed(mo)
        assert not report.ok
        assert any("against the category order" in p
                   for p in report.problems)


class TestRaiseIfFailed:
    def test_clean_report_is_silent(self, mo):
        validate_closed(mo).raise_if_failed()

    def test_dirty_report_raises(self, mo):
        mo.relation("Diagnosis").remove_fact(patient_fact(1))
        with pytest.raises(InstanceError):
            validate_closed(mo).raise_if_failed()
