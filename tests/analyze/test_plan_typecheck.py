"""Tests for static plan typechecking (Theorem 1's closure made
executable) and aggregation-type propagation through plans."""

import pytest

from repro.algebra import SetCount, Sum, characterized_by
from repro.algebra.functions import Avg
from repro.analyze import analyze_plan, typecheck_plan
from repro.core.helpers import make_result_spec
from repro.core.mo import TimeKind
from repro.engine.optimizer import (
    AggregateNode,
    Base,
    DifferenceNode,
    JoinNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
)


def _value_of(mo, dimension_name, category_name):
    return next(iter(mo.dimension(dimension_name).category(category_name)))


def _alpha(child, function=None, grouping=(("DOB", "Year"),),
           strict_types=False):
    return AggregateNode(
        child=child,
        function=function or SetCount(),
        grouping=tuple(grouping),
        result=make_result_spec(name="Result"),
        strict_types=strict_types,
    )


class TestWellTypedPlans:
    def test_base_only(self, snapshot_mo):
        report, types = typecheck_plan(Base(snapshot_mo))
        assert len(report) == 0
        assert types.optimistic is snapshot_mo.schema
        assert types.kind is snapshot_mo.kind
        assert types.base is snapshot_mo

    def test_narrowing_chain_keeps_base(self, snapshot_mo):
        value = _value_of(snapshot_mo, "Residence", "Area")
        plan = ProjectNode(
            child=SelectNode(child=Base(snapshot_mo),
                             predicate=characterized_by("Residence",
                                                        value)),
            dimensions=("Diagnosis", "DOB", "Age"))
        report, types = typecheck_plan(plan)
        assert not report.has_errors
        assert types.base is snapshot_mo
        assert sorted(d.name for d in types.optimistic) == \
            ["Age", "DOB", "Diagnosis"]

    def test_safe_aggregate_no_findings(self, snapshot_mo):
        report, types = typecheck_plan(_alpha(Base(snapshot_mo)))
        assert len(report) == 0, report.render()
        assert "Result" in types.optimistic
        # grouped dimensions survive at the grouping category
        assert "DOB" in types.optimistic

    def test_rename_breaks_verification_chain(self, snapshot_mo):
        plan = RenameNode(child=Base(snapshot_mo), new_fact_type="P2")
        report, types = typecheck_plan(plan)
        assert not report.has_errors
        assert types.base is None
        assert types.optimistic.fact_type == "P2"


class TestBrokenPlans:
    def test_select_unknown_dimension(self, snapshot_mo):
        value = _value_of(snapshot_mo, "Residence", "Area")
        plan = SelectNode(child=Base(snapshot_mo),
                          predicate=characterized_by("Nope", value))
        report, types = typecheck_plan(plan)
        assert report.codes() == ["MD010"]
        assert types.poisoned

    def test_project_unknown_dimension(self, snapshot_mo):
        plan = ProjectNode(child=Base(snapshot_mo),
                           dimensions=("Nope",))
        report, _ = typecheck_plan(plan)
        assert report.codes() == ["MD011"]

    def test_rename_collision(self, snapshot_mo):
        plan = RenameNode(child=Base(snapshot_mo),
                          dimension_map=(("DOB", "Age"),))
        report, _ = typecheck_plan(plan)
        assert report.codes() == ["MD012"]

    def test_union_schema_mismatch(self, snapshot_mo, valid_time_mo):
        narrowed = ProjectNode(child=Base(snapshot_mo),
                               dimensions=("DOB",))
        plan = UnionNode(left=Base(snapshot_mo), right=narrowed)
        report, _ = typecheck_plan(plan)
        assert report.codes() == ["MD013"]

    def test_join_shared_names(self, snapshot_mo):
        plan = JoinNode(left=Base(snapshot_mo), right=Base(snapshot_mo))
        report, _ = typecheck_plan(plan)
        assert report.codes() == ["MD014"]

    def test_temporal_kind_mismatch(self, snapshot_mo, valid_time_mo):
        plan = UnionNode(left=Base(snapshot_mo),
                         right=Base(valid_time_mo))
        report, _ = typecheck_plan(plan)
        assert report.codes() == ["MD015"]
        assert snapshot_mo.kind is TimeKind.SNAPSHOT
        assert valid_time_mo.kind is TimeKind.VALID

    def test_malformed_aggregate(self, snapshot_mo):
        plan = _alpha(Base(snapshot_mo), grouping=(("Nope", "Year"),))
        report, types = typecheck_plan(plan)
        assert report.codes() == ["MD016"]
        assert types.poisoned

    def test_poison_does_not_cascade(self, snapshot_mo):
        """One broken leaf yields one diagnostic, not one per
        ancestor."""
        value = _value_of(snapshot_mo, "Residence", "Area")
        plan = _alpha(ProjectNode(
            child=SelectNode(child=Base(snapshot_mo),
                             predicate=characterized_by("Nope", value)),
            dimensions=("DOB",)))
        report, types = typecheck_plan(plan)
        assert report.codes() == ["MD010"]
        assert types.poisoned


class TestAggregationTypeSafety:
    def test_definite_violation_strict_mode(self, snapshot_mo):
        """SUM over the constant-typed Name dimension: strict mode is a
        guaranteed AggregationTypeError, hence an error finding."""
        plan = _alpha(Base(snapshot_mo), function=Sum("Name"),
                      strict_types=True)
        report, _ = typecheck_plan(plan)
        assert "MD001" in report.codes()
        assert report.has_errors

    def test_definite_violation_permissive_mode(self, snapshot_mo):
        plan = _alpha(Base(snapshot_mo), function=Sum("Name"),
                      strict_types=False)
        report, _ = typecheck_plan(plan)
        assert "MD002" in report.codes()
        assert not report.has_errors

    def test_sum_age_is_type_safe(self, snapshot_mo):
        plan = _alpha(Base(snapshot_mo), function=Sum("Age"))
        report, _ = typecheck_plan(plan)
        assert "MD001" not in report.codes()
        assert "MD002" not in report.codes()

    def test_unsafe_grouping_warns(self, snapshot_mo):
        """Diagnosis is declared non-strict/non-partitioning, so any
        grouping through it is statically non-summarizable."""
        plan = _alpha(Base(snapshot_mo),
                      grouping=(("Diagnosis", "Diagnosis Group"),))
        report, _ = typecheck_plan(plan)
        assert "MD030" in report.codes()
        assert not report.has_errors

    def test_nondistributive_function_warns(self, snapshot_mo):
        plan = _alpha(Base(snapshot_mo), function=Avg("Age"))
        report, _ = typecheck_plan(plan)
        assert "MD030" in report.codes()

    def test_undecidable_verdict_info(self, snapshot_mo):
        """An α above a ρ has no verification chain, so the verdict is
        undecidable and reported as info."""
        plan = _alpha(RenameNode(child=Base(snapshot_mo)))
        report, _ = typecheck_plan(plan)
        assert "MD033" in report.codes()
        assert not report.has_errors

    def test_possible_violation_from_stacked_alphas(self, snapshot_mo):
        """An inner α with an undecided verdict may degrade its result
        bottom to c; an outer SUM over that result is a *possible*
        violation (MD002), not a definite one."""
        inner = _alpha(RenameNode(child=Base(snapshot_mo)),
                       function=Sum("Age"))
        outer = AggregateNode(
            child=inner,
            function=Sum("Result"),
            grouping=(("DOB", "Year"),),
            result=make_result_spec(name="Result2"),
            strict_types=False,
        )
        report, _ = typecheck_plan(outer)
        assert "MD002" in report.codes()
        assert "MD001" not in report.codes()

    def test_analyze_plan_returns_report_only(self, snapshot_mo):
        report = analyze_plan(_alpha(Base(snapshot_mo)))
        assert len(report) == 0
