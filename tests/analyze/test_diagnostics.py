"""Tests for the diagnostic catalogue and report container."""

import re

import pytest

from repro.analyze import CATALOG, AnalysisReport, Diagnostic, Severity
from repro.obs import metrics


class TestCatalog:
    def test_codes_are_stable_format(self):
        for code in CATALOG:
            assert re.fullmatch(r"MD\d{3}", code), code

    def test_code_space_partitioned_by_concern(self):
        """MD00x aggregation types, MD01x plan typing, MD02x
        summarizability/drift, MD03x temporal/uncertainty."""
        for code, (severity, meaning) in CATALOG.items():
            assert isinstance(severity, Severity)
            assert meaning
        assert CATALOG["MD001"][0] is Severity.ERROR
        assert CATALOG["MD002"][0] is Severity.WARNING
        # every plan-typing code is a guaranteed evaluation failure
        for code in ["MD010", "MD011", "MD012", "MD013", "MD014",
                     "MD015", "MD016"]:
            assert CATALOG[code][0] is Severity.ERROR, code

    def test_severity_rank_orders_errors_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < \
            Severity.INFO.rank


class TestReport:
    def test_emit_uses_catalogue_severity(self):
        report = AnalysisReport("test")
        d = report.emit("MD023", "msg", "dimension X")
        assert d.severity is Severity.WARNING
        assert report.codes() == ["MD023"]
        assert not report.has_errors

    def test_emit_severity_override(self):
        report = AnalysisReport("test")
        d = report.emit("MD023", "msg", "dimension X",
                        severity=Severity.ERROR)
        assert d.severity is Severity.ERROR
        assert report.has_errors

    def test_unknown_code_rejected(self):
        report = AnalysisReport("test")
        with pytest.raises(ValueError):
            report.add(Diagnostic(code="MD999", severity=Severity.INFO,
                                  message="m", location="l"))

    def test_add_bumps_obs_counter(self):
        report = AnalysisReport("test")
        before = metrics.counter("analyze.diagnostics.MD025").value
        report.emit("MD025", "msg", "dimension X")
        after = metrics.counter("analyze.diagnostics.MD025").value
        assert after == before + 1

    def test_render_sorts_errors_first(self):
        report = AnalysisReport("test")
        report.emit("MD025", "an info", "a")
        report.emit("MD010", "an error", "b")
        report.emit("MD023", "a warning", "c")
        lines = report.render().splitlines()
        assert "1 error(s), 1 warning(s), 1 info" in lines[0]
        assert "MD010" in lines[1]
        assert "MD023" in lines[2]
        assert "MD025" in lines[3]

    def test_extend_folds_other_report(self):
        first = AnalysisReport("a")
        first.emit("MD025", "m", "l")
        second = AnalysisReport("b")
        second.emit("MD010", "m", "l")
        first.extend(second)
        assert first.codes() == ["MD025", "MD010"]
        assert first.has_errors

    def test_sort_orders_by_code_location_message(self):
        report = AnalysisReport("test")
        report.emit("MD025", "zz", "loc-b")
        report.emit("MD010", "m", "loc-z")
        report.emit("MD025", "aa", "loc-b")
        report.emit("MD023", "m", "loc-a")
        assert report.sort() is report
        keys = [(d.code, d.location, d.message) for d in report]
        assert keys == sorted(keys)
        assert keys[0][0] == "MD010"

    def test_analyzers_return_sorted_reports(self, small_clinical,
                                             snapshot_mo):
        """Regression: analyzer entry points order diagnostics by
        (code, location, message), so repeated runs — and CI logs —
        are byte-stable."""
        from repro.analyze import analyze_schema

        for mo in (small_clinical.mo, snapshot_mo):
            report = analyze_schema(mo)
            keys = [(d.code, d.location, d.message) for d in report]
            assert keys == sorted(keys)

    def test_diagnostic_render_includes_hint(self):
        d = Diagnostic(code="MD023", severity=Severity.WARNING,
                       message="non-strict", location="dimension D",
                       hint="fix it")
        assert "[fix: fix it]" in d.render()
        bare = Diagnostic(code="MD023", severity=Severity.WARNING,
                          message="non-strict", location="dimension D")
        assert "[fix:" not in bare.render()
