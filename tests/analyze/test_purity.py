"""Tests for the AST purity/determinism analyzer.

Every adversarial callable is defined at module level in this file so
``inspect.getsource`` can retrieve it — classes defined via ``exec`` or
a REPL have no source and are (correctly) OPAQUE, which is a different
test below.
"""

import random

from repro.algebra.functions import (
    AggregationFunction,
    Avg,
    Max,
    Median,
    Min,
    SetCount,
    Sum,
)
from repro.algebra.predicates import (
    characterized_by,
    conjunction,
    value_in_category,
)
from repro.analyze import (
    PurityVerdict,
    analyze_callable,
    analyze_function_purity,
    analyze_predicate_purity,
)
from repro.casestudy import diagnosis_value
from repro.obs import metrics

_SHARED_STATE = []


def pure_fn(values):
    total = 0
    for v in values:
        total += v
    return total


def io_fn(values):
    print(values)
    return len(values)


def random_fn(values):
    return random.random() * len(values)


def clock_fn(values):
    import time
    return time.time()


def global_mutation_fn(values):
    _SHARED_STATE.append(values)
    return len(_SHARED_STATE)


def global_stmt_fn(values):
    global _SHARED_STATE
    _SHARED_STATE = list(values)
    return 0


def order_dependent_fn(values):
    acc = 1.0
    for v in values:
        acc -= v
    return acc


class ImpureCount(AggregationFunction):
    name = "impure-count"
    distributive = True

    def apply(self, facts, mo):
        return random.randint(0, len(facts))


class PureUserSum(AggregationFunction):
    name = "pure-user-sum"
    distributive = True

    def apply(self, facts, mo):
        return float(len(facts))

    def combine(self, partials):
        return sum(partials)


class TestAnalyzeCallable:
    def test_pure_function(self):
        report = analyze_callable(pure_fn)
        assert report.verdict is PurityVerdict.PURE
        assert report.findings == ()
        assert report.is_pure

    def test_io_flagged(self):
        report = analyze_callable(io_fn)
        assert report.verdict is PurityVerdict.IMPURE
        assert any(f.category == "io" for f in report.findings)

    def test_randomness_flagged(self):
        report = analyze_callable(random_fn)
        assert any(f.category == "randomness" for f in report.findings)

    def test_clock_read_flagged(self):
        report = analyze_callable(clock_fn)
        assert any(f.category == "time" for f in report.findings)

    def test_free_variable_mutation_flagged(self):
        report = analyze_callable(global_mutation_fn)
        assert any(f.category == "global-mutation"
                   for f in report.findings)

    def test_global_statement_flagged(self):
        report = analyze_callable(global_stmt_fn)
        assert any(f.category == "global-mutation"
                   for f in report.findings)

    def test_order_dependent_fold_flagged(self):
        report = analyze_callable(order_dependent_fn)
        assert any(f.category == "order-dependence"
                   for f in report.findings)

    def test_lambda_is_analyzable(self):
        report = analyze_callable(lambda values: len(values) + 1)
        assert report.verdict is PurityVerdict.PURE

    def test_sourceless_callable_is_opaque(self):
        namespace: dict = {}
        exec("def ghost(values):\n    return 0\n", namespace)
        report = analyze_callable(namespace["ghost"])
        assert report.verdict is PurityVerdict.OPAQUE
        assert any(f.category == "opaque" for f in report.findings)

    def test_builtin_callable_is_opaque(self):
        report = analyze_callable(len)
        assert report.verdict is PurityVerdict.OPAQUE

    def test_summary_mentions_findings(self):
        assert "pure" in analyze_callable(pure_fn).summary()
        assert "randomness" in analyze_callable(random_fn).summary()

    def test_counter_bumps(self):
        counter = metrics.counter("analyze.purity.analyzed")
        before = counter.value
        analyze_callable(pure_fn)
        assert counter.value == before + 1


class TestFunctionPurity:
    def test_builtin_functions_are_pure(self):
        for function in (SetCount(), Sum("Age"), Min("Age"), Max("Age"),
                         Avg("Age"), Median("Age")):
            reports = analyze_function_purity(function)
            assert reports, type(function).__name__
            for method, report in reports.items():
                assert report.verdict is PurityVerdict.PURE, \
                    (type(function).__name__, method, report.summary())

    def test_only_overridden_methods_analyzed(self):
        reports = analyze_function_purity(ImpureCount())
        assert set(reports) == {"apply"}

    def test_impure_apply_flagged(self):
        report = analyze_function_purity(ImpureCount())["apply"]
        assert report.verdict is PurityVerdict.IMPURE
        assert any(f.category == "randomness" for f in report.findings)

    def test_pure_user_function_passes(self):
        reports = analyze_function_purity(PureUserSum())
        assert set(reports) == {"apply", "combine"}
        assert all(r.is_pure for r in reports.values())


class TestPredicatePurity:
    def test_structural_predicates_skipped(self, snapshot_mo):
        simple = characterized_by("Diagnosis", diagnosis_value(4))
        assert analyze_predicate_purity(simple) is None
        both = conjunction(simple, simple)
        assert analyze_predicate_purity(both) is None

    def test_pure_opaque_predicate(self):
        predicate = value_in_category("Age", "Age", lambda v: True)
        report = analyze_predicate_purity(predicate)
        assert report is not None
        assert report.verdict is PurityVerdict.PURE

    def test_impure_opaque_predicate(self):
        predicate = value_in_category(
            "Age", "Age", lambda v: random.random() < 0.5)
        report = analyze_predicate_purity(predicate)
        assert report is not None
        assert report.verdict is PurityVerdict.IMPURE
        assert any(f.category == "randomness" for f in report.findings)
