"""Tests for schema-level static analysis: intensional summarizability,
declaration drift, and the temporal/uncertainty lints."""

import pytest

from repro.algebra import SetCount, Sum
from repro.algebra.functions import Avg
from repro.analyze import (
    StaticVerdict,
    analyze_schema,
    analyze_timeslice,
    intensional_summarizability,
    recorded_valid_time,
    static_summarizability,
)
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import day
from repro.workloads import generate_retail
from repro.workloads.wide import WideConfig, generate_wide


def _two_level(name="D", declared_strict=None, declared_partitioning=None,
               bottom_aggtype=AggregationType.SUM,
               top_aggtype=AggregationType.CONSTANT):
    dtype = DimensionType(
        name,
        [CategoryType("Low", bottom_aggtype, is_bottom=True),
         CategoryType("High", top_aggtype)],
        [("Low", "High")],
        declared_strict=declared_strict,
        declared_partitioning=declared_partitioning)
    return Dimension(dtype)


def _mo_with(dimension, n_facts=2, link=True):
    """An MO over one two-level dimension, facts at v0, one parent p."""
    low = [DimensionValue(sid=("low", i)) for i in range(2)]
    high = DimensionValue(sid=("high", 0))
    for value in low:
        dimension.add_value("Low", value)
    dimension.add_value("High", high)
    if link:
        for value in low:
            dimension.add_edge(value, high)
    name = dimension.dtype.name
    schema = FactSchema("T", [dimension.dtype])
    mo = MultidimensionalObject(schema=schema, dimensions={name: dimension})
    for i in range(n_facts):
        fact = Fact(fid=i, ftype="T")
        mo.add_fact(fact)
        mo.relate(fact, name, low[i % len(low)])
    return mo


class TestIntensional:
    def test_non_distributive_is_unsafe(self, snapshot_mo):
        verdict = intensional_summarizability(
            snapshot_mo.schema, {"Residence": "County"}, Avg("Age"))
        assert verdict is StaticVerdict.UNSAFE

    def test_declared_false_is_unsafe(self, snapshot_mo):
        verdict = intensional_summarizability(
            snapshot_mo.schema, {"Diagnosis": "Diagnosis Group"},
            SetCount())
        assert verdict is StaticVerdict.UNSAFE

    def test_declared_true_is_safe(self, snapshot_mo):
        verdict = intensional_summarizability(
            snapshot_mo.schema, {"Name": "Name"}, SetCount())
        assert verdict is StaticVerdict.SAFE

    def test_undeclared_is_unknown(self):
        mo = _mo_with(_two_level())
        verdict = intensional_summarizability(
            mo.schema, {"D": "High"}, SetCount())
        assert verdict is StaticVerdict.UNKNOWN


class TestStaticSummarizability:
    def test_safe_confirmed_against_extension(self):
        mo = _mo_with(_two_level(declared_strict=True,
                                 declared_partitioning=True))
        verdict = static_summarizability(mo, {"D": "High"}, SetCount())
        assert verdict is StaticVerdict.SAFE

    def test_drifted_declaration_demoted_to_unknown(self):
        # declared strict/partitioning, but the High value is orphaned:
        # the extensional confirmation must catch the lie
        mo = _mo_with(_two_level(declared_strict=True,
                                 declared_partitioning=True), link=False)
        verdict = static_summarizability(mo, {"D": "High"}, SetCount())
        assert verdict is StaticVerdict.UNKNOWN

    def test_dob_sum_age_is_safe(self, snapshot_mo):
        verdict = static_summarizability(
            snapshot_mo, {"DOB": "Year"}, Sum("Age"))
        assert verdict is StaticVerdict.SAFE

    def test_residence_demoted_by_fact_paths(self, snapshot_mo):
        """Example 11: Residence is declared strict+partitioning (the
        hierarchy is), but patients moved between areas, so the untimed
        fact paths are non-strict — the extensional confirmation must
        demote SAFE to UNKNOWN rather than vouch for double counting."""
        verdict = static_summarizability(
            snapshot_mo, {"Residence": "County"}, Sum("Age"))
        assert verdict is StaticVerdict.UNKNOWN


class TestCaseStudyAnalysis:
    """Acceptance: known-real warnings on the case study, zero errors."""

    def test_no_false_errors(self, valid_time_mo):
        report = analyze_schema(valid_time_mo)
        assert not report.has_errors, report.render()

    def test_diagnosis_non_strict_and_non_partitioning(self, valid_time_mo):
        report = analyze_schema(valid_time_mo)
        diag = [d for d in report
                if d.location == "dimension Diagnosis"]
        codes = [d.code for d in diag]
        assert "MD023" in codes  # Example 6: value 5 in families 4 and 9
        assert "MD024" in codes  # families 7/8 have no group parent

    def test_residence_untimed_fact_paths(self, valid_time_mo):
        """Example 11: patients move between areas over valid time, so
        the untimed fact paths are non-strict — a real warning."""
        report = analyze_schema(valid_time_mo)
        residence = [d for d in report
                     if d.location == "dimension Residence"]
        assert "MD028" in [d.code for d in residence]

    def test_no_drift_diagnostics(self, valid_time_mo):
        """The case study's declarations match its extension."""
        report = analyze_schema(valid_time_mo)
        assert "MD020" not in report.codes()
        assert "MD021" not in report.codes()

    def test_workloads_are_clean(self):
        assert len(analyze_schema(generate_retail().mo)) == 0
        wide = generate_wide(WideConfig(n_facts=30, n_flat_dimensions=10))
        assert len(analyze_schema(wide.mo)) == 0


class TestDriftDiagnostics:
    def test_declared_strict_but_not(self):
        dimension = _two_level(declared_strict=True,
                               declared_partitioning=True)
        mo = _mo_with(dimension)
        extra = DimensionValue(sid=("high", 1))
        dimension.add_value("High", extra)
        low0 = next(iter(dimension.category("Low")))
        dimension.add_edge(low0, extra)  # second parent: non-strict
        report = analyze_schema(mo)
        assert "MD020" in report.codes()

    def test_declared_partitioning_but_orphan(self):
        mo = _mo_with(_two_level(declared_strict=True,
                                 declared_partitioning=True), link=False)
        report = analyze_schema(mo)
        assert "MD021" in report.codes()

    def test_over_conservative_declaration(self):
        mo = _mo_with(_two_level(declared_strict=False,
                                 declared_partitioning=False))
        report = analyze_schema(mo)
        assert report.codes().count("MD022") == 2

    def test_undeclared_gets_info(self):
        mo = _mo_with(_two_level())
        report = analyze_schema(mo)
        assert "MD025" in report.codes()

    def test_aggtype_inversion(self):
        # bottom CONSTANT but parent SUM: coarser data claims more
        dimension = _two_level(bottom_aggtype=AggregationType.CONSTANT,
                               top_aggtype=AggregationType.SUM,
                               declared_strict=True,
                               declared_partitioning=True)
        mo = _mo_with(dimension)
        report = analyze_schema(mo)
        assert "MD026" in report.codes()

    def test_schema_only_analysis(self):
        """A bare FactSchema (no data) still gets the intensional
        lints."""
        dimension = _two_level(bottom_aggtype=AggregationType.CONSTANT,
                               top_aggtype=AggregationType.SUM)
        schema = FactSchema("T", [dimension.dtype])
        report = analyze_schema(schema)
        assert "MD025" in report.codes()
        assert "MD026" in report.codes()
        assert not report.has_errors


class TestUncertaintyLint:
    def test_mass_above_one_flagged(self):
        dimension = _two_level(declared_strict=True,
                               declared_partitioning=True)
        mo = _mo_with(dimension, n_facts=1)
        fact = next(iter(mo.facts))
        low1 = DimensionValue(sid=("low", 1))
        mo.relate(fact, "D", low1, prob=0.8)  # fact already at p=1.0
        report = analyze_schema(mo)
        assert "MD032" in report.codes()

    def test_certain_facts_not_flagged(self, valid_time_mo):
        assert "MD032" not in analyze_schema(valid_time_mo).codes()


class TestTimesliceLint:
    def _bounded_mo(self):
        from repro.core.mo import TimeKind
        from repro.temporal.timeset import TimeSet

        dimension = _two_level(declared_strict=True,
                               declared_partitioning=True)
        low = DimensionValue(sid=("low", 0))
        high = DimensionValue(sid=("high", 0))
        span = TimeSet.interval(day(1980, 1, 1), day(1990, 12, 31))
        dimension.add_value("Low", low, time=span)
        dimension.add_value("High", high, time=span)
        dimension.add_edge(low, high, time=span)
        schema = FactSchema("T", [dimension.dtype])
        mo = MultidimensionalObject(schema=schema,
                                    dimensions={"D": dimension},
                                    kind=TimeKind.VALID)
        fact = Fact(fid=0, ftype="T")
        mo.add_fact(fact)
        mo.relate(fact, "D", low, time=span)
        return mo

    def test_slice_outside_recorded_span(self):
        report = analyze_timeslice(self._bounded_mo(), day(2050, 1, 1))
        assert report.codes() == ["MD031"]

    def test_slice_inside_recorded_span(self):
        mo = self._bounded_mo()
        span = recorded_valid_time(mo)
        assert not span.is_empty() and not span.is_always()
        report = analyze_timeslice(mo, span.min())
        assert len(report) == 0

    def test_always_span_never_flagged(self, valid_time_mo):
        """The case study has open-ended annotations, so its recorded
        span is ALWAYS and the lint stays quiet at any chronon."""
        report = analyze_timeslice(valid_time_mo, day(2050, 1, 1))
        assert len(report) == 0
