"""Tests for tools/lint_invariants.py — the engine-invariant AST lint."""

import ast
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
TOOLS = REPO / "tools"

sys.path.insert(0, str(TOOLS))

import lint_invariants  # noqa: E402


def _check_pairing(source: str):
    return lint_invariants.check_version_log_pairing(
        TOOLS / "fake.py", ast.parse(source))


class TestVersionLogPairing:
    def test_paired_mutator_is_clean(self):
        problems = _check_pairing("""
class AnnotatedOrder:
    def add_node(self, node):
        if node not in self._nodes:
            self._nodes.add(node)
            self._version += 1
            self._log.record(self._version, ("node", node))
""")
        assert problems == []

    def test_bump_without_record_flagged(self):
        problems = _check_pairing("""
class FactDimensionRelation:
    def add(self, fact, value):
        self._entries[fact] = value
        self._version += 1
""")
        assert len(problems) == 1
        assert "never records a change-log entry" in problems[0]

    def test_record_without_bump_flagged(self):
        problems = _check_pairing("""
class MultidimensionalObject:
    def add_fact(self, fact):
        self._fact_log.record(self._facts_version, ("add", fact))
""")
        assert len(problems) == 1
        assert "never bumps a version counter" in problems[0]

    def test_unbalanced_counts_flagged(self):
        problems = _check_pairing("""
class AnnotatedOrder:
    def add_edge(self, child, parent):
        self._version += 1
        self._version += 1
        self._log.record(self._version, ("edge", child, parent))
""")
        assert any("exactly one log entry" in p for p in problems)

    def test_other_classes_ignored(self):
        problems = _check_pairing("""
class SomethingElse:
    def mutate(self):
        self._version += 1
""")
        assert problems == []


class TestObsNamesDocumented:
    def _check(self, source, doc_text):
        return lint_invariants.check_obs_names_documented(
            TOOLS / "fake.py", ast.parse(source), doc_text)

    def test_documented_literal_is_clean(self):
        source = '_C = metrics.counter("layer.thing")'
        assert self._check(source, "the `layer.thing` counter") == []

    def test_undocumented_literal_flagged(self):
        source = '_C = metrics.counter("layer.thing")'
        problems = self._check(source, "nothing here")
        assert len(problems) == 1
        assert "layer.thing" in problems[0]

    def test_dynamic_names_skipped(self):
        source = 'metrics.counter(f"analyze.diagnostics.{code}")'
        assert self._check(source, "nothing here") == []

    def test_span_names_checked(self):
        source = 'with trace.span("layer.op"):\n    pass'
        assert len(self._check(source, "")) == 1


class TestKernelPairing:
    def _check(self, source):
        classes = lint_invariants._collect_classes(
            [(TOOLS / "fake.py", ast.parse(source))])
        return lint_invariants.check_kernel_pairing(classes)

    BASE = """
class AggregationFunction:
    def apply(self, facts, mo): ...
    def batch_apply(self, keys, measures): ...
"""

    def test_paired_overrides_are_clean(self):
        problems = self._check(self.BASE + """
class Sum(AggregationFunction):
    def apply(self, facts, mo): ...
    def batch_apply(self, keys, measures): ...
""")
        assert problems == []

    def test_apply_only_override_is_clean(self):
        # no kernel anywhere below the base: the object path is the
        # only path, nothing can disagree
        problems = self._check(self.BASE + """
class Median(AggregationFunction):
    def apply(self, facts, mo): ...
""")
        assert problems == []

    def test_kernel_without_apply_flagged(self):
        problems = self._check(self.BASE + """
class Fast(AggregationFunction):
    def batch_apply(self, keys, measures): ...
""")
        assert len(problems) == 1
        assert "Fast" in problems[0]

    def test_apply_override_under_inherited_kernel_flagged(self):
        problems = self._check(self.BASE + """
class Sum(AggregationFunction):
    def apply(self, facts, mo): ...
    def batch_apply(self, keys, measures): ...

class TweakedSum(Sum):
    def apply(self, facts, mo): ...
""")
        assert len(problems) == 1
        assert "TweakedSum" in problems[0]

    def test_unrelated_classes_ignored(self):
        problems = self._check("""
class Other:
    def batch_apply(self, keys, measures): ...
""")
        assert problems == []


class TestCatalogDocumented:
    def test_catalog_codes_in_analysis_doc(self):
        problems = lint_invariants.check_catalog_documented()
        assert problems == [], problems


class TestVersionVectorCompleteness:
    def _check(self, source):
        return lint_invariants.check_version_vector_completeness(
            [(TOOLS / "fake.py", ast.parse(source))])

    def test_complete_stamp_is_clean(self):
        problems = self._check("""
def version_vector(mo):
    return (mo.facts_version, tuple(
        (name, mo.relation(name).version,
         mo.dimension(name).order.version)
        for name in mo.dimension_names))
""")
        assert problems == []

    def test_missing_counter_flagged(self):
        problems = self._check("""
def _version_stamp(self):
    return (self._mo.facts_version, tuple(
        (name, self._mo.relation(name).version)
        for name in self._mo.dimension_names))
""")
        assert len(problems) == 1
        assert "order" in problems[0]

    def test_no_stamp_function_flagged(self):
        problems = self._check("def unrelated(): pass")
        assert len(problems) == 1
        assert "staleness stamp" in problems[0]

    def test_repo_stamps_are_complete(self):
        forest = [(path, ast.parse(path.read_text(encoding="utf-8")))
                  for path in sorted((REPO / "src").rglob("*.py"))]
        assert lint_invariants.check_version_vector_completeness(
            forest) == []


def test_lint_passes_on_this_repo():
    result = subprocess.run(
        [sys.executable, str(TOOLS / "lint_invariants.py")],
        capture_output=True, text=True, cwd=REPO)
    assert result.returncode == 0, result.stdout + result.stderr


class TestLockDiscipline:
    RULE = lint_invariants.LockRule(
        "fake.py",
        locks=frozenset({"_TOKEN_LOCK", "self._lock"}),
        guarded=frozenset({"_TOKENS", "self._entries"}),
        atomic=frozenset({"_TOKENS.append"}))

    def _check(self, source, rule=None):
        return lint_invariants.check_lock_discipline(
            Path("fake.py"), ast.parse(source), rule or self.RULE)

    def test_locked_mutation_is_clean(self):
        assert self._check("""
def store(key, value):
    with _TOKEN_LOCK:
        _TOKENS[key] = value
        _TOKENS.pop(None, None)
""") == []

    def test_unlocked_assignment_flagged(self):
        problems = self._check("""
def store(key, value):
    _TOKENS[key] = value
""")
        assert len(problems) == 1
        assert "_TOKENS" in problems[0]
        assert "outside" in problems[0]

    def test_unlocked_mutator_call_flagged(self):
        problems = self._check("""
def evict(key):
    _TOKENS.pop(key, None)
""")
        assert len(problems) == 1
        assert "_TOKENS.pop" in problems[0]

    def test_unlocked_rmw_in_loop_flagged(self):
        # the seeded-violation shape the rule exists for: check-then-set
        # without the lock, inside control flow
        problems = self._check("""
def register(key, value):
    if key not in _TOKENS:
        _TOKENS[key] = value
    return _TOKENS[key]
""")
        assert len(problems) == 1

    def test_self_attr_lock_and_guard(self):
        assert self._check("""
class Cache:
    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
""") == []
        problems = self._check("""
class Cache:
    def put(self, key, value):
        self._entries[key] = value
""")
        assert len(problems) == 1
        assert "self._entries" in problems[0]

    def test_init_is_exempt(self):
        assert self._check("""
class Cache:
    def __init__(self):
        self._entries = {}
""") == []

    def test_locked_suffix_helper_is_exempt(self):
        assert self._check("""
class Cache:
    def _drop_locked(self, key):
        self._entries.pop(key, None)
""") == []

    def test_atomic_exemption(self):
        assert self._check("""
def record(item):
    _TOKENS.append(item)
""") == []
        # the exemption is per-method, not per-name
        problems = self._check("""
def record(item):
    _TOKENS.extend([item])
""")
        assert len(problems) == 1

    def test_nested_function_does_not_inherit_lock(self):
        # the closure may run after the with-block exits
        problems = self._check("""
def outer():
    with _TOKEN_LOCK:
        def later():
            _TOKENS.clear()
        return later
""")
        assert len(problems) == 1
        assert "later" in problems[0]

    def test_module_level_init_is_exempt(self):
        # import-time assignment: no other thread holds a reference yet
        assert self._check("_TOKENS = {}") == []

    def test_rule_targets_exist_in_repo(self):
        """Every LOCK_RULES file (and its lock/guard names) exists —
        a rename must update the config, not silently skip it."""
        for rule in lint_invariants.LOCK_RULES:
            path = REPO / "src" / "repro" / rule.file
            assert path.is_file(), rule.file
            text = path.read_text(encoding="utf-8")
            for name in sorted(rule.locks | rule.guarded):
                assert name.replace("self.", "") in text, (rule.file, name)

    def test_seeded_violation_fails_on_real_rule(self):
        """The plan_fingerprint rule catches an unlocked token-table
        write of exactly the shape the real module guards."""
        rule = next(r for r in lint_invariants.LOCK_RULES
                    if r.file == "engine/plan_fingerprint.py")
        problems = self._check("""
def mo_token(mo):
    token = _TOKENS.get(mo)
    if token is None:
        _TOKENS[mo] = token = 7
    return token
""", rule)
        assert len(problems) == 1
        assert "_TOKEN_LOCK" in problems[0]

    def test_repo_satisfies_lock_discipline(self):
        src = REPO / "src" / "repro"
        for rule in lint_invariants.LOCK_RULES:
            path = src / rule.file
            tree = ast.parse(path.read_text(encoding="utf-8"))
            assert lint_invariants.check_lock_discipline(
                path, tree, rule) == []
