"""Property tests for analyzer soundness.

The contract under test (docs/ANALYSIS.md): a ``SAFE`` verdict from
:func:`repro.analyze.static_summarizability` guarantees the extensional
Lenz–Shoshani check passes — for any MO, any declarations (truthful,
missing, or lies), any grouping.  And the engine's static fast path
(declaration-vouched verdicts inside ``RollupIndex.summarizability``)
must be verdict-equivalent to the full extensional check."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra import SetCount
from repro.analyze import StaticVerdict, static_summarizability
from repro.core.properties import check_summarizability
from tests.strategies import small_mos

declaration = st.sampled_from([None, True, False])


@st.composite
def declared_mos(draw):
    """A random small MO whose dimension types carry random
    declarations — including *false* ones, which the extensional
    confirmation must catch."""
    mo = draw(small_mos())
    for name in mo.dimension_names:
        dtype = mo.dimension(name).dtype
        dtype._declared_strict = draw(declaration)
        dtype._declared_partitioning = draw(declaration)
    return mo


@st.composite
def groupings(draw, mo):
    grouping = {}
    for name in mo.dimension_names:
        if draw(st.booleans()):
            categories = [c.name for c in
                          mo.dimension(name).dtype.category_types()
                          if not c.is_top]
            if categories:
                grouping[name] = draw(st.sampled_from(categories))
    return grouping


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_static_safe_implies_extensional_check_passes(data):
    mo = data.draw(declared_mos())
    grouping = data.draw(groupings(mo))
    verdict = static_summarizability(mo, grouping, SetCount())
    if verdict is StaticVerdict.SAFE:
        check = check_summarizability(mo, grouping,
                                      function_distributive=True)
        assert check.summarizable, (grouping, check)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_accepted_plans_execute(data):
    """A plan the analyzer passes without error findings evaluates
    without schema errors (Theorem 1's closure, both directions)."""
    import warnings

    from repro.algebra import characterized_by
    from repro.analyze import analyze_plan
    from repro.core.helpers import make_result_spec
    from repro.engine.optimizer import (AggregateNode, Base, ProjectNode,
                                        SelectNode, evaluate)

    mo = data.draw(declared_mos())
    plan = Base(mo)
    names = list(mo.dimension_names)
    if data.draw(st.booleans()):
        name = data.draw(st.sampled_from(names))
        values = sorted(mo.dimension(name).order.nodes, key=repr)
        plan = SelectNode(child=plan, predicate=characterized_by(
            name, data.draw(st.sampled_from(values))))
    if data.draw(st.booleans()) and len(names) > 1:
        keep = data.draw(st.lists(st.sampled_from(names), min_size=1,
                                  unique=True))
        plan = ProjectNode(child=plan, dimensions=tuple(keep))
        names = keep
    grouping = data.draw(groupings(mo))
    grouping = {n: c for n, c in grouping.items() if n in names}
    plan = AggregateNode(child=plan, function=SetCount(),
                         grouping=tuple(sorted(grouping.items())),
                         result=make_result_spec(name="Result"),
                         strict_types=False)
    report = analyze_plan(plan)
    if not report.has_errors:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = evaluate(plan)
        assert "Result" in result.schema


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_fast_path_verdict_equals_full_check(data):
    """The rollup index's declaration-gated fast path must return the
    same verdict the naive extensional check computes — field by
    field, for truthful and lying declarations alike."""
    mo = data.draw(declared_mos())
    grouping = data.draw(groupings(mo))
    indexed = mo.rollup_index().summarizability(grouping,
                                                distributive=True)
    naive = check_summarizability(mo, grouping,
                                  function_distributive=True)
    assert indexed.function_distributive == naive.function_distributive
    assert indexed.paths_strict == naive.paths_strict
    assert indexed.hierarchies_partitioning == \
        naive.hierarchies_partitioning
