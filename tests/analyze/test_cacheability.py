"""Tests for the static result-cache analyzer (``MD060``)."""

from repro.algebra import characterized_by
from repro.algebra.functions import AggregationFunction
from repro.algebra.predicates import value_in_category
from repro.analyze import analyze_cacheability
from repro.casestudy import diagnosis_value
from repro.engine import Base, Query, SelectNode, fingerprint


class TestAnalyzeCacheability:
    def test_cacheable_plan_reports_clean(self, snapshot_mo):
        plan = Query(snapshot_mo).rollup(
            "Diagnosis", "Diagnosis Group").to_plan()
        assert len(analyze_cacheability(plan)) == 0

    def test_opaque_predicate_reports_md060(self, snapshot_mo):
        plan = SelectNode(
            Base(snapshot_mo),
            value_in_category("Age", "Age", lambda v: True))
        report = analyze_cacheability(plan)
        assert report.codes() == ["MD060"]
        (finding,) = report
        assert "opaque" in finding.message
        assert "query.cache.bypass" in (finding.hint or "")

    def test_pure_opaque_predicate_notes_conservative(self, snapshot_mo):
        """MD060's sharper story: a pure-but-unserializable predicate
        is a *conservative* bypass, and the message says so."""
        plan = SelectNode(
            Base(snapshot_mo),
            value_in_category("Age", "Age", lambda v: True))
        (finding,) = analyze_cacheability(plan)
        assert "its callable is pure" in finding.message
        assert "conservative" in finding.message

    def test_impure_opaque_predicate_notes_unsound(self, snapshot_mo):
        import random

        plan = SelectNode(
            Base(snapshot_mo),
            value_in_category("Age", "Age",
                              lambda v: random.random() < 0.5))
        (finding,) = analyze_cacheability(plan)
        assert "impure" in finding.message
        assert "random" in finding.message
        assert "unsound" in finding.message

    def test_user_defined_function_reports_md060(self, snapshot_mo):
        class Custom(AggregationFunction):
            name = "custom"

            def apply(self, facts, mo):
                return 0

        plan = Query(snapshot_mo).rollup(
            "Diagnosis", "Diagnosis Group").to_plan(Custom())
        report = analyze_cacheability(plan)
        assert report.codes() == ["MD060"]

    def test_analyzer_agrees_with_the_canonicalizer(self, snapshot_mo):
        """Shared-canonicalizer guarantee: a clean report means
        :func:`fingerprint` succeeds; a finding means it raises."""
        from repro.engine import Unfingerprintable

        plans = [
            Query(snapshot_mo).rollup(
                "Diagnosis", "Diagnosis Group").to_plan(),
            SelectNode(Base(snapshot_mo),
                       characterized_by("Diagnosis", diagnosis_value(4))),
            SelectNode(Base(snapshot_mo),
                       value_in_category("Age", "Age", lambda v: True)),
        ]
        for plan in plans:
            report = analyze_cacheability(plan)
            try:
                fingerprint(plan)
            except Unfingerprintable:
                assert len(report) == 1
            else:
                assert len(report) == 0
