"""Tests for the static shard-safety analyzer (``MD07x``).

Adversarial ``AggregationFunction`` subclasses live at module level in
this file so the AST classifier can read their source.  The soundness
discipline under test: **no lying subclass is ever classified
DISTRIBUTIVE** — a combine that fails the extensional
merge-equivalence check is demoted to UNKNOWN, never trusted.
"""

import random

from repro.algebra.functions import (
    AggregationFunction,
    Avg,
    CountDim,
    Max,
    Median,
    Min,
    SetCount,
    Sum,
    SumProduct,
)
from repro.algebra.predicates import value_in_category
from repro.analyze import (
    FunctionClass,
    ShardVerdict,
    analyze_shardability,
    classify_function,
    merge_equivalence_check,
    shardability_of,
)
from repro.engine import Base, ProjectNode, Query, SelectNode
from repro.engine.optimizer import (
    DifferenceNode,
    JoinNode,
    RenameNode,
    UnionNode,
)
from repro.obs import metrics


class LyingSum(AggregationFunction):
    """Claims distributivity, and its combine LOOKS associative —
    but subtracts one per merge, so partition-and-merge drifts."""

    name = "lying-sum"
    distributive = True

    def apply(self, facts, mo):
        return float(len(facts))

    def combine(self, partials):
        return sum(partials) - 1.0


class GoodUserSum(AggregationFunction):
    """A well-behaved user subclass: genuinely distributive."""

    name = "good-user-sum"
    distributive = True

    def apply(self, facts, mo):
        return float(len(facts))

    def combine(self, partials):
        return sum(partials)


class ImpureSum(AggregationFunction):
    """Distributive-shaped, but the combine is nondeterministic."""

    name = "impure-sum"
    distributive = True

    def apply(self, facts, mo):
        return float(len(facts))

    def combine(self, partials):
        return sum(partials) + random.random() * 0.0


class QuietHolistic(AggregationFunction):
    """No combine, no accumulator shape: holistic."""

    name = "quiet-holistic"
    distributive = False

    def apply(self, facts, mo):
        ordered = sorted(len(repr(f)) for f in facts)
        return float(ordered[len(ordered) // 2]) if ordered else 0.0


def _rollup_plan(mo, function=None):
    return Query(mo).rollup("DOB", "Year").to_plan(function)


class TestClassifyFunction:
    def test_builtin_distributive_functions(self):
        for function in (SetCount(), CountDim("Diagnosis"), Sum("Age"),
                         Min("Age"), Max("Age"),
                         SumProduct("Age", "Age")):
            c = classify_function(function)
            assert c.function_class is FunctionClass.DISTRIBUTIVE, \
                (type(function).__name__, c.notes)
            assert c.merge_check is True, type(function).__name__

    def test_avg_is_algebraic(self):
        c = classify_function(Avg("Age"))
        assert c.function_class is FunctionClass.ALGEBRAIC

    def test_median_is_holistic(self):
        c = classify_function(Median("Age"))
        assert c.function_class is FunctionClass.HOLISTIC

    def test_lying_combine_demoted_to_unknown(self):
        c = classify_function(LyingSum())
        assert c.function_class is FunctionClass.UNKNOWN
        assert c.merge_check is False
        assert merge_equivalence_check(LyingSum()) is False

    def test_lying_combine_bumps_refutation_counter(self):
        counter = metrics.counter(
            "analyze.shardability.merge_check_failed")
        before = counter.value

        class FreshLiar(LyingSum):
            name = "fresh-liar"

            def combine(self, partials):
                return sum(partials) - 2.0

        classify_function(FreshLiar())
        assert counter.value == before + 1

    def test_good_user_subclass_is_distributive(self):
        c = classify_function(GoodUserSum())
        assert c.function_class is FunctionClass.DISTRIBUTIVE
        assert c.merge_check is True
        assert merge_equivalence_check(GoodUserSum()) is True

    def test_impure_combine_never_distributive(self):
        c = classify_function(ImpureSum())
        assert c.function_class is FunctionClass.UNKNOWN

    def test_user_holistic_stays_holistic(self):
        c = classify_function(QuietHolistic())
        assert c.function_class is FunctionClass.HOLISTIC

    def test_declared_attribute_is_never_trusted(self):
        """``distributive = True`` on the class is a *claim*; the
        classifier works from structure + extension only."""
        assert LyingSum.distributive is True
        assert classify_function(LyingSum()).function_class \
            is not FunctionClass.DISTRIBUTIVE

    def test_classification_is_cached(self):
        counter = metrics.counter("analyze.shardability.classified")
        classify_function(SetCount())          # warm
        before = counter.value
        classify_function(SetCount())
        assert counter.value == before


class TestShardabilityOf:
    def test_distributive_safe_rollup_is_shardable(self, snapshot_mo):
        verdict, report = shardability_of(_rollup_plan(snapshot_mo))
        assert verdict is ShardVerdict.SHARDABLE
        assert len(report) == 0

    def test_algebraic_function_shardable_with_md071(self, snapshot_mo):
        verdict, report = shardability_of(
            _rollup_plan(snapshot_mo, Avg("Age")))
        assert verdict is ShardVerdict.SHARDABLE
        assert report.codes() == ["MD071"]

    def test_holistic_function_md070(self, snapshot_mo):
        verdict, report = shardability_of(
            _rollup_plan(snapshot_mo, Median("Age")))
        assert verdict is ShardVerdict.NOT_SHARDABLE
        assert "MD070" in report.codes()

    def test_unsafe_grouping_md072(self, snapshot_mo):
        plan = Query(snapshot_mo).rollup(
            "Diagnosis", "Diagnosis Family").to_plan()
        verdict, report = shardability_of(plan)
        assert verdict is ShardVerdict.NOT_SHARDABLE
        assert "MD072" in report.codes()

    def test_lying_combine_md076(self, snapshot_mo):
        verdict, report = shardability_of(
            _rollup_plan(snapshot_mo, LyingSum()))
        assert verdict is ShardVerdict.UNKNOWN
        assert "MD076" in report.codes()

    def test_difference_poisons_md073(self, snapshot_mo):
        plan = DifferenceNode(Base(snapshot_mo), Base(snapshot_mo))
        verdict, report = shardability_of(plan)
        assert verdict is ShardVerdict.NOT_SHARDABLE
        assert "MD073" in report.codes()

    def test_join_poisons_md073(self, snapshot_mo, small_retail):
        plan = JoinNode(Base(snapshot_mo), Base(small_retail.mo))
        verdict, report = shardability_of(plan)
        assert verdict is ShardVerdict.NOT_SHARDABLE
        assert "MD073" in report.codes()

    def test_union_preserves_shardability(self, snapshot_mo):
        plan = UnionNode(Base(snapshot_mo), Base(snapshot_mo))
        verdict, _report = shardability_of(plan)
        assert verdict is ShardVerdict.SHARDABLE

    def test_select_project_preserve_shardability(self, snapshot_mo):
        plan = ProjectNode(
            SelectNode(Base(snapshot_mo),
                       value_in_category("Age", "Age", lambda v: True)),
            ("Diagnosis", "Age"))
        verdict, report = shardability_of(plan)
        assert verdict is ShardVerdict.SHARDABLE
        assert report.codes() == []

    def test_impure_predicate_md074(self, snapshot_mo):
        plan = SelectNode(
            Base(snapshot_mo),
            value_in_category("Age", "Age",
                              lambda v: random.random() < 0.5))
        verdict, report = shardability_of(plan)
        assert verdict is ShardVerdict.UNKNOWN
        assert "MD074" in report.codes()

    def test_rename_keeps_verdict(self, snapshot_mo):
        plan = RenameNode(Base(snapshot_mo), new_fact_type="Renamed")
        verdict, _report = shardability_of(plan)
        assert verdict is ShardVerdict.SHARDABLE

    def test_grouping_after_rename_is_unverifiable(self, snapshot_mo):
        inner = _rollup_plan(snapshot_mo)
        plan = type(inner)(
            child=RenameNode(inner.child, new_fact_type="Renamed"),
            function=inner.function, grouping=inner.grouping,
            result=inner.result, strict_types=inner.strict_types)
        verdict, report = shardability_of(plan)
        assert verdict is ShardVerdict.UNKNOWN
        assert "MD072" in report.codes()

    def test_report_is_sorted(self, snapshot_mo):
        plan = Query(snapshot_mo).rollup(
            "Diagnosis", "Diagnosis Family").to_plan(Median("Age"))
        _verdict, report = shardability_of(plan)
        keys = [(d.code, d.location, d.message) for d in report]
        assert keys == sorted(keys)

    def test_analyze_shardability_returns_report(self, snapshot_mo):
        report = analyze_shardability(_rollup_plan(snapshot_mo))
        assert len(report) == 0
