"""Property tests for shard-safety soundness.

Two contracts (docs/ANALYSIS.md, ROADMAP sharding item):

1. **Every static DISTRIBUTIVE is merge-check backed.**  For the six
   standard functions and for an adversarial hypothesis-driven family
   of subclasses whose ``combine`` *looks* associative but is correct
   only for one parameter value, ``classify_function`` answers
   DISTRIBUTIVE exactly when the extensional merge-equivalence check
   passes — a lying combine is demoted to UNKNOWN, never SAFE.

2. **SHARDABLE verdicts agree with the reference executor.**  When
   :func:`repro.analyze.shardability_of` answers SHARDABLE for an α
   over a random MO, :func:`repro.algebra.aggregate.aggregate_sharded`
   returns identical results for every shard count — partitioning the
   fact set is invisible exactly where the analyzer says it is.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra.aggregate import aggregate_sharded
from repro.algebra.functions import (
    AggregationFunction,
    Avg,
    CountDim,
    Max,
    Min,
    SetCount,
    Sum,
    SumProduct,
    measures_of,
)
from repro.analyze import (
    FunctionClass,
    ShardVerdict,
    classify_function,
    merge_equivalence_check,
    shardability_of,
)
from repro.core.helpers import make_result_spec
from repro.engine.optimizer import AggregateNode, Base
from tests.strategies import small_mos

STANDARD_DISTRIBUTIVE = (SetCount(), CountDim("Diagnosis"), Sum("Age"),
                         Min("Age"), Max("Age"), SumProduct("Age", "Age"))


class ScaledSum(AggregationFunction):
    """The liar family: ``combine`` is associative-*shaped* (a single
    ``sum`` reduction over the partials) but multiplies each partial by
    ``scale``, so partition-and-merge is exact only at ``scale == 1``.
    ``args`` carries the scale so each family member gets its own
    classification cache entry."""

    distributive = True          # the claim; never trusted

    def __init__(self, scale):
        self.scale = scale
        self.args = (f"scale={scale!r}",)

    def apply(self, facts, mo):
        return float(len(facts))

    def combine(self, partials):
        return sum(p * self.scale for p in partials)


scales = st.one_of(st.integers(min_value=-3, max_value=4),
                   st.sampled_from([0.5, 2.5, -1.0]))


@given(scale=scales)
@settings(max_examples=40, deadline=None)
def test_distributive_iff_merge_equivalence(scale):
    fn = ScaledSum(scale)
    c = classify_function(fn)
    passed = merge_equivalence_check(ScaledSum(scale))
    assert (c.function_class is FunctionClass.DISTRIBUTIVE) == passed
    if scale == 1:
        assert c.function_class is FunctionClass.DISTRIBUTIVE
        assert c.merge_check is True
    else:
        assert c.function_class is FunctionClass.UNKNOWN
        assert c.merge_check is False


@given(scale=scales)
@settings(max_examples=20, deadline=None)
def test_lying_combine_is_never_shardable(scale, snapshot_mo):
    plan = AggregateNode(
        child=Base(snapshot_mo), function=ScaledSum(scale),
        grouping=(("DOB", "Year"),),
        result=make_result_spec(name="Result"), strict_types=False)
    verdict, report = shardability_of(plan)
    if scale == 1:
        # correct but structurally unvouched members stay conservative
        assert verdict in (ShardVerdict.SHARDABLE, ShardVerdict.UNKNOWN)
    else:
        assert verdict is not ShardVerdict.SHARDABLE
        assert "MD076" in report.codes()


def test_standard_distributive_functions_pass_merge_check():
    for fn in STANDARD_DISTRIBUTIVE:
        c = classify_function(fn)
        assert c.function_class is FunctionClass.DISTRIBUTIVE, fn.name
        assert merge_equivalence_check(fn) is True, fn.name


@st.composite
def groupings(draw, mo):
    grouping = {}
    for name in mo.dimension_names:
        if draw(st.booleans()):
            categories = [c.name for c in
                          mo.dimension(name).dtype.category_types()
                          if not c.is_top]
            if categories:
                grouping[name] = draw(st.sampled_from(categories))
    return grouping


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_shardable_verdict_agrees_with_reference_executor(data):
    """SHARDABLE ⇒ per-shard evaluation + combine is exact for every
    shard count (vs ``n_shards=1``, plain evaluation)."""
    mo = data.draw(small_mos())
    grouping = data.draw(groupings(mo))
    # SetCount is the one standard function that needs no numeric
    # surrogates; random MOs carry tuple sids, so the measure-reading
    # functions are anchored on the case-study MO below instead.
    fn = SetCount()
    plan = AggregateNode(
        child=Base(mo), function=fn,
        grouping=tuple(sorted(grouping.items())),
        result=make_result_spec(name="Result"), strict_types=False)
    verdict, _report = shardability_of(plan)
    if verdict is ShardVerdict.SHARDABLE:
        reference = aggregate_sharded(mo, fn, grouping, n_shards=1)
        for n_shards in (2, 3):
            assert aggregate_sharded(mo, fn, grouping,
                                     n_shards=n_shards) == reference, \
                (n_shards, grouping, fn.name)


def test_multi_shard_agreement_on_case_study(snapshot_mo):
    """The deterministic anchor: every standard distributive function
    is shard-count-invariant on the case-study MO for a grouping the
    analyzer marks SHARDABLE."""
    grouping = {"DOB": "Year"}
    for fn in (SetCount(), CountDim("Diagnosis"), Sum("Age"),
               Min("Age"), Max("Age")):
        reference = aggregate_sharded(snapshot_mo, fn, grouping,
                                      n_shards=1)
        for n_shards in (2, 3, 5):
            assert aggregate_sharded(snapshot_mo, fn, grouping,
                                     n_shards=n_shards) == reference, \
                (fn.name, n_shards)


def test_algebraic_avg_shards_via_accumulator_states(snapshot_mo):
    """MD071's story made executable: AVG is not distributive over
    finished results, but sharding its (sum, count) accumulator states
    and finalizing after the merge reproduces plain evaluation."""
    grouping = {"DOB": "Year"}

    def partial(facts, sub):
        vals = [m for f in facts for m in measures_of(sub, "Age", f)]
        return (float(sum(vals)), len(vals))

    def merge(partials):
        return (sum(s for s, _count in partials),
                sum(count for _s, count in partials))

    plain = aggregate_sharded(snapshot_mo, Avg("Age"), grouping,
                              n_shards=1)
    for n_shards in (2, 3):
        states = aggregate_sharded(snapshot_mo, Avg("Age"), grouping,
                                   n_shards=n_shards,
                                   partial=partial, merge=merge)
        finalized = {key: (s / count if count else None)
                     for key, (s, count) in states.items()}
        assert finalized == plain
