"""Shared fixtures: case-study MOs and small workloads."""

from __future__ import annotations

import pytest

from repro.casestudy import case_study_mo
from repro.casestudy.icd import IcdShape
from repro.workloads import (
    ClinicalConfig,
    RetailConfig,
    generate_clinical,
    generate_retail,
)


@pytest.fixture(scope="session")
def snapshot_mo():
    """The case study MO with temporal annotations collapsed."""
    return case_study_mo(temporal=False)


@pytest.fixture(scope="session")
def valid_time_mo():
    """The case study MO with Table 1's validity intervals."""
    return case_study_mo(temporal=True)


@pytest.fixture(scope="session")
def valid_time_mo_ex10():
    """The valid-time case study MO with Example 10's link 8 ≤ 11."""
    return case_study_mo(temporal=True, include_example10_link=True)


@pytest.fixture(scope="session")
def small_clinical():
    """A small seeded clinical workload (strict shares of non-strict
    links so both code paths are exercised)."""
    return generate_clinical(ClinicalConfig(
        n_patients=60,
        icd=IcdShape(n_groups=3, families_per_group=(2, 4),
                     lowlevels_per_family=(2, 4), extra_parent_prob=0.15),
        seed=1234,
    ))


@pytest.fixture(scope="session")
def strict_clinical():
    """A clinical workload with a fully strict classification and only
    low-level diagnoses (summarizable everywhere)."""
    return generate_clinical(ClinicalConfig(
        n_patients=60,
        diagnoses_per_patient=(1, 1),
        family_granularity_prob=0.0,
        icd=IcdShape(n_groups=3, families_per_group=(2, 4),
                     lowlevels_per_family=(2, 4), extra_parent_prob=0.0),
        seed=99,
    ))


@pytest.fixture(scope="session")
def small_retail():
    """A small seeded retail workload."""
    return generate_retail(RetailConfig(n_purchases=120, seed=5))
