"""Tests for the uncertainty extension (§3.3)."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.errors import UncertaintyError
from repro.uncertainty import (
    certain_core,
    characterization_probability,
    expected_count,
    expected_group_counts,
    expected_sum,
    is_certain,
)


@pytest.fixture()
def uncertain_mo():
    mo = case_study_mo(temporal=False)
    mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10), prob=0.9)
    return mo


class TestIsCertain:
    def test_base_case_study_certain(self, snapshot_mo):
        assert is_certain(snapshot_mo)

    def test_uncertain_pair_detected(self, uncertain_mo):
        assert not is_certain(uncertain_mo)

    def test_uncertain_order_edge_detected(self, snapshot_mo):
        mo = case_study_mo(temporal=False)
        mo.dimension("Diagnosis").add_edge(
            diagnosis_value(6), diagnosis_value(9), prob=0.5)
        assert not is_certain(mo)


class TestCharacterizationProbability:
    def test_certain_pair(self, snapshot_mo):
        assert characterization_probability(
            snapshot_mo, patient_fact(2), "Diagnosis",
            diagnosis_value(8)) == 1.0

    def test_uncertain_pair(self, uncertain_mo):
        assert characterization_probability(
            uncertain_mo, patient_fact(1), "Diagnosis",
            diagnosis_value(10)) == pytest.approx(0.9)

    def test_propagates_upward(self, uncertain_mo):
        """P(1 ⇝ 11) combines the certain path through 9 with the
        uncertain one through 10 by noisy-or: 1 - 0·0.1 = 1."""
        assert characterization_probability(
            uncertain_mo, patient_fact(1), "Diagnosis",
            diagnosis_value(11)) == 1.0

    def test_multiplies_along_path(self):
        mo = case_study_mo(temporal=False)
        # remove certainty: make patient 1's only link 60% certain
        rel = mo.relation("Diagnosis")
        rel.remove_fact(patient_fact(1))
        rel.add(patient_fact(1), diagnosis_value(10), prob=0.6)
        assert characterization_probability(
            mo, patient_fact(1), "Diagnosis",
            diagnosis_value(11)) == pytest.approx(0.6)

    def test_absent_is_zero(self, snapshot_mo):
        assert characterization_probability(
            snapshot_mo, patient_fact(1), "Diagnosis",
            diagnosis_value(12)) == 0.0


class TestExpectedValues:
    def test_expected_count(self, uncertain_mo):
        assert expected_count(uncertain_mo, "Diagnosis",
                              diagnosis_value(10)) == pytest.approx(0.9)

    def test_expected_count_certain_matches_crisp(self, snapshot_mo):
        assert expected_count(snapshot_mo, "Diagnosis",
                              diagnosis_value(11)) == 2.0

    def test_expected_group_counts(self, uncertain_mo):
        counts = expected_group_counts(uncertain_mo, "Diagnosis",
                                       "Diagnosis Group")
        by_sid = {v.sid: c for v, c in counts.items()}
        assert by_sid[11] == pytest.approx(2.0)
        assert by_sid[12] == pytest.approx(1.0)

    def test_expected_sum(self, uncertain_mo):
        """Expected age-sum over patients with diagnosis 10: only
        patient 1 (age 29) with probability 0.9."""
        assert expected_sum(uncertain_mo, "Diagnosis", diagnosis_value(10),
                            "Age") == pytest.approx(0.9 * 29)

    def test_expected_sum_certain(self, snapshot_mo):
        assert expected_sum(snapshot_mo, "Diagnosis", diagnosis_value(11),
                            "Age") == pytest.approx(29 + 48)


class TestCertainCore:
    def test_drops_uncertain_pairs(self, uncertain_mo):
        core = certain_core(uncertain_mo)
        assert is_certain(core)
        values = core.relation("Diagnosis").values_of(patient_fact(1))
        assert diagnosis_value(10) not in values

    def test_threshold(self, uncertain_mo):
        loose = certain_core(uncertain_mo, threshold=0.8)
        values = loose.relation("Diagnosis").values_of(patient_fact(1))
        assert diagnosis_value(10) in values

    def test_identity_on_certain_input(self, snapshot_mo):
        core = certain_core(snapshot_mo)
        for name in snapshot_mo.dimension_names:
            assert set(core.relation(name).pairs()) == \
                set(snapshot_mo.relation(name).pairs())

    def test_orphaned_fact_gets_top(self):
        mo = case_study_mo(temporal=False)
        rel = mo.relation("Diagnosis")
        rel.remove_fact(patient_fact(1))
        rel.add(patient_fact(1), diagnosis_value(9), prob=0.5)
        core = certain_core(mo)
        core.validate()
        values = core.relation("Diagnosis").values_of(patient_fact(1))
        assert values == {mo.dimension("Diagnosis").top_value}

    def test_invalid_threshold_rejected(self, uncertain_mo):
        with pytest.raises(UncertaintyError):
            certain_core(uncertain_mo, threshold=1.5)
