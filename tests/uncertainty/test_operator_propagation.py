"""§3.3: "the probabilities are also handled by the algebra" — the
fundamental operators must carry the annotations through unchanged."""

import pytest

from repro.algebra import (
    JoinPredicate,
    SetCount,
    aggregate,
    characterized_by,
    identity_join,
    project,
    rename,
    select,
    union,
)
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.helpers import make_result_spec
from repro.core.values import Fact


@pytest.fixture()
def uncertain_mo():
    mo = case_study_mo(temporal=False)
    mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10), prob=0.9)
    return mo


def _prob(mo, fact, value):
    annotations = mo.relation("Diagnosis").annotations(fact, value)
    return max((p for _, p in annotations), default=None)


class TestPropagation:
    def test_selection_preserves_probabilities(self, uncertain_mo):
        result = select(uncertain_mo,
                        characterized_by("Diagnosis", diagnosis_value(11)))
        assert _prob(result, patient_fact(1), diagnosis_value(10)) == \
            pytest.approx(0.9)

    def test_projection_preserves_probabilities(self, uncertain_mo):
        result = project(uncertain_mo, ["Diagnosis"])
        assert _prob(result, patient_fact(1), diagnosis_value(10)) == \
            pytest.approx(0.9)

    def test_rename_preserves_probabilities(self, uncertain_mo):
        result = rename(uncertain_mo, dimension_map={"Diagnosis": "Dx"})
        annotations = result.relation("Dx").annotations(
            patient_fact(1), diagnosis_value(10))
        assert any(abs(p - 0.9) < 1e-12 for _, p in annotations)

    def test_union_keeps_distinct_probabilities(self, uncertain_mo,
                                                snapshot_mo):
        merged = union(uncertain_mo, snapshot_mo)
        assert _prob(merged, patient_fact(1), diagnosis_value(10)) == \
            pytest.approx(0.9)
        # certain pairs stay certain
        assert _prob(merged, patient_fact(2), diagnosis_value(8)) == 1.0

    def test_join_inherits_probabilities(self, uncertain_mo):
        left = project(uncertain_mo, ["Diagnosis"])
        right = rename(project(uncertain_mo, ["Age"]),
                       dimension_map={"Age": "Years"})
        joined = identity_join(left, right, JoinPredicate.EQUAL)
        pair = Fact(fid=(1, 1), ftype="(Patient,Patient)")
        annotations = joined.relation("Diagnosis").annotations(
            pair, diagnosis_value(10))
        assert any(abs(p - 0.9) < 1e-12 for _, p in annotations)

    def test_aggregate_groups_by_possible_characterization(
            self, uncertain_mo):
        """α's grouping uses ⇝ with positive probability: the uncertain
        E11 link pulls patient 1 into group 11 regardless (certain via
        9) and does not create spurious groups."""
        agg = aggregate(uncertain_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"},
                        make_result_spec())
        counts = {
            v.sid: len(f.members)
            for f, v in agg.relation("Diagnosis").pairs()
        }
        assert counts == {11: 2, 12: 1}
