"""Tests for probability-aware operations."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.uncertainty import (
    possible_worlds_count,
    probabilistic_rollup,
    select_with_certainty,
)


@pytest.fixture()
def uncertain_mo():
    mo = case_study_mo(temporal=False)
    mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10), prob=0.9)
    return mo


class TestSelectWithCertainty:
    def test_threshold_excludes(self, uncertain_mo):
        strict = select_with_certainty(uncertain_mo, "Diagnosis",
                                       diagnosis_value(10), 0.95)
        assert strict.facts == set()

    def test_threshold_includes(self, uncertain_mo):
        loose = select_with_certainty(uncertain_mo, "Diagnosis",
                                      diagnosis_value(10), 0.5)
        assert {f.fid for f in loose.facts} == {1}

    def test_certain_data_always_included(self, uncertain_mo):
        result = select_with_certainty(uncertain_mo, "Diagnosis",
                                       diagnosis_value(11), 1.0)
        assert {f.fid for f in result.facts} == {1, 2}


class TestProbabilisticRollup:
    def test_expected_counts(self, uncertain_mo):
        rows = dict(
            (v.sid, e) for v, e in probabilistic_rollup(
                uncertain_mo, "Diagnosis", "Diagnosis Group"))
        assert rows[11] == pytest.approx(2.0)
        assert rows[12] == pytest.approx(1.0)

    def test_matches_crisp_on_certain_mo(self, snapshot_mo):
        rows = dict(
            (v.sid, e) for v, e in probabilistic_rollup(
                snapshot_mo, "Diagnosis", "Diagnosis Group"))
        assert rows == {11: 2.0, 12: 1.0}


class TestPossibleWorlds:
    def test_distribution_sums_to_one(self, uncertain_mo):
        dist = possible_worlds_count(uncertain_mo, "Diagnosis",
                                     diagnosis_value(10))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_distribution_values(self, uncertain_mo):
        dist = possible_worlds_count(uncertain_mo, "Diagnosis",
                                     diagnosis_value(10))
        assert dist[1] == pytest.approx(0.9)
        assert dist[0] == pytest.approx(0.1)

    def test_mean_equals_expected_count(self, uncertain_mo):
        from repro.uncertainty import expected_count

        dist = possible_worlds_count(uncertain_mo, "Diagnosis",
                                     diagnosis_value(11))
        mean = sum(k * p for k, p in dist.items())
        assert mean == pytest.approx(
            expected_count(uncertain_mo, "Diagnosis", diagnosis_value(11)))

    def test_certain_mo_point_mass(self, snapshot_mo):
        dist = possible_worlds_count(snapshot_mo, "Diagnosis",
                                     diagnosis_value(11))
        assert dist == {2: pytest.approx(1.0)}
