"""Property tests: the probabilistic model degenerates to the certain
one at p = 1, and expectations agree with world enumeration."""

import math

from hypothesis import HealthCheck, given, settings

from repro.uncertainty import (
    certain_core,
    expected_count,
    is_certain,
    possible_worlds_count,
)
from tests.strategies import small_mos

_settings = settings(max_examples=30,
                     suppress_health_check=[HealthCheck.too_slow],
                     deadline=None)


@_settings
@given(small_mos())
def test_certain_mos_are_recognized(mo):
    assert is_certain(mo)


@_settings
@given(small_mos())
def test_certain_core_is_identity_on_certain_mos(mo):
    core = certain_core(mo)
    for name in mo.dimension_names:
        assert set(core.relation(name).pairs()) == \
            set(mo.relation(name).pairs())


@_settings
@given(small_mos(probabilistic=True))
def test_expected_count_matches_world_enumeration(mo):
    name = mo.dimension_names[0]
    dimension = mo.dimension(name)
    for value in list(dimension.values())[:3]:
        dist = possible_worlds_count(mo, name, value)
        mean = sum(k * p for k, p in dist.items())
        expected = expected_count(mo, name, value)
        assert math.isclose(mean, expected, rel_tol=1e-9, abs_tol=1e-9)


@_settings
@given(small_mos(probabilistic=True))
def test_expected_count_bounded_by_candidates(mo):
    name = mo.dimension_names[0]
    relation = mo.relation(name)
    dimension = mo.dimension(name)
    for value in list(dimension.values())[:3]:
        candidates = relation.facts_characterized_by(value, dimension)
        expected = expected_count(mo, name, value)
        assert -1e-9 <= expected <= len(candidates) + 1e-9


@_settings
@given(small_mos(probabilistic=True))
def test_certain_core_at_zero_threshold_keeps_all(mo):
    core = certain_core(mo, threshold=0.0)
    for name in mo.dimension_names:
        assert set(mo.relation(name).pairs()) <= \
            set(core.relation(name).pairs())
