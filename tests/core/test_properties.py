"""Tests for hierarchy properties and summarizability (paper §3.4)."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_dimension
from repro.core.properties import (
    check_summarizability,
    critical_chronons,
    has_strict_path,
    hierarchy_is_partitioning,
    hierarchy_is_snapshot_partitioning,
    hierarchy_is_snapshot_strict,
    hierarchy_is_strict,
    is_summarizable,
    mapping_is_strict,
)
from repro.temporal.chronon import day


class TestStrictness:
    def test_residence_is_strict(self, snapshot_mo):
        """Example 11: the Residence hierarchy is strict."""
        assert hierarchy_is_strict(snapshot_mo.dimension("Residence"))

    def test_diagnosis_is_non_strict(self, snapshot_mo):
        """Example 11: the Diagnosis hierarchy is non-strict (value 5 is
        in families 4 and 9)."""
        assert not hierarchy_is_strict(snapshot_mo.dimension("Diagnosis"))

    def test_mapping_level(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        assert not mapping_is_strict(diag, "Low-level Diagnosis",
                                     "Diagnosis Family")
        res = snapshot_mo.dimension("Residence")
        assert mapping_is_strict(res, "Area", "County")

    def test_who_subhierarchy_snapshot_strict(self):
        """Example 11: restricted to the standard classification, the
        hierarchy is snapshot strict (the WHO links never overlap per
        chronon, the user-defined ones create the violations)."""
        diag = diagnosis_dimension(temporal=True)
        # snapshot-strictness fails due to user-defined links (value 5
        # under both 4/WHO and 9/user-defined at the same time)
        assert not hierarchy_is_snapshot_strict(diag)


class TestPartitioning:
    def test_residence_is_partitioning(self, snapshot_mo):
        assert hierarchy_is_partitioning(snapshot_mo.dimension("Residence"))

    def test_diagnosis_untimed_is_not_partitioning(self, snapshot_mo):
        """Untimed, families 7/8 have no group parent (they belong to
        the old era with no group level)."""
        assert not hierarchy_is_partitioning(
            snapshot_mo.dimension("Diagnosis"))

    def test_diagnosis_snapshot_partitioning_fails_without_ex10(self):
        diag = diagnosis_dimension(temporal=True)
        # in the 70s, families 7 and 8 have no parent group
        assert not hierarchy_is_partitioning(diag, at=day(1975, 6, 1))
        # from 1980 the classification is fully covered
        assert hierarchy_is_partitioning(diag, at=day(1985, 6, 1))
        assert not hierarchy_is_snapshot_partitioning(diag)

    def test_critical_chronons_cover_boundaries(self):
        diag = diagnosis_dimension(temporal=True)
        samples = critical_chronons(diag)
        assert day(1970, 1, 1) in samples
        assert day(1980, 1, 1) in samples


class TestStrictPath:
    def test_path_to_top_always_strict(self, snapshot_mo):
        top_name = snapshot_mo.dimension("Diagnosis").dtype.top_name
        assert has_strict_path(snapshot_mo, "Diagnosis", top_name)

    def test_diagnosis_group_path_not_strict(self, snapshot_mo):
        """Patient 2 is characterized by both groups 11 and 12."""
        assert not has_strict_path(snapshot_mo, "Diagnosis",
                                   "Diagnosis Group")

    def test_residence_region_path_untimed_not_strict(self, snapshot_mo):
        # untimed, patient 2 lived in two areas of the same region —
        # but two *counties*, so county path is non-strict:
        assert not has_strict_path(snapshot_mo, "Residence", "County")
        # both areas are under the single region, so region is strict
        assert has_strict_path(snapshot_mo, "Residence", "Region")

    def test_residence_strict_at_snapshot(self, valid_time_mo):
        # at any instant, a patient lives in one area
        assert has_strict_path(valid_time_mo, "Residence", "County",
                               at=day(1985, 6, 1))


class TestSummarizabilityDefinition:
    def test_min_is_summarizable(self):
        """Definition 1 with g = min holds for any sets."""
        sets = [[3, 1, 2], [5, 4], [1]]
        assert is_summarizable(min, sets)

    def test_sum_not_summarizable_on_overlap(self):
        """SUM double counts overlapping sets (the left side's multiset
        semantics keep both partials)."""
        sets = [[1, 2], [2, 3]]
        assert not is_summarizable(sum, sets)

    def test_sum_summarizable_on_disjoint(self):
        sets = [[1, 2], [3, 4]]
        assert is_summarizable(sum, sets)

    def test_count_not_summarizable_with_itself(self):
        """COUNT's combiner is SUM, not COUNT; Definition 1 with g = len
        fails."""
        sets = [[1, 2], [3]]
        assert not is_summarizable(len, sets)

    def test_empty_family(self):
        assert is_summarizable(sum, [])


class TestLenzShoshaniCheck:
    def test_case_study_group_count_not_summarizable(self, snapshot_mo):
        verdict = check_summarizability(
            snapshot_mo, {"Diagnosis": "Diagnosis Group"},
            function_distributive=True)
        assert not verdict.summarizable
        assert not verdict.paths_strict
        assert "non-strict" in verdict.explain()

    def test_region_rollup_fails_on_untimed_multiresidence(
            self, snapshot_mo):
        verdict = check_summarizability(
            snapshot_mo, {"Residence": "County"},
            function_distributive=True)
        assert not verdict.paths_strict

    def test_non_distributive_function_never_summarizable(
            self, snapshot_mo):
        verdict = check_summarizability(
            snapshot_mo, {"Residence": "Region"},
            function_distributive=False)
        assert not verdict.summarizable
        assert "not distributive" in verdict.explain()

    def test_strict_workload_is_summarizable(self, strict_clinical):
        verdict = check_summarizability(
            strict_clinical.mo, {"Diagnosis": "Diagnosis Group"},
            function_distributive=True)
        assert verdict.summarizable
        assert verdict.explain().startswith("summarizable")


class TestSnapshotSummarizability:
    """§3.4's extension: counting each fact at one point in time makes
    snapshot-strict/partitioning hierarchies summarizable."""

    def test_residence_summarizable_at_instant_not_untimed(
            self, valid_time_mo):
        untimed = check_summarizability(
            valid_time_mo, {"Residence": "County"},
            function_distributive=True)
        assert not untimed.summarizable  # patient 2 lived in 2 counties
        at_instant = check_summarizability(
            valid_time_mo, {"Residence": "County"},
            function_distributive=True, at=day(1985, 6, 1))
        assert at_instant.summarizable

    def test_instant_grouping_counts_each_fact_once(self, valid_time_mo):
        from repro.algebra import SetCount, aggregate
        from repro.core.helpers import make_result_spec

        agg = aggregate(valid_time_mo, SetCount(),
                        {"Residence": "County"}, make_result_spec(),
                        at=day(1985, 6, 1))
        members = [
            m for f in agg.facts for m in f.members
        ]
        assert len(members) == len(set(members))  # once per fact
