"""Tests for dimension values and facts."""

import pytest

from repro.core.values import DimensionValue, Fact, SurrogateSource


class TestDimensionValue:
    def test_equality_by_surrogate(self):
        assert DimensionValue(1) == DimensionValue(1)
        assert DimensionValue(1) != DimensionValue(2)

    def test_label_does_not_affect_identity(self):
        """Names are representations, not identity (§3.1)."""
        assert DimensionValue(1, label="a") == DimensionValue(1, label="b")
        assert hash(DimensionValue(1, label="a")) == \
            hash(DimensionValue(1, label="b"))

    def test_top_values_distinct_per_dimension(self):
        assert DimensionValue.top("A") != DimensionValue.top("B")
        assert DimensionValue.top("A") == DimensionValue.top("A")
        assert DimensionValue.top("A").is_top

    def test_top_differs_from_plain_value(self):
        assert DimensionValue.top("A") != DimensionValue(("⊤", "A"))

    def test_hashable(self):
        assert len({DimensionValue(1), DimensionValue(1),
                    DimensionValue(2)}) == 2


class TestFact:
    def test_identity(self):
        assert Fact(1, "Patient") == Fact(1, "Patient")
        assert Fact(1, "Patient") != Fact(1, "Purchase")
        assert Fact(1) != Fact(2)

    def test_base_fact_is_not_group(self):
        f = Fact(1, "Patient")
        assert not f.is_group
        with pytest.raises(TypeError):
            f.members

    def test_group_fact(self):
        members = [Fact(1, "Patient"), Fact(2, "Patient")]
        g = Fact.group(members)
        assert g.is_group
        assert g.members == frozenset(members)
        assert g.ftype == "Set-of-Patient"

    def test_group_fact_explicit_type(self):
        g = Fact.group([Fact(1, "Patient")], ftype="Cohort")
        assert g.ftype == "Cohort"

    def test_group_equality_is_set_equality(self):
        a = Fact.group([Fact(1, "P"), Fact(2, "P")])
        b = Fact.group([Fact(2, "P"), Fact(1, "P")])
        assert a == b

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Fact.group([])


class TestSurrogateSource:
    def test_fresh_ids_unique_and_increasing(self):
        src = SurrogateSource()
        ids = [src.fresh() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_fresh_value_and_fact(self):
        src = SurrogateSource(start=100)
        v = src.fresh_value(label="x")
        f = src.fresh_fact(ftype="T")
        assert v.sid == 100
        assert f.fid == 101
        assert f.ftype == "T"
