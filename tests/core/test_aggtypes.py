"""Tests for the ⊕/⊘/c aggregation type mechanism."""

from repro.core.aggtypes import AggregationType, SQLFunction, min_aggtype

SUM, AVG, CONST = (AggregationType.SUM, AggregationType.AVERAGE,
                   AggregationType.CONSTANT)


class TestOrdering:
    def test_paper_chain(self):
        """c < ⊘ < ⊕ (paper §3.1)."""
        assert CONST < AVG < SUM

    def test_total_order(self):
        assert not SUM < SUM
        assert SUM <= SUM
        assert CONST <= AVG

    def test_symbols(self):
        assert SUM.symbol == "⊕"
        assert AVG.symbol == "⊘"
        assert CONST.symbol == "c"


class TestAllowedFunctions:
    def test_sum_type_permits_everything(self):
        assert SUM.allowed_functions == frozenset(SQLFunction)

    def test_average_type_excludes_sum(self):
        assert SQLFunction.SUM not in AVG.allowed_functions
        assert AVG.allowed_functions == frozenset(SQLFunction) - \
            {SQLFunction.SUM}

    def test_constant_type_only_counts(self):
        assert CONST.allowed_functions == frozenset({SQLFunction.COUNT})

    def test_higher_types_include_lower_capabilities(self):
        """Data with a higher aggregation type also possesses the
        characteristics of lower types."""
        assert CONST.allowed_functions <= AVG.allowed_functions
        assert AVG.allowed_functions <= SUM.allowed_functions

    def test_permits(self):
        assert SUM.permits(SQLFunction.SUM)
        assert not AVG.permits(SQLFunction.SUM)
        assert CONST.permits(SQLFunction.COUNT)


class TestMinAggtype:
    def test_min_of_mixed(self):
        assert min_aggtype([SUM, CONST, AVG]) is CONST
        assert min_aggtype([SUM, AVG]) is AVG

    def test_min_of_empty_is_top(self):
        """Functions with no argument dimensions constrain nothing."""
        assert min_aggtype([]) is SUM

    def test_min_of_single(self):
        assert min_aggtype([AVG]) is AVG
