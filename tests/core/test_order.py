"""Tests for the annotated partial order (time + probability)."""

import pytest

from repro.core.errors import SchemaError, UncertaintyError
from repro.core.order import AnnotatedOrder, piecewise_noisy_or
from repro.temporal.chronon import day
from repro.temporal.timeset import ALWAYS, TimeSet

T70S = TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))
T80S = TimeSet.interval(day(1980, 1, 1), day(1989, 12, 31))


def chain(*nodes):
    order = AnnotatedOrder()
    for child, parent in zip(nodes, nodes[1:]):
        order.add_edge(child, parent)
    return order


class TestStructure:
    def test_reflexive(self):
        order = AnnotatedOrder()
        order.add_node("a")
        assert order.reaches("a", "a")
        assert order.leq("a", "a")

    def test_transitive_reachability(self):
        order = chain("a", "b", "c")
        assert order.reaches("a", "c")
        assert not order.reaches("c", "a")

    def test_cycle_rejected(self):
        order = chain("a", "b")
        with pytest.raises(SchemaError):
            order.add_edge("b", "a")

    def test_self_edge_rejected(self):
        order = AnnotatedOrder()
        with pytest.raises(SchemaError):
            order.add_edge("a", "a")

    def test_parents_children(self):
        order = chain("a", "b", "c")
        assert order.parents("a") == {"b"}
        assert order.children("c") == {"b"}

    def test_ancestors_descendants(self):
        order = chain("a", "b", "c")
        assert order.ancestors("a") == {"b", "c"}
        assert order.ancestors("a", reflexive=True) == {"a", "b", "c"}
        assert order.descendants("c") == {"a", "b"}

    def test_roots_and_leaves(self):
        order = chain("a", "b", "c")
        assert order.roots() == {"c"}
        assert order.leaves() == {"a"}

    def test_topological_children_first(self):
        order = chain("a", "b", "c")
        topo = order.topological()
        assert topo.index("a") < topo.index("b") < topo.index("c")

    def test_invalid_probability_rejected(self):
        order = AnnotatedOrder()
        with pytest.raises(UncertaintyError):
            order.add_edge("a", "b", prob=1.5)

    def test_empty_time_edge_is_noop(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=TimeSet.empty())
        assert not order.reaches("a", "b")
        assert "a" in order and "b" in order


class TestTemporalComposition:
    def test_paths_intersect_time(self):
        """e1 ≤_T1 e2 ∧ e2 ≤_T2 e3 ⇒ e1 ≤_{T1∩T2} e3."""
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S)
        order.add_edge("b", "c", time=T80S)
        assert order.containment_time("a", "c").is_empty()

    def test_overlapping_times_survive(self):
        t1 = TimeSet.interval(day(1970, 1, 1), day(1985, 12, 31))
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=t1)
        order.add_edge("b", "c", time=T80S)
        expected = t1.intersection(T80S)
        assert order.containment_time("a", "c") == expected

    def test_parallel_paths_union_time(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b1", time=T70S)
        order.add_edge("b1", "c")
        order.add_edge("a", "b2", time=T80S)
        order.add_edge("b2", "c")
        assert order.containment_time("a", "c") == T70S.union(T80S)

    def test_leq_at_chronon(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S)
        assert order.leq("a", "b", at=day(1975, 1, 1))
        assert not order.leq("a", "b", at=day(1985, 1, 1))

    def test_same_edge_times_coalesce(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S)
        order.add_edge("a", "b", time=T80S)
        annotations = order.edge_annotations("a", "b")
        assert len(annotations) == 1
        assert annotations[0][0] == T70S.union(T80S)

    def test_ancestors_at(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S)
        order.add_edge("a", "c", time=T80S)
        assert order.ancestors_at("a", day(1975, 1, 1)) == {"b"}


class TestProbabilisticComposition:
    def test_path_probability_multiplies(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", prob=0.9)
        order.add_edge("b", "c", prob=0.8)
        assert order.containment_probability("a", "c") == pytest.approx(0.72)

    def test_parallel_paths_noisy_or(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b1", prob=0.5)
        order.add_edge("b1", "c")
        order.add_edge("a", "b2", prob=0.5)
        order.add_edge("b2", "c")
        assert order.containment_probability("a", "c") == pytest.approx(0.75)

    def test_certain_edges_stay_certain(self):
        order = chain("a", "b", "c")
        assert order.containment_probability("a", "c") == 1.0

    def test_probability_at_chronon(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S, prob=0.9)
        assert order.containment_probability(
            "a", "b", at=day(1975, 1, 1)) == pytest.approx(0.9)
        assert order.containment_probability(
            "a", "b", at=day(1985, 1, 1)) == 0.0

    def test_profile_piecewise(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S, prob=0.9)
        order.add_edge("a", "b", time=T80S, prob=0.5)
        profile = dict(
            (p, t) for t, p in order.containment_profile("a", "b"))
        assert profile[0.9] == T70S
        assert profile[0.5] == T80S


class TestPiecewiseNoisyOr:
    def test_empty(self):
        assert piecewise_noisy_or([]) == []

    def test_single(self):
        profile = piecewise_noisy_or([(T70S, 0.9)])
        assert profile == [(T70S, pytest.approx(0.9))]

    def test_disjoint_pieces(self):
        profile = piecewise_noisy_or([(T70S, 0.9), (T80S, 0.4)])
        assert len(profile) == 2

    def test_overlap_combines(self):
        profile = piecewise_noisy_or([(T70S, 0.5), (T70S, 0.5)])
        assert profile == [(T70S, pytest.approx(0.75))]

    def test_zero_probability_ignored(self):
        assert piecewise_noisy_or([(T70S, 0.0)]) == []


class TestDerivedOrders:
    def test_restriction_keeps_transitive_pairs(self):
        order = chain("a", "b", "c")
        restricted = order.restricted_to({"a", "c"})
        assert restricted.reaches("a", "c")
        assert "b" not in restricted

    def test_restriction_composes_annotations(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T70S, prob=0.9)
        order.add_edge("b", "c", time=T70S, prob=0.8)
        restricted = order.restricted_to({"a", "c"})
        assert restricted.containment_probability("a", "c") == \
            pytest.approx(0.72)
        assert restricted.containment_time("a", "c") == T70S

    def test_union_merges_edge_times(self):
        o1, o2 = AnnotatedOrder(), AnnotatedOrder()
        o1.add_edge("a", "b", time=T70S)
        o2.add_edge("a", "b", time=T80S)
        merged = o1.union(o2)
        assert merged.containment_time("a", "b") == T70S.union(T80S)

    def test_copy_is_independent(self):
        order = chain("a", "b")
        dup = order.copy()
        dup.add_edge("b", "c")
        assert not order.reaches("a", "c")
        assert dup.reaches("a", "c")
