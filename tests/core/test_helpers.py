"""Tests for the dimension builder helpers."""

import pytest

from repro.core.aggtypes import AggregationType
from repro.core.errors import SchemaError
from repro.core.helpers import (
    Band,
    make_linear_dimension,
    make_numeric_dimension,
    make_result_spec,
    make_simple_dimension,
)
from repro.core.values import DimensionValue


class TestSimpleDimension:
    def test_shape(self):
        dim = make_simple_dimension("Name", ["a", "b"])
        assert dim.dtype.bottom_name == "Name"
        assert len(dim.bottom_category) == 2
        assert dim.dtype.top_name == "⊤Name"

    def test_values_usable(self):
        dim = make_simple_dimension("Name", ["a"])
        assert DimensionValue("a") in dim


class TestLinearDimension:
    def test_chain(self):
        dim = make_linear_dimension("R", [
            ("Area", AggregationType.CONSTANT),
            ("County", AggregationType.CONSTANT),
        ])
        assert dim.dtype.leq("Area", "County")
        assert dim.dtype.bottom_name == "Area"

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            make_linear_dimension("R", [])


class TestBand:
    def test_contains_half_open(self):
        band = Band(10, 20)
        assert band.contains(10) and band.contains(19)
        assert not band.contains(20) and not band.contains(9)

    def test_unbounded(self):
        band = Band(2, None)
        assert band.contains(1000)
        assert not band.contains(1)

    def test_labels(self):
        assert Band(10, 20).label == "10-19"
        assert Band(0, 1).label == "0"
        assert Band(2, None).label == ">1"


class TestNumericDimension:
    def test_banded(self):
        dim = make_numeric_dimension(
            "Age", [7, 23],
            bands={"Decade": [Band(lo, lo + 10) for lo in range(0, 40, 10)]})
        assert dim.dtype.bottom.aggtype is AggregationType.SUM
        age7 = DimensionValue(7)
        parents = dim.order.parents(age7)
        assert len(parents) == 1
        assert next(iter(parents)).label == "0-9"

    def test_band_categories_are_constant(self):
        dim = make_numeric_dimension(
            "Age", [7], bands={"Decade": [Band(0, 10)]})
        assert dim.dtype.aggtype("Decade") is AggregationType.CONSTANT

    def test_sibling_band_categories(self):
        dim = make_numeric_dimension(
            "Age", [7],
            bands={"Five": [Band(5, 10)], "Ten": [Band(0, 10)]})
        assert dim.dtype.pred("Age") == {"Five", "Ten"}


class TestResultSpec:
    def test_values_created_on_demand(self):
        spec = make_result_spec()
        v = spec.value_for(42)
        assert v in spec.dimension
        assert v.sid == 42

    def test_idempotent(self):
        spec = make_result_spec()
        assert spec.value_for(42) == spec.value_for(42)
        assert len(spec.dimension.bottom_category) == 1

    def test_banding_like_figure3(self):
        spec = make_result_spec(bands=[Band(0, 2), Band(2, None)])
        one, two = spec.value_for(1), spec.value_for(2)
        band_of = {
            v.sid: next(iter(spec.dimension.order.parents(v))).label
            for v in (one, two)
        }
        assert band_of[1] == "0-1"
        assert band_of[2] == ">1"

    def test_non_numeric_results_unbanded(self):
        spec = make_result_spec(bands=[Band(0, 2)])
        v = spec.value_for("n/a")
        assert not spec.dimension.order.parents(v)
