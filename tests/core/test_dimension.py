"""Tests for dimension types (lattices) and dimensions."""

import pytest

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import InstanceError, SchemaError
from repro.core.values import DimensionValue
from repro.temporal.chronon import day
from repro.temporal.timeset import TimeSet

T70S = TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))


def residence_type():
    return DimensionType(
        "Residence",
        [CategoryType("Area", is_bottom=True), CategoryType("County"),
         CategoryType("Region")],
        [("Area", "County"), ("County", "Region")],
    )


def dob_type():
    """Two hierarchies: Day < Week and Day < Month < Year."""
    return DimensionType(
        "DOB",
        [CategoryType("Day", is_bottom=True), CategoryType("Week"),
         CategoryType("Month"), CategoryType("Year")],
        [("Day", "Week"), ("Day", "Month"), ("Month", "Year")],
    )


class TestDimensionType:
    def test_top_added_automatically(self):
        dtype = residence_type()
        assert dtype.top_name == "⊤Residence"
        assert dtype.top.is_top

    def test_bottom_detected(self):
        assert residence_type().bottom_name == "Area"

    def test_category_order(self):
        dtype = residence_type()
        assert dtype.leq("Area", "Region")
        assert dtype.leq("Area", dtype.top_name)
        assert not dtype.leq("Region", "Area")

    def test_pred_is_immediate_upward(self):
        """Pred(Low-level) = {Family} in the paper's Example 2 sense."""
        dtype = residence_type()
        assert dtype.pred("Area") == {"County"}
        assert dtype.pred("Region") == {dtype.top_name}

    def test_succ(self):
        assert residence_type().succ("County") == {"Area"}

    def test_maximal_category_linked_to_top(self):
        dtype = dob_type()
        assert dtype.pred("Week") == {dtype.top_name}
        assert dtype.pred("Year") == {dtype.top_name}

    def test_multiple_bottoms_rejected(self):
        with pytest.raises(SchemaError):
            DimensionType("X", [CategoryType("A"), CategoryType("B")], [])

    def test_duplicate_category_rejected(self):
        with pytest.raises(SchemaError):
            DimensionType("X", [CategoryType("A"), CategoryType("A")], [])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(SchemaError):
            DimensionType("X", [CategoryType("A")], [("A", "B")])

    def test_is_lattice(self):
        assert residence_type().is_lattice()
        assert dob_type().is_lattice()

    def test_category_types_bottom_up(self):
        names = [c.name for c in residence_type().category_types()]
        assert names.index("Area") < names.index("County") < \
            names.index("Region")

    def test_upward_closure(self):
        dtype = dob_type()
        assert dtype.upward_closure("Month") == \
            {"Month", "Year", dtype.top_name}

    def test_restricted_upward(self):
        dtype = dob_type()
        restricted = dtype.restricted_upward("Month")
        assert restricted.bottom_name == "Month"
        assert "Day" not in restricted
        assert "Week" not in restricted
        assert restricted.leq("Month", "Year")

    def test_restricted_upward_from_top(self):
        dtype = residence_type()
        restricted = dtype.restricted_upward(dtype.top_name)
        assert restricted.bottom_name == restricted.top_name

    def test_isomorphism(self):
        assert residence_type().is_isomorphic_to(residence_type())
        assert not residence_type().is_isomorphic_to(dob_type())

    def test_aggtype_lookup(self):
        dtype = DimensionType(
            "Age", [CategoryType("Age", AggregationType.SUM,
                                 is_bottom=True)], [])
        assert dtype.aggtype("Age") is AggregationType.SUM


class TestDimension:
    def setup_method(self):
        self.dim = Dimension(residence_type())
        self.a1 = DimensionValue("a1")
        self.c1 = DimensionValue("c1")
        self.r1 = DimensionValue("r1")
        self.dim.add_value("Area", self.a1)
        self.dim.add_value("County", self.c1)
        self.dim.add_value("Region", self.r1)
        self.dim.add_edge(self.a1, self.c1)
        self.dim.add_edge(self.c1, self.r1)

    def test_top_value_in_top_category(self):
        assert self.dim.top_category.members() == {self.dim.top_value}

    def test_value_belongs_to_one_category(self):
        with pytest.raises(SchemaError):
            self.dim.add_value("County", self.a1)

    def test_category_of(self):
        assert self.dim.category_name_of(self.a1) == "Area"
        assert self.dim.category_of(self.c1).name == "County"

    def test_unknown_value_raises(self):
        with pytest.raises(InstanceError):
            self.dim.category_name_of(DimensionValue("zz"))

    def test_leq_transitive(self):
        assert self.dim.leq(self.a1, self.r1)

    def test_everything_below_top(self):
        assert self.dim.leq(self.a1, self.dim.top_value)
        assert self.dim.leq(self.r1, self.dim.top_value)

    def test_edges_into_top_rejected(self):
        with pytest.raises(SchemaError):
            self.dim.add_edge(self.r1, self.dim.top_value)

    def test_downward_edge_rejected(self):
        a2 = DimensionValue("a2")
        self.dim.add_value("Area", a2)
        with pytest.raises(SchemaError):
            self.dim.add_edge(self.c1, a2)

    def test_values_and_contains(self):
        assert self.a1 in self.dim
        assert DimensionValue("zz") not in self.dim
        assert self.dim.values() >= {self.a1, self.c1, self.r1}

    def test_ancestors_include_top(self):
        assert self.dim.top_value in self.dim.ancestors(self.a1)
        assert self.c1 in self.dim.ancestors(self.a1)

    def test_descendants_of_top_is_everything(self):
        descendants = self.dim.descendants(self.dim.top_value)
        assert {self.a1, self.c1, self.r1} <= descendants

    def test_containment_time_untimed_is_always(self):
        assert self.dim.containment_time(self.a1, self.c1).is_always()

    def test_containment_time_to_top_is_existence(self):
        self.dim.category("Area").discard(self.a1)
        self.dim.category("Area").add(self.a1, T70S)
        assert self.dim.containment_time(
            self.a1, self.dim.top_value) == T70S

    def test_subdimension(self):
        """Example 5: keep only Diagnosis Group and ⊤ — here Region."""
        sub = self.dim.subdimension(["Region"])
        assert self.r1 in sub
        assert self.a1 not in sub
        assert sub.dtype.bottom_name == "Region"

    def test_subdimension_preserves_transitive_order(self):
        sub = self.dim.subdimension(["Area", "Region"])
        assert sub.leq(self.a1, self.r1)

    def test_union(self):
        other = Dimension(residence_type())
        a2 = DimensionValue("a2")
        other.add_value("Area", a2)
        merged = self.dim.union(other)
        assert self.a1 in merged and a2 in merged
        assert merged.leq(self.a1, self.r1)

    def test_union_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            self.dim.union(Dimension(dob_type()))

    def test_copy_independent(self):
        dup = self.dim.copy()
        a2 = DimensionValue("a2")
        dup.add_value("Area", a2)
        assert a2 not in self.dim

    def test_representations(self):
        rep = self.dim.add_representation("Area", "Name")
        rep.assign(self.a1, "Aalborg East")
        assert self.dim.representation("Area", "Name").of(self.a1) == \
            "Aalborg East"
        assert "Name" in self.dim.representations_of("Area")

    def test_missing_representation_raises(self):
        with pytest.raises(SchemaError):
            self.dim.representation("Area", "Nope")


class TestLatticeNegative:
    def test_m_shape_is_not_a_lattice(self):
        """Two bottoms-…-wait: one bottom, two middles both above it and
        both below two tops → the pair of middles has two minimal upper
        bounds (no unique lub) once ⊤ is excluded from tie-breaking."""
        dtype = DimensionType(
            "M",
            [CategoryType("B", is_bottom=True), CategoryType("M1"),
             CategoryType("M2"), CategoryType("T1"), CategoryType("T2")],
            [("B", "M1"), ("B", "M2"),
             ("M1", "T1"), ("M1", "T2"),
             ("M2", "T1"), ("M2", "T2")],
        )
        assert not dtype.is_lattice()

    def test_tree_with_top_is_lattice(self):
        dtype = DimensionType(
            "T",
            [CategoryType("B", is_bottom=True), CategoryType("L"),
             CategoryType("R")],
            [("B", "L"), ("B", "R")],
        )
        assert dtype.is_lattice()
