"""Tests for the intern table: dense ids, stability, round-trips."""

from repro.core.interning import InternTable
from repro.core.values import DimensionValue, Fact


class TestInternTable:
    def test_ids_are_dense_and_first_seen(self):
        table = InternTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("c") == 2

    def test_intern_is_idempotent(self):
        table = InternTable()
        first = table.intern("x")
        assert table.intern("x") == first
        assert len(table) == 1

    def test_id_of_unknown_is_none(self):
        table = InternTable()
        table.intern("a")
        assert table.id_of("a") == 0
        assert table.id_of("missing") is None

    def test_object_of_round_trips(self):
        table = InternTable()
        value = DimensionValue(sid=7, label="seven")
        vid = table.intern(value)
        assert table.object_of(vid) == value

    def test_objects_of_materializes_a_set(self):
        table = InternTable()
        facts = [Fact(fid=i, ftype="T") for i in range(4)]
        ids = table.intern_all(facts)
        assert table.objects_of(ids) == set(facts)
        assert table.objects_of([]) == set()

    def test_values_of_preserves_order_and_multiplicity(self):
        table = InternTable()
        ids = table.intern_all(["a", "b", "a"])
        assert table.values_of(ids) == ["a", "b", "a"]
        assert table.values_of(reversed(ids)) == ["a", "b", "a"]
        assert table.values_of([]) == []

    def test_values_of_round_trips_intern_all(self):
        table = InternTable()
        values = [DimensionValue(sid=(i % 3)) for i in range(6)]
        assert table.values_of(table.intern_all(values)) == values

    def test_contains_and_iteration_order(self):
        table = InternTable()
        for item in ("b", "a", "c"):
            table.intern(item)
        assert "a" in table
        assert "z" not in table
        # iteration yields objects in id (first-seen) order
        assert list(table) == ["b", "a", "c"]

    def test_ids_survive_later_interning(self):
        """Append-only: earlier ids never move when new objects arrive —
        the property the rollup index relies on across rebuilds."""
        table = InternTable()
        first = table.intern("stable")
        for i in range(50):
            table.intern(i)
        assert table.id_of("stable") == first
        assert table.intern("stable") == first
