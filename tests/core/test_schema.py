"""Tests for fact schemas."""

import pytest

from repro.core.category import CategoryType
from repro.core.dimension import DimensionType
from repro.core.errors import SchemaError
from repro.core.schema import FactSchema


def dtype(name, levels=("L",)):
    ctypes = [CategoryType(f"{name}{lvl}", is_bottom=(i == 0))
              for i, lvl in enumerate(levels)]
    edges = [(f"{name}{levels[i]}", f"{name}{levels[i + 1]}")
             for i in range(len(levels) - 1)]
    return DimensionType(name, ctypes, edges)


class TestFactSchema:
    def test_basic_accessors(self):
        schema = FactSchema("Patient", [dtype("A"), dtype("B")])
        assert schema.fact_type == "Patient"
        assert schema.n == 2
        assert schema.dimension_names == ("A", "B")
        assert schema.dimension_type("A").name == "A"
        assert "A" in schema and "C" not in schema
        assert len(list(schema)) == 2
        assert len(schema.dimension_types()) == 2

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(SchemaError):
            FactSchema("T", [dtype("A"), dtype("A")])

    def test_unknown_dimension_rejected(self):
        schema = FactSchema("T", [dtype("A")])
        with pytest.raises(SchemaError):
            schema.dimension_type("B")

    def test_equality_is_structural(self):
        s1 = FactSchema("T", [dtype("A"), dtype("B")])
        s2 = FactSchema("T", [dtype("B"), dtype("A")])  # order-insensitive
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_inequality_on_fact_type(self):
        assert FactSchema("T", [dtype("A")]) != FactSchema("U", [dtype("A")])

    def test_inequality_on_structure(self):
        deep = dtype("A", levels=("L", "M"))
        assert FactSchema("T", [dtype("A")]) != FactSchema("T", [deep])

    def test_isomorphism_ignores_names(self):
        s1 = FactSchema("T", [dtype("A")])
        s2 = FactSchema("T", [dtype("B")])
        assert s1.is_isomorphic_to(s2)
        assert not s1.is_isomorphic_to(FactSchema("T", [dtype("A"),
                                                        dtype("B")]))
