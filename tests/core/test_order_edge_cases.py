"""Edge cases of the annotated order: diamonds, deep chains, mixed
annotations — shapes the randomized strategy rarely produces."""

import pytest

from repro.core.order import AnnotatedOrder
from repro.temporal.chronon import day
from repro.temporal.timeset import ALWAYS, TimeSet

T1 = TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))
T2 = TimeSet.interval(day(1980, 1, 1), day(1989, 12, 31))
T3 = TimeSet.interval(day(1975, 1, 1), day(1984, 12, 31))


class TestDiamonds:
    def _diamond(self, t_left=ALWAYS, t_right=ALWAYS, p_left=1.0,
                 p_right=1.0):
        order = AnnotatedOrder()
        order.add_edge("a", "l", time=t_left, prob=p_left)
        order.add_edge("l", "top", time=t_left, prob=1.0)
        order.add_edge("a", "r", time=t_right, prob=p_right)
        order.add_edge("r", "top", time=t_right, prob=1.0)
        return order

    def test_certain_diamond_stays_certain(self):
        order = self._diamond()
        assert order.containment_probability("a", "top") == 1.0

    def test_uncertain_diamond_noisy_or(self):
        order = self._diamond(p_left=0.6, p_right=0.5)
        # 1 - 0.4 * 0.5
        assert order.containment_probability("a", "top") == \
            pytest.approx(0.8)

    def test_temporal_diamond_unions_disjoint_paths(self):
        order = self._diamond(t_left=T1, t_right=T2)
        assert order.containment_time("a", "top") == T1.union(T2)

    def test_overlapping_temporal_uncertain_diamond(self):
        order = self._diamond(t_left=T1, t_right=T3, p_left=0.5,
                              p_right=0.5)
        profile = order.containment_profile("a", "top")
        overlap = T1.intersection(T3)
        single = T1.difference(T3).union(T3.difference(T1))
        by_time = {t: p for t, p in profile}
        assert by_time[overlap] == pytest.approx(0.75)
        assert by_time[single] == pytest.approx(0.5)


class TestDeepChains:
    def test_long_chain_reachability(self):
        order = AnnotatedOrder()
        for i in range(50):
            order.add_edge(i, i + 1)
        assert order.reaches(0, 50)
        assert not order.reaches(50, 0)
        assert order.containment_time(0, 50).is_always()

    def test_long_chain_probability_product(self):
        order = AnnotatedOrder()
        for i in range(10):
            order.add_edge(i, i + 1, prob=0.9)
        assert order.containment_probability(0, 10) == \
            pytest.approx(0.9 ** 10)

    def test_chain_with_one_gap(self):
        order = AnnotatedOrder()
        order.add_edge(0, 1, time=T1)
        order.add_edge(1, 2, time=T1)
        order.add_edge(2, 3, time=T2)  # disjoint from T1
        assert order.containment_time(0, 2) == T1
        assert order.containment_time(0, 3).is_empty()
        # untimed reachability still sees the path
        assert order.reaches(0, 3)


class TestMixedAnnotationsOnOneEdge:
    def test_two_epochs_different_certainty(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T1, prob=1.0)
        order.add_edge("a", "b", time=T2, prob=0.5)
        assert order.containment_probability(
            "a", "b", at=day(1975, 1, 1)) == 1.0
        assert order.containment_probability(
            "a", "b", at=day(1985, 1, 1)) == pytest.approx(0.5)
        assert order.containment_time("a", "b") == T1.union(T2)

    def test_overlapping_annotations_combine(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T1, prob=0.5)
        order.add_edge("a", "b", time=T3, prob=0.4)
        at_overlap = order.containment_probability(
            "a", "b", at=day(1977, 1, 1))
        assert at_overlap == pytest.approx(1 - 0.5 * 0.6)


class TestRestrictionEdgeCases:
    def test_restrict_to_empty(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b")
        restricted = order.restricted_to(set())
        assert len(restricted) == 0

    def test_restrict_skips_through_two_dropped_levels(self):
        order = AnnotatedOrder()
        order.add_edge("a", "b", time=T1)
        order.add_edge("b", "c", time=T1)
        order.add_edge("c", "d", time=T3)
        restricted = order.restricted_to({"a", "d"})
        assert restricted.containment_time("a", "d") == \
            T1.intersection(T3)

    def test_restrict_keeps_parallel_paths(self):
        order = AnnotatedOrder()
        order.add_edge("a", "m1", time=T1)
        order.add_edge("m1", "z", time=T1)
        order.add_edge("a", "m2", time=T2)
        order.add_edge("m2", "z", time=T2)
        restricted = order.restricted_to({"a", "z"})
        assert restricted.containment_time("a", "z") == T1.union(T2)
