"""Tests for fact-dimension relations and the f ⇝ e characterization."""

import pytest

from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import InstanceError, UncertaintyError
from repro.core.factdim import FactDimensionRelation
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import day
from repro.temporal.timeset import ALWAYS, TimeSet

T70S = TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))
T80S = TimeSet.interval(day(1980, 1, 1), day(1989, 12, 31))


@pytest.fixture()
def dimension():
    dim = Dimension(DimensionType(
        "D",
        [CategoryType("Low", is_bottom=True), CategoryType("High")],
        [("Low", "High")],
    ))
    dim.add_value("Low", DimensionValue("l1"))
    dim.add_value("Low", DimensionValue("l2"))
    dim.add_value("High", DimensionValue("h1"))
    dim.add_edge(DimensionValue("l1"), DimensionValue("h1"))
    return dim


F1, F2 = Fact(1, "T"), Fact(2, "T")
L1, L2, H1 = DimensionValue("l1"), DimensionValue("l2"), DimensionValue("h1")


class TestBasePairs:
    def test_add_and_query(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        assert rel.contains(F1, L1)
        assert not rel.contains(F1, L2)
        assert rel.values_of(F1) == {L1}
        assert rel.facts_of(L1) == {F1}
        assert len(rel) == 1

    def test_many_to_many(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        rel.add(F1, L2)
        rel.add(F2, L1)
        assert rel.values_of(F1) == {L1, L2}
        assert rel.facts_of(L1) == {F1, F2}

    def test_timestamped_pair(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, time=T70S)
        assert rel.contains(F1, L1, at=day(1975, 1, 1))
        assert not rel.contains(F1, L1, at=day(1985, 1, 1))
        assert rel.pair_time(F1, L1) == T70S

    def test_same_prob_times_coalesce(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, time=T70S)
        rel.add(F1, L1, time=T80S)
        assert len(rel.annotations(F1, L1)) == 1
        assert rel.pair_time(F1, L1) == T70S.union(T80S)

    def test_different_probs_kept_apart(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, time=T70S, prob=0.9)
        rel.add(F1, L1, time=T80S, prob=0.5)
        assert len(rel.annotations(F1, L1)) == 2

    def test_invalid_prob_rejected(self, dimension):
        rel = FactDimensionRelation("D")
        with pytest.raises(UncertaintyError):
            rel.add(F1, L1, prob=-0.1)

    def test_zero_prob_or_empty_time_skipped(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, prob=0.0)
        rel.add(F1, L1, time=TimeSet.empty())
        assert len(rel) == 0

    def test_remove_fact(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        rel.add(F2, L1)
        rel.remove_fact(F1)
        assert F1 not in rel.facts()
        assert rel.facts_of(L1) == {F2}


class TestCharacterization:
    def test_direct_and_upward(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        assert rel.characterizes(F1, L1, dimension)
        assert rel.characterizes(F1, H1, dimension)  # l1 ≤ h1
        assert not rel.characterizes(F1, L2, dimension)

    def test_characterization_time_composes(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, time=T70S)
        # untimed order edge: characterization limited by the pair time
        assert rel.characterization_time(F1, H1, dimension) == T70S

    def test_characterization_time_cut_by_order(self):
        dim = Dimension(DimensionType(
            "D",
            [CategoryType("Low", is_bottom=True), CategoryType("High")],
            [("Low", "High")],
        ))
        dim.add_value("Low", L1)
        dim.add_value("High", H1)
        dim.add_edge(L1, H1, time=T80S)
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, time=ALWAYS)
        assert rel.characterization_time(F1, H1, dim) == T80S

    def test_characterization_probability(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, prob=0.9)
        assert rel.characterization_probability(F1, H1, dimension) == \
            pytest.approx(0.9)

    def test_facts_characterized_by(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        rel.add(F2, L2)
        assert rel.facts_characterized_by(H1, dimension) == {F1}
        assert rel.facts_characterized_by(L2, dimension) == {F2}

    def test_facts_characterized_by_at_chronon(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1, time=T70S)
        assert rel.facts_characterized_by(
            H1, dimension, at=day(1975, 1, 1)) == {F1}
        assert rel.facts_characterized_by(
            H1, dimension, at=day(1985, 1, 1)) == set()


class TestRestrictionsAndValidation:
    def test_restricted_to_facts(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        rel.add(F2, L2)
        restricted = rel.restricted_to_facts({F1})
        assert restricted.facts() == {F1}

    def test_union_merges_times(self, dimension):
        r1, r2 = FactDimensionRelation("D"), FactDimensionRelation("D")
        r1.add(F1, L1, time=T70S)
        r2.add(F1, L1, time=T80S)
        merged = r1.union(r2)
        assert merged.pair_time(F1, L1) == T70S.union(T80S)

    def test_validate_missing_value(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        with pytest.raises(InstanceError):
            rel.validate_against({F1, F2}, dimension)

    def test_validate_unknown_fact(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        with pytest.raises(InstanceError):
            rel.validate_against({F2}, dimension)

    def test_validate_unknown_value(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, DimensionValue("zz"))
        with pytest.raises(InstanceError):
            rel.validate_against({F1}, dimension)

    def test_validate_passes(self, dimension):
        rel = FactDimensionRelation("D")
        rel.add(F1, L1)
        rel.validate_against({F1}, dimension)
