"""Tests for categories, category types, and representations."""

import pytest

from repro.core.aggtypes import AggregationType
from repro.core.category import Category, CategoryType, Representation
from repro.core.errors import SchemaError
from repro.core.values import DimensionValue
from repro.temporal.chronon import day
from repro.temporal.timeset import ALWAYS, TimeSet

T70S = TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))
T80S = TimeSet.interval(day(1980, 1, 1), day(1989, 12, 31))
V1, V2 = DimensionValue(1), DimensionValue(2)


class TestCategoryType:
    def test_defaults_to_constant(self):
        assert CategoryType("X").aggtype is AggregationType.CONSTANT

    def test_top_factory(self):
        top = CategoryType.top("Diagnosis")
        assert top.is_top
        assert top.name == "⊤Diagnosis"
        assert top.aggtype is AggregationType.CONSTANT


class TestCategory:
    def test_add_and_contains(self):
        cat = Category(CategoryType("X"))
        cat.add(V1)
        assert V1 in cat
        assert V2 not in cat
        assert len(cat) == 1

    def test_timestamped_membership(self):
        cat = Category(CategoryType("X"))
        cat.add(V1, T70S)
        assert cat.contains(V1, at=day(1975, 1, 1))
        assert not cat.contains(V1, at=day(1985, 1, 1))
        assert cat.members(at=day(1985, 1, 1)) == set()

    def test_re_add_coalesces(self):
        cat = Category(CategoryType("X"))
        cat.add(V1, T70S)
        cat.add(V1, T80S)
        assert cat.membership_time(V1) == T70S.union(T80S)

    def test_empty_time_add_is_noop(self):
        cat = Category(CategoryType("X"))
        cat.add(V1, TimeSet.empty())
        assert V1 not in cat

    def test_discard(self):
        cat = Category(CategoryType("X"))
        cat.add(V1)
        cat.discard(V1)
        assert V1 not in cat

    def test_copy_independent(self):
        cat = Category(CategoryType("X"))
        cat.add(V1)
        dup = cat.copy()
        dup.add(V2)
        assert V2 not in cat


class TestRepresentation:
    def test_assign_and_lookup(self):
        rep = Representation("Code")
        rep.assign(V1, "E10")
        assert rep.of(V1) == "E10"
        assert rep.value_of("E10") == V1

    def test_timestamped_assignment(self):
        """Code(8) = 'D1' during the 70s (paper Example 9)."""
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        assert rep.of(V1, at=day(1975, 1, 1)) == "D1"
        assert rep.of(V1, at=day(1985, 1, 1)) is None

    def test_name_change_over_time(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        rep.assign(V1, "E10", T80S)
        assert rep.of(V1, at=day(1975, 1, 1)) == "D1"
        assert rep.of(V1, at=day(1985, 1, 1)) == "E10"
        # with no chronon, the latest name wins
        assert rep.of(V1) == "E10"

    def test_bijectivity_same_value_two_names_overlapping(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        with pytest.raises(SchemaError):
            rep.assign(V1, "XX", T70S)

    def test_bijectivity_same_name_two_values_overlapping(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        with pytest.raises(SchemaError):
            rep.assign(V2, "D1", T70S)

    def test_name_reuse_at_disjoint_times_is_legal(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        rep.assign(V2, "D1", T80S)
        assert rep.value_of("D1", at=day(1975, 1, 1)) == V1
        assert rep.value_of("D1", at=day(1985, 1, 1)) == V2

    def test_assignment_time(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        assert rep.assignment_time(V1, "D1") == T70S
        assert rep.assignment_time(V1, "XX").is_empty()

    def test_re_assign_same_name_coalesces(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        rep.assign(V1, "D1", T80S)
        assert rep.assignment_time(V1, "D1") == T70S.union(T80S)

    def test_check_bijective_at(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        rep.assign(V2, "E10", T70S)
        assert rep.check_bijective_at(day(1975, 1, 1))

    def test_entries_iteration(self):
        rep = Representation("Code")
        rep.assign(V1, "D1", T70S)
        entries = list(rep.entries())
        assert entries == [(V1, "D1", T70S)]
