"""Tests for multidimensional objects and MO families."""

import pytest

from repro.core.errors import InstanceError, SchemaError
from repro.core.helpers import make_simple_dimension
from repro.core.mo import MOFamily, MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact


def build_mo():
    d1 = make_simple_dimension("A", ["a1", "a2"])
    d2 = make_simple_dimension("B", ["b1"])
    schema = FactSchema("T", [d1.dtype, d2.dtype])
    return MultidimensionalObject(schema=schema,
                                  dimensions={"A": d1, "B": d2})


class TestConstruction:
    def test_dimensions_default_to_empty(self):
        d = make_simple_dimension("A", [])
        mo = MultidimensionalObject(FactSchema("T", [d.dtype]))
        assert mo.dimension("A").values() == {mo.dimension("A").top_value}

    def test_extra_dimension_rejected(self):
        d1 = make_simple_dimension("A", [])
        d2 = make_simple_dimension("B", [])
        with pytest.raises(SchemaError):
            MultidimensionalObject(FactSchema("T", [d1.dtype]),
                                   dimensions={"A": d1, "B": d2})

    def test_accessors(self):
        mo = build_mo()
        assert mo.n == 2
        assert list(mo.dimension_names) == ["A", "B"]
        assert len(mo.dimensions()) == 2
        assert len(mo.relations()) == 2
        with pytest.raises(SchemaError):
            mo.dimension("C")
        with pytest.raises(SchemaError):
            mo.relation("C")


class TestPopulation:
    def test_add_fact_checks_type(self):
        mo = build_mo()
        with pytest.raises(InstanceError):
            mo.add_fact(Fact(1, "Wrong"))

    def test_relate_adds_fact(self):
        mo = build_mo()
        f = Fact(1, "T")
        mo.relate(f, "A", DimensionValue("a1"))
        assert f in mo
        assert len(mo) == 1

    def test_relate_unknown_value_rejected(self):
        mo = build_mo()
        with pytest.raises(InstanceError):
            mo.relate(Fact(1, "T"), "A", DimensionValue("zz"))

    def test_relate_unknown_uses_top(self):
        mo = build_mo()
        f = Fact(1, "T")
        mo.relate_unknown(f, "A")
        assert mo.relation("A").values_of(f) == \
            {mo.dimension("A").top_value}


class TestValidation:
    def test_missing_value_fails_validation(self):
        mo = build_mo()
        f = Fact(1, "T")
        mo.relate(f, "A", DimensionValue("a1"))
        with pytest.raises(InstanceError):
            mo.validate()  # no value in B
        assert not mo.is_valid()

    def test_complete_mo_validates(self):
        mo = build_mo()
        f = Fact(1, "T")
        mo.relate(f, "A", DimensionValue("a1"))
        mo.relate(f, "B", DimensionValue("b1"))
        mo.validate()
        assert mo.is_valid()

    def test_top_pairs_satisfy_no_missing_values(self):
        mo = build_mo()
        f = Fact(1, "T")
        mo.relate(f, "A", DimensionValue("a1"))
        mo.relate_unknown(f, "B")
        mo.validate()


class TestGroupAndCopy:
    def test_group(self):
        mo = build_mo()
        f1, f2 = Fact(1, "T"), Fact(2, "T")
        a1, a2, b1 = (DimensionValue("a1"), DimensionValue("a2"),
                      DimensionValue("b1"))
        mo.relate(f1, "A", a1)
        mo.relate(f2, "A", a2)
        mo.relate(f1, "B", b1)
        mo.relate(f2, "B", b1)
        assert mo.group({"A": a1}) == {f1}
        assert mo.group({"B": b1}) == {f1, f2}
        assert mo.group({"A": a1, "B": b1}) == {f1}
        assert mo.group({}) == {f1, f2}

    def test_copy_independent(self):
        mo = build_mo()
        f = Fact(1, "T")
        mo.relate(f, "A", DimensionValue("a1"))
        mo.relate(f, "B", DimensionValue("b1"))
        dup = mo.copy()
        dup.relate(Fact(2, "T"), "A", DimensionValue("a2"))
        assert len(mo) == 1 and len(dup) == 2

    def test_with_kind(self):
        mo = build_mo()
        assert mo.with_kind(TimeKind.VALID).kind is TimeKind.VALID
        assert mo.kind is TimeKind.SNAPSHOT


class TestMOFamily:
    def test_members(self):
        family = MOFamily()
        family.add("base", build_mo())
        assert family.member("base").n == 2
        assert family.names() == ["base"]
        assert len(family) == 1

    def test_duplicate_name_rejected(self):
        family = MOFamily()
        family.add("base", build_mo())
        with pytest.raises(SchemaError):
            family.add("base", build_mo())

    def test_unknown_member_rejected(self):
        with pytest.raises(SchemaError):
            MOFamily().member("nope")

    def test_shared_dimension_names(self):
        family = MOFamily()
        family.add("m1", build_mo())
        d = make_simple_dimension("A", ["a1"])
        other = MultidimensionalObject(FactSchema("U", [d.dtype]),
                                       dimensions={"A": d})
        family.add("m2", other)
        assert family.shared_dimension_names("m1", "m2") == {"A"}

    def test_subdimension_shared(self):
        family = MOFamily()
        m1 = build_mo()
        family.add("m1", m1)
        d = make_simple_dimension("A", ["a1"])  # subset of m1's A values
        m2 = MultidimensionalObject(FactSchema("U", [d.dtype]),
                                    dimensions={"A": d})
        family.add("m2", m2)
        assert family.is_subdimension_shared("m1", "m2", "A")
