"""Property tests for dimension-level laws: union of dimensions,
subdimensions, and rename round-trips."""

from hypothesis import HealthCheck, given, settings

from repro.algebra import rename, rename_dimension, validate_closed
from tests.strategies import small_dimensions, small_mos

_settings = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _order_pairs(dimension):
    return {
        (child.sid, parent.sid)
        for child, parent, _, _ in dimension.order.edges()
    }


def _members(dimension):
    return {
        (category.name, value.sid)
        for category in dimension.categories()
        for value in category
        if not value.is_top
    }


@_settings
@given(small_dimensions(name="D"), small_dimensions(name="D"))
def test_dimension_union_commutes(pair1, pair2):
    d1, _ = pair1
    d2, _ = pair2
    if set(c.name for c in d1.categories()) != \
            set(c.name for c in d2.categories()):
        return
    ab = d1.union(d2)
    ba = d2.union(d1)
    assert _members(ab) == _members(ba)
    assert _order_pairs(ab) == _order_pairs(ba)


@_settings
@given(small_dimensions(name="D"))
def test_union_with_self_is_identity(pair):
    dimension, _ = pair
    merged = dimension.union(dimension)
    assert _members(merged) == _members(dimension)
    assert _order_pairs(merged) == _order_pairs(dimension)


@_settings
@given(small_dimensions(name="D"))
def test_subdimension_of_all_categories_preserves_order(pair):
    dimension, _ = pair
    names = [c.name for c in dimension.categories()
             if not c.ctype.is_top]
    sub = dimension.subdimension(names)
    assert _members(sub) == _members(dimension)
    # the closure is preserved even if direct edges got re-routed
    for child, parent, _, _ in dimension.order.edges():
        assert sub.leq(child, parent)


@_settings
@given(small_dimensions(name="D"))
def test_subdimension_restriction_is_closure_restriction(pair):
    """e1 ≤' e2 in the subdimension iff e1 ≤ e2 held and both survive —
    the paper's subdimension definition."""
    dimension, values_per_level = pair
    if len(values_per_level) < 2:
        return
    keep_names = [dimension.category_name_of(values_per_level[0][0]),
                  dimension.category_name_of(values_per_level[-1][0])]
    sub = dimension.subdimension(list(dict.fromkeys(keep_names)))
    surviving = [v for level in (values_per_level[0],
                                 values_per_level[-1]) for v in level
                 if v in sub]
    for a in surviving:
        for b in surviving:
            assert sub.leq(a, b) == dimension.leq(a, b)


@_settings
@given(small_dimensions(name="D", temporal=True))
def test_rename_dimension_roundtrip(pair):
    dimension, _ = pair
    there = rename_dimension(dimension, "E")
    back = rename_dimension(there, "D")
    assert _members(back) == _members(dimension)
    assert _order_pairs(back) == _order_pairs(dimension)
    for child, parent, time, prob in dimension.order.edges():
        assert back.containment_time(child, parent) == \
            dimension.containment_time(child, parent)


@_settings
@given(small_mos(n_dims=2))
def test_mo_rename_roundtrip(mo):
    mapping = {name: f"{name}_x" for name in mo.dimension_names}
    inverse = {f"{name}_x": name for name in mo.dimension_names}
    back = rename(rename(mo, dimension_map=mapping),
                  dimension_map=inverse)
    assert validate_closed(back).ok
    assert back.facts == mo.facts
    for name in mo.dimension_names:
        assert set(back.relation(name).pairs()) == \
            set(mo.relation(name).pairs())
