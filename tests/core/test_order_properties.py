"""Property-based tests of the annotated order's composition rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.order import AnnotatedOrder, piecewise_noisy_or
from tests.strategies import probabilities, timesets


@given(timesets(), timesets(), probabilities, probabilities)
def test_two_edge_chain_composes(t1, t2, p1, p2):
    """a ≤_{T1,p1} b ∧ b ≤_{T2,p2} c ⇒ a ≤_{T1∩T2, p1·p2} c."""
    order = AnnotatedOrder()
    order.add_edge("a", "b", time=t1, prob=p1)
    order.add_edge("b", "c", time=t2, prob=p2)
    expected_time = t1.intersection(t2)
    assert order.containment_time("a", "c") == expected_time
    if not expected_time.is_empty():
        assert abs(order.containment_probability("a", "c") - p1 * p2) < 1e-9


@given(timesets(), timesets())
def test_parallel_paths_union_times(t1, t2):
    order = AnnotatedOrder()
    order.add_edge("a", "b1", time=t1)
    order.add_edge("b1", "c", time=t1)
    order.add_edge("a", "b2", time=t2)
    order.add_edge("b2", "c", time=t2)
    assert order.containment_time("a", "c") == t1.union(t2)


@given(st.lists(st.tuples(timesets(), probabilities), max_size=5))
def test_noisy_or_profile_is_partition(contribs):
    """The profile pieces are pairwise disjoint, their union is the
    union of the inputs (with positive probability), and every
    probability is in (0, 1]."""
    profile = piecewise_noisy_or(contribs)
    union = None
    for i, (t, p) in enumerate(profile):
        assert 0.0 < p <= 1.0 + 1e-12
        assert not t.is_empty()
        for t2, _ in profile[i + 1:]:
            assert not t.overlaps(t2)
        union = t if union is None else union.union(t)
    expected = None
    for t, p in contribs:
        if p > 0 and not t.is_empty():
            expected = t if expected is None else expected.union(t)
    if expected is None:
        assert union is None
    else:
        assert union == expected


@given(st.lists(st.tuples(timesets(), probabilities), min_size=1,
                max_size=4))
def test_noisy_or_bounded_by_max_and_sum(contribs):
    """On any piece, the combined probability is at least the max and at
    most the sum of the covering contributions."""
    profile = piecewise_noisy_or(contribs)
    for piece, prob in profile:
        sample = piece.min()
        covering = [p for t, p in contribs if sample in t and p > 0]
        assert prob >= max(covering) - 1e-9
        assert prob <= min(1.0, sum(covering)) + 1e-9


@given(st.lists(st.tuples(timesets(), st.just(1.0)), min_size=1, max_size=4))
def test_certain_contributions_stay_certain(contribs):
    for _, prob in piecewise_noisy_or(contribs):
        assert abs(prob - 1.0) < 1e-12
