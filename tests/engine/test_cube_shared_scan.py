"""Shared-scan cube materialization: equivalence properties and
observability.

The load-bearing property: materializing the cuboid lattice with shared
scans — coarser cuboids combined from their smallest stored parent —
produces cells *byte-identical* to materializing every cuboid
independently from the base characterization maps, and group-identical
to running the α operator once per cuboid.  This must hold for
distributive and non-distributive functions, and on MOs with
non-summarizable groupings (many-to-many, non-strict, or
mixed-granularity hierarchies), where the engine's per-dimension
coverage gate must refuse the rollup and base-scan instead.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import HealthCheck, given, settings

from repro.algebra import SetCount, aggregate
from repro.algebra.functions import SQLFunction
from repro.core.helpers import make_result_spec
from repro.core.values import Fact
from repro.engine.cube import CubeBuilder
from repro.obs import metrics

from tests.strategies import small_mos

_PROPERTY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class NonDistributiveCount(SetCount):
    """Set-count with distributivity switched off: same answers as
    :class:`SetCount` on every group, but the engine may never combine
    it from parent cells — the property below proves the base-scan
    fallback computes the same lattice."""

    distributive = False
    required_function = SQLFunction.COUNT


def _assert_lattices_identical(mo, function):
    """Materialize the full lattice with and without shared scans and
    assert every stored cuboid's cells and groups are byte-identical."""
    shared = CubeBuilder(mo, function=function, shared_scan=True)
    base = CubeBuilder(mo, function=function, shared_scan=False)
    shared.materialize_all()
    base.materialize_all()
    compared = 0
    for grouping, _name, stored in shared.store.entries():
        other = base.store.get(function, grouping)
        assert other is not None, f"base path lacks {grouping}"
        assert stored.results == other.results, f"cells differ at {grouping}"
        assert stored.groups == other.groups, f"groups differ at {grouping}"
        compared += 1
    # both paths materialized the same set of cuboids
    assert compared == sum(1 for _ in base.store.entries())
    return shared


@given(mo=small_mos())
@_PROPERTY_SETTINGS
def test_shared_scan_byte_identical_distributive(mo):
    _assert_lattices_identical(mo, SetCount())


@given(mo=small_mos())
@_PROPERTY_SETTINGS
def test_shared_scan_byte_identical_non_distributive(mo):
    """A non-distributive function forbids every rollup; the lattice
    must still come out identical (and entirely via base scans)."""
    shared = _assert_lattices_identical(mo, NonDistributiveCount())
    for _grouping, _name, stored in shared.store.entries():
        assert stored.via == "base"


def _row_key(row):
    # equal frozensets built in different insertion orders can repr
    # their elements in different orders, so sorting rows by plain repr
    # is not canonical — sort element reprs inside each set first
    combos, count = row
    return ([sorted(map(repr, values)) for values in combos], count)


def _store_rows(stored):
    """Canonical rows of a stored cuboid, merged the way α merges:
    groups with identical member sets collapse into one set-fact whose
    relation carries every combination's values."""
    merged = {}
    for combo, facts in stored.groups.items():
        merged.setdefault(frozenset(facts), []).append(combo)
    width = len(next(iter(stored.groups), ()))
    rows = [
        (tuple(frozenset(c[i] for c in combos) for i in range(width)),
         len(members))
        for members, combos in merged.items()
    ]
    return sorted(rows, key=_row_key)


def _alpha_rows(mo, grouping_names, agg):
    rows = [
        (tuple(frozenset(agg.relation(n).values_of(fact))
               for n in grouping_names),
         len(fact.members))
        for fact in agg.facts
    ]
    return sorted(rows, key=_row_key)


@given(mo=small_mos())
@_PROPERTY_SETTINGS
def test_shared_scan_matches_per_cuboid_aggregate(mo):
    """Satellite: shared-scan ``materialize_all`` ≡ per-cuboid α.  Every
    stored cuboid's groups and set-count cells match the groups the α
    operator forms for that cuboid's grouping (naive path, no index)."""
    shared = CubeBuilder(mo, function=SetCount(), shared_scan=True)
    shared.materialize_all()
    spec = make_result_spec()
    for grouping, _name, stored in shared.store.entries():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            agg = aggregate(mo, SetCount(), dict(grouping), spec,
                            strict_types=False, use_index=False)
        names = sorted(grouping)
        assert _store_rows(stored) == _alpha_rows(mo, names, agg), (
            f"α disagrees with the shared-scan store at {grouping}"
        )


class TestCounters:
    def test_rollups_and_fallbacks_are_counted(self, small_clinical):
        mo = small_clinical.mo
        rollups = metrics.counter("cube.rollup_from_parent")
        fallbacks = metrics.counter("cube.base_scan_fallback")
        r0, f0 = rollups.value, fallbacks.value
        builder = CubeBuilder(mo, dimensions=("Diagnosis", "Residence"),
                              shared_scan=True)
        builder.materialize_all()
        # Residence is strict and single-valued per patient, so its
        # coarsenings roll up; Diagnosis is many-to-many with mixed
        # granularity, so its coarsenings must base-scan
        assert rollups.value > r0
        assert fallbacks.value > f0
        rolled = [stored for _g, _n, stored in builder.store.entries()
                  if stored.via == "rollup"]
        assert rolled, "no cuboid was combined from a parent"
        for stored in rolled:
            assert stored.source_grouping is not None
            assert stored.source_size >= len(stored.results)

    def test_parent_size_histogram_observes_rollups(self, small_clinical):
        mo = small_clinical.mo
        histogram = metrics.histogram("cube.parent_size")
        before = histogram.count
        CubeBuilder(mo, dimensions=("Diagnosis", "Residence"),
                    shared_scan=True).materialize_all()
        assert histogram.count > before

    def test_shared_scan_off_never_rolls_up(self, small_clinical):
        mo = small_clinical.mo
        rollups = metrics.counter("cube.rollup_from_parent")
        before = rollups.value
        CubeBuilder(mo, dimensions=("Diagnosis", "Residence"),
                    shared_scan=False).materialize_all()
        assert rollups.value == before


class TestCuboidCacheStaleness:
    """Satellite regression: ``CubeBuilder._cuboids`` used to cache
    sizes and verdicts forever, surviving MO mutations."""

    def test_cuboid_size_refreshes_after_relate(self, strict_clinical):
        generated = strict_clinical
        mo = generated.mo.copy()
        builder = CubeBuilder(mo, dimensions=("Diagnosis",))
        key = ("Diagnosis Family",)
        before = builder.cuboid(key).size
        # relate a fresh patient to a low-level under a family with no
        # other patients?  Simpler: a brand-new fact under any value
        # grows every cuboid of the Diagnosis lattice by at most one
        # group and the base size by exactly the new characterizations
        fact = Fact(fid=("stale-probe", 1), ftype=generated.mo.schema.fact_type)
        mo.relate(fact, "Diagnosis", generated.icd.low_levels[0])
        after = builder.cuboid(key).size
        index_size = builder.size_of(key)
        assert after == index_size
        assert builder.cuboid(key) is builder.cuboid(key)  # re-cached
        assert before <= after

    def test_materialized_sizes_match_sizing_fast_path(self, small_clinical):
        mo = small_clinical.mo
        builder = CubeBuilder(mo, dimensions=("Diagnosis", "Residence"))
        for cuboid in builder.materialize_all():
            assert cuboid.size == builder.size_of(cuboid.key)
