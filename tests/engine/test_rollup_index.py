"""Equivalence and invalidation tests for the rollup-index layer.

The property tests compare every indexed query against the naive
traversal it replaces — `facts_characterized_by` (untimed and at a
chronon) against the relation's descendant walk, and indexed aggregate
formation against ``aggregate(use_index=False)`` — over random MOs from
:mod:`tests.strategies`.  The unit tests pin the versioned-invalidation
contract: mutations dirty exactly the touched dimension, copies of
relations carry independent version counters, and rebuilt tables always
reflect the current state.
"""

from __future__ import annotations

import warnings

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import SetCount, aggregate
from repro.core.helpers import make_result_spec, make_simple_dimension
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import Fact
from tests.strategies import chronons, small_mos

_settings = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _all_values(mo, name):
    """Every value worth querying: all category members, ⊤, and every
    value the relation mentions (whether or not the order knows it)."""
    dimension = mo.dimension(name)
    values = {v for category in dimension.categories() for v in category}
    values.add(dimension.top_value)
    values |= mo.relation(name).values()
    return values


# -- characterization equivalence -------------------------------------------


@_settings
@given(small_mos())
def test_facts_characterized_by_matches_naive(mo):
    index = mo.rollup_index()
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        relation = mo.relation(name)
        for value in _all_values(mo, name):
            indexed = index.facts_characterized_by(name, value)
            naive = relation.facts_characterized_by(value, dimension)
            assert indexed == naive


@_settings
@given(small_mos(temporal=True), chronons)
def test_facts_characterized_by_matches_naive_at_chronon(mo, t):
    index = mo.rollup_index()
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        relation = mo.relation(name)
        for value in _all_values(mo, name):
            indexed = index.facts_characterized_by(name, value, at=t)
            naive = relation.facts_characterized_by(value, dimension, at=t)
            assert indexed == naive


@_settings
@given(small_mos())
def test_equivalence_survives_mutation(mo):
    """Queries after a relate() must reflect the new pair — the lazy
    invalidation may never serve a stale closure."""
    index = mo.rollup_index()
    for name in mo.dimension_names:
        for value in _all_values(mo, name):
            index.facts_characterized_by(name, value)
    if not mo.facts:
        return
    fact = next(iter(mo.facts))
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        target = dimension.top_value
        for category in dimension.categories():
            for value in category:
                target = value
                break
        mo.relate(fact, name, target)
        indexed = index.facts_characterized_by(name, target)
        naive = mo.relation(name).facts_characterized_by(target, dimension)
        assert fact in indexed
        assert indexed == naive


# -- aggregate equivalence --------------------------------------------------


def _canonical(agg, names, result_name):
    """An order- and identity-insensitive view of an α result: one row
    per set-fact with its grouping values, result values, and members."""
    rows = []
    for fact in agg.facts:
        rows.append((
            tuple(frozenset(agg.relation(n).values_of(fact)) for n in names),
            frozenset(agg.relation(result_name).values_of(fact)),
            frozenset(getattr(fact, "members", ())),
        ))
    rows.sort(key=repr)
    return rows


def _draw_grouping(mo, data):
    grouping = {}
    for name in mo.dimension_names:
        names = [c.name for c in mo.dimension(name).dtype.category_types()]
        choice = data.draw(st.sampled_from([None] + names), label=name)
        if choice is not None:
            grouping[name] = choice
    return grouping


def _both_aggregates(mo, grouping, at=None):
    results = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for use_index in (True, False):
            results.append(aggregate(
                mo, SetCount(), grouping, make_result_spec(name="Res"),
                strict_types=False, at=at, use_index=use_index))
    return results


@_settings
@given(small_mos(), st.data())
def test_aggregate_indexed_matches_naive(mo, data):
    grouping = _draw_grouping(mo, data)
    indexed, naive = _both_aggregates(mo, grouping)
    names = sorted(mo.dimension_names)
    assert (_canonical(indexed, names, "Res")
            == _canonical(naive, names, "Res"))


@_settings
@given(small_mos(temporal=True), chronons, st.data())
def test_aggregate_indexed_matches_naive_at_chronon(mo, t, data):
    grouping = _draw_grouping(mo, data)
    indexed, naive = _both_aggregates(mo, grouping, at=t)
    names = sorted(mo.dimension_names)
    assert (_canonical(indexed, names, "Res")
            == _canonical(naive, names, "Res"))


@_settings
@given(small_mos(probabilistic=True), st.data())
def test_aggregate_indexed_matches_naive_probabilistic(mo, data):
    grouping = _draw_grouping(mo, data)
    indexed, naive = _both_aggregates(mo, grouping)
    names = sorted(mo.dimension_names)
    assert (_canonical(indexed, names, "Res")
            == _canonical(naive, names, "Res"))


# -- versioned invalidation -------------------------------------------------


def _value_of(dimension, sid):
    for category in dimension.categories():
        for value in category:
            if value.sid == sid:
                return value
    raise AssertionError(f"no value {sid!r}")


def _tiny_mo():
    a = make_simple_dimension("A", [1, 2, 3])
    b = make_simple_dimension("B", ["x", "y"])
    schema = FactSchema("T", [a.dtype, b.dtype])
    mo = MultidimensionalObject(schema=schema,
                                dimensions={"A": a, "B": b})
    facts = [Fact(fid=i, ftype="T") for i in range(3)]
    for i, fact in enumerate(facts):
        mo.add_fact(fact)
        mo.relate(fact, "A", _value_of(a, (i % 3) + 1))
        mo.relate(fact, "B", _value_of(b, "x" if i % 2 == 0 else "y"))
    return mo, facts


class TestInvalidation:
    def test_repeated_queries_build_once_per_dimension(self):
        mo, _ = _tiny_mo()
        index = mo.rollup_index()
        assert mo.rollup_index() is index  # one shared instance per MO
        for _ in range(3):
            index.group_counts("A", "A")
            index.group_counts("B", "B")
        assert index.build_count == 2
        assert index.is_fresh("A") and index.is_fresh("B")

    def test_relate_dirties_only_the_touched_dimension(self):
        mo, facts = _tiny_mo()
        index = mo.rollup_index()
        index.group_counts("A", "A")
        index.group_counts("B", "B")
        value = _value_of(mo.dimension("A"), 2)
        before = index.facts_characterized_by("A", value)
        assert facts[0] not in before
        mo.relate(facts[0], "A", value)
        assert not index.is_fresh("A")
        assert index.is_fresh("B")
        after = index.facts_characterized_by("A", value)
        assert facts[0] in after
        # the single pair addition is applied as a delta: no dimension
        # pays a full closure rebuild
        assert index.build_count == 2
        assert index.delta_count == 1
        index.group_counts("B", "B")
        assert index.build_count == 2

    def test_relate_rebuilds_when_delta_disabled(self):
        mo, facts = _tiny_mo()
        index = mo.rollup_index()
        index.delta_enabled = False
        index.group_counts("A", "A")
        index.group_counts("B", "B")
        value = _value_of(mo.dimension("A"), 2)
        mo.relate(facts[0], "A", value)
        assert facts[0] in index.facts_characterized_by("A", value)
        assert index.build_count == 3  # only A rebuilt, the old way
        assert index.delta_count == 0

    def test_add_edge_dirties_the_dimension(self):
        mo, facts = _tiny_mo()
        dimension = mo.dimension("A")
        index = mo.rollup_index()
        one, two = _value_of(dimension, 1), _value_of(dimension, 2)
        assert facts[0] not in index.facts_characterized_by("A", two)
        dimension.add_edge(one, two)
        assert not index.is_fresh("A")
        # fact 0 sits on value 1, which now rolls up into value 2
        assert facts[0] in index.facts_characterized_by("A", two)

    def test_remove_fact_dirties_the_dimension(self):
        mo, facts = _tiny_mo()
        index = mo.rollup_index()
        value = _value_of(mo.dimension("A"), 1)
        assert facts[0] in index.facts_characterized_by("A", value)
        mo.relation("A").remove_fact(facts[0])
        assert facts[0] not in index.facts_characterized_by("A", value)

    def test_remove_unrelated_fact_keeps_the_index_fresh(self):
        mo, _ = _tiny_mo()
        index = mo.rollup_index()
        index.group_counts("A", "A")
        version = mo.relation("A").version
        mo.relation("A").remove_fact(Fact(fid=999, ftype="T"))
        assert mo.relation("A").version == version
        assert index.is_fresh("A")

    def test_explicit_invalidate_forces_a_rebuild(self):
        mo, _ = _tiny_mo()
        index = mo.rollup_index()
        before = index.group_counts("A", "A")
        builds = index.build_count
        index.invalidate("A")
        assert index.group_counts("A", "A") == before
        assert index.build_count == builds + 1

    def test_top_closure_is_the_whole_relation(self):
        mo, facts = _tiny_mo()
        index = mo.rollup_index()
        top = mo.dimension("A").top_value
        assert index.facts_characterized_by("A", top) == frozenset(facts)


class TestCopySemantics:
    """Satellite: union / restricted_to_facts / copy produce relations
    with independent version counters, so an index can never observe
    stale closures through a copy (or dodge invalidation because a copy
    was mutated instead of the original)."""

    def test_copy_versions_are_independent(self):
        mo, facts = _tiny_mo()
        relation = mo.relation("A")
        clone = relation.copy()
        assert clone is not relation
        version = relation.version
        clone.remove_fact(facts[0])
        assert relation.version == version  # original untouched

    def test_mutating_a_copy_never_affects_indexed_answers(self):
        mo, facts = _tiny_mo()
        index = mo.rollup_index()
        value = _value_of(mo.dimension("A"), 1)
        before = index.facts_characterized_by("A", value)
        for derived in (
            mo.relation("A").copy(),
            mo.relation("A").restricted_to_facts({facts[0]}),
            mo.relation("A").union(mo.relation("A").copy()),
        ):
            derived.remove_fact(facts[0])
            assert index.is_fresh("A")
            assert index.facts_characterized_by("A", value) == before

    def test_mo_copy_gets_its_own_index(self):
        mo, facts = _tiny_mo()
        original_index = mo.rollup_index()
        value = _value_of(mo.dimension("A"), 1)
        before = original_index.facts_characterized_by("A", value)
        clone = mo.copy()
        clone_index = clone.rollup_index()
        assert clone_index is not original_index
        clone.relation("A").remove_fact(facts[0])
        assert facts[0] not in clone_index.facts_characterized_by("A", value)
        assert original_index.is_fresh("A")
        assert original_index.facts_characterized_by("A", value) == before

    def test_derived_relation_content_is_correct_through_a_new_mo(self):
        """An MO assembled from restricted relations answers from its
        own (fresh) index, not the source MO's closures."""
        mo, facts = _tiny_mo()
        mo.rollup_index().group_counts("A", "A")  # warm the source index
        keep = {facts[0], facts[1]}
        restricted = MultidimensionalObject(
            schema=mo.schema,
            facts=keep,
            dimensions={n: mo.dimension(n) for n in mo.dimension_names},
            relations={n: mo.relation(n).restricted_to_facts(keep)
                       for n in mo.dimension_names},
        )
        top = restricted.dimension("A").top_value
        assert (restricted.rollup_index().facts_characterized_by("A", top)
                == frozenset(keep))
