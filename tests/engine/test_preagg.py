"""Tests for summarizability-gated pre-aggregation (paper §3.4)."""

import pytest

from repro.algebra import Avg, SetCount, Sum
from repro.core.errors import AlgebraError
from repro.engine import PreAggregateStore


class TestMaterialize:
    def test_results_match_direct(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        materialized = store.materialize(SetCount(),
                                         {"Diagnosis": "Diagnosis Group"})
        total = sum(materialized.results.values())
        assert total >= len(strict_clinical.mo.facts)

    def test_verdict_recorded(self, strict_clinical, small_clinical):
        good = PreAggregateStore(strict_clinical.mo).materialize(
            SetCount(), {"Diagnosis": "Diagnosis Group"})
        assert good.summarizability.summarizable
        bad = PreAggregateStore(small_clinical.mo).materialize(
            SetCount(), {"Diagnosis": "Diagnosis Group"})
        assert not bad.summarizability.summarizable

    def test_get_roundtrip(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        assert store.get(SetCount(),
                         {"Diagnosis": "Diagnosis Family"}) is not None
        assert store.get(SetCount(),
                         {"Diagnosis": "Diagnosis Group"}) is None

    def test_empty_grouping_grand_total(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        materialized = store.materialize(SetCount(), {})
        assert materialized.results == {
            (): len(strict_clinical.mo.facts)}


class TestRollUpReuse:
    def test_safe_reuse_matches_direct(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        combined = store.roll_up(SetCount(),
                                 {"Diagnosis": "Diagnosis Family"},
                                 {"Diagnosis": "Diagnosis Group"})
        direct = store.compute_from_base(SetCount(),
                                         {"Diagnosis": "Diagnosis Group"})
        assert {k[0].sid: v for k, v in combined.items()} == \
            {k[0].sid: v for k, v in direct.items()}

    def test_sum_reuse(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(Sum("Age"), {"Diagnosis": "Diagnosis Family"})
        combined = store.roll_up(Sum("Age"),
                                 {"Diagnosis": "Diagnosis Family"},
                                 {"Diagnosis": "Diagnosis Group"})
        direct = store.compute_from_base(Sum("Age"),
                                         {"Diagnosis": "Diagnosis Group"})
        assert {k[0].sid: v for k, v in combined.items()} == \
            {k[0].sid: v for k, v in direct.items()}

    def test_non_strict_reuse_refused(self, small_clinical):
        """The paper's point: non-summarizable partials must not be
        combined (double counting)."""
        store = PreAggregateStore(small_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        with pytest.raises(AlgebraError):
            store.roll_up(SetCount(), {"Diagnosis": "Diagnosis Family"},
                          {"Diagnosis": "Diagnosis Group"})

    def test_non_strict_combination_would_be_wrong(self, small_clinical):
        """Demonstrate the error the refusal prevents: naively summing
        family counts over-counts group totals."""
        store = PreAggregateStore(small_clinical.mo)
        fine = store.materialize(SetCount(),
                                 {"Diagnosis": "Diagnosis Family"})
        coarse = store.compute_from_base(SetCount(),
                                         {"Diagnosis": "Diagnosis Group"})
        dim = small_clinical.mo.dimension("Diagnosis")
        naive = {}
        for (family,), count in fine.results.items():
            for parent in dim.ancestors(family, reflexive=False):
                if parent in dim.category("Diagnosis Group"):
                    naive[parent] = naive.get(parent, 0) + count
        correct = {k[0]: v for k, v in coarse.items()}
        assert any(naive[g] > correct[g] for g in naive)

    def test_avg_reuse_refused(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(Avg("Age"), {"Diagnosis": "Diagnosis Family"})
        with pytest.raises(AlgebraError):
            store.roll_up(Avg("Age"), {"Diagnosis": "Diagnosis Family"},
                          {"Diagnosis": "Diagnosis Group"})

    def test_missing_materialization_refused(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        with pytest.raises(AlgebraError):
            store.roll_up(SetCount(), {"Diagnosis": "Diagnosis Family"},
                          {"Diagnosis": "Diagnosis Group"})

    def test_downward_reuse_refused(self, strict_clinical):
        """Coarse results cannot answer finer queries."""
        store = PreAggregateStore(strict_clinical.mo)
        stored = store.materialize(SetCount(),
                                   {"Diagnosis": "Diagnosis Group"})
        assert not store.can_roll_up(
            stored, SetCount(), {"Diagnosis": "Diagnosis Family"})
