"""Tests for summarizability-gated pre-aggregation (paper §3.4)."""

import pytest

from repro.algebra import Avg, SetCount, Sum
from repro.core.errors import AlgebraError
from repro.engine import PreAggregateStore


class TestMaterialize:
    def test_results_match_direct(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        materialized = store.materialize(SetCount(),
                                         {"Diagnosis": "Diagnosis Group"})
        total = sum(materialized.results.values())
        assert total >= len(strict_clinical.mo.facts)

    def test_verdict_recorded(self, strict_clinical, small_clinical):
        good = PreAggregateStore(strict_clinical.mo).materialize(
            SetCount(), {"Diagnosis": "Diagnosis Group"})
        assert good.summarizability.summarizable
        bad = PreAggregateStore(small_clinical.mo).materialize(
            SetCount(), {"Diagnosis": "Diagnosis Group"})
        assert not bad.summarizability.summarizable

    def test_get_roundtrip(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        assert store.get(SetCount(),
                         {"Diagnosis": "Diagnosis Family"}) is not None
        assert store.get(SetCount(),
                         {"Diagnosis": "Diagnosis Group"}) is None

    def test_empty_grouping_grand_total(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        materialized = store.materialize(SetCount(), {})
        assert materialized.results == {
            (): len(strict_clinical.mo.facts)}


class TestRollUpReuse:
    def test_safe_reuse_matches_direct(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        combined = store.roll_up(SetCount(),
                                 {"Diagnosis": "Diagnosis Family"},
                                 {"Diagnosis": "Diagnosis Group"})
        direct = store.compute_from_base(SetCount(),
                                         {"Diagnosis": "Diagnosis Group"})
        assert {k[0].sid: v for k, v in combined.items()} == \
            {k[0].sid: v for k, v in direct.items()}

    def test_sum_reuse(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(Sum("Age"), {"Diagnosis": "Diagnosis Family"})
        combined = store.roll_up(Sum("Age"),
                                 {"Diagnosis": "Diagnosis Family"},
                                 {"Diagnosis": "Diagnosis Group"})
        direct = store.compute_from_base(Sum("Age"),
                                         {"Diagnosis": "Diagnosis Group"})
        assert {k[0].sid: v for k, v in combined.items()} == \
            {k[0].sid: v for k, v in direct.items()}

    def test_non_strict_reuse_refused(self, small_clinical):
        """The paper's point: non-summarizable partials must not be
        combined (double counting)."""
        store = PreAggregateStore(small_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        with pytest.raises(AlgebraError):
            store.roll_up(SetCount(), {"Diagnosis": "Diagnosis Family"},
                          {"Diagnosis": "Diagnosis Group"})

    def test_non_strict_combination_would_be_wrong(self, small_clinical):
        """Demonstrate the error the refusal prevents: naively summing
        family counts over-counts group totals."""
        store = PreAggregateStore(small_clinical.mo)
        fine = store.materialize(SetCount(),
                                 {"Diagnosis": "Diagnosis Family"})
        coarse = store.compute_from_base(SetCount(),
                                         {"Diagnosis": "Diagnosis Group"})
        dim = small_clinical.mo.dimension("Diagnosis")
        naive = {}
        for (family,), count in fine.results.items():
            for parent in dim.ancestors(family, reflexive=False):
                if parent in dim.category("Diagnosis Group"):
                    naive[parent] = naive.get(parent, 0) + count
        correct = {k[0]: v for k, v in coarse.items()}
        assert any(naive[g] > correct[g] for g in naive)

    def test_avg_reuse_refused(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(Avg("Age"), {"Diagnosis": "Diagnosis Family"})
        with pytest.raises(AlgebraError):
            store.roll_up(Avg("Age"), {"Diagnosis": "Diagnosis Family"},
                          {"Diagnosis": "Diagnosis Group"})

    def test_missing_materialization_refused(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        with pytest.raises(AlgebraError):
            store.roll_up(SetCount(), {"Diagnosis": "Diagnosis Family"},
                          {"Diagnosis": "Diagnosis Group"})

    def test_downward_reuse_refused(self, strict_clinical):
        """Coarse results cannot answer finer queries."""
        store = PreAggregateStore(strict_clinical.mo)
        stored = store.materialize(SetCount(),
                                   {"Diagnosis": "Diagnosis Group"})
        assert not store.can_roll_up(
            stored, SetCount(), {"Diagnosis": "Diagnosis Family"})


def _two_level_mo(coarse_fact: bool = False):
    """A hand-built one-dimension MO: Low = {a, b} under High = {p},
    facts 0 -> a and 1 -> b, plus (optionally) fact 2 recorded *only*
    at the coarse value p — mixed granularity."""
    from repro.core.aggtypes import AggregationType
    from repro.core.category import CategoryType
    from repro.core.dimension import Dimension, DimensionType
    from repro.core.mo import MultidimensionalObject, TimeKind
    from repro.core.schema import FactSchema
    from repro.core.values import DimensionValue, Fact

    ctypes = [
        CategoryType("Low", AggregationType.SUM, is_bottom=True),
        CategoryType("High", AggregationType.CONSTANT),
    ]
    dim = Dimension(DimensionType("D", ctypes, [("Low", "High")]))
    a = DimensionValue(sid="a", label="a")
    b = DimensionValue(sid="b", label="b")
    p = DimensionValue(sid="p", label="p")
    for value in (a, b):
        dim.add_value("Low", value)
    dim.add_value("High", p)
    dim.add_edge(a, p)
    dim.add_edge(b, p)
    mo = MultidimensionalObject(
        schema=FactSchema("T", [dim.dtype]),
        dimensions={"D": dim},
        kind=TimeKind.SNAPSHOT,
    )
    facts = [Fact(fid=i, ftype="T") for i in range(3 if coarse_fact else 2)]
    mo.relate(facts[0], "D", a)
    mo.relate(facts[1], "D", b)
    if coarse_fact:
        mo.relate(facts[2], "D", p)
    return mo, {"a": a, "b": b, "p": p}


class TestStalenessEviction:
    """Regression: the store used to keep serving results materialized
    before an MO mutation."""

    def test_get_evicts_after_new_fact(self):
        from repro.core.values import Fact
        from repro.obs import metrics

        mo, values = _two_level_mo()
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"D": "Low"})
        assert store.get(SetCount(), {"D": "Low"}) is not None
        evicted = metrics.counter("preagg.stale_evicted")
        before = evicted.value
        mo.relate(Fact(fid=99, ftype="T"), "D", values["a"])
        assert store.get(SetCount(), {"D": "Low"}) is None
        assert evicted.value == before + 1

    def test_get_evicts_after_relation_change(self):
        mo, values = _two_level_mo()
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"D": "Low"})
        # relate an existing fact to a second value: no new facts, but
        # the relation changed, so the stored groups are stale
        fact = next(f for f in mo.facts if f.fid == 0)
        mo.relate(fact, "D", values["b"])
        assert store.get(SetCount(), {"D": "Low"}) is None

    def test_entries_skips_stale(self):
        from repro.core.values import Fact

        mo, values = _two_level_mo()
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"D": "Low"})
        store.materialize(SetCount(), {"D": "High"})
        mo.relate(Fact(fid=99, ftype="T"), "D", values["b"])
        assert list(store.entries()) == []

    def test_can_roll_up_refuses_stale(self):
        from repro.core.values import Fact

        mo, values = _two_level_mo()
        store = PreAggregateStore(mo)
        stored = store.materialize(SetCount(), {"D": "Low"})
        assert store.can_roll_up(stored, SetCount(), {"D": "High"})
        mo.relate(Fact(fid=99, ftype="T"), "D", values["a"])
        assert not store.can_roll_up(stored, SetCount(), {"D": "High"})

    def test_mutate_then_query_returns_fresh_counts(self):
        """The end-to-end regression from the issue: materialize, mutate
        the MO, query through the store — the answer must reflect the
        mutation, not the stale materialization."""
        from repro.core.values import Fact
        from repro.engine import Query

        mo, values = _two_level_mo()
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"D": "High"})
        query = Query(mo, store=store).rollup("D", "High")
        assert [(g["D"].sid, v) for g, v in query.counts()] == [("p", 2)]
        mo.relate(Fact(fid=99, ftype="T"), "D", values["a"])
        assert [(g["D"].sid, v) for g, v in query.counts()] == [("p", 3)]

    def test_rematerialize_after_mutation_serves_again(self):
        from repro.core.values import Fact

        mo, values = _two_level_mo()
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"D": "Low"})
        mo.relate(Fact(fid=99, ftype="T"), "D", values["a"])
        fresh = store.materialize(SetCount(), {"D": "Low"})
        assert store.get(SetCount(), {"D": "Low"}) is fresh
        assert fresh.results[(values["a"],)] == 2


class TestMixedGranularityCoverage:
    """Regression: a fact recorded only at a coarse value passes the
    Lenz-Shoshani checks yet is invisible to the stored fine level, so
    combining undercounted the coarse total."""

    def test_direct_counts_see_the_coarse_fact(self):
        mo, values = _two_level_mo(coarse_fact=True)
        store = PreAggregateStore(mo)
        direct = store.compute_from_base(SetCount(), {"D": "High"})
        assert direct[(values["p"],)] == 3

    def test_roll_up_refused_under_mixed_granularity(self):
        mo, values = _two_level_mo(coarse_fact=True)
        store = PreAggregateStore(mo)
        stored = store.materialize(SetCount(), {"D": "Low"})
        # the fine-level results genuinely miss fact 2
        assert sum(stored.results.values()) == 2
        assert not store.can_roll_up(stored, SetCount(), {"D": "High"})
        with pytest.raises(AlgebraError, match="many-to-one"):
            store.roll_up(SetCount(), {"D": "Low"}, {"D": "High"})

    def test_coverage_refusal_counted(self):
        from repro.obs import metrics

        mo, _ = _two_level_mo(coarse_fact=True)
        store = PreAggregateStore(mo)
        stored = store.materialize(SetCount(), {"D": "Low"})
        counter = metrics.counter("preagg.coverage_refused")
        before = counter.value
        store.can_roll_up(stored, SetCount(), {"D": "High"})
        assert counter.value == before + 1

    def test_roll_up_allowed_without_coarse_fact(self):
        """The same hierarchy with every fact recorded at the fine level
        combines fine: the refusal is specific to mixed granularity."""
        mo, values = _two_level_mo(coarse_fact=False)
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"D": "Low"})
        combined = store.roll_up(SetCount(), {"D": "Low"}, {"D": "High"})
        assert combined == {(values["p"],): 2}
