"""Tests for the logical plan optimizer, including the equivalence
property over random plans."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import characterized_by, sid_satisfies
from repro.algebra.predicates import Predicate
from repro.casestudy import diagnosis_value
from repro.engine import (
    Base,
    ProjectNode,
    SelectNode,
    evaluate,
    explain,
    optimize,
)
from tests.strategies import small_mos


def _facts(mo):
    return {f.fid for f in mo.facts}


class TestRewrites:
    def test_select_fusion_same_dimension(self, snapshot_mo):
        p1 = characterized_by("Diagnosis", diagnosis_value(11))
        p2 = characterized_by("Diagnosis", diagnosis_value(12))
        plan = SelectNode(SelectNode(Base(snapshot_mo), p1), p2)
        optimized = optimize(plan)
        assert isinstance(optimized, SelectNode)
        assert isinstance(optimized.child, Base)
        assert _facts(evaluate(plan)) == _facts(evaluate(optimized)) == {2}

    def test_selects_over_different_dimensions_stay_stacked(
            self, snapshot_mo):
        """Fusing across dimensions would multiply candidate sets, so
        the optimizer deliberately leaves these plans alone."""
        p1 = characterized_by("Diagnosis", diagnosis_value(11))
        p2 = sid_satisfies("Age", lambda a: a >= 40)
        plan = SelectNode(SelectNode(Base(snapshot_mo), p1), p2)
        optimized = optimize(plan)
        assert isinstance(optimized, SelectNode)
        assert isinstance(optimized.child, SelectNode)
        assert _facts(evaluate(plan)) == _facts(evaluate(optimized)) == {2}

    def test_project_fusion(self, snapshot_mo):
        plan = ProjectNode(
            ProjectNode(Base(snapshot_mo), ("Diagnosis", "Age", "Name")),
            ("Age",))
        optimized = optimize(plan)
        assert isinstance(optimized, ProjectNode)
        assert isinstance(optimized.child, Base)
        assert optimized.dimensions == ("Age",)

    def test_select_pushed_below_project(self, snapshot_mo):
        p = characterized_by("Diagnosis", diagnosis_value(11))
        plan = SelectNode(
            ProjectNode(Base(snapshot_mo), ("Diagnosis", "Age")), p)
        optimized = optimize(plan)
        assert isinstance(optimized, ProjectNode)
        assert isinstance(optimized.child, SelectNode)
        assert _facts(evaluate(plan)) == _facts(evaluate(optimized))

    def test_select_not_pushed_when_dimension_projected_away(
            self, snapshot_mo):
        p = characterized_by("Diagnosis", diagnosis_value(11))
        plan = SelectNode(ProjectNode(Base(snapshot_mo), ("Age",)), p)
        # the predicate needs Diagnosis, which π removed: the plan is
        # ill-formed and must stay untouched so evaluation reports it
        optimized = optimize(plan)
        assert isinstance(optimized, SelectNode)
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            evaluate(optimized)

    def test_fixpoint_idempotent(self, snapshot_mo):
        p = characterized_by("Diagnosis", diagnosis_value(11))
        plan = SelectNode(
            ProjectNode(Base(snapshot_mo), ("Diagnosis", "Age")), p)
        once = optimize(plan)
        assert optimize(once) == once

    def test_explain(self, snapshot_mo):
        p = characterized_by("Diagnosis", diagnosis_value(11))
        text = explain(SelectNode(Base(snapshot_mo), p))
        assert text.splitlines()[0].startswith("σ[")
        assert "Base(Patient)" in text


@st.composite
def plans(draw):
    mo = draw(small_mos(n_dims=2))
    plan = Base(mo)
    names = list(mo.dimension_names)
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            constrained = draw(st.sampled_from(names))
            # predicate: any non-top characterizing value exists
            plan = SelectNode(plan, Predicate(
                dims=(constrained,),
                test=lambda values, ctx, c=constrained:
                    not values[c].is_top,
                description=f"{constrained} known"))
        else:
            plan = ProjectNode(plan, tuple(names))
    return plan


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(plans())
def test_optimizer_preserves_semantics(plan):
    naive = evaluate(plan)
    optimized = evaluate(optimize(plan))
    assert naive.facts == optimized.facts
    assert set(naive.dimension_names) == set(optimized.dimension_names)
    for name in naive.dimension_names:
        assert set(naive.relation(name).pairs()) == \
            set(optimized.relation(name).pairs())
