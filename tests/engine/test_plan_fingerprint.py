"""Tests for the canonical plan fingerprint (the result-cache key).

The load-bearing property pair: algebraically-equal plans fingerprint
equal (so rewrites share cache entries), and distinct plans — even ones
whose ``repr`` collides — fingerprint distinct (so the cache can never
conflate two different computations)."""

import pytest

from repro.algebra import SetCount, characterized_by, conjunction
from repro.algebra.functions import AggregationFunction, Sum
from repro.algebra.predicates import value_in_category
from repro.casestudy import diagnosis_value
from repro.core.helpers import make_result_spec
from repro.core.values import DimensionValue
from repro.engine import (
    Base,
    ProjectNode,
    SelectNode,
    Unfingerprintable,
    evaluate,
    fingerprint,
    mo_token,
)
from repro.engine.optimizer import (
    AggregateNode,
    DifferenceNode,
    RenameNode,
    UnionNode,
)


def _digest(plan):
    return fingerprint(plan).digest


def _facts(plan):
    return {f.fid for f in evaluate(plan).facts}


@pytest.fixture
def p11(snapshot_mo):
    return characterized_by("Diagnosis", diagnosis_value(11))


@pytest.fixture
def p12(snapshot_mo):
    return characterized_by("Diagnosis", diagnosis_value(12))


class TestEquivalentPlansCollide:
    """Each rewrite is justified by the evaluation oracle: the commuted
    plans answer identically, so sharing a cache entry is sound."""

    def test_conjunct_order_is_irrelevant(self, snapshot_mo, p11, p12):
        a = SelectNode(Base(snapshot_mo), conjunction(p11, p12))
        b = SelectNode(Base(snapshot_mo), conjunction(p12, p11))
        assert _facts(a) == _facts(b)
        assert _digest(a) == _digest(b)

    def test_duplicate_conjuncts_collapse(self, snapshot_mo, p11):
        once = SelectNode(Base(snapshot_mo), p11)
        twice = SelectNode(Base(snapshot_mo), conjunction(p11, p11))
        assert _facts(once) == _facts(twice)
        assert _digest(once) == _digest(twice)

    def test_sigma_chain_commutes(self, snapshot_mo, p11, p12):
        ab = SelectNode(SelectNode(Base(snapshot_mo), p11), p12)
        ba = SelectNode(SelectNode(Base(snapshot_mo), p12), p11)
        assert _facts(ab) == _facts(ba)
        assert _digest(ab) == _digest(ba)

    def test_duplicate_sigma_nodes_collapse(self, snapshot_mo, p11):
        once = SelectNode(Base(snapshot_mo), p11)
        twice = SelectNode(once, p11)
        assert _facts(once) == _facts(twice)
        assert _digest(once) == _digest(twice)

    def test_identity_rename_elided(self, snapshot_mo):
        base = Base(snapshot_mo)
        identity = RenameNode(base, dimension_map=(("Age", "Age"),))
        assert _digest(identity) == _digest(base)

    def test_rename_chain_composes(self, snapshot_mo):
        base = Base(snapshot_mo)
        chained = RenameNode(RenameNode(base,
                                        dimension_map=(("Age", "Years"),)),
                             dimension_map=(("Years", "AgeYears"),))
        flat = RenameNode(base, dimension_map=(("Age", "AgeYears"),))
        assert evaluate(chained).dimension_names == \
            evaluate(flat).dimension_names
        assert _digest(chained) == _digest(flat)

    def test_rename_roundtrip_elided(self, snapshot_mo):
        base = Base(snapshot_mo)
        roundtrip = RenameNode(RenameNode(base,
                                          dimension_map=(("Age", "X"),)),
                               dimension_map=(("X", "Age"),))
        assert _digest(roundtrip) == _digest(base)

    def test_union_commutes_and_flattens(self, snapshot_mo, p11, p12):
        a = SelectNode(Base(snapshot_mo), p11)
        b = SelectNode(Base(snapshot_mo), p12)
        c = Base(snapshot_mo)
        left = UnionNode(UnionNode(a, b), c)
        right = UnionNode(c, UnionNode(b, a))
        assert _facts(left) == _facts(right)
        assert _digest(left) == _digest(right)

    def test_aggregate_grouping_order_is_irrelevant(self, snapshot_mo):
        spec = make_result_spec(name="__query_result")
        base = Base(snapshot_mo)
        g1 = (("Diagnosis", "Diagnosis Group"), ("Age", "Ten-year group"))
        g2 = (g1[1], g1[0])
        assert _digest(AggregateNode(base, SetCount(), g1, spec,
                                     strict_types=False)) == \
            _digest(AggregateNode(base, SetCount(), g2, spec,
                                  strict_types=False))


class TestDistinctPlansDoNot:
    def test_sigma_chain_is_not_fused_into_conjunction(
            self, snapshot_mo, p11, p12):
        """Chained σs re-quantify the characterization witness per node;
        a single conjunction shares one witness across conjuncts — a
        real semantic difference, so the forms must not share a key."""
        chained = SelectNode(SelectNode(Base(snapshot_mo), p11), p12)
        fused = SelectNode(Base(snapshot_mo), conjunction(p11, p12))
        assert _digest(chained) != _digest(fused)

    def test_repr_colliding_surrogates_do_not_collide(self, snapshot_mo):
        """``repr("(1, 2)") != repr((1, 2))`` is false enough to have
        bitten the star export once — the fingerprint must rely on the
        tagged ``encode_sid`` encoding, never on ``repr``."""
        as_str = DimensionValue(sid="(1, 2)")
        as_tuple = DimensionValue(sid=(1, 2))
        a = SelectNode(Base(snapshot_mo),
                       characterized_by("Diagnosis", as_str))
        b = SelectNode(Base(snapshot_mo),
                       characterized_by("Diagnosis", as_tuple))
        assert _digest(a) != _digest(b)

    def test_atom_escaping_prevents_forged_structure(self, snapshot_mo):
        """Names containing spaces must not let two different plans
        serialize to one canonical text."""
        a = SelectNode(Base(snapshot_mo),
                       characterized_by("Age Group",
                                        DimensionValue(sid="x")))
        b = SelectNode(Base(snapshot_mo),
                       characterized_by("Age",
                                        DimensionValue(sid="Group x")))
        assert _digest(a) != _digest(b)

    def test_difference_keeps_operand_order(self, snapshot_mo, p11):
        a = SelectNode(Base(snapshot_mo), p11)
        b = Base(snapshot_mo)
        assert _digest(DifferenceNode(a, b)) != \
            _digest(DifferenceNode(b, a))

    def test_projection_dimension_lists_differ(self, snapshot_mo):
        assert _digest(ProjectNode(Base(snapshot_mo), ("Age",))) != \
            _digest(ProjectNode(Base(snapshot_mo), ("Diagnosis",)))

    def test_distinct_mos_never_collide(self, snapshot_mo, small_retail):
        assert _digest(Base(snapshot_mo)) != \
            _digest(Base(small_retail.mo))

    def test_strictness_and_function_distinguish_aggregates(
            self, snapshot_mo):
        spec = make_result_spec(name="__query_result")
        base = Base(snapshot_mo)
        grouping = (("Diagnosis", "Diagnosis Group"),)
        lax = AggregateNode(base, SetCount(), grouping, spec,
                            strict_types=False)
        strict = AggregateNode(base, SetCount(), grouping, spec,
                               strict_types=True)
        summed = AggregateNode(base, Sum("Age"), grouping, spec,
                               strict_types=False)
        assert len({_digest(lax), _digest(strict), _digest(summed)}) == 3


class TestMoTokens:
    def test_token_is_stable_per_mo(self, snapshot_mo):
        assert mo_token(snapshot_mo) == mo_token(snapshot_mo)

    def test_tokens_differ_across_mos(self, snapshot_mo, small_retail):
        assert mo_token(snapshot_mo) != mo_token(small_retail.mo)

    def test_fingerprint_exposes_base_mos(self, snapshot_mo, p11):
        fp = fingerprint(SelectNode(Base(snapshot_mo), p11))
        assert fp.mos == (snapshot_mo,)
        assert fp.short == fp.digest[:12]


class TestUnfingerprintable:
    def test_opaque_predicate_raises(self, snapshot_mo):
        plan = SelectNode(
            Base(snapshot_mo),
            value_in_category("Age", "Age", lambda v: True))
        with pytest.raises(Unfingerprintable) as exc:
            fingerprint(plan)
        assert "opaque" in exc.value.reason

    def test_user_defined_function_raises(self, snapshot_mo):
        class Custom(AggregationFunction):
            name = "custom"

            def apply(self, facts, mo):
                return 0

        plan = AggregateNode(
            Base(snapshot_mo), Custom(),
            (("Diagnosis", "Diagnosis Group"),),
            make_result_spec(name="__query_result"),
            strict_types=False)
        with pytest.raises(Unfingerprintable) as exc:
            fingerprint(plan)
        assert "custom" in exc.value.reason
