"""The execution-backend registry and dispatch protocol."""

import pytest

from repro.engine import Query
from repro.engine.backends import (
    ExecutionBackend,
    MemoryBackend,
    backend_named,
    register_backend,
    registered_backends,
    resolve_backend,
)


class TestRegistry:
    def test_defaults_present(self):
        names = registered_backends()
        assert "memory" in names and "sql" in names
        assert "sharded" in names  # lazily registered, still listed

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError) as excinfo:
            backend_named("bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        for name in ("memory", "sql", "sharded"):
            assert f"'{name}'" in message

    def test_execute_and_explain_share_the_error(self, snapshot_mo):
        """The satellite fix: the two methods used to duplicate the
        unknown-backend ValueError; both now resolve through the one
        registry lookup and raise its message."""
        q = Query(snapshot_mo)
        with pytest.raises(ValueError) as from_execute:
            q.execute(backend="bogus")
        with pytest.raises(ValueError) as from_explain:
            q.explain(backend="bogus")
        assert str(from_execute.value) == str(from_explain.value)
        assert "registered backends" in str(from_execute.value)

    def test_register_requires_name(self):
        class Nameless(ExecutionBackend):
            name = ""

            def run(self, query, plan, function, strict_types, steps):
                raise AssertionError("never dispatched")

        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(Nameless())

    def test_register_same_instance_is_idempotent(self):
        backend = backend_named("memory")
        assert register_backend(backend) is backend

    def test_register_conflict_needs_replace(self):
        original = backend_named("memory")
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend(MemoryBackend())
            replacement = register_backend(MemoryBackend(), replace=True)
            assert backend_named("memory") is replacement
        finally:
            register_backend(original, replace=True)

    def test_resolve_passes_instances_through(self):
        backend = MemoryBackend()
        assert resolve_backend(backend) is backend
        assert resolve_backend("memory") is backend_named("memory")

    def test_instance_backend_executes(self, snapshot_mo):
        q = Query(snapshot_mo).rollup("Residence", "County")
        via_name = q.execute(check=False, cache=False)
        via_instance = q.execute(check=False, cache=False,
                                 backend=MemoryBackend())
        assert via_name == via_instance
