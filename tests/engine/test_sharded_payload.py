"""Worker-payload picklability under the ``spawn`` start method.

Linux CI forks, where an unpicklable payload (a closure, a live MO, an
un-importable worker function) would still *work* by accident of
memory inheritance.  macOS and Windows spawn: the payload must
round-trip through pickle and the worker must be importable by
qualified name from a cold interpreter.  These tests pin that contract
without needing a non-Linux machine."""

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.algebra.functions import Avg, Sum
from repro.engine.sharded import ShardPayload, _run_shard, build_payloads
from repro.workloads.generator import ClinicalConfig, generate_clinical


def _payloads(function, mode, n_shards=3):
    workload = generate_clinical(ClinicalConfig(n_patients=40, seed=21))
    payloads, specs = build_payloads(
        workload.mo, {"Residence": "County"}, function, mode, n_shards)
    assert payloads and specs
    return payloads


def test_payload_pickle_round_trip():
    for payload in _payloads(Sum("Age"), "distributive"):
        clone = pickle.loads(pickle.dumps(payload))
        assert isinstance(clone, ShardPayload)
        assert clone.shard == payload.shard
        assert clone.base == payload.base
        assert clone.fact_ids == payload.fact_ids
        assert clone.mode == payload.mode
        assert [d.column for d in clone.dims] == \
            [d.column for d in payload.dims]
        assert [m.sums for m in clone.measures] == \
            [m.sums for m in payload.measures]
        # the clone computes the same partials as the original
        assert _run_shard(clone) == _run_shard(payload)


def test_worker_runs_under_spawn():
    """A spawn worker gets *nothing* from this process's memory: the
    payload must carry everything and ``_run_shard`` must resolve by
    import in a cold interpreter."""
    ctx = multiprocessing.get_context("spawn")
    for function, mode in ((Sum("Age"), "distributive"),
                           (Avg("Age"), "algebraic")):
        payloads = _payloads(function, mode, n_shards=2)
        expected = [_run_shard(p) for p in payloads]
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            spawned = list(pool.map(_run_shard, payloads))
        assert spawned == expected
