"""Tests for the EXPLAIN ANALYZE surfaces: ``Query.explain`` and
``optimizer.explain_analyze``."""

from repro.algebra import SetCount, Sum, characterized_by
from repro.casestudy import diagnosis_value
from repro.engine import (
    Base,
    PreAggregateStore,
    ProjectNode,
    Query,
    SelectNode,
    evaluate,
    explain_analyze,
)


class TestQueryExplain:
    def test_index_path(self, snapshot_mo):
        query = Query(snapshot_mo).rollup("Diagnosis", "Diagnosis Group")
        result = query.explain(cache=False)
        assert result.path == "index"
        assert result.rows == query.execute(cache=False)
        (step,) = result.steps
        assert step.name == "index"
        assert step.facts_in == len(snapshot_mo.facts)
        assert step.facts_out == len(result.rows)
        assert step.elapsed_seconds >= 0.0

    def test_alpha_path_with_dice(self, snapshot_mo):
        query = (Query(snapshot_mo)
                 .dice("Diagnosis", diagnosis_value(12))
                 .rollup("Diagnosis", "Diagnosis Group"))
        result = query.explain(cache=False)
        assert result.path == "alpha"
        assert result.rows == query.execute(cache=False)
        assert [step.name for step in result.steps] == ["dice", "alpha"]
        dice, alpha = result.steps
        assert dice.facts_in == len(snapshot_mo.facts)
        # the dice output feeds α
        assert alpha.facts_in == dice.facts_out
        assert alpha.facts_out >= 1

    def test_alpha_path_non_count_function(self, small_retail):
        query = Query(small_retail.mo).rollup("Product", "Department")
        result = query.explain(Sum("Price"), cache=False)
        assert result.path == "alpha"
        assert result.rows == query.execute(Sum("Price"), cache=False)
        (alpha,) = result.steps
        assert alpha.name == "alpha"
        assert "Sum" in alpha.detail

    def test_store_path_exact_hit(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Group"})
        query = Query(strict_clinical.mo, store=store).rollup(
            "Diagnosis", "Diagnosis Group")
        result = query.explain(cache=False)
        assert result.path == "store"
        assert result.rows == query.execute(cache=False)
        (step,) = result.steps
        assert step.name == "store"
        assert step.facts_in == 0  # never touched base facts
        assert "exact hit" in step.detail

    def test_store_path_rolled_up(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        query = Query(strict_clinical.mo, store=store).rollup(
            "Diagnosis", "Diagnosis Group")
        result = query.explain(cache=False)
        assert result.path == "store"
        assert result.rows == query.execute(cache=False)
        assert "rolled up from" in result.steps[0].detail

    def test_render_mentions_path_and_steps(self, snapshot_mo):
        result = Query(snapshot_mo).rollup(
            "Diagnosis", "Diagnosis Group").explain(cache=False)
        text = result.render()
        first, *rest = text.splitlines()
        assert first.startswith("Query path=index rows=")
        assert len(rest) == len(result.steps)
        assert rest[0].lstrip().startswith("index  facts ")

    def test_total_is_sum_of_steps(self, snapshot_mo):
        result = (Query(snapshot_mo)
                  .dice("Diagnosis", diagnosis_value(12))
                  .rollup("Diagnosis", "Diagnosis Group")
                  .explain(cache=False))
        assert result.total_seconds == \
            sum(step.elapsed_seconds for step in result.steps)


class TestExplainAnalyze:
    def test_matches_evaluate(self, snapshot_mo):
        predicate = characterized_by("Diagnosis", diagnosis_value(11))
        plan = ProjectNode(
            SelectNode(Base(snapshot_mo), predicate),
            ("Diagnosis", "Age"))
        analyzed = explain_analyze(plan)
        plain = evaluate(plan)
        assert {f.fid for f in analyzed.mo.facts} == \
            {f.fid for f in plain.facts}
        assert analyzed.mo.dimension_names == plain.dimension_names

    def test_node_annotations(self, snapshot_mo):
        predicate = characterized_by("Diagnosis", diagnosis_value(11))
        plan = SelectNode(Base(snapshot_mo), predicate)
        analyzed = explain_analyze(plan)
        root = analyzed.root
        assert root.label.startswith("σ[")
        (base,) = root.children
        assert base.label.startswith("Base(")
        assert base.facts_out == len(snapshot_mo.facts)
        assert root.facts_in == base.facts_out
        assert root.facts_out == len(analyzed.mo.facts)
        # inclusive time covers the subtree
        assert root.elapsed_seconds >= base.elapsed_seconds
        assert analyzed.total_seconds == root.elapsed_seconds
        assert root.self_seconds >= 0.0

    def test_render_one_line_per_node(self, snapshot_mo):
        predicate = characterized_by("Diagnosis", diagnosis_value(11))
        plan = ProjectNode(
            SelectNode(Base(snapshot_mo), predicate), ("Age",))
        text = explain_analyze(plan).render()
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("π[")
        assert lines[1].lstrip().startswith("σ[")
        assert lines[2].lstrip().startswith("Base(")
        assert all("facts" in line and "ms" in line for line in lines)

    def test_base_only_plan(self, snapshot_mo):
        analyzed = explain_analyze(Base(snapshot_mo))
        assert analyzed.mo is snapshot_mo
        assert analyzed.root.children == ()
        assert analyzed.root.facts_in == analyzed.root.facts_out == \
            len(snapshot_mo.facts)
