"""Property: the versioned result cache is invisible to correctness.

Across random queries and arbitrary mutation interleavings, an answer
served through the cache is byte-identical to the uncached engine path
and to the naive per-value oracle — hits, misses, and stale evictions
may differ in speed, never in rows."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    conjunction,
    select,
)
from repro.core.helpers import make_result_spec
from repro.core.values import Fact
from repro.engine import Query, ResultCache
from tests.strategies import small_mos

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _canon(rows):
    """Byte-identity images: repr is injective on the value set and
    distinguishes int from float."""
    return [
        (tuple(sorted((k, repr(v)) for k, v in group.items())),
         repr(raw), type(raw).__name__)
        for group, raw in rows
    ]


def _draw_grouping(data, mo):
    grouping = {}
    for name in mo.dimension_names:
        categories = [
            ctype.name
            for ctype in mo.dimension(name).dtype.category_types()
        ]
        choice = data.draw(st.sampled_from([None] + categories),
                           label=f"grouping[{name}]")
        if choice is not None:
            grouping[name] = choice
    return grouping


def _draw_dices(data, mo):
    dices = []
    for _ in range(data.draw(st.integers(0, 2), label="n_dices")):
        name = data.draw(st.sampled_from(sorted(mo.dimension_names)),
                         label="dice_dim")
        dimension = mo.dimension(name)
        values = [
            value
            for ctype in dimension.dtype.category_types()
            for value in dimension.category(ctype.name).members()
        ]
        if not values:
            continue
        dices.append((name, data.draw(st.sampled_from(values),
                                      label="dice_value")))
    return dices


def _mutate(data, mo, next_fid):
    """A new fact related to a random value in each dimension (⊤ when
    the dimension has no other values) — bumps the fact-set version and
    every touched relation version."""
    fact = Fact(fid=next_fid, ftype=mo.schema.fact_type)
    mo.add_fact(fact)
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        candidates = [
            value
            for ctype in dimension.dtype.category_types()
            for value in dimension.category(ctype.name).members()
        ] or [dimension.top_value]
        value = data.draw(st.sampled_from(candidates),
                          label=f"mutate[{name}]")
        mo.relate(fact, name, value)


def _query(mo, cache, grouping, dices):
    q = Query(mo, result_cache=cache)
    for name, category in sorted(grouping.items()):
        q = q.rollup(name, category)
    for name, value in dices:
        q = q.dice(name, value)
    return q


def _naive_rows(mo, grouping, dices):
    """The oracle: dice via one σ, aggregate with ``use_index=False``,
    then the same merge-and-re-expand row extraction ``Query`` uses."""
    if dices:
        mo = select(mo, conjunction(*[characterized_by(d, v)
                                      for d, v in dices]))
    aggregated = aggregate(mo, SetCount(), grouping,
                           make_result_spec(name="__query_result"),
                           use_index=False)
    names = sorted(grouping)
    rows = []
    for fact in aggregated.facts:
        raw = next(iter(
            aggregated.relation("__query_result").values_of(fact))).sid
        combos = [{}]
        for name in names:
            values = sorted(aggregated.relation(name).values_of(fact),
                            key=repr)
            combos = [{**combo, name: value}
                      for combo in combos for value in values]
        rows.extend((group, raw) for group in combos)
    rows.sort(key=lambda row: (
        tuple(repr(row[0][name]) for name in names), repr(row[1])))
    return rows


@_SETTINGS
@given(data=st.data())
def test_cached_equals_uncached_equals_naive(data):
    mo = data.draw(small_mos())
    cache = ResultCache(admit_factor=0.0)  # admit everything
    grouping = _draw_grouping(data, mo)
    dices = _draw_dices(data, mo)
    q = _query(mo, cache, grouping, dices)
    n_rounds = data.draw(st.integers(1, 3), label="n_rounds")
    for i in range(n_rounds):
        first = q.execute(check=False)            # miss (or stale miss)
        second = q.execute(check=False)           # hit
        uncached = q.execute(check=False, cache=False)
        naive = _naive_rows(mo, grouping, dices)
        assert _canon(first) == _canon(second)
        assert _canon(second) == _canon(uncached)
        assert _canon(uncached) == _canon(naive)
        if i + 1 < n_rounds:
            _mutate(data, mo, next_fid=10_000 + i)


@_SETTINGS
@given(data=st.data())
def test_builder_order_shares_one_fingerprint(data):
    """Canonicalization property at the query surface: dices applied in
    any order produce the same fingerprint, so a random permutation of
    an already-cached query always hits."""
    mo = data.draw(small_mos())
    dices = _draw_dices(data, mo)
    cache = ResultCache(admit_factor=0.0)
    grouping = _draw_grouping(data, mo)
    q = _query(mo, cache, grouping, dices)
    baseline = q.execute(check=False)
    permuted = _query(mo, cache, grouping,
                      data.draw(st.permutations(dices), label="order"))
    report = permuted.explain()
    assert report.path == "cache"
    assert _canon(report.rows) == _canon(baseline)
