"""Tests for the rollup index."""

from repro.algebra import SetCount, aggregate
from repro.casestudy import diagnosis_value, patient_fact
from repro.core.helpers import make_result_spec
from repro.engine import RollupIndex


class TestRollupIndex:
    def test_counts_match_example_12(self, snapshot_mo):
        index = RollupIndex(snapshot_mo)
        counts = {
            v.sid: c
            for v, c in index.group_counts("Diagnosis",
                                           "Diagnosis Group").items()
        }
        assert counts == {11: 2, 12: 1}

    def test_facts_for(self, snapshot_mo):
        index = RollupIndex(snapshot_mo)
        facts = index.facts_for("Diagnosis", "Diagnosis Group",
                                diagnosis_value(11))
        assert {f.fid for f in facts} == {1, 2}

    def test_unknown_value_empty(self, snapshot_mo):
        index = RollupIndex(snapshot_mo)
        assert index.facts_for("Diagnosis", "Diagnosis Group",
                               diagnosis_value(99)) == frozenset()

    def test_index_matches_aggregate_operator(self, small_clinical):
        mo = small_clinical.mo
        index = RollupIndex(mo)
        indexed = {
            v: len(facts)
            for v, facts in index.characterization_map(
                "Diagnosis", "Diagnosis Group").items()
            if facts
        }
        agg = aggregate(mo, SetCount(), {"Diagnosis": "Diagnosis Group"},
                        make_result_spec(), strict_types=False)
        operator_counts = {}
        for fact in agg.facts:
            for value in agg.relation("Diagnosis").values_of(fact):
                operator_counts[value] = len(fact.members)
        assert indexed == operator_counts

    def test_top_category_counts_everything(self, snapshot_mo):
        index = RollupIndex(snapshot_mo)
        top_name = snapshot_mo.dimension("Diagnosis").dtype.top_name
        counts = index.group_counts("Diagnosis", top_name)
        assert list(counts.values()) == [2]

    def test_invalidate_clears_cache(self, snapshot_mo):
        index = RollupIndex(snapshot_mo)
        index.group_counts("Diagnosis", "Diagnosis Group")
        index.invalidate()
        assert index.group_counts("Diagnosis", "Diagnosis Group")
