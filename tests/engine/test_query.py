"""Tests for the fluent query API."""

import pytest

from repro.algebra import SetCount, Sum
from repro.casestudy import diagnosis_value
from repro.core.errors import SchemaError
from repro.engine import PreAggregateStore, Query


class TestQueryBasics:
    def test_rollup_counts(self, snapshot_mo):
        rows = Query(snapshot_mo).rollup("Diagnosis",
                                         "Diagnosis Group").counts()
        assert {(g["Diagnosis"].sid, v) for g, v in rows} == \
            {(11, 2), (12, 1)}

    def test_dice_then_rollup(self, snapshot_mo):
        rows = (Query(snapshot_mo)
                .dice("Diagnosis", diagnosis_value(12))
                .rollup("Diagnosis", "Diagnosis Group")
                .counts())
        assert {(g["Diagnosis"].sid, v) for g, v in rows} == \
            {(11, 1), (12, 1)}  # patient 2 has diagnoses in both groups

    def test_sum_function(self, small_retail):
        rows = Query(small_retail.mo).rollup(
            "Product", "Department").execute(Sum("Price"))
        total = sum(v for _, v in rows)
        assert total == Sum("Price").apply(small_retail.mo.facts,
                                           small_retail.mo)

    def test_immutability(self, snapshot_mo):
        base = Query(snapshot_mo)
        derived = base.rollup("Diagnosis", "Diagnosis Group")
        assert base._grouping == {}
        assert derived._grouping == {"Diagnosis": "Diagnosis Group"}

    def test_unknown_dimension_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            Query(snapshot_mo).dice("Nope", diagnosis_value(1))

    def test_unknown_category_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            Query(snapshot_mo).rollup("Diagnosis", "Nope")


class TestStoreIntegration:
    def test_exact_hit(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Group"})
        rows = Query(strict_clinical.mo, store=store).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        direct = Query(strict_clinical.mo).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        assert {(g["Diagnosis"], v) for g, v in rows} == \
            {(g["Diagnosis"], v) for g, v in direct}

    def test_rollup_hit_from_finer_level(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        rows = Query(strict_clinical.mo, store=store).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        direct = Query(strict_clinical.mo).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        assert {(g["Diagnosis"], v) for g, v in rows} == \
            {(g["Diagnosis"], v) for g, v in direct}

    def test_unsafe_store_bypassed(self, small_clinical):
        """With a non-summarizable stored aggregate, the query falls
        back to base data and still returns correct counts."""
        store = PreAggregateStore(small_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        rows = Query(small_clinical.mo, store=store).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        direct = Query(small_clinical.mo).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        assert {(g["Diagnosis"], v) for g, v in rows} == \
            {(g["Diagnosis"], v) for g, v in direct}

    def test_diced_queries_skip_store(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Group"})
        group = strict_clinical.icd.groups[0]
        rows = (Query(strict_clinical.mo, store=store)
                .dice("Diagnosis", group)
                .rollup("Diagnosis", "Diagnosis Group")
                .counts())
        assert rows  # evaluated against base data, not the store


class TestMultiDimensionQueries:
    def test_two_dimension_rollup(self, strict_clinical):
        rows = (Query(strict_clinical.mo)
                .rollup("Diagnosis", "Diagnosis Group")
                .rollup("Residence", "Region")
                .counts())
        assert rows
        for group, count in rows:
            assert set(group) == {"Diagnosis", "Residence"}
            assert count >= 1

    def test_two_dimension_rollup_matches_sql_view(self, strict_clinical):
        from repro.algebra import sql_aggregation

        rows = (Query(strict_clinical.mo)
                .rollup("Diagnosis", "Diagnosis Group")
                .rollup("Residence", "Region")
                .counts())
        via_sql = sql_aggregation(
            strict_clinical.mo, SetCount(),
            {"Diagnosis": "Diagnosis Group", "Residence": "Region"},
            strict_types=False)
        a = sorted((g["Diagnosis"].sid, g["Residence"].sid, v)
                   for g, v in rows)
        b = sorted((r["Diagnosis"], r["Residence"], r["SetCount"])
                   for r in via_sql)
        assert a == b

    def test_multi_dim_store_hit(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family",
                                       "Residence": "County"})
        rows = (Query(strict_clinical.mo, store=store)
                .rollup("Diagnosis", "Diagnosis Group")
                .rollup("Residence", "Region")
                .counts())
        direct = (Query(strict_clinical.mo)
                  .rollup("Diagnosis", "Diagnosis Group")
                  .rollup("Residence", "Region")
                  .counts())
        a = sorted((g["Diagnosis"].sid, g["Residence"].sid, v)
                   for g, v in rows)
        b = sorted((g["Diagnosis"].sid, g["Residence"].sid, v)
                   for g, v in direct)
        assert a == b
