"""Tests for the temporal series analytics."""

import pytest

from repro.casestudy import diagnosis_value
from repro.core.values import DimensionValue
from repro.engine import change_points, group_count_series, series_table
from repro.temporal.chronon import day


class TestChangePoints:
    def test_classification_boundaries_present(self, valid_time_mo):
        points = change_points(valid_time_mo, "Diagnosis")
        assert day(1970, 1, 1) in points
        assert day(1980, 1, 1) in points
        assert day(1979, 12, 31) in points

    def test_fact_dimension_boundaries_present(self, valid_time_mo):
        points = change_points(valid_time_mo, "Diagnosis")
        assert day(1975, 3, 23) in points   # (2,3) starts
        assert day(1989, 1, 1) in points    # (1,9) starts

    def test_all_dimensions(self, valid_time_mo):
        all_points = change_points(valid_time_mo)
        diagnosis_only = change_points(valid_time_mo, "Diagnosis")
        assert set(diagnosis_only) <= set(all_points)
        # the synthesized residence move at 01/01/80 is in the union
        assert day(1980, 1, 1) in all_points

    def test_sorted(self, valid_time_mo):
        points = change_points(valid_time_mo)
        assert points == sorted(points)


class TestGroupCountSeries:
    def test_case_study_series(self, valid_time_mo_ex10):
        at = [day(1975, 6, 1), day(1982, 6, 1), day(1985, 6, 1),
              day(1995, 6, 1)]
        series = group_count_series(valid_time_mo_ex10, "Diagnosis",
                                    "Diagnosis Group", at)
        by_sid = {v.sid: counts for v, counts in series.items()}
        # group 11 exists from 1980; patient 2 counts from 1980 (via the
        # Example 10 link on old code 8 up to 1981, then via code 9);
        # patient 1 joins in 1989
        assert by_sid[11] == [0, 1, 1, 2]
        # group 12 catches patient 2 only while (2,5) is valid (1982)
        assert by_sid[12] == [0, 1, 0, 0]

    def test_invalid_instants_are_zero(self, valid_time_mo):
        series = group_count_series(valid_time_mo, "Diagnosis",
                                    "Diagnosis Group", [day(1975, 6, 1)])
        assert all(counts == [0] for counts in series.values())

    def test_family_series_across_change(self, valid_time_mo):
        at = [day(1975, 6, 1), day(1985, 6, 1)]
        series = group_count_series(valid_time_mo, "Diagnosis",
                                    "Diagnosis Family", at)
        by_sid = {v.sid: counts for v, counts in series.items()}
        assert by_sid[8] == [1, 0]   # old Diabetes: patient 2 in the 70s
        assert by_sid[9] == [0, 1]   # new E10: patient 2 from 1982


class TestSeriesTable:
    def test_layout(self, valid_time_mo):
        at = [day(1975, 6, 1), day(1985, 6, 1)]
        series = group_count_series(valid_time_mo, "Diagnosis",
                                    "Diagnosis Group", at)
        rows = series_table(series, at)
        assert rows[0] == ["value", "01/06/75", "01/06/85"]
        assert all(len(row) == 3 for row in rows)

    def test_custom_labels(self, valid_time_mo):
        at = [day(1975, 6, 1)]
        series = group_count_series(valid_time_mo, "Diagnosis",
                                    "Diagnosis Group", at)
        rows = series_table(series, at,
                            label_for={day(1975, 6, 1): "mid-70s"})
        assert rows[0] == ["value", "mid-70s"]
