"""Tests for the materialization advisor."""

import pytest

from repro.algebra import SetCount
from repro.engine import PreAggregateStore
from repro.engine.recommend import (
    MaterializationRecommendation,
    apply_recommendations,
    recommend_materializations,
)

FAMILY = {"Diagnosis": "Diagnosis Family"}
GROUP = {"Diagnosis": "Diagnosis Group"}
LOW = {"Diagnosis": "Low-level Diagnosis"}


class TestStrictWorkload:
    def test_finer_grouping_covers_coarser(self, strict_clinical):
        recs = recommend_materializations(
            strict_clinical.mo, [LOW, FAMILY, GROUP], budget=1)
        first = recs[0]
        assert first.grouping == tuple(sorted(LOW.items()))
        assert len(first.serves) == 3
        assert all("out of budget" not in r.reason for r in recs)

    def test_budget_zero_leaves_everything_to_base(self, strict_clinical):
        recs = recommend_materializations(
            strict_clinical.mo, [FAMILY, GROUP], budget=0)
        assert all(r.reason.startswith("requested but out of budget")
                   for r in recs)

    def test_apply_feeds_store(self, strict_clinical):
        store = PreAggregateStore(strict_clinical.mo)
        recs = recommend_materializations(
            strict_clinical.mo, [FAMILY, GROUP], budget=1)
        count = apply_recommendations(store, recs)
        assert count == 1
        assert store.get(SetCount(), FAMILY) is not None
        # the covered coarser grouping is answerable from the store
        combined = store.roll_up(SetCount(), FAMILY, GROUP)
        direct = PreAggregateStore(
            strict_clinical.mo).compute_from_base(SetCount(), GROUP)
        assert {k[0].sid: v for k, v in combined.items()} == \
            {k[0].sid: v for k, v in direct.items()}


class TestNonStrictWorkload:
    def test_non_summarizable_groupings_are_mandatory(self,
                                                      small_clinical):
        recs = recommend_materializations(
            small_clinical.mo, [FAMILY, GROUP], budget=0)
        reasons = {r.grouping: r.reason for r in recs}
        assert reasons[tuple(sorted(FAMILY.items()))].startswith(
            "mandatory")
        assert reasons[tuple(sorted(GROUP.items()))].startswith(
            "mandatory")

    def test_mandatory_do_not_consume_budget(self, small_clinical,
                                             strict_clinical):
        # mix: non-strict diagnosis groupings are mandatory; a strict
        # residence grouping can still win the budget
        recs = recommend_materializations(
            small_clinical.mo,
            [GROUP, {"Residence": "County"}, {"Residence": "Region"}],
            budget=1)
        by_reason = {}
        for r in recs:
            by_reason.setdefault(r.reason.split(":")[0], []).append(r)
        assert len(by_reason.get("mandatory", [])) == 1
        assert any("covers" in r.reason for r in recs)


class TestShapes:
    def test_recommendation_is_hashable_and_dict_convertible(self):
        rec = MaterializationRecommendation(
            grouping=(("Diagnosis", "Diagnosis Family"),),
            serves=((("Diagnosis", "Diagnosis Family"),),),
            reason="x")
        assert rec.grouping_dict() == FAMILY
        assert hash(rec)

    def test_multi_dimension_groupings(self, strict_clinical):
        fine = {"Diagnosis": "Diagnosis Family", "Residence": "County"}
        coarse = {"Diagnosis": "Diagnosis Group", "Residence": "Region"}
        recs = recommend_materializations(
            strict_clinical.mo, [fine, coarse], budget=1)
        first = recs[0]
        assert first.grouping == tuple(sorted(fine.items()))
        assert len(first.serves) == 2

    def test_disjoint_dimension_sets_not_covered(self, strict_clinical):
        recs = recommend_materializations(
            strict_clinical.mo,
            [{"Diagnosis": "Diagnosis Family"}, {"Residence": "County"}],
            budget=2)
        served = [r for r in recs if "covers" in r.reason]
        assert all(len(r.serves) == 1 for r in served)
