"""Tests for the rollup index's cached hierarchy-property answers and
the declaration-gated static fast path in summarizability checks."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.properties import (
    hierarchy_is_partitioning,
    hierarchy_is_strict,
    mapping_is_strict,
)
from repro.obs import metrics
from tests.strategies import small_mos


class TestIndexedEqualsNaive:
    def test_case_study_dimensions(self, snapshot_mo):
        index = snapshot_mo.rollup_index()
        for name in snapshot_mo.dimension_names:
            dimension = snapshot_mo.dimension(name)
            assert index.hierarchy_strict(name) == \
                hierarchy_is_strict(dimension), name
            assert index.hierarchy_partitioning(name) == \
                hierarchy_is_partitioning(dimension), name

    def test_mapping_level(self, snapshot_mo):
        index = snapshot_mo.rollup_index()
        diag = snapshot_mo.dimension("Diagnosis")
        for lower, upper in [("Low-level Diagnosis", "Diagnosis Family"),
                             ("Diagnosis Family", "Diagnosis Group")]:
            assert index.mapping_strict("Diagnosis", lower, upper) == \
                mapping_is_strict(diag, lower, upper)

    @given(mo=small_mos())
    @settings(max_examples=40, deadline=None)
    def test_random_mos(self, mo):
        index = mo.rollup_index()
        for name in mo.dimension_names:
            dimension = mo.dimension(name)
            assert index.hierarchy_strict(name) == \
                hierarchy_is_strict(dimension)
            assert index.hierarchy_partitioning(name) == \
                hierarchy_is_partitioning(dimension)

    def test_properties_route_through_index(self, snapshot_mo):
        """The paper-level property functions answer from the index
        when handed one, without changing the answer."""
        index = snapshot_mo.rollup_index()
        for name in snapshot_mo.dimension_names:
            dimension = snapshot_mo.dimension(name)
            assert hierarchy_is_strict(dimension, index=index) == \
                hierarchy_is_strict(dimension)
            assert hierarchy_is_partitioning(dimension, index=index) == \
                hierarchy_is_partitioning(dimension)

    def test_cache_hit_counter(self, snapshot_mo):
        index = snapshot_mo.rollup_index()
        index.hierarchy_strict("Residence")
        before = metrics.counter("rollup_index.strictness.hit").value
        index.hierarchy_strict("Residence")
        after = metrics.counter("rollup_index.strictness.hit").value
        assert after == before + 1


class TestStaticFastPath:
    def test_fast_path_taken_for_declared_dimensions(self):
        """Retail's linear hierarchies are declared strict+partitioning
        and their extensions agree, so the verdict is vouched for
        without the full extensional check."""
        from repro.workloads import generate_retail

        index = generate_retail().mo.rollup_index()
        counter = metrics.counter(
            "rollup_index.summarizability.static_fast_path")
        before = counter.value
        verdict = index.summarizability({"Product": "Department"},
                                        distributive=True)
        assert verdict.summarizable
        assert counter.value == before + 1

    def test_fast_path_declined_for_parallel_paths(self, snapshot_mo):
        """DOB is declared strict+partitioning, but Day's predecessors
        include Week, which is not below Year — the subdimension the
        full check runs on has different Pred sets, so the declaration
        cannot be carried over and the fast path must decline (the
        verdict still comes out right via the full check)."""
        index = snapshot_mo.rollup_index()
        assert not index._static_safe({"DOB": "Year"})
        verdict = index.summarizability({"DOB": "Year"},
                                        distributive=True)
        assert verdict.summarizable

    def test_fast_path_skipped_for_undeclared(self):
        from repro.workloads import ClinicalConfig, generate_clinical

        mo = generate_clinical(ClinicalConfig(n_patients=20,
                                              seed=7)).mo
        index = mo.rollup_index()
        counter = metrics.counter(
            "rollup_index.summarizability.static_fast_path")
        before = counter.value
        index.summarizability({"Diagnosis": "Diagnosis Group"},
                              distributive=True)
        assert counter.value == before

    def test_fast_path_skipped_when_paths_not_strict(self, snapshot_mo):
        """Residence's hierarchy is declared (and is) strict, but the
        untimed fact paths are not — the fast path must not vouch."""
        index = snapshot_mo.rollup_index()
        verdict = index.summarizability({"Residence": "County"},
                                        distributive=True)
        assert not verdict.paths_strict
        assert not verdict.summarizable
