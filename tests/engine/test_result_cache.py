"""Tests for the versioned query-result cache: keying, invalidation,
LRU/byte eviction, cost-aware admission, isolation of returned rows,
and the ``Query.execute`` wiring."""

import pytest

from repro.algebra import SetCount
from repro.casestudy import case_study_mo, diagnosis_value
from repro.core.values import DimensionValue, Fact
from repro.engine import Query, ResultCache, version_vector
from repro.obs import metrics

#: generous compute time — passes any admission check
EXPENSIVE = 1.0


def _rows(n=3, names=("D",)):
    return [({name: DimensionValue(sid=(name, i)) for name in names}, i)
            for i in range(n)]


class TestVersionVector:
    def test_stable_without_mutation(self):
        mo = case_study_mo(temporal=False)
        assert version_vector(mo) == version_vector(mo)

    def test_every_counter_moves_it(self):
        mo = case_study_mo(temporal=False)
        v0 = version_vector(mo)
        fact = Fact(fid=999, ftype="Patient")
        mo.add_fact(fact)
        v1 = version_vector(mo)
        assert v1 != v0
        mo.relate(fact, "Diagnosis", diagnosis_value(4))
        v2 = version_vector(mo)
        assert v2 != v1
        dim = mo.dimension("Diagnosis")
        fresh = DimensionValue(sid=777777)
        dim.add_value(dim.dtype.bottom_name, fresh)
        assert version_vector(mo) != v2


class TestGetPut:
    def test_roundtrip(self):
        cache = ResultCache()
        rows = _rows()
        assert cache.put("fp", ("v",), ("D",), rows, EXPENSIVE)
        assert cache.get("fp", ("v",)) == rows
        assert len(cache) == 1

    def test_miss_on_unknown_digest(self):
        cache = ResultCache()
        assert cache.get("nope", ("v",)) is None

    def test_version_mismatch_evicts_stale(self):
        cache = ResultCache()
        cache.put("fp", ("v1",), ("D",), _rows(), EXPENSIVE)
        stale = metrics.counter("query.cache.stale_evicted")
        before = stale.value
        assert cache.get("fp", ("v2",)) is None
        assert stale.value == before + 1
        assert len(cache) == 0
        # the entry is gone even for the original version
        assert cache.get("fp", ("v1",)) is None

    def test_put_replaces_existing_entry(self):
        cache = ResultCache()
        cache.put("fp", ("v1",), ("D",), _rows(2), EXPENSIVE)
        cache.put("fp", ("v2",), ("D",), _rows(5), EXPENSIVE)
        assert len(cache) == 1
        assert cache.get("fp", ("v1",)) is None  # replaced, now stale
        assert len(cache) == 0

    def test_hits_return_isolated_rows(self):
        """A caller mutating its result must not poison later hits."""
        cache = ResultCache()
        cache.put("fp", ("v",), ("D",), _rows(), EXPENSIVE)
        first = cache.get("fp", ("v",))
        first[0][0]["D"] = "poisoned"
        second = cache.get("fp", ("v",))
        assert second == _rows()

    def test_empty_result_is_cacheable(self):
        cache = ResultCache()
        assert cache.put("fp", ("v",), (), [], EXPENSIVE)
        assert cache.get("fp", ("v",)) == []

    def test_clear_drops_everything(self):
        cache = ResultCache()
        cache.put("fp", ("v",), ("D",), _rows(), EXPENSIVE)
        cache.clear()
        assert len(cache) == 0
        assert cache.nbytes == 0
        assert cache.get("fp", ("v",)) is None


class TestEviction:
    def test_lru_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", ("v",), ("D",), _rows(), EXPENSIVE)
        cache.put("b", ("v",), ("D",), _rows(), EXPENSIVE)
        cache.get("a", ("v",))  # refresh a: b is now the LRU victim
        evicted = metrics.counter("query.cache.evicted")
        before = evicted.value
        cache.put("c", ("v",), ("D",), _rows(), EXPENSIVE)
        assert evicted.value == before + 1
        assert cache.get("a", ("v",)) is not None
        assert cache.get("b", ("v",)) is None
        assert cache.get("c", ("v",)) is not None

    def test_byte_bound_evicts(self):
        cache = ResultCache(max_entries=100, max_bytes=1)
        cache.put("a", ("v",), ("D",), _rows(), EXPENSIVE)
        cache.put("b", ("v",), ("D",), _rows(), EXPENSIVE)
        # over budget: only the newest entry survives
        assert len(cache) == 1
        assert cache.get("b", ("v",)) is not None

    def test_byte_accounting_tracks_drops(self):
        cache = ResultCache()
        cache.put("a", ("v",), ("D",), _rows(50), EXPENSIVE)
        nbytes = cache.nbytes
        assert nbytes > 0
        cache.put("b", ("v",), ("D",), _rows(50), EXPENSIVE)
        assert cache.nbytes > nbytes
        assert cache.get("a", ("wrong",)) is None  # stale drop
        assert cache.nbytes == cache.nbytes  # coherent
        cache.clear()
        assert cache.nbytes == 0


class TestAdmission:
    def test_cheap_results_are_refused(self):
        cache = ResultCache()
        refused = metrics.counter("query.cache.admit_refused")
        before = refused.value
        assert not cache.put("fp", ("v",), ("D",), _rows(),
                             compute_seconds=0.0)
        assert refused.value == before + 1
        assert len(cache) == 0

    def test_expensive_results_are_admitted(self):
        cache = ResultCache()
        assert cache.put("fp", ("v",), ("D",), _rows(),
                         compute_seconds=EXPENSIVE)

    def test_admit_factor_scales_the_bar(self):
        tight = ResultCache(admit_factor=1e9)
        assert not tight.put("fp", ("v",), ("D",), _rows(),
                             compute_seconds=0.01)
        loose = ResultCache(admit_factor=0.0)
        assert loose.put("fp", ("v",), ("D",), _rows(),
                         compute_seconds=0.0)

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestQueryWiring:
    """The ``Query.execute`` integration: per-query caches, hit paths,
    exact invalidation, and the explain surface."""

    def _query(self, mo, cache):
        return (Query(mo, result_cache=cache)
                .rollup("Diagnosis", "Diagnosis Group"))

    def test_second_execute_hits(self):
        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        q = self._query(mo, cache)
        hits = metrics.counter("query.cache.hit")
        cold = q.execute()
        before = hits.value
        assert q.execute() == cold
        assert hits.value == before + 1

    def test_explain_names_hit_miss_and_fingerprint(self):
        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        q = self._query(mo, cache)
        miss = q.explain()
        (cache_step,) = [s for s in miss.steps if s.name == "cache"]
        assert cache_step.detail.startswith("miss: fingerprint=")
        hit = q.explain()
        assert hit.path == "cache"
        (cache_step,) = hit.steps
        assert cache_step.detail.startswith("hit: fingerprint=")
        assert hit.rows == miss.rows

    def test_mutation_invalidates_exactly(self):
        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        q = self._query(mo, cache)
        before = q.execute()
        fact = Fact(fid=888, ftype="Patient")
        mo.add_fact(fact)
        mo.relate(fact, "Diagnosis", diagnosis_value(4))
        after = q.execute()
        assert after == q.execute(cache=False)
        assert after != before

    def test_equivalent_queries_share_an_entry(self):
        """Builder order is surface syntax: two dices applied in either
        order canonicalize to one fingerprint, one entry."""
        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        v4, v5 = diagnosis_value(4), diagnosis_value(5)
        base = Query(mo, result_cache=cache).rollup(
            "Diagnosis", "Diagnosis Group")
        ab = base.dice("Diagnosis", v4).dice("Diagnosis", v5)
        ba = base.dice("Diagnosis", v5).dice("Diagnosis", v4)
        ab.execute(check=False)
        hits = metrics.counter("query.cache.hit")
        before = hits.value
        assert ba.execute(check=False) == ab.execute(check=False)
        assert hits.value == before + 2
        assert len(cache) == 1

    def test_memory_and_sql_paths_share_an_entry(self):
        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        q = self._query(mo, cache)
        rows = q.execute()
        assert q.explain(backend="sql").path == "cache"
        assert q.execute(backend="sql") == rows
        assert len(cache) == 1

    def test_cache_false_bypasses(self):
        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        q = self._query(mo, cache)
        bypass = metrics.counter("query.cache.bypass")
        before = bypass.value
        q.execute(cache=False)
        assert bypass.value == before + 1
        assert len(cache) == 0

    def test_unfingerprintable_function_bypasses(self):
        from repro.algebra.functions import AggregationFunction

        class Custom(AggregationFunction):
            name = "custom"

            def apply(self, facts, mo):
                return len(facts)

        mo = case_study_mo(temporal=False)
        cache = ResultCache(admit_factor=0.0)
        q = self._query(mo, cache)
        bypass = metrics.counter("query.cache.bypass")
        before = bypass.value
        report = q.explain(Custom())
        assert bypass.value == before + 1
        (cache_step, *_rest) = report.steps
        assert cache_step.name == "cache"
        assert cache_step.detail.startswith("bypass: ")
        assert "custom" in cache_step.detail
        assert len(cache) == 0

    def test_store_answers_are_cached_too(self, strict_clinical):
        from repro.engine import PreAggregateStore

        mo = strict_clinical.mo
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Group"})
        cache = ResultCache(admit_factor=0.0)
        q = Query(mo, store=store, result_cache=cache).rollup(
            "Diagnosis", "Diagnosis Group")
        assert q.explain().path == "store"
        assert q.explain().path == "cache"
        assert q.execute() == q.execute(cache=False)
