"""Tests for Query.check(): static analysis wired into the query API."""

import pytest

from repro.algebra import SetCount, Sum
from repro.core.errors import AggregationTypeError, StaticAnalysisError
from repro.engine.optimizer import AggregateNode, Base, SelectNode, evaluate
from repro.engine.query import Query


def _area(mo):
    return next(iter(mo.dimension("Residence").category("Area")))


class TestCheck:
    def test_clean_query_empty_report(self, snapshot_mo):
        report = Query(snapshot_mo).rollup("DOB", "Year").check()
        assert len(report) == 0

    def test_unsafe_grouping_reports_warning(self, snapshot_mo):
        report = (Query(snapshot_mo)
                  .rollup("Diagnosis", "Diagnosis Group").check())
        assert "MD030" in report.codes()
        assert not report.has_errors

    def test_strict_type_violation_is_error(self, snapshot_mo):
        report = Query(snapshot_mo).rollup("DOB", "Year").check(
            Sum("Name"), strict_types=True)
        assert report.codes() == ["MD001"]
        assert report.has_errors

    def test_holistic_function_surfaces_md070(self, snapshot_mo):
        from repro.algebra.functions import Median

        report = Query(snapshot_mo).rollup("DOB", "Year").check(
            Median("Age"))
        assert "MD070" in report.codes()
        assert not report.has_errors  # advisory, never blocks

    def test_check_report_is_sorted(self, snapshot_mo):
        report = (Query(snapshot_mo)
                  .rollup("Diagnosis", "Diagnosis Group").check())
        keys = [(d.code, d.location, d.message) for d in report]
        assert len(keys) >= 2  # MD030 plus the MD072 shard finding
        assert keys == sorted(keys)

    def test_to_plan_shape(self, snapshot_mo):
        query = (Query(snapshot_mo)
                 .dice("Residence", _area(snapshot_mo))
                 .rollup("DOB", "Year"))
        plan = query.to_plan()
        assert isinstance(plan, AggregateNode)
        assert isinstance(plan.child, SelectNode)
        assert isinstance(plan.child.child, Base)
        assert plan.grouping == (("DOB", "Year"),)

    def test_to_plan_evaluates_like_execute(self, snapshot_mo):
        query = (Query(snapshot_mo)
                 .dice("Residence", _area(snapshot_mo))
                 .rollup("DOB", "Year"))
        rows = query.execute()
        result_mo = evaluate(query.to_plan())
        groups = result_mo.facts
        assert len(groups) == len(rows)


class TestExecuteChecked:
    def test_execute_raises_on_error_findings(self, snapshot_mo):
        query = Query(snapshot_mo).rollup("DOB", "Year")
        with pytest.raises(StaticAnalysisError) as excinfo:
            query.execute(Sum("Name"), strict_types=True)
        assert [d.code for d in excinfo.value.diagnostics] == ["MD001"]

    def test_check_false_defers_to_runtime(self, snapshot_mo):
        query = Query(snapshot_mo).rollup("DOB", "Year")
        with pytest.raises(AggregationTypeError):
            query.execute(Sum("Name"), strict_types=True, check=False)

    def test_warnings_do_not_block_execution(self, snapshot_mo):
        rows = (Query(snapshot_mo)
                .rollup("Diagnosis", "Diagnosis Group")
                .execute(SetCount()))
        assert rows  # MD030 is a warning; evaluation proceeds

    def test_default_execute_unchanged(self, snapshot_mo):
        checked = Query(snapshot_mo).rollup("DOB", "Year").execute()
        unchecked = Query(snapshot_mo).rollup("DOB", "Year").execute(
            check=False)
        assert checked == unchecked
