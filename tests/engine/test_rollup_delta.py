"""Incremental (delta) maintenance of the rollup index.

The acceptance pin of the shared-scan issue: a single fact insertion no
longer triggers a full ``_build_dimension_index`` rebuild — it applies
as a patch to the existing closure and characterization maps, counted
by ``rollup_index.delta_applied``.  The property test is the safety
net: across random sequences of delta-able mutations (new facts,
fact-value relates, single-edge hierarchy additions), the maintained
index must answer exactly like an index built from scratch, and
non-delta-able mutations (removals) must fall back to a full rebuild.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.values import DimensionValue, Fact
from repro.engine.rollup_index import RollupIndex
from repro.obs import metrics

from tests.strategies import small_mos


def _assert_matches_fresh(index, mo):
    """Every dimension/category characterization of the maintained
    index equals a from-scratch build's."""
    fresh = RollupIndex(mo)
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        for ctype in dimension.dtype.category_types():
            maintained = index.characterization_map(name, ctype.name)
            rebuilt = fresh.characterization_map(name, ctype.name)
            assert maintained == rebuilt, (
                f"delta-maintained {name}/{ctype.name} diverged"
            )


def _warm(index, mo):
    for name in mo.dimension_names:
        index.characterization_map(name, mo.dimension(name).dtype.top_name)


class TestSingleMutations:
    def test_fact_insertion_applies_as_delta(self, small_clinical):
        """The acceptance criterion, verbatim: one insertion, zero
        rebuilds, ``rollup_index.delta_applied`` moves."""
        generated = small_clinical
        mo = generated.mo.copy()
        index = mo.rollup_index()
        index.group_counts("Diagnosis", "Diagnosis Group")
        builds = index.build_count
        applied = metrics.counter("rollup_index.delta_applied")
        before = applied.value
        fact = Fact(fid=("delta-probe", 1), ftype=mo.schema.fact_type)
        mo.relate(fact, "Diagnosis", generated.icd.low_levels[0])
        counts = index.group_counts("Diagnosis", "Diagnosis Group")
        assert index.build_count == builds, "insertion caused a rebuild"
        assert applied.value == before + 1
        assert sum(counts.values()) >= 1
        _assert_matches_fresh(index, mo)

    def test_single_edge_addition_applies_as_delta(self, small_clinical):
        generated = small_clinical
        mo = generated.mo.copy()
        index = mo.rollup_index()
        _warm(index, mo)
        builds = index.build_count
        deltas = index.delta_count
        dimension = mo.dimension("Diagnosis")
        value = DimensionValue(sid=("delta-probe", "low"))
        dimension.add_value("Low-level Diagnosis", value)
        dimension.add_edge(value, generated.icd.families[0])
        index.characterization_map("Diagnosis", "Diagnosis Family")
        assert index.build_count == builds, "edge addition caused a rebuild"
        assert index.delta_count == deltas + 1
        _assert_matches_fresh(index, mo)

    def test_removal_falls_back_to_full_rebuild(self, small_clinical):
        mo = small_clinical.mo.copy()
        index = mo.rollup_index()
        _warm(index, mo)
        builds = index.build_count
        deltas = index.delta_count
        victim = next(iter(mo.facts))
        mo.relation("Diagnosis").remove_fact(victim)
        index.characterization_map("Diagnosis", "Diagnosis Group")
        assert index.build_count == builds + 1, "removal must rebuild"
        assert index.delta_count == deltas
        _assert_matches_fresh(index, mo)

    def test_delta_disabled_always_rebuilds(self, small_clinical):
        generated = small_clinical
        mo = generated.mo.copy()
        index = mo.rollup_index()
        index.delta_enabled = False
        _warm(index, mo)
        builds = index.build_count
        mo.relate(Fact(fid=("delta-probe", 2), ftype=mo.schema.fact_type),
                  "Diagnosis", generated.icd.low_levels[0])
        index.group_counts("Diagnosis", "Diagnosis Group")
        assert index.build_count == builds + 1
        _assert_matches_fresh(index, mo)


@st.composite
def _mutation_scripts(draw):
    """A script of delta-able mutations as data: each step either adds
    a fresh fact related somewhere, relates an (existing or new) fact
    to another value, or adds one hierarchy edge."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["new_fact", "relate", "edge"]),
            st.integers(min_value=0, max_value=10 ** 6),
            st.integers(min_value=0, max_value=10 ** 6),
        ),
        min_size=1, max_size=8,
    ))


def _apply_script(mo, script):
    """Replay a mutation script against the MO, interpreting the drawn
    integers against whatever the MO currently contains; returns how
    many steps mutated anything."""
    applied = 0
    next_fid = 10 ** 6  # clear of the generator's fact ids
    for op, a, b in script:
        names = mo.dimension_names
        name = names[a % len(names)]
        dimension = mo.dimension(name)
        values = [v for cat in dimension.categories()
                  for v in cat.members() if not v.is_top]
        if op == "new_fact":
            fact = Fact(fid=next_fid, ftype=mo.schema.fact_type)
            next_fid += 1
            target = (values[b % len(values)] if values
                      else dimension.top_value)
            mo.relate(fact, name, target)
            applied += 1
        elif op == "relate":
            facts = sorted(mo.facts, key=repr)
            if not facts or not values:
                continue
            mo.relate(facts[b % len(facts)], name, values[a % len(values)])
            applied += 1
        else:  # one upward edge between adjacent levels
            levels = [ctype.name for ctype in dimension.dtype.category_types()
                      if not ctype.is_top]
            if len(levels) < 2:
                continue
            i = a % (len(levels) - 1)
            children = list(dimension.category(levels[i]).members())
            parents = list(dimension.category(levels[i + 1]).members())
            if not children or not parents:
                continue
            dimension.add_edge(children[b % len(children)],
                               parents[(a + b) % len(parents)])
            applied += 1
    return applied


@given(mo=small_mos(), script=_mutation_scripts())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_delta_maintained_index_matches_fresh_build(mo, script):
    """Property: after any sequence of delta-able mutations, the
    incrementally maintained index ≡ a freshly built index."""
    index = mo.rollup_index()
    _warm(index, mo)
    _apply_script(mo, script)
    _assert_matches_fresh(index, mo)


@given(mo=small_mos(), script=_mutation_scripts())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_interleaved_queries_stay_consistent(mo, script):
    """Same property with a query between every mutation, so each step
    individually applies as a delta (or rebuilds) instead of batching."""
    index = mo.rollup_index()
    _warm(index, mo)
    for step in script:
        _apply_script(mo, [step])
        _warm(index, mo)
    _assert_matches_fresh(index, mo)
