"""Property: a query answered through a pre-aggregate store returns
exactly what the store-less path returns — including after arbitrary MO
mutations in between (the store must never serve stale or unsafe
combinations)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import SetCount
from repro.core.values import Fact
from repro.engine import PreAggregateStore, Query
from tests.strategies import small_mos

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _draw_grouping(data, mo):
    """A random grouping: for each dimension, maybe group at one of its
    categories (any level, ⊤ included — the trivial grouping)."""
    grouping = {}
    for name in mo.dimension_names:
        categories = [
            ctype.name
            for ctype in mo.dimension(name).dtype.category_types()
        ]
        choice = data.draw(
            st.sampled_from([None] + categories),
            label=f"grouping[{name}]",
        )
        if choice is not None:
            grouping[name] = choice
    return grouping


def _rows(mo, store, grouping):
    query = Query(mo, store=store)
    for name, category in grouping.items():
        query = query.rollup(name, category)
    return query.execute(SetCount())


def _mutate(data, mo, next_fid):
    """One random mutation: a new fact related to a random value in
    each dimension (⊤ when the dimension has no other values)."""
    fact = Fact(fid=next_fid, ftype=mo.schema.fact_type)
    mo.add_fact(fact)
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        candidates = [
            value
            for ctype in dimension.dtype.category_types()
            for value in dimension.category(ctype.name).members()
        ] or [dimension.top_value]
        value = data.draw(st.sampled_from(candidates),
                          label=f"mutate[{name}]")
        mo.relate(fact, name, value)


class TestStoreEquivalence:
    @_SETTINGS
    @given(data=st.data())
    def test_store_matches_direct(self, data):
        mo = data.draw(small_mos())
        store = PreAggregateStore(mo)
        # materialize a few random groupings the store may answer from
        for _ in range(data.draw(st.integers(0, 2), label="n_mat")):
            store.materialize(SetCount(), _draw_grouping(data, mo))
        grouping = _draw_grouping(data, mo)
        assert _rows(mo, store, grouping) == _rows(mo, None, grouping)

    @_SETTINGS
    @given(data=st.data())
    def test_store_matches_direct_across_mutations(self, data):
        """Materialize, query, mutate, query again — the stored results
        must never leak into post-mutation answers."""
        mo = data.draw(small_mos())
        store = PreAggregateStore(mo)
        grouping = _draw_grouping(data, mo)
        store.materialize(SetCount(), grouping)
        assert _rows(mo, store, grouping) == _rows(mo, None, grouping)
        n_mutations = data.draw(st.integers(1, 3), label="n_mutations")
        for i in range(n_mutations):
            _mutate(data, mo, next_fid=10_000 + i)
            assert _rows(mo, store, grouping) == _rows(mo, None, grouping)
