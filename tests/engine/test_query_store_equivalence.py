"""Property: a query answered through a pre-aggregate store returns
exactly what the store-less path returns — including after arbitrary MO
mutations in between (the store must never serve stale or unsafe
combinations)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import SetCount
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.engine import PreAggregateStore, Query
from tests.strategies import small_mos

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _draw_grouping(data, mo):
    """A random grouping: for each dimension, maybe group at one of its
    categories (any level, ⊤ included — the trivial grouping)."""
    grouping = {}
    for name in mo.dimension_names:
        categories = [
            ctype.name
            for ctype in mo.dimension(name).dtype.category_types()
        ]
        choice = data.draw(
            st.sampled_from([None] + categories),
            label=f"grouping[{name}]",
        )
        if choice is not None:
            grouping[name] = choice
    return grouping


def _rows(mo, store, grouping):
    query = Query(mo, store=store)
    for name, category in grouping.items():
        query = query.rollup(name, category)
    return query.execute(SetCount(), cache=False)


def _mutate(data, mo, next_fid):
    """One random mutation: a new fact related to a random value in
    each dimension (⊤ when the dimension has no other values)."""
    fact = Fact(fid=next_fid, ftype=mo.schema.fact_type)
    mo.add_fact(fact)
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        candidates = [
            value
            for ctype in dimension.dtype.category_types()
            for value in dimension.category(ctype.name).members()
        ] or [dimension.top_value]
        value = data.draw(st.sampled_from(candidates),
                          label=f"mutate[{name}]")
        mo.relate(fact, name, value)


class TestStoreEquivalence:
    @_SETTINGS
    @given(data=st.data())
    def test_store_matches_direct(self, data):
        mo = data.draw(small_mos())
        store = PreAggregateStore(mo)
        # materialize a few random groupings the store may answer from
        for _ in range(data.draw(st.integers(0, 2), label="n_mat")):
            store.materialize(SetCount(), _draw_grouping(data, mo))
        grouping = _draw_grouping(data, mo)
        assert _rows(mo, store, grouping) == _rows(mo, None, grouping)

    @_SETTINGS
    @given(data=st.data())
    def test_store_matches_direct_across_mutations(self, data):
        """Materialize, query, mutate, query again — the stored results
        must never leak into post-mutation answers."""
        mo = data.draw(small_mos())
        store = PreAggregateStore(mo)
        grouping = _draw_grouping(data, mo)
        store.materialize(SetCount(), grouping)
        assert _rows(mo, store, grouping) == _rows(mo, None, grouping)
        n_mutations = data.draw(st.integers(1, 3), label="n_mutations")
        for i in range(n_mutations):
            _mutate(data, mo, next_fid=10_000 + i)
            assert _rows(mo, store, grouping) == _rows(mo, None, grouping)


def _imprecise_merge_mo():
    """The minimal MO where α's set-fact merge shows in the rows: fact 0
    is imprecise at Dim0's upper level (its bottom value has two
    parents) and multi-valued on Dim1, so three of its four group
    combinations share the member set {f0} and merge into one set-fact;
    fact 1 shares the fourth combination precisely."""
    d0 = Dimension(DimensionType("Dim0", [
        CategoryType("Dim0L0", AggregationType.SUM, is_bottom=True),
        CategoryType("Dim0L1", AggregationType.CONSTANT),
    ], [("Dim0L0", "Dim0L1")]))
    a = DimensionValue(sid="a")
    b0, b1 = DimensionValue(sid="b0"), DimensionValue(sid="b1")
    d0.add_value("Dim0L0", a)
    d0.add_value("Dim0L1", b0)
    d0.add_value("Dim0L1", b1)
    d0.add_edge(a, b0)
    d0.add_edge(a, b1)
    d1 = Dimension(DimensionType("Dim1", [
        CategoryType("Dim1L0", AggregationType.SUM, is_bottom=True),
    ], []))
    c0, c1 = DimensionValue(sid="c0"), DimensionValue(sid="c1")
    d1.add_value("Dim1L0", c0)
    d1.add_value("Dim1L0", c1)
    dims = {"Dim0": d0, "Dim1": d1}
    mo = MultidimensionalObject(
        schema=FactSchema("T", [d.dtype for d in dims.values()]),
        dimensions=dims, kind=TimeKind.SNAPSHOT)
    f0, f1 = Fact(fid=0, ftype="T"), Fact(fid=1, ftype="T")
    mo.add_fact(f0)
    mo.add_fact(f1)
    mo.relate(f0, "Dim0", a)   # ancestors at L1: both b0 and b1
    mo.relate(f0, "Dim1", c0)
    mo.relate(f0, "Dim1", c1)  # multi-valued
    mo.relate(f1, "Dim0", b0)  # characterized directly at L1
    mo.relate(f1, "Dim1", c0)
    return mo, (b0, c0)


class TestImpreciseMergeRegression:
    """Regression for the store path serving exact per-combination
    cells where the α path merges combinations selecting the same facts
    and re-expands their cross product (found by the property above)."""

    GROUPING = {"Dim0": "Dim0L1", "Dim1": "Dim1L0"}

    def test_store_matches_direct_on_merged_groups(self):
        mo, _ = _imprecise_merge_mo()
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), self.GROUPING)
        assert _rows(mo, store, self.GROUPING) == \
            _rows(mo, None, self.GROUPING)

    def test_merged_expansion_duplicates_the_shared_combination(self):
        """Both paths present (b0, c0) twice — once as the precise
        group {f0, f1} and once re-expanded from the merged {f0} —
        with the value repr as the deterministic tiebreak."""
        mo, (b0, c0) = _imprecise_merge_mo()
        direct = _rows(mo, None, self.GROUPING)
        assert len(direct) == 5
        shared = [n for g, n in direct
                  if (g["Dim0"], g["Dim1"]) == (b0, c0)]
        assert shared == [1, 2]
