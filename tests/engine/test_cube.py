"""Tests for cube materialization and greedy view selection."""

import pytest

from repro.algebra import SetCount
from repro.engine import CubeBuilder, greedy_view_selection


@pytest.fixture()
def builder(strict_clinical):
    return CubeBuilder(strict_clinical.mo,
                       dimensions=["Diagnosis", "Residence"])


class TestCuboidLattice:
    def test_key_count_is_product_of_lattice_sizes(self, builder,
                                                   strict_clinical):
        mo = strict_clinical.mo
        expected = (
            len(mo.dimension("Diagnosis").dtype.category_types())
            * len(mo.dimension("Residence").dtype.category_types())
        )
        assert len(builder.cuboid_keys()) == expected

    def test_materialize_cuboid(self, builder):
        key = ("Diagnosis Group", "Region")
        cuboid = builder.materialize(key)
        assert cuboid.size > 0
        assert cuboid.grouping == {"Diagnosis": "Diagnosis Group",
                                   "Residence": "Region"}

    def test_materialize_cached(self, builder):
        key = ("Diagnosis Group", "Region")
        assert builder.materialize(key) is builder.materialize(key)

    def test_coarser_or_equal(self, builder):
        fine = ("Low-level Diagnosis", "Area")
        coarse = ("Diagnosis Group", "Region")
        assert builder.is_coarser_or_equal(fine, coarse)
        assert builder.is_coarser_or_equal(fine, fine)
        assert not builder.is_coarser_or_equal(coarse, fine)

    def test_summarizable_cuboid_answers_coarser(self, builder):
        fine = ("Diagnosis Family", "Area")
        answerable = builder.answerable_from(fine)
        assert ("Diagnosis Group", "Region") in answerable
        assert ("Low-level Diagnosis", "Area") not in answerable

    def test_sizes_shrink_upward(self, builder):
        fine = builder.materialize(("Low-level Diagnosis", "Area"))
        coarse = builder.materialize(("Diagnosis Group", "Region"))
        assert coarse.size <= fine.size


class TestNonSummarizableCube:
    def test_non_strict_cuboid_only_answers_itself(self, small_clinical):
        builder = CubeBuilder(small_clinical.mo, dimensions=["Diagnosis"])
        fine = ("Diagnosis Family",)
        assert builder.answerable_from(fine) == {fine}


class TestGreedySelection:
    def test_respects_budget(self, builder):
        selected = greedy_view_selection(builder, budget=3)
        assert len(selected) <= 3

    def test_selection_has_positive_benefit(self, builder):
        selected = greedy_view_selection(builder, budget=2)
        assert selected, "greedy should find at least one useful view"
        base = builder.materialize(("Low-level Diagnosis", "Area"))
        for cuboid in selected:
            assert cuboid.size < base.size

    def test_zero_budget(self, builder):
        assert greedy_view_selection(builder, budget=0) == []
