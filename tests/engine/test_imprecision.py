"""Tests for granularity-aware grouping."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.errors import SchemaError
from repro.engine import (
    classify_by_granularity,
    group_with_imprecision,
    weighted_distribution,
)


class TestClassification:
    def test_case_study_at_low_level(self, snapshot_mo):
        """Patient 1 is recorded only at family granularity (value 9),
        patient 2 has low-level diagnoses too."""
        result = classify_by_granularity(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert {f.fid for f in result.answerable} == {2}
        assert {v.sid for v in result.imprecise} == {9}
        assert {f.fid
                for facts in result.imprecise.values()
                for f in facts} == {1}
        assert result.unknown == set()

    def test_everyone_answerable_at_group_level(self, snapshot_mo):
        result = classify_by_granularity(snapshot_mo, "Diagnosis",
                                         "Diagnosis Group")
        assert {f.fid for f in result.answerable} == {1, 2}
        assert result.imprecise == {}

    def test_unknown_bucket(self, snapshot_mo):
        mo = snapshot_mo.copy()
        relation = mo.relation("Diagnosis")
        relation.remove_fact(patient_fact(1))
        relation.add(patient_fact(1),
                     mo.dimension("Diagnosis").top_value)
        result = classify_by_granularity(mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert {f.fid for f in result.unknown} == {1}

    def test_unknown_category_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            classify_by_granularity(snapshot_mo, "Diagnosis", "Nope")


class TestGroupWithImprecision:
    def test_counts_summary(self, snapshot_mo):
        grouped = group_with_imprecision(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        counts = grouped.counts()
        assert counts["P11"] == 1      # patient 2 via diagnosis 3
        assert counts["O24.0"] == 1    # patient 2 via diagnosis 5
        assert counts["imprecise@E10"] == 1  # patient 1 stuck at family 9

    def test_nothing_lost(self, snapshot_mo):
        grouped = group_with_imprecision(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        seen = set()
        for facts in grouped.groups.values():
            seen |= facts
        for facts in grouped.imprecise.values():
            seen |= facts
        seen |= grouped.unknown
        assert seen == snapshot_mo.facts


class TestWeightedDistribution:
    def test_case_study_distribution(self, snapshot_mo):
        """Patient 1's family-level E10 diagnosis spreads uniformly over
        the low-level values below family 9 — only O24.0 (value 5)."""
        weighted = weighted_distribution(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        by_label = {(v.label or v.sid): c for v, c in weighted.items() if c}
        assert by_label == {"P11": 1.0, "O24.0": 2.0}

    def test_uniform_split_across_children(self):
        mo = case_study_mo(temporal=False)
        # give patient 1 the family 4 (children 5 and 6) instead of 9
        relation = mo.relation("Diagnosis")
        relation.remove_fact(patient_fact(1))
        relation.add(patient_fact(1), diagnosis_value(4))
        weighted = weighted_distribution(mo, "Diagnosis",
                                         "Low-level Diagnosis")
        by_sid = {v.sid: c for v, c in weighted.items()}
        assert by_sid[5] == pytest.approx(1.0 + 0.5)  # patient 2 + half
        assert by_sid[6] == pytest.approx(0.5)

    def test_total_preserved_for_single_base_facts(self, strict_clinical):
        """On the strict single-diagnosis workload, the weighted totals
        at low level equal the patient count."""
        weighted = weighted_distribution(strict_clinical.mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert sum(weighted.values()) == pytest.approx(
            len(strict_clinical.mo.facts))
