"""Tests for granularity-aware grouping."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.errors import SchemaError
from repro.engine import (
    classify_by_granularity,
    group_with_imprecision,
    weighted_distribution,
)


class TestClassification:
    def test_case_study_at_low_level(self, snapshot_mo):
        """Patient 1 is recorded only at family granularity (value 9),
        patient 2 has low-level diagnoses too."""
        result = classify_by_granularity(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert {f.fid for f in result.answerable} == {2}
        assert {v.sid for v in result.imprecise} == {9}
        assert {f.fid
                for facts in result.imprecise.values()
                for f in facts} == {1}
        assert result.unknown == set()

    def test_everyone_answerable_at_group_level(self, snapshot_mo):
        result = classify_by_granularity(snapshot_mo, "Diagnosis",
                                         "Diagnosis Group")
        assert {f.fid for f in result.answerable} == {1, 2}
        assert result.imprecise == {}

    def test_unknown_bucket(self, snapshot_mo):
        mo = snapshot_mo.copy()
        relation = mo.relation("Diagnosis")
        relation.remove_fact(patient_fact(1))
        relation.add(patient_fact(1),
                     mo.dimension("Diagnosis").top_value)
        result = classify_by_granularity(mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert {f.fid for f in result.unknown} == {1}

    def test_unknown_category_rejected(self, snapshot_mo):
        with pytest.raises(SchemaError):
            classify_by_granularity(snapshot_mo, "Diagnosis", "Nope")


class TestGroupWithImprecision:
    def test_counts_summary(self, snapshot_mo):
        grouped = group_with_imprecision(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        counts = grouped.counts()
        assert counts["P11"] == 1      # patient 2 via diagnosis 3
        assert counts["O24.0"] == 1    # patient 2 via diagnosis 5
        assert counts["imprecise@E10"] == 1  # patient 1 stuck at family 9

    def test_nothing_lost(self, snapshot_mo):
        grouped = group_with_imprecision(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        seen = set()
        for facts in grouped.groups.values():
            seen |= facts
        for facts in grouped.imprecise.values():
            seen |= facts
        seen |= grouped.unknown
        assert seen == snapshot_mo.facts


class TestWeightedDistribution:
    def test_case_study_distribution(self, snapshot_mo):
        """Patient 1's family-level E10 diagnosis spreads uniformly over
        the low-level values below family 9 — only O24.0 (value 5)."""
        weighted = weighted_distribution(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        by_label = {(v.label or v.sid): c for v, c in weighted.items() if c}
        assert by_label == {"P11": 1.0, "O24.0": 2.0}

    def test_uniform_split_across_children(self):
        mo = case_study_mo(temporal=False)
        # give patient 1 the family 4 (children 5 and 6) instead of 9
        relation = mo.relation("Diagnosis")
        relation.remove_fact(patient_fact(1))
        relation.add(patient_fact(1), diagnosis_value(4))
        weighted = weighted_distribution(mo, "Diagnosis",
                                         "Low-level Diagnosis")
        by_sid = {v.sid: c for v, c in weighted.items()}
        assert by_sid[5] == pytest.approx(1.0 + 0.5)  # patient 2 + half
        assert by_sid[6] == pytest.approx(0.5)

    def test_total_preserved_for_single_base_facts(self, strict_clinical):
        """On the strict single-diagnosis workload, the weighted totals
        at low level equal the patient count."""
        weighted = weighted_distribution(strict_clinical.mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert sum(weighted.values()) == pytest.approx(
            len(strict_clinical.mo.facts))


def _mixed_mo(order):
    """One dimension (Low = {x1, x2, y} under High = {g1, g2}, plus the
    childless coarse value q), built by relating facts in the given
    ``order`` — the content is identical regardless of order."""
    from repro.core.aggtypes import AggregationType
    from repro.core.category import CategoryType
    from repro.core.dimension import Dimension, DimensionType
    from repro.core.mo import MultidimensionalObject, TimeKind
    from repro.core.schema import FactSchema
    from repro.core.values import DimensionValue, Fact

    ctypes = [
        CategoryType("Low", AggregationType.SUM, is_bottom=True),
        CategoryType("High", AggregationType.CONSTANT),
    ]
    dim = Dimension(DimensionType("D", ctypes, [("Low", "High")]))
    # two distinct Low values that share the label "X" (label collision)
    x1 = DimensionValue(sid="x1", label="X")
    x2 = DimensionValue(sid="x2", label="X")
    y = DimensionValue(sid="y", label="Y")
    g1 = DimensionValue(sid="g1", label="G1")
    g2 = DimensionValue(sid="g2", label="G2")
    q = DimensionValue(sid="q", label="Q")  # coarse value, no children
    for value in (x1, x2, y):
        dim.add_value("Low", value)
    for value in (g1, g2, q):
        dim.add_value("High", value)
    dim.add_edge(x1, g1)
    dim.add_edge(x2, g1)
    dim.add_edge(y, g2)
    mo = MultidimensionalObject(
        schema=FactSchema("T", [dim.dtype]),
        dimensions={"D": dim},
        kind=TimeKind.SNAPSHOT,
    )
    links = {
        0: x1, 1: x2, 2: y,
        3: g1,  # imprecise, distributable over {x1, x2}
        4: q,   # imprecise, nothing below q: unattributable
    }
    for fid in order:
        mo.relate(Fact(fid=fid, ftype="T"), "D", links[fid])
    return mo


class TestCountsDeterminism:
    def test_same_summary_for_any_insertion_order(self):
        """Regression: ``counts()`` used to sort buckets by the repr of
        the whole (value, fact-set) pair, so key order depended on set
        iteration order — i.e. on how the MO happened to be built."""
        forward = _mixed_mo(order=[0, 1, 2, 3, 4])
        backward = _mixed_mo(order=[4, 3, 2, 1, 0])
        a = group_with_imprecision(forward, "D", "Low").counts()
        b = group_with_imprecision(backward, "D", "Low").counts()
        assert list(a.items()) == list(b.items())

    def test_colliding_labels_not_merged(self):
        """Regression: two values sharing a label used to collapse into
        one summary entry, silently summing their counts."""
        mo = _mixed_mo(order=[0, 1, 2, 3, 4])
        counts = group_with_imprecision(mo, "D", "Low").counts()
        assert "X" not in counts
        assert counts["X#x1"] == 1
        assert counts["X#x2"] == 1
        assert counts["Y"] == 1  # unique labels stay unqualified


class TestUnattributedDistribution:
    def test_unattributable_mass_reported(self):
        """Regression: an imprecise fact whose coarse value has no
        descendant in the target category used to vanish from the
        weighted distribution."""
        from repro.engine import UNATTRIBUTED

        mo = _mixed_mo(order=[0, 1, 2, 3, 4])
        weighted = weighted_distribution(mo, "D", "Low")
        assert weighted[UNATTRIBUTED] == 1.0  # fact 4, stuck at q
        # total preserved: 3 precise + 1 distributed + 1 unattributed
        assert sum(weighted.values()) == pytest.approx(5.0)

    def test_unattributed_metric_counts_mass(self):
        from repro.obs import metrics

        mo = _mixed_mo(order=[0, 1, 2, 3, 4])
        counter = metrics.counter("imprecision.unattributed_mass")
        before = counter.value
        weighted_distribution(mo, "D", "Low")
        assert counter.value == before + 1.0

    def test_no_unattributed_key_when_all_distributable(self, snapshot_mo):
        from repro.engine import UNATTRIBUTED

        weighted = weighted_distribution(snapshot_mo, "Diagnosis",
                                         "Low-level Diagnosis")
        assert UNATTRIBUTED not in weighted
