"""Property: the sharded process-pool backend is invisible to
correctness and honest about its admission gate.

Across random mutation scripts, shard counts (1, 2, 7, and the
machine's cpu count), and every function class the executor admits,
``backend="sharded"`` rows are byte-identical to ``backend="memory"``
and to the naive no-index α oracle.  Plans the static analyzer does not
prove SHARDABLE never reach the pool: they raise
:class:`~repro.engine.backends.BackendRefused` carrying *exactly* the
MD07x diagnostic :func:`repro.analyze.shardability.shardability_of`
predicts, with the ``sharded.shards_run`` counter unmoved."""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    conjunction,
    select,
)
from repro.algebra.functions import Avg, Max, Median, Min, Sum
from repro.analyze import ShardVerdict, shardability_of
from repro.core.helpers import make_result_spec
from repro.core.values import Fact
from repro.engine import Query
from repro.engine.backends import BackendRefused
from repro.engine.sharded import ShardedBackend
from repro.obs import metrics
from repro.workloads.generator import ClinicalConfig, generate_clinical

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SHARD_COUNTS = (1, 2, 7, os.cpu_count() or 2)

#: one admitted function per class: distributive without args,
#: distributive with a measure, algebraic, and the min/max pair whose
#: per-shard nan placeholders exercise the measured-flag merge.
FUNCTIONS = (SetCount(), Sum("Age"), Avg("Age"), Min("Age"), Max("Age"))


def _canon(rows):
    return [
        (tuple(sorted((k, repr(v)) for k, v in group.items())),
         repr(raw), type(raw).__name__)
        for group, raw in rows
    ]


def _naive_rows(mo, function, grouping, dices):
    """The oracle: dice via one σ, aggregate with ``use_index=False``
    and ``use_kernel=False``, then Query's merge-and-re-expand row
    extraction."""
    if dices:
        mo = select(mo, conjunction(*[characterized_by(d, v)
                                      for d, v in dices]))
    aggregated = aggregate(mo, function, grouping,
                           make_result_spec(name="__query_result"),
                           use_index=False)
    names = sorted(grouping)
    rows = []
    for fact in aggregated.facts:
        raw = next(iter(
            aggregated.relation("__query_result").values_of(fact))).sid
        combos = [{}]
        for name in names:
            values = sorted(aggregated.relation(name).values_of(fact),
                            key=repr)
            combos = [{**combo, name: value}
                      for combo in combos for value in values]
        rows.extend((group, raw) for group in combos)
    rows.sort(key=lambda row: (
        tuple(repr(row[0][name]) for name in names), repr(row[1])))
    return rows


def _mutate(data, workload, next_fid):
    """Add a patient: one residence area, one age — the shapes the
    declared-strict Residence hierarchy stays SAFE under."""
    mo = workload.mo
    fact = Fact(fid=next_fid, ftype=mo.schema.fact_type)
    mo.add_fact(fact)
    area = data.draw(st.sampled_from(workload.areas), label="area")
    mo.relate(fact, "Residence", area)
    age_values = [
        v for v in mo.dimension("Age").category("Age").members()
    ]
    mo.relate(fact, "Age",
              data.draw(st.sampled_from(sorted(age_values, key=repr)),
                        label="age"))


def _fresh_query(workload, grouping, dices):
    q = Query(workload.mo)
    for name, category in sorted(grouping.items()):
        q = q.rollup(name, category)
    for name, value in dices:
        q = q.dice(name, value)
    return q


@_SETTINGS
@given(data=st.data())
def test_sharded_equals_memory_equals_naive(data):
    workload = generate_clinical(ClinicalConfig(
        n_patients=data.draw(st.integers(5, 60), label="n_patients"),
        seed=data.draw(st.integers(0, 10_000), label="seed")))
    function = data.draw(st.sampled_from(FUNCTIONS), label="function")
    category = data.draw(
        st.sampled_from(["Area", "County", "Region"]), label="category")
    grouping = {"Residence": category}
    dices = []
    if data.draw(st.booleans(), label="dice?"):
        dices = [("Residence",
                  data.draw(st.sampled_from(workload.regions),
                            label="dice_region"))]
    n_rounds = data.draw(st.integers(1, 3), label="n_rounds")
    for i in range(n_rounds):
        q = _fresh_query(workload, grouping, dices)
        memory = q.execute(function, check=False, cache=False)
        naive = _naive_rows(workload.mo, function, grouping, dices)
        assert _canon(memory) == _canon(naive)
        for n_shards in SHARD_COUNTS:
            sharded = q.execute(
                function, check=False, cache=False,
                backend=ShardedBackend(n_shards=n_shards))
            assert _canon(sharded) == _canon(memory), (
                f"shards={n_shards} diverged for {function.name} "
                f"over {grouping}")
        if i + 1 < n_rounds:
            _mutate(data, workload, next_fid=50_000 + i)


@_SETTINGS
@given(data=st.data())
def test_refusal_quotes_the_analyzers_diagnostic(data):
    """Any plan the analyzer does not prove SHARDABLE raises
    BackendRefused with the exact predicted MD07x diagnostic — and the
    pool never runs a shard for it."""
    workload = generate_clinical(ClinicalConfig(
        n_patients=data.draw(st.integers(5, 25), label="n_patients"),
        seed=data.draw(st.integers(0, 1_000), label="seed")))
    function = data.draw(
        st.sampled_from((Median("Age"), SetCount(), Avg("Age"))),
        label="function")
    # Diagnosis rollups are undeclared (and multi-valued): not SAFE
    dim, cat = data.draw(st.sampled_from(
        [("Residence", "Region"), ("Diagnosis", "Diagnosis Group")]),
        label="rollup")
    q = Query(workload.mo).rollup(dim, cat)
    plan = q.to_plan(function, False)
    verdict, report = shardability_of(plan)
    before = metrics.counter("sharded.shards_run").value
    if verdict is ShardVerdict.SHARDABLE:
        rows = q.execute(function, check=False, cache=False,
                         backend=ShardedBackend(n_shards=2))
        assert _canon(rows) == _canon(
            q.execute(function, check=False, cache=False))
        return
    predicted = [d for d in report.diagnostics
                 if d.code.startswith("MD07")]
    assert predicted, f"non-SHARDABLE verdict without MD07x: {report}"
    with pytest.raises(BackendRefused) as excinfo:
        q.execute(function, check=False, cache=False,
                  backend=ShardedBackend(n_shards=2))
    assert excinfo.value.diagnostic == predicted[0]
    assert metrics.counter("sharded.shards_run").value == before, (
        "a refused plan reached the worker pool")


def test_holistic_never_reaches_the_pool():
    """The ISSUE's named case, pinned without hypothesis so it always
    runs: a HOLISTIC function (Median) refuses with MD070."""
    workload = generate_clinical(ClinicalConfig(n_patients=12, seed=3))
    q = Query(workload.mo).rollup("Residence", "Region")
    before = metrics.counter("sharded.shards_run").value
    with pytest.raises(BackendRefused) as excinfo:
        q.execute(Median("Age"), check=False, cache=False,
                  backend="sharded")
    assert excinfo.value.diagnostic.code == "MD070"
    assert metrics.counter("sharded.shards_run").value == before


def test_sharded_explain_path_and_steps():
    workload = generate_clinical(ClinicalConfig(n_patients=20, seed=5))
    q = Query(workload.mo).rollup("Residence", "County")
    report = q.explain(Sum("Age"), backend="sharded", cache=False)
    assert report.path == "sharded"
    names = [step.name for step in report.steps]
    assert names == ["shard-plan", "shard-map", "shard-merge"]
    assert _canon(report.rows) == _canon(
        q.execute(Sum("Age"), check=False, cache=False))


def test_payload_cache_hits_until_mutation():
    workload = generate_clinical(ClinicalConfig(n_patients=15, seed=8))
    backend = ShardedBackend(n_shards=2)
    q = Query(workload.mo).rollup("Residence", "Region")
    hits = metrics.counter("sharded.payload.cache_hit")
    builds = metrics.counter("sharded.payload.build")
    h0, b0 = hits.value, builds.value
    q.execute(Sum("Age"), check=False, cache=False, backend=backend)
    q.execute(Sum("Age"), check=False, cache=False, backend=backend)
    assert builds.value == b0 + 1 and hits.value == h0 + 1
    # a mutation moves the version vector: the cache must miss
    mo = workload.mo
    fact = Fact(fid=77_777, ftype=mo.schema.fact_type)
    mo.add_fact(fact)
    mo.relate(fact, "Residence", workload.areas[0])
    age = sorted(mo.dimension("Age").category("Age").members(),
                 key=repr)[0]
    mo.relate(fact, "Age", age)
    rows = Query(mo).rollup("Residence", "Region").execute(
        Sum("Age"), check=False, cache=False, backend=backend)
    assert builds.value == b0 + 2
    assert rows == Query(mo).rollup("Residence", "Region").execute(
        Sum("Age"), check=False, cache=False)
