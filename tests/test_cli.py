"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for command in ("table1", "table2", "figure1", "figure2",
                        "figure3", "probes", "demo"):
            args = build_parser().parse_args([command])
            assert args.command == command


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Patient Table" in out and "John Doe" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Lehner" in out and "this paper" in out

    def test_table2_verified(self, capsys):
        assert main(["table2", "--verify"]) == 0
        assert "√" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figure1"]) == 0
        assert "Relationships" in capsys.readouterr().out
        assert main(["figure2"]) == 0
        assert "Diagnosis:" in capsys.readouterr().out
        assert main(["figure3"]) == 0
        assert "Set-of-Patient" in capsys.readouterr().out

    def test_probes(self, capsys):
        assert main(["probes"]) == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 9

    def test_timeslice(self, capsys):
        assert main(["timeslice", "--date", "01/06/75"]) == 0
        out = capsys.readouterr().out
        assert "D1" in out  # patient 2's old Diabetes code

    def test_timeslice_rejects_now(self, capsys):
        assert main(["timeslice", "--date", "NOW"]) == 2

    def test_export_stdout(self, capsys):
        assert main(["export"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["fact_type"] == "Patient"

    def test_export_file(self, tmp_path, capsys):
        target = tmp_path / "mo.json"
        assert main(["export", "--temporal", "--out", str(target)]) == 0
        from repro.io import loads

        mo = loads(target.read_text())
        mo.validate()
        assert len(mo.facts) == 2

    def test_demo(self, capsys):
        assert main(["demo", "--patients", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Generated 30 patients" in out
        assert "\\" in out  # the pivot header

    def test_analyze_all(self, capsys):
        assert main(["analyze"]) == 0  # warnings don't fail the run
        out = capsys.readouterr().out
        assert "case study" in out
        # the known-real findings (Examples 6 and 11)
        assert "MD023" in out and "MD028" in out
        assert "0 error(s)" in out

    def test_analyze_clean_subject(self, capsys):
        assert main(["analyze", "--subject", "retail"]) == 0
        out = capsys.readouterr().out
        assert "clean: no diagnostics" in out
        assert "case study" not in out

    def test_analyze_shardability_text(self, capsys):
        assert main(["analyze", "--shardability",
                     "--subject", "retail"]) == 0
        out = capsys.readouterr().out
        assert "SetCount rollup" in out
        assert "shardable" in out
        assert "Median" in out  # the holistic plan is exercised too

    def test_analyze_json_schema(self, capsys):
        assert main(["analyze", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "analyze"
        assert payload["subject"] == "all"
        assert payload["shardability"] is False
        assert payload["ok"] is True
        assert len(payload["subjects"]) == 4
        for entry in payload["subjects"]:
            assert set(entry) == {"subject", "diagnostics",
                                  "errors", "warnings"}
            assert entry["errors"] == 0
            for d in entry["diagnostics"]:
                assert set(d) == {"code", "severity", "message",
                                  "location", "hint"}
                assert d["severity"] in ("error", "warning", "info")

    def test_analyze_shardability_json(self, capsys):
        assert main(["analyze", "--shardability",
                     "--subject", "clinical", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["subjects"]
        assert entry["plans"]
        for plan in entry["plans"]:
            assert set(plan) == {"plan", "verdict", "diagnostics"}
            assert plan["verdict"] in ("shardable", "not-shardable",
                                       "unknown")
        verdicts = {plan["verdict"] for plan in entry["plans"]}
        assert "not-shardable" in verdicts  # the Median plan

    def test_analyze_exit_nonzero_on_errors(self, monkeypatch, capsys):
        import repro.analyze as analyze

        def forced(mo):
            report = analyze.AnalysisReport("forced")
            report.emit("MD010", "forced failure", "somewhere")
            return report

        monkeypatch.setattr(analyze, "analyze_schema", forced)
        assert main(["analyze", "--subject", "retail"]) == 1
        assert "forced failure" in capsys.readouterr().out

    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--no-such-flag"])
        assert excinfo.value.code == 2

    def test_unknown_subject_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--subject", "nope"])
        assert excinfo.value.code == 2
