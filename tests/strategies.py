"""Shared hypothesis strategies for property-based tests.

Provides generators for chronon sets, annotated hierarchies, and small
random multidimensional objects — the raw material of the closure,
coalescing, summarizability, and degeneration properties.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import TIME_MAX, TIME_MIN
from repro.temporal.timeset import ALWAYS, TimeSet

__all__ = [
    "chronons",
    "intervals",
    "timesets",
    "probabilities",
    "small_dimensions",
    "small_mos",
]

#: a narrow band of the time domain keeps interval arithmetic readable
_LO = TIME_MIN + 1000
_HI = TIME_MIN + 2000

chronons = st.integers(min_value=_LO, max_value=_HI)


@st.composite
def intervals(draw):
    """A single closed interval inside the test band."""
    start = draw(chronons)
    length = draw(st.integers(min_value=0, max_value=200))
    return (start, min(start + length, _HI))


@st.composite
def timesets(draw):
    """A coalesced TimeSet of up to 5 intervals."""
    ivals = draw(st.lists(intervals(), min_size=0, max_size=5))
    return TimeSet.of(ivals)


probabilities = st.one_of(
    st.just(1.0),
    st.floats(min_value=0.05, max_value=1.0, allow_nan=False,
              allow_infinity=False),
)


@st.composite
def small_dimensions(draw, name: str = "D", n_levels: int = None,
                     temporal: bool = False, probabilistic: bool = False):
    """A random dimension: 1-3 levels, a handful of values per level,
    random upward edges (possibly non-strict), optional time/probability
    annotations."""
    if n_levels is None:
        n_levels = draw(st.integers(min_value=1, max_value=3))
    level_names = [f"{name}L{i}" for i in range(n_levels)]
    ctypes = [
        CategoryType(level, AggregationType.SUM if i == 0
                     else AggregationType.CONSTANT, is_bottom=(i == 0))
        for i, level in enumerate(level_names)
    ]
    edges = [(level_names[i], level_names[i + 1])
             for i in range(n_levels - 1)]
    dimension = Dimension(DimensionType(name, ctypes, edges))
    values_per_level = []
    for level_index, level in enumerate(level_names):
        n_values = draw(st.integers(min_value=1, max_value=4))
        level_values = []
        for j in range(n_values):
            # sids embed the level so independently drawn dimensions
            # agree on every shared value's category (global Type(e))
            value = DimensionValue(sid=(name, level_index, j))
            dimension.add_value(level, value)
            level_values.append(value)
        values_per_level.append(level_values)
    for i in range(n_levels - 1):
        for child in values_per_level[i]:
            n_parents = draw(st.integers(min_value=0, max_value=2))
            parents = draw(st.lists(
                st.sampled_from(values_per_level[i + 1]),
                min_size=min(n_parents, 1) if n_parents else 0,
                max_size=n_parents, unique=True))
            for parent in parents:
                time = draw(timesets()) if temporal else ALWAYS
                prob = draw(probabilities) if probabilistic else 1.0
                if time.is_empty():
                    time = ALWAYS
                dimension.add_edge(child, parent, time=time, prob=prob)
    return dimension, values_per_level


@st.composite
def small_mos(draw, n_dims: int = None, temporal: bool = False,
              probabilistic: bool = False):
    """A random, valid MO: 1-3 small dimensions, up to 6 facts, each
    related in every dimension (to a random value at any level, or ⊤)."""
    if n_dims is None:
        n_dims = draw(st.integers(min_value=1, max_value=3))
    dimensions = {}
    inventories = {}
    for i in range(n_dims):
        name = f"Dim{i}"
        dimension, values = draw(small_dimensions(
            name=name, temporal=temporal, probabilistic=probabilistic))
        dimensions[name] = dimension
        inventories[name] = [v for level in values for v in level]
    schema = FactSchema("T", [d.dtype for d in dimensions.values()])
    kind = TimeKind.VALID if temporal else TimeKind.SNAPSHOT
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions,
                                kind=kind)
    n_facts = draw(st.integers(min_value=0, max_value=6))
    for fid in range(n_facts):
        fact = Fact(fid=fid, ftype="T")
        mo.add_fact(fact)
        for name in dimensions:
            n_links = draw(st.integers(min_value=1, max_value=2))
            for _ in range(n_links):
                use_top = draw(st.booleans()) and n_links == 1
                if use_top or not inventories[name]:
                    value = dimensions[name].top_value
                else:
                    value = draw(st.sampled_from(inventories[name]))
                time = draw(timesets()) if temporal else ALWAYS
                if time.is_empty():
                    time = ALWAYS
                prob = draw(probabilities) if probabilistic else 1.0
                mo.relate(fact, name, value, time=time, prob=prob)
    return mo
