"""Tests for the DOT exports."""

from repro.report import dimension_dot, dimension_type_dot, schema_dot


class TestDimensionTypeDot:
    def test_valid_digraph(self, snapshot_mo):
        dot = dimension_type_dot(snapshot_mo.dimension("Residence").dtype)
        assert dot.startswith('digraph "Residence" {')
        assert dot.rstrip().endswith("}")

    def test_edges_present(self, snapshot_mo):
        dot = dimension_type_dot(snapshot_mo.dimension("Residence").dtype)
        assert '"Area" -> "County";' in dot
        assert '"County" -> "Region";' in dot

    def test_aggtype_labels(self, snapshot_mo):
        dot = dimension_type_dot(snapshot_mo.dimension("Age").dtype)
        assert "(⊕)" in dot

    def test_shapes(self, snapshot_mo):
        dot = dimension_type_dot(snapshot_mo.dimension("Residence").dtype)
        assert "shape=box" in dot          # the ⊥ category
        assert "shape=doublecircle" in dot  # the ⊤ category


class TestDimensionDot:
    def test_clusters_per_category(self, snapshot_mo):
        dot = dimension_dot(snapshot_mo.dimension("Diagnosis"))
        assert 'label="Low-level Diagnosis";' in dot
        assert 'label="Diagnosis Group";' in dot

    def test_value_edges(self, snapshot_mo):
        dot = dimension_dot(snapshot_mo.dimension("Diagnosis"))
        assert '"5" -> "4"' in dot
        assert '"9" -> "11"' in dot

    def test_temporal_annotations_on_edges(self, valid_time_mo):
        dot = dimension_dot(valid_time_mo.dimension("Diagnosis"))
        assert "label=" in dot and "TimeSet" in dot

    def test_max_values_bound(self, small_clinical):
        dot = dimension_dot(small_clinical.mo.dimension("Diagnosis"),
                            max_values=5)
        # 5 kept values -> at most 5 node lines inside clusters
        node_lines = [l for l in dot.splitlines()
                      if l.strip().startswith('"') and "label=" in l
                      and "->" not in l]
        assert len(node_lines) <= 5


class TestSchemaDot:
    def test_fact_node_and_clusters(self, snapshot_mo):
        dot = schema_dot(snapshot_mo)
        assert '"Patient" [shape=box3d];' in dot
        for name in snapshot_mo.dimension_names:
            assert f'label="{name}";' in dot

    def test_fact_linked_to_bottoms(self, snapshot_mo):
        dot = schema_dot(snapshot_mo)
        assert '"Patient" -> "Diagnosis.Low-level Diagnosis"' in dot
        assert '"Patient" -> "Residence.Area"' in dot

    def test_namespaced_category_edges(self, snapshot_mo):
        dot = schema_dot(snapshot_mo)
        assert '"DOB.Day" -> "DOB.Week";' in dot
        assert '"DOB.Month" -> "DOB.Quarter";' in dot
