"""Tests for the figure renderings."""

from repro.algebra import SetCount, aggregate
from repro.core.helpers import Band, make_result_spec
from repro.report import (
    render_dimension_type,
    render_figure1,
    render_figure2,
    render_figure3,
)


class TestFigure1:
    def test_entities_present(self):
        text = render_figure1()
        for entity in ("Patient", "Diagnosis", "Area", "County", "Region"):
            assert entity in text

    def test_relationships_present(self):
        text = render_figure1()
        for rel in ("Has(", "Grouping(", "Lives in("):
            assert rel in text


class TestFigure2:
    def test_all_dimensions_rendered(self, snapshot_mo):
        text = render_figure2(snapshot_mo)
        for name in snapshot_mo.dimension_names:
            assert f"{name}:" in text

    def test_lattice_structure_visible(self, snapshot_mo):
        text = render_figure2(snapshot_mo)
        assert "Low-level Diagnosis (c) [⊥] -> Diagnosis Family" in text
        assert "Age (⊕)" in text
        assert "Day (⊘)" in text

    def test_dimension_type_renderer(self, snapshot_mo):
        text = render_dimension_type(
            snapshot_mo.dimension("Residence").dtype)
        lines = text.splitlines()
        assert lines[0] == "Residence:"
        assert any("Area" in line and "County" in line for line in lines)


class TestFigure3:
    def test_example12_rendering(self, snapshot_mo):
        spec = make_result_spec("Result",
                                bands=[Band(0, 2), Band(2, None)])
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, spec)
        text = render_figure3(agg, "Diagnosis", "Result")
        assert "Set-of-Patient" in text
        assert "({1,2}, E1)" in text
        assert "({2}, O2)" in text
        assert "({1,2}, 2)" in text
        assert "({2}, 1)" in text
        assert "0-1" in text and ">1" in text
