"""Tests for table rendering and the Table 1 regeneration."""

from repro.report import render_table, render_table1, table1_tuples


class TestRenderTable:
    def test_header_and_rule(self):
        text = render_table(["a", "bb"], [[1, 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert set(lines[2]) <= {"-", " "}

    def test_column_alignment(self):
        text = render_table(["x", "y"], [["long-value", 1], ["s", 22]])
        lines = text.splitlines()
        assert lines[2].index("1") == lines[3].index("22")


class TestTable1:
    def test_tuples_match_paper(self):
        data = table1_tuples()
        assert data["Patient"] == [
            (1, "John Doe", "12345678", "25/05/69"),
            (2, "Jane Doe", "87654321", "20/03/50"),
        ]
        assert (2, 9, "01/01/82", "NOW", "Primary") in data["Has"]
        assert (9, "E10", "Insulin dep. diabetes", "01/01/80", "NOW") in \
            data["Diagnosis"]
        assert (12, 4, "01/01/80", "NOW", "WHO") in data["Grouping"]
        assert len(data["Has"]) == 5
        assert len(data["Diagnosis"]) == 10
        assert len(data["Grouping"]) == 9

    def test_render_contains_all_sections(self):
        text = render_table1()
        for section in ("Patient Table", "Has Table", "Diagnosis Table",
                        "Grouping Table"):
            assert section in text

    def test_render_contains_key_rows(self):
        text = render_table1()
        assert "John Doe" in text
        assert "Insulin dep. diabetes" in text
        assert "User-defined" in text
        assert "NOW" in text
