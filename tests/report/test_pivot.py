"""Tests for the cross-tab renderer."""

import pytest

from repro._errors import AlgebraError
from repro.algebra import SetCount, Sum, sql_aggregation
from repro.report import pivot, render_pivot


@pytest.fixture()
def rows(snapshot_mo):
    return sql_aggregation(
        snapshot_mo, SetCount(),
        {"Diagnosis": "Diagnosis Group", "Residence": "County"},
        strict_types=False)


class TestPivot:
    def test_shape(self, rows):
        row_labels, column_labels, cells = pivot(
            rows, "Diagnosis", "Residence", "SetCount")
        assert row_labels == [11, 12]
        assert column_labels == [201, 202]
        assert cells[(11, 201)] == 2
        assert cells[(12, 202)] == 1

    def test_missing_combination_absent(self, snapshot_mo):
        rows = sql_aggregation(
            snapshot_mo, SetCount(),
            {"Diagnosis": "Diagnosis Family", "Residence": "County"},
            strict_types=False)
        _, _, cells = pivot(rows, "Diagnosis", "Residence", "SetCount")
        # family 10 (E11, low-level child 6) has no patients: no cells
        assert not any(r == 10 for r, _ in cells)
        # family 7 does (patient 2 via 3 ≤ 7, untimed)
        assert any(r == 7 for r, _ in cells)

    def test_bad_keys_rejected(self, rows):
        with pytest.raises(AlgebraError):
            pivot(rows, "Nope", "Residence", "SetCount")


class TestRenderPivot:
    def test_layout(self, rows):
        text = render_pivot(rows, "Diagnosis", "Residence", "SetCount",
                            title="X")
        lines = text.splitlines()
        assert lines[0] == "X"
        assert "Diagnosis \\ Residence" in lines[1]
        assert any(line.startswith("11") for line in lines)

    def test_totals_row_and_column(self, snapshot_mo):
        rows = sql_aggregation(
            snapshot_mo, Sum("Age"),
            {"Diagnosis": "Diagnosis Group", "Residence": "Region"},
            strict_types=False)
        text = render_pivot(rows, "Diagnosis", "Residence", "Sum(Age)",
                            totals=True)
        lines = text.splitlines()
        assert lines[-1].startswith("Σ")
        assert lines[0].rstrip().endswith("Σ")  # header (no title given)

    def test_blank_cells(self, snapshot_mo):
        rows = sql_aggregation(
            snapshot_mo, SetCount(),
            {"Diagnosis": "Low-level Diagnosis", "Residence": "County"},
            strict_types=False)
        text = render_pivot(rows, "Diagnosis", "Residence", "SetCount")
        assert text  # renders despite sparse combinations
