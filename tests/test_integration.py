"""Cross-module integration scenarios: full pipelines a downstream
user would run, checked end to end."""

import pytest

from repro.algebra import (
    SetCount,
    Sum,
    aggregate,
    characterized_by,
    select,
    sql_aggregation,
    validate_closed,
)
from repro.casestudy.icd import IcdShape
from repro.core.helpers import make_result_spec
from repro.engine import (
    Base,
    PreAggregateStore,
    ProjectNode,
    Query,
    SelectNode,
    evaluate,
    group_count_series,
    optimize,
)
from repro.io import dumps, loads
from repro.relational import export_star, import_star
from repro.temporal.chronon import day
from repro.temporal.timeslice import valid_timeslice
from repro.workloads import ClinicalConfig, generate_clinical


@pytest.fixture(scope="module")
def temporal_workload():
    return generate_clinical(ClinicalConfig(
        n_patients=80, temporal=True,
        icd=IcdShape(n_groups=3, families_per_group=(2, 3),
                     lowlevels_per_family=(2, 3), two_eras=True),
        seed=321))


class TestTemporalPipeline:
    def test_slice_then_aggregate_equals_aggregate_at(self,
                                                      temporal_workload):
        """τ_v followed by snapshot α gives the same group members as
        α evaluated at the chronon — the snapshot-reducibility of
        aggregate formation."""
        mo = temporal_workload.mo
        t = day(1985, 6, 1)
        sliced = valid_timeslice(mo, t)
        agg_sliced = aggregate(sliced, SetCount(),
                               {"Diagnosis": "Diagnosis Group"},
                               make_result_spec(), strict_types=False)
        agg_at = aggregate(mo, SetCount(),
                           {"Diagnosis": "Diagnosis Group"},
                           make_result_spec(), strict_types=False, at=t)

        def groups(agg):
            return {
                (value, frozenset(m.fid for m in fact.members))
                for fact, value in agg.relation("Diagnosis").pairs()
                if not value.is_top
            }

        assert groups(agg_sliced) == groups(agg_at)

    def test_series_consistent_with_slices(self, temporal_workload):
        mo = temporal_workload.mo
        instants = [day(1975, 6, 1), day(1985, 6, 1)]
        series = group_count_series(mo, "Diagnosis", "Diagnosis Group",
                                    instants)
        for index, t in enumerate(instants):
            sliced = valid_timeslice(mo, t)
            relation = sliced.relation("Diagnosis")
            dimension = sliced.dimension("Diagnosis")
            for value, counts in series.items():
                if value not in dimension:
                    assert counts[index] == 0
                    continue
                direct = len(relation.facts_characterized_by(value,
                                                             dimension))
                assert counts[index] == direct


class TestPersistencePipeline:
    def test_json_then_query(self, small_clinical):
        restored = loads(dumps(small_clinical.mo))
        original_rows = Query(small_clinical.mo).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        restored_rows = Query(restored).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        assert [(g["Diagnosis"].sid, v) for g, v in original_rows] == \
            [(g["Diagnosis"].sid, v) for g, v in restored_rows]

    def test_star_then_aggregate(self, small_clinical):
        restored = import_star(export_star(small_clinical.mo),
                               small_clinical.mo)
        a = sql_aggregation(small_clinical.mo, SetCount(),
                            {"Diagnosis": "Diagnosis Group"},
                            strict_types=False)
        b = sql_aggregation(restored, SetCount(),
                            {"Diagnosis": "Diagnosis Group"},
                            strict_types=False)
        assert a == b


class TestEnginePipeline:
    def test_optimized_plan_feeds_aggregation(self, strict_clinical):
        mo = strict_clinical.mo
        group = strict_clinical.icd.groups[0]
        plan = SelectNode(
            ProjectNode(Base(mo), ("Diagnosis", "Age")),
            characterized_by("Diagnosis", group))
        diced = evaluate(optimize(plan))
        assert validate_closed(diced).ok
        agg = aggregate(diced, Sum("Age"),
                        {"Diagnosis": "Diagnosis Group"},
                        make_result_spec(), strict_types=False)
        manual = select(mo, characterized_by("Diagnosis", group))
        expected = Sum("Age").apply(manual.facts, manual)
        total = sum(
            next(iter(agg.relation("Result").values_of(f))).sid
            for f in agg.facts
        )
        assert total == expected

    def test_store_query_algebra_agree(self, strict_clinical):
        mo = strict_clinical.mo
        store = PreAggregateStore(mo)
        store.materialize(SetCount(), {"Diagnosis": "Diagnosis Family"})
        via_store = Query(mo, store=store).rollup(
            "Diagnosis", "Diagnosis Group").counts()
        via_algebra = sql_aggregation(mo, SetCount(),
                                      {"Diagnosis": "Diagnosis Group"},
                                      strict_types=False)
        a = sorted((g["Diagnosis"].sid, v) for g, v in via_store)
        b = sorted((r["Diagnosis"], r["SetCount"]) for r in via_algebra)
        assert a == b
