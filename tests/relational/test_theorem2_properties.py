"""Theorem 2, property-tested: random relational databases, every Klug
operator checked against its MO simulation."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aggtypes import AggregationType
from repro.relational import Relation, TheoremTwoChecker

_settings = settings(max_examples=40,
                     suppress_health_check=[HealthCheck.too_slow],
                     deadline=None)

_cell = st.integers(min_value=-5, max_value=5)


@st.composite
def relations(draw, attributes=("a", "b")):
    n_rows = draw(st.integers(min_value=0, max_value=8))
    rows = [
        tuple(draw(_cell) for _ in attributes) for _ in range(n_rows)
    ]
    return Relation(attributes, rows)


AGGTYPES = {"a": AggregationType.SUM, "b": AggregationType.SUM,
            "c": AggregationType.SUM}


@_settings
@given(relations(), st.integers(min_value=-5, max_value=5))
def test_select_equivalence(rel, threshold):
    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    assert checker.check_select(rel,
                                lambda row: row["a"] >= threshold).equal


@_settings
@given(relations())
def test_project_equivalence(rel):
    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    assert checker.check_project(rel, ["a"]).equal
    assert checker.check_project(rel, ["b", "a"]).equal


@_settings
@given(relations())
def test_rename_equivalence(rel):
    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    assert checker.check_rename(rel, {"a": "x", "b": "y"}).equal


@_settings
@given(relations(), relations())
def test_union_difference_equivalence(r1, r2):
    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    assert checker.check_union(r1, r2).equal
    assert checker.check_difference(r1, r2).equal


@_settings
@given(relations(), relations(attributes=("c",)))
def test_product_equivalence(r1, r2):
    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    assert checker.check_product(r1, r2).equal


@_settings
@given(relations(),
       st.sampled_from(["SUM", "COUNT", "AVG", "MIN", "MAX"]))
def test_aggregate_equivalence(rel, function):
    if len(rel) == 0:
        return  # Klug's grand total over an empty relation is NaN-laden
    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    assert checker.check_aggregate(rel, ["b"], function, "a").equal
