"""Tests for the relation ↔ MO compiler and the Theorem 2 checker."""

import pytest

from repro.algebra import validate_closed
from repro.core.aggtypes import AggregationType
from repro.relational import (
    Relation,
    TheoremTwoChecker,
    mo_to_relation,
    relation_to_mo,
)

R = Relation(("a", "b"), [(1, "x"), (2, "y"), (3, "x")])
S = Relation(("a", "b"), [(2, "y"), (4, "z")])
T = Relation(("c",), [(10,), (20,)])


class TestCompilation:
    def test_rows_become_facts(self):
        mo = relation_to_mo(R)
        assert len(mo.facts) == 3
        assert validate_closed(mo).ok

    def test_attributes_become_dimensions(self):
        mo = relation_to_mo(R)
        assert set(mo.dimension_names) == {"a", "b"}
        assert mo.dimension("a").dtype.bottom_name == "a"

    def test_numeric_columns_additive(self):
        mo = relation_to_mo(R)
        assert mo.dimension("a").dtype.bottom.aggtype is AggregationType.SUM
        assert mo.dimension("b").dtype.bottom.aggtype is \
            AggregationType.CONSTANT

    def test_explicit_aggtypes(self):
        mo = relation_to_mo(
            R, aggtypes={"a": AggregationType.CONSTANT})
        assert mo.dimension("a").dtype.bottom.aggtype is \
            AggregationType.CONSTANT

    def test_null_maps_to_top(self):
        rel = Relation(("a",), [(None,), (1,)])
        mo = relation_to_mo(rel)
        assert validate_closed(mo).ok
        assert mo_to_relation(mo) == rel

    def test_roundtrip(self):
        assert mo_to_relation(relation_to_mo(R)) == R


class TestSimulations:
    def setup_method(self):
        self.checker = TheoremTwoChecker()

    def test_select(self):
        result = self.checker.check_select(R, lambda row: row["a"] >= 2)
        assert result.equal

    def test_project(self):
        assert self.checker.check_project(R, ["b"]).equal
        assert self.checker.check_project(R, ["a"]).equal

    def test_rename(self):
        assert self.checker.check_rename(R, {"a": "alpha"}).equal

    def test_union(self):
        assert self.checker.check_union(R, S).equal

    def test_difference(self):
        assert self.checker.check_difference(R, S).equal
        assert self.checker.check_difference(S, R).equal

    def test_product(self):
        assert self.checker.check_product(R, T).equal

    @pytest.mark.parametrize("function", ["SUM", "COUNT", "AVG", "MIN",
                                          "MAX"])
    def test_aggregate_grouped(self, function):
        assert self.checker.check_aggregate(R, ["b"], function, "a").equal

    @pytest.mark.parametrize("function", ["SUM", "COUNT", "MIN", "MAX"])
    def test_aggregate_grand_total(self, function):
        assert self.checker.check_aggregate(R, [], function, "a").equal

    def test_empty_relation_ops(self):
        empty = Relation(("a", "b"), [])
        assert self.checker.check_select(empty, lambda row: True).equal
        assert self.checker.check_union(empty, S).equal
        assert self.checker.check_difference(S, empty).equal
