"""Property test: the star export round-trips losslessly for random
MOs, including temporal and probabilistic annotations."""

from hypothesis import HealthCheck, given, settings

from repro.relational import export_star, import_star
from tests.strategies import small_mos

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _pair_annotations(mo, name):
    return {
        (fact.fid, None if value.is_top else value.sid,
         time.intervals, prob)
        for fact, value, time, prob
        in mo.relation(name).annotated_pairs()
    }


def _order_annotations(dimension):
    return {
        (child.sid, parent.sid, time.intervals, prob)
        for child, parent, time, prob in dimension.order.edges()
    }


@_settings
@given(small_mos())
def test_roundtrip_snapshot(mo):
    back = import_star(export_star(mo), mo)
    back.validate()
    assert back.facts == mo.facts
    for name in mo.dimension_names:
        assert _pair_annotations(back, name) == _pair_annotations(mo, name)
        assert _order_annotations(back.dimension(name)) == \
            _order_annotations(mo.dimension(name))


@_settings
@given(small_mos(temporal=True))
def test_roundtrip_temporal(mo):
    back = import_star(export_star(mo), mo)
    for name in mo.dimension_names:
        assert _pair_annotations(back, name) == _pair_annotations(mo, name)
        for category in mo.dimension(name).categories():
            restored = back.dimension(name).category(category.name)
            for value, time in category.items():
                assert restored.membership_time(value) == time


@_settings
@given(small_mos(probabilistic=True))
def test_roundtrip_probabilistic(mo):
    back = import_star(export_star(mo), mo)
    for name in mo.dimension_names:
        assert _pair_annotations(back, name) == _pair_annotations(mo, name)


@_settings
@given(small_mos(temporal=True, probabilistic=True))
def test_roundtrip_imprecise_multivalued(mo):
    """The hard corner: imprecise (⊤ and non-bottom) characterizations,
    several values per fact per dimension, and both annotation kinds at
    once — the bridge table must carry all of it losslessly."""
    back = import_star(export_star(mo), mo)
    back.validate()
    assert back.facts == mo.facts
    for name in mo.dimension_names:
        assert _pair_annotations(back, name) == _pair_annotations(mo, name)
        assert _order_annotations(back.dimension(name)) == \
            _order_annotations(mo.dimension(name))
        for fact in mo.facts:
            assert back.relation(name).values_of(fact) == \
                mo.relation(name).values_of(fact)


@_settings
@given(small_mos(temporal=True, probabilistic=True))
def test_export_reproducible_given_now(mo):
    """Pinning ``now`` makes the export a pure function of the MO —
    the NOW-drift regression, property-tested."""
    star = export_star(mo, now=1999)
    again = export_star(import_star(star, mo), now=star.now)
    assert star.table_names() == again.table_names()
    for name, table in star.tables().items():
        other = again.tables()[name]
        assert table.attributes == other.attributes, name
        assert set(table) == set(other), name
