"""Tests for the set-semantics relation type."""

import pytest

from repro.core.errors import SchemaError
from repro.relational import Relation


class TestConstruction:
    def test_rows_are_a_set(self):
        r = Relation(("a",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "a"), [])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Relation((), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("a", "b"), [(1,)])

    def test_membership(self):
        r = Relation(("a", "b"), [(1, "x")])
        assert (1, "x") in r
        assert (2, "y") not in r

    def test_index_of(self):
        r = Relation(("a", "b"), [])
        assert r.index_of("b") == 1
        with pytest.raises(SchemaError):
            r.index_of("c")


class TestConversions:
    def test_dict_roundtrip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        r = Relation.from_dicts(("a", "b"), rows)
        assert r.as_dicts() == sorted(rows, key=lambda d: repr(d["a"]))

    def test_equality(self):
        r1 = Relation(("a",), [(1,), (2,)])
        r2 = Relation(("a",), [(2,), (1,)])
        assert r1 == r2
        assert hash(r1) == hash(r2)
        assert r1 != Relation(("b",), [(1,), (2,)])

    def test_same_schema(self):
        assert Relation(("a", "b"), []).same_schema_as(
            Relation(("a", "b"), []))
        assert not Relation(("a",), []).same_schema_as(
            Relation(("b",), []))
