"""Property tests: SQL ≡ columnar kernel ≡ naive oracle.

Random numeric-measure MOs, random roll-up/dice queries, and random
mutation scripts, asserting the SQL backend's rows are byte-identical
to both in-memory evaluation paths (the columnar kernel path `Query`
takes by default, and the naive per-value traversal `use_index=False`
forces) — and that :func:`repro.analyze.analyze_pushdown`'s verdict
agrees with what the backend actually did.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import aggregate, characterized_by, conjunction, select
from repro.algebra.functions import Avg, CountDim, Max, Min, SetCount, Sum
from repro.analyze import analyze_pushdown
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.helpers import make_result_spec
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.engine.query import Query
from repro.obs import metrics
from repro.relational.backend import sql_backend_for

_settings = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# -- a local MO strategy with *integer* surrogates ------------------------
# Measure pushdown is exact only for numeric surrogates (the shared
# strategies use tuple sids, which poison measure columns), so this file
# draws its own MOs: sids are ints unique across dimension and level.


@st.composite
def _numeric_dimension(draw, name, index):
    n_levels = draw(st.integers(min_value=1, max_value=3))
    level_names = [f"{name}L{i}" for i in range(n_levels)]
    ctypes = [
        CategoryType(level, AggregationType.SUM if i == 0
                     else AggregationType.CONSTANT, is_bottom=(i == 0))
        for i, level in enumerate(level_names)
    ]
    edges = [(level_names[i], level_names[i + 1])
             for i in range(n_levels - 1)]
    dimension = Dimension(DimensionType(name, ctypes, edges))
    values_per_level = []
    for level_index, level in enumerate(level_names):
        n_values = draw(st.integers(min_value=1, max_value=4))
        level_values = []
        for j in range(n_values):
            value = DimensionValue(
                sid=10000 * index + 100 * level_index + j)
            dimension.add_value(level, value)
            level_values.append(value)
        values_per_level.append(level_values)
    for i in range(n_levels - 1):
        for child in values_per_level[i]:
            parents = draw(st.lists(
                st.sampled_from(values_per_level[i + 1]),
                min_size=0, max_size=2, unique=True))
            for parent in parents:
                dimension.add_edge(child, parent)
    return dimension, values_per_level


@st.composite
def _mo_and_query(draw):
    n_dims = draw(st.integers(min_value=1, max_value=2))
    dimensions = {}
    inventories = {}
    for i in range(n_dims):
        name = f"Dim{i}"
        dimension, values = draw(_numeric_dimension(name, i))
        dimensions[name] = dimension
        inventories[name] = [v for level in values for v in level]
    schema = FactSchema("T", [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions,
                                kind=TimeKind.SNAPSHOT)
    n_facts = draw(st.integers(min_value=0, max_value=6))
    for fid in range(n_facts):
        fact = Fact(fid=fid, ftype="T")
        mo.add_fact(fact)
        for name in dimensions:
            n_links = draw(st.integers(min_value=1, max_value=2))
            for _ in range(n_links):
                use_top = draw(st.booleans()) and n_links == 1
                if use_top:
                    value = dimensions[name].top_value
                else:
                    value = draw(st.sampled_from(inventories[name]))
                mo.relate(fact, name, value)

    # a random query over it: group some dims at a random non-top
    # category, dice on up to 2 random values
    grouping = {}
    for name, dimension in dimensions.items():
        if draw(st.booleans()):
            categories = [c.name for c in dimension.dtype.category_types()
                          if c.name != dimension.dtype.top_name]
            grouping[name] = draw(st.sampled_from(categories))
    dices = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        name = draw(st.sampled_from(sorted(dimensions)))
        dices.append((name, draw(st.sampled_from(inventories[name]))))
    function = draw(st.sampled_from([
        SetCount(), CountDim("Dim0"), Sum("Dim0"), Avg("Dim0"),
        Min("Dim0"), Max("Dim0")]))
    return mo, grouping, dices, function


def _canon(rows):
    """Comparable row images: value objects and raws by repr (repr
    distinguishes int from float and makes nan comparable) — still a
    byte-identity check, since repr is injective on the value set."""
    return [
        (tuple(sorted((k, repr(v)) for k, v in group.items())),
         repr(raw), type(raw).__name__)
        for group, raw in rows
    ]


def _canon_value(rows):
    """Like :func:`_canon` but numerically: raws compare as floats.
    Used against the naive oracle, whose ``Sum.apply`` returns the int
    0 for an empty group where the batch kernel (and the SQL backend,
    which mirrors the kernel) return 0.0 — ``==`` but not repr-equal."""
    return [
        (tuple(sorted((k, repr(v)) for k, v in group.items())),
         repr(float(raw)))
        for group, raw in rows
    ]


def _naive_rows(mo, grouping, dices, function):
    """The oracle: dice via σ, aggregate with ``use_index=False`` (the
    naive per-value traversal), then the same merge-and-re-expand row
    extraction ``Query`` uses."""
    if dices:
        mo = select(mo, conjunction(*[characterized_by(d, v)
                                      for d, v in dices]))
    aggregated = aggregate(mo, function, grouping,
                           make_result_spec(name="__query_result"),
                           use_index=False)
    names = sorted(grouping)
    rows = []
    for fact in aggregated.facts:
        raw = next(iter(
            aggregated.relation("__query_result").values_of(fact))).sid
        combos = [{}]
        for name in names:
            values = sorted(aggregated.relation(name).values_of(fact),
                            key=repr)
            combos = [{**combo, name: value}
                      for combo in combos for value in values]
        rows.extend((group, raw) for group in combos)
    rows.sort(key=lambda row: (
        tuple(repr(row[0][name]) for name in names), repr(row[1])))
    return rows


def _query(mo, grouping, dices):
    q = Query(mo)
    for name, category in sorted(grouping.items()):
        q = q.rollup(name, category)
    for name, value in dices:
        q = q.dice(name, value)
    return q


@_settings
@given(_mo_and_query())
def test_three_way_equivalence(drawn):
    mo, grouping, dices, function = drawn
    q = _query(mo, grouping, dices)
    kernel = q.execute(function, check=False, cache=False)
    sql = q.execute(function, check=False, backend="sql", cache=False)
    naive = _naive_rows(mo, grouping, dices, function)
    assert _canon(sql) == _canon(kernel)
    assert _canon_value(sql) == _canon_value(naive)


@_settings
@given(_mo_and_query())
def test_analyzer_agrees_with_backend(drawn):
    mo, grouping, dices, function = drawn
    q = _query(mo, grouping, dices)
    report = analyze_pushdown(q.to_plan(function))
    fallback = metrics.counter("sql.pushdown.fallback")
    before = fallback.value
    q.execute(function, check=False, backend="sql", cache=False)
    fell_back = fallback.value > before
    assert fell_back == (len(report) > 0), report.render()


@_settings
@given(_mo_and_query(),
       st.lists(st.tuples(st.integers(0, 2), st.integers(0, 10**6)),
                min_size=1, max_size=4))
def test_mutation_script_keeps_equivalence(drawn, script):
    """Random mutations between executions: the version-stamped backend
    must reload and keep matching the in-memory answer."""
    mo, grouping, dices, function = drawn
    q = _query(mo, grouping, dices)
    backend = sql_backend_for(mo)
    assert _canon(q.execute(function, check=False, backend="sql",
                            cache=False)) == \
        _canon(q.execute(function, check=False, cache=False))

    dim_names = sorted(mo.dimension_names)
    for op, seed in script:
        name = dim_names[seed % len(dim_names)]
        dimension = mo.dimension(name)
        values = [v for v in dimension.values() if not v.is_top]
        if op == 0:
            fact = Fact(fid=1000 + seed, ftype="T")
            mo.add_fact(fact)
            for each in dim_names:
                pool = [v for v in mo.dimension(each).values()
                        if not v.is_top]
                target = (pool[seed % len(pool)] if pool
                          else mo.dimension(each).top_value)
                mo.relate(fact, each, target)
        elif op == 1 and mo.facts and values:
            fact = sorted(mo.facts, key=lambda f: repr(f.fid))[
                seed % len(mo.facts)]
            mo.relate(fact, name, values[seed % len(values)])
        else:
            bottom = dimension.dtype.bottom_name
            fresh = DimensionValue(sid=5 * 10**6 + seed)
            dimension.add_value(bottom, fresh)

    assert backend.stale or not script
    assert _canon(q.execute(function, check=False, backend="sql",
                            cache=False)) == \
        _canon(q.execute(function, check=False, cache=False))
