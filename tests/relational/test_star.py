"""Tests for the star/snowflake export and re-import."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.relational import export_star, import_star
from repro.relational.relation import Relation
from repro.relational.star import decode_sid, encode_sid
from repro.temporal.chronon import TIME_MAX, day
from repro.temporal.timeset import TimeSet


@pytest.fixture(scope="module")
def star(valid_time_mo):
    return export_star(valid_time_mo)


class TestExport:
    def test_table_inventory(self, star, valid_time_mo):
        names = star.table_names()
        assert "fact" in names
        for dim in valid_time_mo.dimension_names:
            assert f"dim_{dim}" in names
            assert (f"hier_{dim}" in names) == \
                (len(star.hierarchy_tables[dim]) > 0)
            assert (f"bridge_{dim}" in names) == \
                (len(star.bridge_tables[dim]) > 0)

    def test_unpopulated_tables_not_listed(self, star):
        # Name and SSN are flat dimensions: no containment edges, so
        # no phantom empty hier_ tables for a loader to create.
        names = star.table_names()
        assert len(star.hierarchy_tables["Name"]) == 0
        assert "hier_Name" not in names
        assert "hier_SSN" not in names

    def test_tables_accessor_matches_names(self, star):
        tables = star.tables()
        assert sorted(tables) == sorted(star.table_names())
        assert tables["fact"] is star.fact_table
        assert tables["dim_Diagnosis"] is star.dimension_tables["Diagnosis"]

    def test_fact_table(self, star):
        assert {row[0] for row in star.fact_table} == {"i:1", "i:2"}

    def test_bridge_is_many_to_many(self, star):
        bridge = star.bridge_tables["Diagnosis"]
        fact_index = bridge.index_of("fact_id")
        patient2_rows = [r for r in bridge if r[fact_index] == "i:2"]
        assert len(patient2_rows) == 4  # diagnoses 3, 5, 8, 9

    def test_bridge_carries_validity(self, star):
        bridge = star.bridge_tables["Diagnosis"]
        rows = bridge.as_dicts()
        row = next(r for r in rows
                   if r["fact_id"] == "i:2" and r["value_id"] == "i:3")
        assert row["valid_from"] == day(1975, 3, 23)
        assert row["valid_to"] == day(1975, 12, 24)
        assert row["is_open"] == 0

    def test_dimension_table_has_representations(self, star):
        table = star.dimension_tables["Diagnosis"]
        assert "Code" in table.attributes
        assert "Text" in table.attributes
        codes = {row[table.index_of("Code")] for row in table}
        assert "E10" in codes and "D1" in codes

    def test_hierarchy_table_rows(self, star):
        hier = star.hierarchy_tables["Diagnosis"]
        pairs = {(r[0], r[1]) for r in hier}
        assert ("s:5", "s:4") not in pairs  # int sids carry the i: tag
        assert ("i:5", "i:4") in pairs

    def test_probability_column_present(self, star):
        assert "probability" in star.bridge_tables["Diagnosis"].attributes


class TestRoundTrip:
    def test_case_study_roundtrip(self, valid_time_mo, star):
        back = import_star(star, valid_time_mo)
        back.validate()
        assert back.facts == valid_time_mo.facts
        for name in valid_time_mo.dimension_names:
            original = {
                (f.fid, v.sid)
                for f, v in valid_time_mo.relation(name).pairs()
            }
            restored = {
                (f.fid, v.sid) for f, v in back.relation(name).pairs()
            }
            assert original == restored, name

    def test_roundtrip_preserves_times(self, valid_time_mo, star):
        back = import_star(star, valid_time_mo)
        original = valid_time_mo.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(3))
        restored = back.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(3))
        assert original == restored

    def test_roundtrip_preserves_order(self, valid_time_mo, star):
        back = import_star(star, valid_time_mo)
        diag = back.dimension("Diagnosis")
        assert diag.containment_time(
            diagnosis_value(3), diagnosis_value(7)) == \
            valid_time_mo.dimension("Diagnosis").containment_time(
                diagnosis_value(3), diagnosis_value(7))

    def test_roundtrip_with_uncertainty(self):
        mo = case_study_mo(temporal=False)
        mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10),
                  prob=0.9)
        back = import_star(export_star(mo), mo)
        annotations = back.relation("Diagnosis").annotations(
            patient_fact(1), diagnosis_value(10))
        assert any(abs(p - 0.9) < 1e-12 for _, p in annotations)

    def test_roundtrip_top_pairs(self, snapshot_mo):
        mo = snapshot_mo.copy()
        mo.relate_unknown(patient_fact(1), "Diagnosis")
        back = import_star(export_star(mo), mo)
        values = back.relation("Diagnosis").values_of(patient_fact(1))
        assert back.dimension("Diagnosis").top_value in values


def _tiny_mo(fids):
    """One flat dimension, one value, and a fact per given fid."""
    ctype = CategoryType("Leaf", AggregationType.SUM, is_bottom=True)
    dimension = Dimension(DimensionType("D", [ctype], []))
    value = DimensionValue(sid=1)
    dimension.add_value("Leaf", value)
    schema = FactSchema("T", [dimension.dtype])
    mo = MultidimensionalObject(schema=schema,
                                dimensions={"D": dimension},
                                kind=TimeKind.SNAPSHOT)
    for fid in fids:
        fact = Fact(fid=fid, ftype="T")
        mo.add_fact(fact)
        mo.relate(fact, "D", value)
    return mo


class TestEncoding:
    """Regression for the repr-based surrogate collision: the string
    ``"(1, 2)"`` and the tuple ``(1, 2)`` used to share a key."""

    def test_adversarial_fids_stay_distinct(self):
        mo = _tiny_mo(["(1, 2)", (1, 2)])
        star = export_star(mo)
        fact_ids = {row[0] for row in star.fact_table}
        assert len(fact_ids) == 2  # repr() collapsed these to one key
        back = import_star(star, mo)
        assert back.facts == mo.facts
        assert {f.fid for f in back.facts} == {"(1, 2)", (1, 2)}

    @pytest.mark.parametrize("sid", [
        None, True, False, 0, 1, -7, 2.5, "", "E10", "(1, 2)", "i:1",
        "a,b", "a\\,b", (), (1, 2), ("a,b", ("nested", 3)),
        frozenset({1, 2}), (frozenset({"x"}), None),
    ])
    def test_encode_decode_roundtrip(self, sid):
        assert decode_sid(encode_sid(sid)) == sid

    def test_adversarial_pairs_encode_apart(self):
        adversaries = [
            ("(1, 2)", (1, 2)),
            ("1", 1),
            (1, True),
            (1, 1.0),
            ("None", None),
            (("a,b",), ("a", "b")),
            ((1, 2), frozenset({1, 2})),
        ]
        for a, b in adversaries:
            assert encode_sid(a) != encode_sid(b), (a, b)

    def test_undecodable_encodings_raise(self):
        with pytest.raises(ValueError):
            decode_sid("(1, 2)")  # legacy repr key, not a tagged encoding
        with pytest.raises(ValueError):
            decode_sid(encode_sid(day))  # r: catch-all is one-way

    def test_legacy_repr_export_still_imports(self, snapshot_mo):
        star = export_star(snapshot_mo)
        legacy = _legacy_star(star)
        back = import_star(legacy, snapshot_mo)
        assert back.facts == snapshot_mo.facts
        for name in snapshot_mo.dimension_names:
            original = {(f.fid, v.sid)
                        for f, v in snapshot_mo.relation(name).pairs()}
            restored = {(f.fid, v.sid)
                        for f, v in back.relation(name).pairs()}
            assert original == restored, name


def _legacy_star(star):
    """Rewrite a current export the way the old exporter produced it:
    ``repr``-encoded surrogates and no ``is_open`` column."""
    def legacy_key(encoded):
        return None if encoded is None else repr(decode_sid(encoded))

    def strip(relation, key_columns):
        attributes = tuple(a for a in relation.attributes if a != "is_open")
        keep = [i for i, a in enumerate(relation.attributes)
                if a != "is_open"]
        keyed = [relation.index_of(c) for c in key_columns]
        rows = []
        for row in relation:
            row = tuple(legacy_key(cell) if i in keyed else cell
                        for i, cell in enumerate(row))
            rows.append(tuple(row[i] for i in keep))
        return Relation(attributes, rows)

    from repro.relational.star import StarSchema
    legacy = StarSchema(star.fact_type)
    legacy.fact_table = strip(star.fact_table, ["fact_id"])
    for name, table in star.dimension_tables.items():
        legacy.dimension_tables[name] = strip(table, ["value_id"])
    for name, table in star.hierarchy_tables.items():
        legacy.hierarchy_tables[name] = strip(
            table, ["child_id", "parent_id"])
    for name, table in star.bridge_tables.items():
        legacy.bridge_tables[name] = strip(
            table, ["fact_id", "value_id"])
    return legacy


class TestNowRoundTrip:
    """Regression for NOW-bound drift: exports resolve open ends
    against an explicit ``now`` recorded on the schema, and imports
    restore the open bound — so round-trips no longer depend on the
    day they ran."""

    def _open_ended_mo(self):
        mo = _tiny_mo([1])
        (fact,) = mo.facts
        value = DimensionValue(sid=2)
        mo.dimension("D").add_value("Leaf", value)
        mo.relate(fact, "D", value,
                  time=TimeSet.of([(day(1980, 1, 1), TIME_MAX)]))
        return mo

    def test_open_end_resolves_to_now_and_is_flagged(self):
        mo = self._open_ended_mo()
        star = export_star(mo, now=day(1999, 6, 1))
        assert star.now == day(1999, 6, 1)
        row = next(r for r in star.bridge_tables["D"].as_dicts()
                   if r["value_id"] == "i:2")
        assert row["valid_to"] == day(1999, 6, 1)
        assert row["is_open"] == 1

    def test_import_restores_open_end(self):
        mo = self._open_ended_mo()
        star = export_star(mo, now=day(1999, 6, 1))
        back = import_star(star, mo)
        (fact,) = back.facts
        value = DimensionValue(sid=2)
        restored = back.relation("D").pair_time(fact, value)
        assert restored == TimeSet.of([(day(1980, 1, 1), TIME_MAX)])

    def test_reexport_is_byte_identical_across_days(self):
        # The old exporter resolved NOW to the wall-clock day, so the
        # same MO exported "tomorrow" produced different rows.  Now the
        # recorded ``now`` pins the export.
        mo = self._open_ended_mo()
        today = export_star(mo, now=day(1999, 6, 1))
        tomorrow = export_star(import_star(today, mo), now=today.now)
        assert today.table_names() == tomorrow.table_names()
        for name, table in today.tables().items():
            again = tomorrow.tables()[name]
            assert table.attributes == again.attributes, name
            assert set(table) == set(again), name

    def test_default_now_is_recorded_once(self):
        mo = self._open_ended_mo()
        star = export_star(mo)
        assert isinstance(star.now, int)
        again = export_star(import_star(star, mo), now=star.now)
        assert set(again.bridge_tables["D"]) == \
            set(star.bridge_tables["D"])
