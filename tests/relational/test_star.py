"""Tests for the star/snowflake export and re-import."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.relational import export_star, import_star
from repro.temporal.chronon import day


@pytest.fixture(scope="module")
def star(valid_time_mo):
    return export_star(valid_time_mo)


class TestExport:
    def test_table_inventory(self, star, valid_time_mo):
        names = star.table_names()
        assert "fact" in names
        for dim in valid_time_mo.dimension_names:
            assert f"dim_{dim}" in names
            assert f"hier_{dim}" in names
            assert f"bridge_{dim}" in names

    def test_fact_table(self, star):
        assert {row[0] for row in star.fact_table} == {"1", "2"}

    def test_bridge_is_many_to_many(self, star):
        bridge = star.bridge_tables["Diagnosis"]
        fact_index = bridge.index_of("fact_id")
        patient2_rows = [r for r in bridge if r[fact_index] == "2"]
        assert len(patient2_rows) == 4  # diagnoses 3, 5, 8, 9

    def test_bridge_carries_validity(self, star):
        bridge = star.bridge_tables["Diagnosis"]
        rows = bridge.as_dicts()
        row = next(r for r in rows
                   if r["fact_id"] == "2" and r["value_id"] == "3")
        assert row["valid_from"] == day(1975, 3, 23)
        assert row["valid_to"] == day(1975, 12, 24)

    def test_dimension_table_has_representations(self, star):
        table = star.dimension_tables["Diagnosis"]
        assert "Code" in table.attributes
        assert "Text" in table.attributes
        codes = {row[table.index_of("Code")] for row in table}
        assert "E10" in codes and "D1" in codes

    def test_hierarchy_table_rows(self, star):
        hier = star.hierarchy_tables["Diagnosis"]
        pairs = {(r[0], r[1]) for r in hier}
        assert ("'5'", "'4'") not in pairs  # sids encode via repr of int
        assert ("5", "4") in pairs

    def test_probability_column_present(self, star):
        assert "probability" in star.bridge_tables["Diagnosis"].attributes


class TestRoundTrip:
    def test_case_study_roundtrip(self, valid_time_mo, star):
        back = import_star(star, valid_time_mo)
        back.validate()
        assert back.facts == valid_time_mo.facts
        for name in valid_time_mo.dimension_names:
            original = {
                (f.fid, v.sid)
                for f, v in valid_time_mo.relation(name).pairs()
            }
            restored = {
                (f.fid, v.sid) for f, v in back.relation(name).pairs()
            }
            assert original == restored, name

    def test_roundtrip_preserves_times(self, valid_time_mo, star):
        back = import_star(star, valid_time_mo)
        original = valid_time_mo.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(3))
        restored = back.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(3))
        assert original == restored

    def test_roundtrip_preserves_order(self, valid_time_mo, star):
        back = import_star(star, valid_time_mo)
        diag = back.dimension("Diagnosis")
        assert diag.containment_time(
            diagnosis_value(3), diagnosis_value(7)) == \
            valid_time_mo.dimension("Diagnosis").containment_time(
                diagnosis_value(3), diagnosis_value(7))

    def test_roundtrip_with_uncertainty(self):
        mo = case_study_mo(temporal=False)
        mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10),
                  prob=0.9)
        back = import_star(export_star(mo), mo)
        annotations = back.relation("Diagnosis").annotations(
            patient_fact(1), diagnosis_value(10))
        assert any(abs(p - 0.9) < 1e-12 for _, p in annotations)

    def test_roundtrip_top_pairs(self, snapshot_mo):
        mo = snapshot_mo.copy()
        mo.relate_unknown(patient_fact(1), "Diagnosis")
        back = import_star(export_star(mo), mo)
        values = back.relation("Diagnosis").values_of(patient_fact(1))
        assert back.dimension("Diagnosis").top_value in values
