"""Tests for the SQL pushdown backend: plan compilation, execution
equivalence with the in-memory engine, fallback behavior, staleness,
and the analyzer/observability integration."""

import pytest

from repro.algebra import characterized_by, value_in_category
from repro.algebra.functions import (
    Avg,
    CountDim,
    Max,
    Median,
    Min,
    SetCount,
    Sum,
)
from repro.analyze import analyze_pushdown
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.values import DimensionValue
from repro.engine.optimizer import (
    Base,
    DifferenceNode,
    JoinNode,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    evaluate,
)
from repro.engine.query import Query
from repro.obs import metrics
from repro.relational.backend import (
    PushdownUnsupported,
    SqlBackend,
    SqlBackendUnavailable,
    connect,
    sql_backend_for,
)


@pytest.fixture()
def mo():
    return case_study_mo(temporal=False)


@pytest.fixture()
def backend(mo):
    b = SqlBackend(mo)
    yield b
    b.close()


def _diag_select(mo, sid=4):
    return SelectNode(child=Base(mo),
                      predicate=characterized_by(
                          "Diagnosis", diagnosis_value(sid)))


class TestFactSetPushdown:
    def test_select(self, mo, backend):
        plan = _diag_select(mo)
        assert backend.execute_facts(plan) == evaluate(plan).facts

    def test_select_top_target(self, mo, backend):
        top = mo.dimension("Diagnosis").top_value
        plan = SelectNode(child=Base(mo),
                          predicate=characterized_by("Diagnosis", top))
        assert backend.execute_facts(plan) == evaluate(plan).facts

    def test_union_and_difference(self, mo, backend):
        left = _diag_select(mo, 4)
        right = _diag_select(mo, 5)
        for node in (UnionNode(left=left, right=right),
                     DifferenceNode(left=left, right=right)):
            assert backend.execute_facts(node) == evaluate(node).facts

    def test_project_keeps_fact_set(self, mo, backend):
        plan = ProjectNode(child=_diag_select(mo),
                           dimensions=("Diagnosis", "Age"))
        assert backend.execute_facts(plan) == evaluate(plan).facts

    def test_select_after_rename(self, mo, backend):
        renamed = RenameNode(child=Base(mo),
                             dimension_map=(("Diagnosis", "Dx"),),
                             new_fact_type=None)
        plan = SelectNode(child=renamed,
                          predicate=characterized_by(
                              "Dx", diagnosis_value(4)))
        assert backend.execute_facts(plan) == evaluate(plan).facts

    def test_base_only(self, mo, backend):
        assert backend.execute_facts(Base(mo)) == mo.facts


class TestQueryEquivalence:
    FUNCTIONS = [SetCount(), CountDim("Age"), Sum("Age"), Avg("Age"),
                 Min("Age"), Max("Age")]

    @pytest.mark.parametrize("function", FUNCTIONS,
                             ids=lambda f: f.name)
    def test_case_study_rollup(self, mo, function):
        q = Query(mo).rollup("Diagnosis", "Diagnosis Family")
        assert q.execute(function, check=False, cache=False) == \
            q.execute(function, check=False, backend="sql", cache=False)

    def test_diced_rollup(self, mo):
        q = (Query(mo).rollup("Diagnosis", "Diagnosis Group")
             .dice("Diagnosis", diagnosis_value(4)))
        assert q.execute(cache=False) == \
            q.execute(backend="sql", cache=False)

    def test_two_dimensional_grouping(self, mo):
        q = (Query(mo).rollup("Diagnosis", "Diagnosis Group")
             .rollup("Age", "Ten-year group"))
        assert q.execute(cache=False) == \
            q.execute(backend="sql", cache=False)

    def test_no_grouping(self, mo):
        q = Query(mo)
        assert q.execute(cache=False) == \
            q.execute(backend="sql", cache=False)

    def test_clinical_workload(self, small_clinical):
        mo = small_clinical.mo
        for dim, category in [("Diagnosis", "Diagnosis Family"),
                              ("Diagnosis", "Diagnosis Group"),
                              ("Residence", "Region")]:
            q = Query(mo).rollup(dim, category)
            assert q.execute(check=False, cache=False) == \
                q.execute(check=False, backend="sql",
                          cache=False), (dim, category)

    def test_unknown_backend_rejected(self, mo):
        with pytest.raises(ValueError):
            Query(mo).execute(backend="oracle")
        with pytest.raises(ValueError):
            Query(mo).explain(backend="oracle")


class TestFallback:
    def _fallback_code(self, plan):
        report = analyze_pushdown(plan)
        assert len(report) == 1
        return report.codes()[0]

    def test_median_falls_back_with_md052(self, mo):
        q = Query(mo).rollup("Diagnosis", "Diagnosis Family")
        plan = q.to_plan(Median("Age"))
        assert self._fallback_code(plan) == "MD052"
        assert q.execute(Median("Age"), check=False, cache=False) == \
            q.execute(Median("Age"), check=False, backend="sql",
                      cache=False)

    def test_strict_types_fall_back_with_md052(self, mo):
        plan = Query(mo).rollup("Diagnosis", "Diagnosis Family") \
            .to_plan(Sum("Age"), strict_types=True)
        assert self._fallback_code(plan) == "MD052"

    def test_top_grouping_falls_back_with_md052(self, mo):
        plan = Query(mo).rollup("Diagnosis", "⊤Diagnosis").to_plan()
        assert self._fallback_code(plan) == "MD052"

    def test_temporal_mo_falls_back_with_md050(self):
        tm = case_study_mo(temporal=True)
        q = Query(tm).rollup("Diagnosis", "Diagnosis Family")
        assert self._fallback_code(q.to_plan()) == "MD050"
        assert q.execute(check=False, cache=False) == \
            q.execute(check=False, backend="sql", cache=False)

    def test_join_falls_back_with_md050(self, mo, backend):
        renamed = RenameNode(
            child=Base(mo),
            dimension_map=tuple((d, f"{d}_r") for d in mo.dimension_names),
            new_fact_type=None)
        join = JoinNode(left=Base(mo), right=renamed)
        with pytest.raises(PushdownUnsupported) as exc:
            backend.compile(join)
        assert exc.value.code == "MD050"

    def test_opaque_predicate_falls_back_with_md051(self, mo, backend):
        plan = SelectNode(
            child=Base(mo),
            predicate=value_in_category("Age", "Age", lambda v: True))
        with pytest.raises(PushdownUnsupported) as exc:
            backend.compile(plan)
        assert exc.value.code == "MD051"

    def test_fallback_increments_counter(self, mo):
        counter = metrics.counter("sql.pushdown.fallback")
        before = counter.value
        q = Query(mo).rollup("Diagnosis", "Diagnosis Family")
        q.execute(Median("Age"), check=False, backend="sql", cache=False)
        assert counter.value == before + 1


class TestExplain:
    def test_sql_path_shows_emitted_sql(self, mo):
        report = (Query(mo).rollup("Diagnosis", "Diagnosis Family")
                  .dice("Diagnosis", diagnosis_value(4))
                  .explain(backend="sql", cache=False))
        assert report.path == "sql"
        assert report.rows == (Query(mo)
                               .rollup("Diagnosis", "Diagnosis Family")
                               .dice("Diagnosis", diagnosis_value(4))
                               .execute(cache=False))
        details = "\n".join(step.detail for step in report.steps)
        assert "SELECT fact_id FROM fact" in details
        assert "closure_" in details
        assert report.steps[-1].name == "sql-execute"

    def test_fallback_path_names_the_reason(self, mo):
        report = (Query(mo).rollup("Diagnosis", "Diagnosis Family")
                  .explain(Median("Age"), backend="sql", cache=False))
        assert report.path == "alpha"
        assert report.steps[0].name == "sql-fallback"
        assert "MD052" in report.steps[0].detail

    def test_explain_sql_renders_per_node(self, mo, backend):
        text = backend.explain_sql(
            Query(mo).rollup("Diagnosis", "Diagnosis Family").to_plan())
        assert "-- Base(Patient)" in text
        assert "-- α[" in text


class TestStaleness:
    def test_mutation_triggers_reload(self, mo):
        backend = sql_backend_for(mo)
        q = Query(mo).rollup("Diagnosis", "Low-level Diagnosis")
        before = q.execute(check=False, backend="sql", cache=False)
        assert not backend.stale

        loads = metrics.counter("sql.backend.loads")
        loaded_count = loads.value
        new = DimensionValue(sid=12345)
        mo.dimension("Diagnosis").add_value("Low-level Diagnosis", new)
        mo.relate(patient_fact(1), "Diagnosis", new)
        assert backend.stale

        after_sql = q.execute(check=False, backend="sql", cache=False)
        after_mem = q.execute(check=False, cache=False)
        assert after_sql == after_mem
        assert after_sql != before
        assert loads.value == loaded_count + 1

    def test_backend_cache_is_per_mo(self, mo):
        other = case_study_mo(temporal=False)
        assert sql_backend_for(mo) is sql_backend_for(mo)
        assert sql_backend_for(mo) is not sql_backend_for(other)

    def test_backend_cache_is_bounded(self):
        """Each backend owns a connection, so the per-MO registry must
        evict least-recently-used backends beyond its bound."""
        from repro.relational.backend import MAX_CACHED_BACKENDS, _RECENT

        evicted = metrics.counter("sql.backend.evicted")
        before = evicted.value
        mos = [case_study_mo(temporal=False)
               for _ in range(MAX_CACHED_BACKENDS + 2)]
        backends = [sql_backend_for(m) for m in mos]
        assert len(_RECENT) <= MAX_CACHED_BACKENDS
        assert evicted.value >= before + 2
        # the most recent backend survived; the oldest was closed and
        # dropped, so asking again builds a fresh one
        assert sql_backend_for(mos[-1]) is backends[-1]
        assert sql_backend_for(mos[0]) is not backends[0]

    def test_evicted_backend_still_answers_when_reasked(self):
        from repro.relational.backend import MAX_CACHED_BACKENDS

        keep = case_study_mo(temporal=False)
        expected = (Query(keep).rollup("Diagnosis", "Diagnosis Family")
                    .execute(cache=False))
        others = [case_study_mo(temporal=False)
                  for _ in range(MAX_CACHED_BACKENDS + 1)]
        for m in others:
            sql_backend_for(m)
        rows = (Query(keep).rollup("Diagnosis", "Diagnosis Family")
                .execute(backend="sql", cache=False))
        assert rows == expected


class TestEngines:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            connect("oracle")

    def test_duckdb_gated_behind_same_interface(self, mo):
        try:
            import duckdb  # noqa: F401
        except ImportError:
            with pytest.raises(SqlBackendUnavailable):
                connect("duckdb")
            return
        backend = SqlBackend(mo, engine="duckdb")
        q = Query(mo).rollup("Diagnosis", "Diagnosis Family")
        assert backend.execute_rows(q.to_plan()) == q.execute(cache=False)
        backend.close()


class TestObservability:
    def test_compile_counters_move(self, mo):
        compiled = metrics.counter("sql.pushdown.compiled")
        nodes = metrics.counter("sql.pushdown.node_compiled")
        c0, n0 = compiled.value, nodes.value
        Query(mo).rollup("Diagnosis", "Diagnosis Family") \
            .execute(backend="sql", cache=False)
        assert compiled.value == c0 + 1
        assert nodes.value >= n0 + 2  # Base + α at least
