"""Tests for Klug's relational algebra with aggregation."""

import math

import pytest

from repro.core.errors import AlgebraError, SchemaError
from repro.relational import (
    Relation,
    r_aggregate,
    r_difference,
    r_product,
    r_project,
    r_rename,
    r_select,
    r_theta_join,
    r_union,
)

R = Relation(("a", "b"), [(1, "x"), (2, "y"), (3, "x")])
S = Relation(("a", "b"), [(2, "y"), (4, "z")])
T = Relation(("c",), [(10,), (20,)])


class TestCoreOperators:
    def test_select(self):
        result = r_select(R, lambda row: row["b"] == "x")
        assert result.rows == {(1, "x"), (3, "x")}

    def test_project_dedups(self):
        result = r_project(R, ["b"])
        assert result.rows == {("x",), ("y",)}

    def test_project_reorders(self):
        result = r_project(R, ["b", "a"])
        assert ("x", 1) in result.rows

    def test_rename(self):
        result = r_rename(R, {"a": "alpha"})
        assert result.attributes == ("alpha", "b")
        assert result.rows == R.rows

    def test_rename_unknown_rejected(self):
        with pytest.raises(SchemaError):
            r_rename(R, {"zz": "x"})

    def test_union(self):
        assert r_union(R, S).rows == R.rows | S.rows

    def test_difference(self):
        assert r_difference(R, S).rows == {(1, "x"), (3, "x")}

    def test_union_schema_mismatch(self):
        with pytest.raises(AlgebraError):
            r_union(R, T)

    def test_product(self):
        result = r_product(R, T)
        assert len(result) == 6
        assert result.attributes == ("a", "b", "c")

    def test_product_shared_attributes_rejected(self):
        with pytest.raises(AlgebraError):
            r_product(R, S)

    def test_theta_join(self):
        result = r_theta_join(R, T, lambda row: row["a"] * 10 == row["c"])
        assert result.rows == {(1, "x", 10), (2, "y", 20)}


class TestAggregateFormation:
    def test_sum_by_group(self):
        result = r_aggregate(R, ["b"], "SUM", "a")
        assert result.rows == {("x", 4), ("y", 2)}

    def test_count(self):
        result = r_aggregate(R, ["b"], "COUNT", "a")
        assert result.rows == {("x", 2), ("y", 1)}

    def test_avg(self):
        result = r_aggregate(R, ["b"], "AVG", "a")
        assert result.rows == {("x", 2.0), ("y", 2.0)}

    def test_min_max(self):
        assert r_aggregate(R, ["b"], "MIN", "a").rows == \
            {("x", 1), ("y", 2)}
        assert r_aggregate(R, ["b"], "MAX", "a").rows == \
            {("x", 3), ("y", 2)}

    def test_grand_total(self):
        result = r_aggregate(R, [], "SUM", "a")
        assert result.rows == {(6,)}
        assert result.attributes == ("result",)

    def test_custom_result_attribute(self):
        result = r_aggregate(R, ["b"], "SUM", "a", result_attribute="total")
        assert result.attributes == ("b", "total")

    def test_unknown_function_rejected(self):
        with pytest.raises(SchemaError):
            r_aggregate(R, ["b"], "MEDIAN", "a")

    def test_result_attribute_collision_rejected(self):
        with pytest.raises(SchemaError):
            r_aggregate(R, ["b"], "SUM", "a", result_attribute="b")
