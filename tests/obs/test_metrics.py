"""Tests for the process-local metrics registry."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc_default_and_amount(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("level")
        g.set(10)
        g.inc()
        g.dec(3)
        assert g.value == 8.0


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        h = registry.histogram("groups")
        for v in (1, 5, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert h.min == 1.0
        assert h.max == 5.0
        assert h.mean == 3.0

    def test_empty_summary_is_finite(self):
        registry = MetricsRegistry()
        summary = registry.histogram("empty").summary()
        assert summary == {"count": 0, "total": 0.0, "min": 0.0,
                           "max": 0.0, "mean": 0.0}


class TestRegistry:
    def test_name_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("c").observe(7)
        snap = registry.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped["counters"]["a"] == 1
        assert round_tripped["gauges"]["b"] == 2
        assert round_tripped["histograms"]["c"]["count"] == 1

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("preagg.materialize").inc()
        registry.counter("query.path.index").inc()
        snap = registry.snapshot(prefix="preagg.")
        assert list(snap["counters"]) == ["preagg.materialize"]

    def test_reset_zeroes_in_place(self):
        """Modules cache metric objects at import; reset must keep the
        cached objects live."""
        registry = MetricsRegistry()
        c = registry.counter("x")
        h = registry.histogram("y")
        c.inc(5)
        h.observe(2)
        registry.reset()
        assert c.value == 0.0
        assert h.count == 0
        assert registry.counter("x") is c
        c.inc()
        assert registry.snapshot()["counters"]["x"] == 1

    def test_render_one_line_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(4)
        text = registry.render()
        lines = text.splitlines()
        assert "a 2" in lines
        assert "b 1.5" in lines
        assert any(line.startswith("c count=1") for line in lines)


class TestGlobalRegistry:
    def test_module_helpers_share_one_registry(self):
        from repro.obs import metrics

        c = metrics.counter("test.global.helper")
        before = c.value
        metrics.counter("test.global.helper").inc()
        assert c.value == before + 1
        assert metrics.REGISTRY.counter("test.global.helper") is c


class TestThreadSafety:
    """Concurrent mutators must never lose updates: ``x += amount`` is
    two interpreter steps, so without the registry's mutation lock
    racing threads drop increments."""

    N_THREADS = 8
    N_OPS = 2000

    def _hammer(self, work):
        import threading

        threads = [threading.Thread(target=work)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        self._hammer(lambda: [c.inc() for _ in range(self.N_OPS)])
        assert c.value == self.N_THREADS * self.N_OPS

    def test_gauge_inc_dec_balance(self):
        registry = MetricsRegistry()
        g = registry.gauge("level")
        self._hammer(lambda: [(g.inc(2), g.dec())
                              for _ in range(self.N_OPS)])
        assert g.value == self.N_THREADS * self.N_OPS

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()
        h = registry.histogram("y")
        self._hammer(lambda: [h.observe(1.0)
                              for _ in range(self.N_OPS)])
        assert h.count == self.N_THREADS * self.N_OPS
        assert h.total == float(self.N_THREADS * self.N_OPS)

    def test_summary_is_consistent_under_writes(self):
        """A reader never sees a summary whose fields disagree with
        each other (count moved but total did not)."""
        registry = MetricsRegistry()
        h = registry.histogram("z")
        stop = []

        def write():
            while not stop:
                h.observe(1.0)

        import threading

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(500):
                summary = h.summary()
                assert summary["total"] == float(summary["count"])
        finally:
            stop.append(True)
            writer.join()
