"""Tests for trace spans and the ring buffer."""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Every test starts disabled with an empty buffer and the default
    buffer size, and leaves tracing off for the rest of the suite."""
    trace.disable()
    trace.set_buffer_size(trace.DEFAULT_BUFFER_SIZE)
    trace.clear()
    yield
    trace.disable()
    trace.set_buffer_size(trace.DEFAULT_BUFFER_SIZE)
    trace.clear()


class TestDisabled:
    def test_disabled_span_records_nothing(self):
        with trace.span("a", k=1):
            pass
        assert trace.spans() == []

    def test_disabled_span_is_shared_noop(self):
        assert trace.span("a") is trace.span("b")


class TestEnabled:
    def test_span_records_name_attrs_elapsed(self):
        trace.enable()
        with trace.span("aggregate.alpha", grouping=("Diagnosis",)):
            pass
        (record,) = trace.spans()
        assert record.name == "aggregate.alpha"
        assert record.attributes == {"grouping": ("Diagnosis",)}
        assert record.elapsed_seconds >= 0.0
        assert record.depth == 0
        assert record.parent is None

    def test_nesting_depth_and_parent(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = trace.spans()  # children finish first
        assert inner.name == "inner"
        assert inner.depth == 1
        assert inner.parent == "outer"
        assert outer.depth == 0
        assert outer.elapsed_seconds >= inner.elapsed_seconds

    def test_exception_still_records_and_unwinds(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("outer"):
                with trace.span("failing"):
                    raise RuntimeError("boom")
        assert [r.name for r in trace.spans()] == ["failing", "outer"]
        with trace.span("after"):
            pass
        assert trace.spans()[-1].depth == 0

    def test_ring_buffer_caps_retention(self):
        trace.enable(buffer_size=3)
        for i in range(10):
            with trace.span(f"s{i}"):
                pass
        assert [r.name for r in trace.spans()] == ["s7", "s8", "s9"]

    def test_spans_filter_by_name(self):
        trace.enable()
        for name in ("a", "b", "a"):
            with trace.span(name):
                pass
        assert len(trace.spans("a")) == 2

    def test_clear_keeps_enabled_state(self):
        trace.enable()
        with trace.span("a"):
            pass
        trace.clear()
        assert trace.spans() == []
        assert trace.is_enabled()

    def test_disable_keeps_recorded_spans(self):
        trace.enable()
        with trace.span("a"):
            pass
        trace.disable()
        assert [r.name for r in trace.spans()] == ["a"]

    def test_bad_buffer_size_rejected(self):
        with pytest.raises(ValueError):
            trace.set_buffer_size(0)


class TestThreadSafety:
    def test_concurrent_spans_all_recorded(self):
        import threading

        trace.enable(buffer_size=100_000)
        n_threads, n_spans = 8, 500

        def work():
            for _ in range(n_spans):
                with trace.span("concurrent"):
                    pass

        threads = [threading.Thread(target=work)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.spans("concurrent")) == n_threads * n_spans

    def test_resize_under_concurrent_appends_never_corrupts(self):
        """Buffer management (enable/clear/resize) must stay coherent
        while spans finish on other threads; a span finishing during a
        resize may land in the dropped buffer — documented, not a
        crash."""
        import threading

        trace.enable(buffer_size=64)
        stop = []

        def churn():
            while not stop:
                with trace.span("churn"):
                    pass

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            for size in (32, 128, 64, 16) * 25:
                trace.set_buffer_size(size)
                records = trace.spans()
                assert len(records) <= size
                assert all(r.name == "churn" for r in records)
        finally:
            stop.append(True)
            writer.join()


class TestEngineIntegration:
    def test_aggregate_emits_alpha_span(self, snapshot_mo):
        from repro.algebra import SetCount, aggregate
        from repro.core.helpers import make_result_spec

        trace.enable()
        aggregate(snapshot_mo, SetCount(),
                  {"Diagnosis": "Diagnosis Group"}, make_result_spec(),
                  strict_types=False)
        trace.disable()
        names = [r.name for r in trace.spans()]
        assert "aggregate.alpha" in names
