"""Tests for the retail workload generator."""

from repro.algebra import Sum, validate_closed
from repro.core.properties import (
    check_summarizability,
    hierarchy_is_partitioning,
    hierarchy_is_strict,
)
from repro.workloads import RetailConfig, generate_retail


class TestRetailWorkload:
    def test_valid_mo(self, small_retail):
        small_retail.mo.validate()
        assert validate_closed(small_retail.mo).ok

    def test_dimensions(self, small_retail):
        assert set(small_retail.mo.dimension_names) == \
            {"Product", "Customer", "Date", "Amount", "Price"}

    def test_counts(self, small_retail):
        assert len(small_retail.mo.facts) == 120
        config = RetailConfig()
        assert len(small_retail.products) == (
            config.n_departments * config.categories_per_department
            * config.products_per_category)

    def test_hierarchies_strict_partitioning(self, small_retail):
        """Retail hierarchies are the classical strict case — the foil
        to the clinical non-strict ones."""
        for name in ("Product", "Customer", "Date"):
            dim = small_retail.mo.dimension(name)
            assert hierarchy_is_strict(dim)
            assert hierarchy_is_partitioning(dim)

    def test_revenue_summarizable(self, small_retail):
        verdict = check_summarizability(
            small_retail.mo, {"Product": "Category"},
            function_distributive=True)
        assert verdict.summarizable

    def test_measures_numeric(self, small_retail):
        total = Sum("Price").apply(small_retail.mo.facts, small_retail.mo)
        assert total > 0

    def test_deterministic(self):
        config = RetailConfig(n_purchases=30, seed=9)
        a, b = generate_retail(config), generate_retail(config)
        pa = {(f.fid, v.sid) for f, v in a.mo.relation("Product").pairs()}
        pb = {(f.fid, v.sid) for f, v in b.mo.relation("Product").pairs()}
        assert pa == pb
