"""Tests for the clinical workload generator."""

import pytest

from repro.algebra import validate_closed
from repro.casestudy.icd import IcdShape
from repro.core.mo import TimeKind
from repro.uncertainty import is_certain
from repro.workloads import ClinicalConfig, generate_clinical


class TestShape:
    def test_patient_count(self, small_clinical):
        assert len(small_clinical.mo.facts) == 60
        assert len(small_clinical.patients) == 60

    def test_valid_mo(self, small_clinical):
        small_clinical.mo.validate()
        assert validate_closed(small_clinical.mo).ok

    def test_dimensions(self, small_clinical):
        assert set(small_clinical.mo.dimension_names) == \
            {"Diagnosis", "Residence", "Age"}

    def test_every_patient_diagnosed(self, small_clinical):
        rel = small_clinical.mo.relation("Diagnosis")
        assert rel.facts() == small_clinical.mo.facts

    def test_residence_inventories(self, small_clinical):
        config_areas = 3 * 3 * 4
        assert len(small_clinical.areas) == config_areas
        assert len(small_clinical.counties) == 9
        assert len(small_clinical.regions) == 3

    def test_deterministic(self):
        config = ClinicalConfig(n_patients=20, seed=77)
        a, b = generate_clinical(config), generate_clinical(config)
        pairs_a = set(a.mo.relation("Diagnosis").pairs())
        pairs_b = set(b.mo.relation("Diagnosis").pairs())
        assert {(f.fid, v.sid) for f, v in pairs_a} == \
            {(f.fid, v.sid) for f, v in pairs_b}

    def test_seed_changes_output(self):
        a = generate_clinical(ClinicalConfig(n_patients=20, seed=1))
        b = generate_clinical(ClinicalConfig(n_patients=20, seed=2))
        pa = {(f.fid, v.sid) for f, v in a.mo.relation("Diagnosis").pairs()}
        pb = {(f.fid, v.sid) for f, v in b.mo.relation("Diagnosis").pairs()}
        assert pa != pb


class TestGranularityMix:
    def test_family_level_links_present(self, small_clinical):
        dim = small_clinical.mo.dimension("Diagnosis")
        rel = small_clinical.mo.relation("Diagnosis")
        categories = {
            dim.category_name_of(v) for v in rel.values()
        }
        assert "Diagnosis Family" in categories
        assert "Low-level Diagnosis" in categories

    def test_zero_family_prob_all_low_level(self, strict_clinical):
        dim = strict_clinical.mo.dimension("Diagnosis")
        rel = strict_clinical.mo.relation("Diagnosis")
        categories = {dim.category_name_of(v) for v in rel.values()}
        assert categories == {"Low-level Diagnosis"}


class TestTemporalAndUncertain:
    def test_temporal_kind(self):
        w = generate_clinical(ClinicalConfig(
            n_patients=10, temporal=True,
            icd=IcdShape(n_groups=2, families_per_group=(2, 2),
                         lowlevels_per_family=(2, 2)), seed=3))
        assert w.mo.kind is TimeKind.VALID
        w.mo.validate()

    def test_snapshot_kind(self, small_clinical):
        assert small_clinical.mo.kind is TimeKind.SNAPSHOT

    def test_uncertainty_injected(self):
        w = generate_clinical(ClinicalConfig(
            n_patients=40, uncertainty_prob=0.5,
            icd=IcdShape(n_groups=2, families_per_group=(2, 2),
                         lowlevels_per_family=(2, 2)), seed=3))
        assert not is_certain(w.mo)

    def test_zero_uncertainty_is_certain(self, small_clinical):
        assert is_certain(small_clinical.mo)
