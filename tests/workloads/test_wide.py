"""Tests for the wide-schema workload (hundreds of dimensions)."""

import pytest

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    project,
    select,
    validate_closed,
)
from repro.core.helpers import make_result_spec
from repro.workloads import WideConfig, generate_wide


@pytest.fixture(scope="module")
def wide():
    return generate_wide(WideConfig(n_facts=50, n_flat_dimensions=120,
                                    n_deep_dimensions=2, seed=4))


class TestWideWorkload:
    def test_dimensionality(self, wide):
        assert wide.mo.n == 122

    def test_valid(self, wide):
        wide.mo.validate()
        assert validate_closed(wide.mo).ok

    def test_projection_narrows(self, wide):
        narrow = project(wide.mo, ["F000", "D0"])
        assert narrow.n == 2
        assert narrow.facts == wide.mo.facts

    def test_selection_on_one_of_many(self, wide):
        value = wide.flat_values["F007"][0]
        result = select(wide.mo, characterized_by("F007", value))
        assert result.facts
        assert all(
            value in wide.mo.relation("F007").values_of(f)
            for f in result.facts
        )

    def test_aggregate_over_deep_dimension(self, wide):
        top_level = wide.mo.dimension("D0").dtype
        coarse = sorted(top_level.pred(f"D0L1"))[0]
        agg = aggregate(wide.mo, SetCount(), {"D0": "D0L2"},
                        make_result_spec(), strict_types=False)
        assert validate_closed(agg).ok
        total = sum(
            next(iter(agg.relation("Result").values_of(f))).sid
            for f in agg.facts
        )
        assert total >= len(wide.mo.facts) * 0  # groups may overlap = 0 safe
        assert agg.n == 123

    def test_deterministic(self):
        config = WideConfig(n_facts=10, n_flat_dimensions=20, seed=9)
        a, b = generate_wide(config), generate_wide(config)
        pa = {(f.fid, v.sid) for f, v in a.mo.relation("F000").pairs()}
        pb = {(f.fid, v.sid) for f, v in b.mo.relation("F000").pairs()}
        assert pa == pb
