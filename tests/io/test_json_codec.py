"""Tests for the self-contained JSON codec."""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro._errors import SchemaError
from repro.algebra import SetCount, aggregate
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.helpers import make_result_spec
from repro.io import FORMAT_VERSION, dumps, loads, mo_from_dict, mo_to_dict
from tests.strategies import small_mos


def _pairs(mo, name):
    return {
        (fact.fid, None if value.is_top else value.sid,
         time.intervals, prob)
        for fact, value, time, prob
        in mo.relation(name).annotated_pairs()
    }


class TestRoundTrip:
    def test_case_study_snapshot(self, snapshot_mo):
        back = loads(dumps(snapshot_mo))
        back.validate()
        assert back.facts == snapshot_mo.facts
        for name in snapshot_mo.dimension_names:
            assert _pairs(back, name) == _pairs(snapshot_mo, name)

    def test_case_study_temporal(self, valid_time_mo):
        back = loads(dumps(valid_time_mo))
        assert back.kind is valid_time_mo.kind
        diag = back.dimension("Diagnosis")
        original = valid_time_mo.dimension("Diagnosis")
        assert diag.containment_time(diagnosis_value(3),
                                     diagnosis_value(7)) == \
            original.containment_time(diagnosis_value(3),
                                      diagnosis_value(7))

    def test_representations_survive(self, valid_time_mo):
        back = loads(dumps(valid_time_mo))
        code = back.dimension("Diagnosis").representation(
            "Diagnosis Family", "Code")
        assert code.of(diagnosis_value(9)) == "E10"

    def test_aggtypes_survive(self, snapshot_mo):
        back = loads(dumps(snapshot_mo))
        assert back.dimension("Age").dtype.bottom.aggtype is \
            snapshot_mo.dimension("Age").dtype.bottom.aggtype

    def test_set_fact_mo(self, snapshot_mo):
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"},
                        make_result_spec())
        back = loads(dumps(agg))
        back.validate()
        assert back.facts == agg.facts
        assert all(f.is_group for f in back.facts)

    def test_probabilities_survive(self):
        mo = case_study_mo(temporal=False)
        mo.relate(patient_fact(1), "Diagnosis", diagnosis_value(10),
                  prob=0.9)
        back = loads(dumps(mo))
        annotations = back.relation("Diagnosis").annotations(
            patient_fact(1), diagnosis_value(10))
        assert any(abs(p - 0.9) < 1e-12 for _, p in annotations)


class TestFormat:
    def test_json_is_valid_and_versioned(self, snapshot_mo):
        data = json.loads(dumps(snapshot_mo))
        assert data["format"] == FORMAT_VERSION
        assert data["fact_type"] == "Patient"

    def test_unknown_version_rejected(self, snapshot_mo):
        data = mo_to_dict(snapshot_mo)
        data["format"] = 999
        with pytest.raises(SchemaError):
            mo_from_dict(data)

    def test_deterministic_output(self, snapshot_mo):
        assert dumps(snapshot_mo) == dumps(snapshot_mo)

    def test_unserializable_id_rejected(self):
        from repro.io.json_codec import _encode_id

        with pytest.raises(SchemaError):
            _encode_id(object())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(small_mos(temporal=True, probabilistic=True))
def test_roundtrip_property(mo):
    back = loads(dumps(mo))
    back.validate()
    assert back.facts == mo.facts
    for name in mo.dimension_names:
        assert _pairs(back, name) == _pairs(mo, name)
        original = mo.dimension(name)
        restored = back.dimension(name)
        assert {
            (c.sid, p.sid, t.intervals, pr)
            for c, p, t, pr in original.order.edges()
        } == {
            (c.sid, p.sid, t.intervals, pr)
            for c, p, t, pr in restored.order.edges()
        }


class TestEdgeShapes:
    def test_banded_result_dimension(self, snapshot_mo):
        """Band values carry tuple surrogates containing None (the
        open-ended band): they must round-trip."""
        from repro.core.helpers import Band, make_result_spec

        spec = make_result_spec("Result",
                                bands=[Band(0, 2), Band(2, None)])
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, spec)
        back = loads(dumps(agg))
        back.validate()
        band_labels = {
            v.label for v in back.dimension("Result").category("Range")
        }
        assert band_labels == {"0-1", ">1"}
        # band edges survive
        two = next(v for v in back.dimension("Result").bottom_category
                   if v.sid == 2)
        assert {p.label for p in
                back.dimension("Result").order.parents(two)} == {">1"}

    def test_empty_mo(self):
        from repro.core.helpers import make_simple_dimension
        from repro.core.mo import MultidimensionalObject
        from repro.core.schema import FactSchema

        dim = make_simple_dimension("X", ["a"])
        mo = MultidimensionalObject(FactSchema("T", [dim.dtype]),
                                    dimensions={"X": dim})
        back = loads(dumps(mo))
        back.validate()
        assert back.facts == set()

    def test_nested_set_facts(self, snapshot_mo):
        """Aggregating an aggregate nests frozensets two deep."""
        from repro.core.helpers import make_result_spec

        once = aggregate(snapshot_mo, SetCount(),
                         {"Diagnosis": "Diagnosis Group"},
                         make_result_spec("C1"))
        twice = aggregate(once, SetCount(), {}, make_result_spec("C2"),
                          strict_types=False)
        back = loads(dumps(twice))
        back.validate()
        (outer,) = back.facts
        assert all(m.is_group for m in outer.members)
