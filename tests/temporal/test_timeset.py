"""Tests for coalesced chronon sets."""

import pytest

from repro.core.errors import TemporalError
from repro.temporal.chronon import NOW, TIME_MAX, TIME_MIN, day
from repro.temporal.timeset import (
    ALWAYS,
    EMPTY,
    TimeSet,
    coalesce_intersection,
    coalesce_union,
)


def ts(*ivals):
    return TimeSet.of(ivals)


T0 = day(1980, 1, 1)


class TestConstruction:
    def test_empty(self):
        assert TimeSet.empty().is_empty()
        assert not TimeSet.empty()
        assert EMPTY.duration() == 0

    def test_always(self):
        assert TimeSet.always().is_always()
        assert ALWAYS.intervals == ((TIME_MIN, TIME_MAX),)

    def test_point(self):
        p = TimeSet.point(T0)
        assert p.duration() == 1
        assert T0 in p
        assert T0 + 1 not in p

    def test_interval_with_now_defaults_to_domain_max(self):
        t = TimeSet.interval(T0, NOW)
        assert t.max() == TIME_MAX

    def test_interval_with_now_and_reference(self):
        ref = day(1999, 1, 1)
        t = TimeSet.interval(T0, NOW, reference=ref)
        assert t.max() == ref

    def test_invalid_interval_raises(self):
        with pytest.raises(TemporalError):
            TimeSet.of([(T0, T0 - 1)])

    def test_overlapping_intervals_coalesce(self):
        t = ts((T0, T0 + 10), (T0 + 5, T0 + 20))
        assert t.intervals == ((T0, T0 + 20),)

    def test_adjacent_intervals_coalesce(self):
        t = ts((T0, T0 + 10), (T0 + 11, T0 + 20))
        assert t.intervals == ((T0, T0 + 20),)

    def test_disjoint_intervals_stay_separate(self):
        t = ts((T0, T0 + 10), (T0 + 12, T0 + 20))
        assert len(t.intervals) == 2

    def test_unordered_input_sorted(self):
        t = ts((T0 + 100, T0 + 110), (T0, T0 + 10))
        assert t.intervals[0][0] == T0


class TestQueries:
    def test_contains(self):
        t = ts((T0, T0 + 10))
        assert T0 in t and T0 + 10 in t
        assert T0 - 1 not in t and T0 + 11 not in t

    def test_now_membership_maps_to_domain_max(self):
        assert NOW in ALWAYS
        assert NOW not in ts((T0, T0 + 10))

    def test_duration(self):
        assert ts((T0, T0 + 9), (T0 + 20, T0 + 29)).duration() == 20

    def test_min_max(self):
        t = ts((T0, T0 + 9), (T0 + 20, T0 + 29))
        assert t.min() == T0
        assert t.max() == T0 + 29

    def test_min_max_of_empty_raise(self):
        with pytest.raises(TemporalError):
            EMPTY.min()
        with pytest.raises(TemporalError):
            EMPTY.max()

    def test_chronons_iteration(self):
        t = ts((T0, T0 + 2), (T0 + 5, T0 + 5))
        assert list(t.chronons()) == [T0, T0 + 1, T0 + 2, T0 + 5]

    def test_sample_chronons(self):
        t = ts((T0, T0 + 2), (T0 + 5, T0 + 5))
        assert set(t.sample_chronons()) == {T0, T0 + 2, T0 + 5}


class TestAlgebra:
    def test_union(self):
        a, b = ts((T0, T0 + 5)), ts((T0 + 10, T0 + 15))
        assert (a | b).intervals == ((T0, T0 + 5), (T0 + 10, T0 + 15))

    def test_union_coalesces(self):
        a, b = ts((T0, T0 + 5)), ts((T0 + 6, T0 + 10))
        assert (a | b).intervals == ((T0, T0 + 10),)

    def test_intersection(self):
        a, b = ts((T0, T0 + 10)), ts((T0 + 5, T0 + 20))
        assert (a & b).intervals == ((T0 + 5, T0 + 10),)

    def test_intersection_disjoint_is_empty(self):
        a, b = ts((T0, T0 + 5)), ts((T0 + 10, T0 + 15))
        assert (a & b).is_empty()

    def test_difference_cuts_middle(self):
        a, b = ts((T0, T0 + 10)), ts((T0 + 3, T0 + 6))
        assert (a - b).intervals == ((T0, T0 + 2), (T0 + 7, T0 + 10))

    def test_difference_total(self):
        a = ts((T0, T0 + 10))
        assert (a - a).is_empty()

    def test_complement(self):
        a = ts((T0, T0 + 10))
        c = a.complement()
        assert T0 not in c and T0 - 1 in c and T0 + 11 in c
        assert (a | c).is_always()

    def test_issubset(self):
        assert ts((T0 + 2, T0 + 4)) <= ts((T0, T0 + 10))
        assert not ts((T0, T0 + 20)) <= ts((T0, T0 + 10))
        assert EMPTY <= EMPTY

    def test_overlaps(self):
        assert ts((T0, T0 + 5)).overlaps(ts((T0 + 5, T0 + 9)))
        assert not ts((T0, T0 + 5)).overlaps(ts((T0 + 6, T0 + 9)))

    def test_equality_and_hash(self):
        assert ts((T0, T0 + 5)) == ts((T0, T0 + 5))
        assert hash(ts((T0, T0 + 5))) == hash(ts((T0, T0 + 5)))
        assert ts((T0, T0 + 5)) != ts((T0, T0 + 6))

    def test_coalesce_union_helper(self):
        total = coalesce_union([ts((T0, T0 + 1)), ts((T0 + 2, T0 + 3))])
        assert total.intervals == ((T0, T0 + 3),)

    def test_coalesce_intersection_helper(self):
        sets = [ts((T0, T0 + 10)), ts((T0 + 5, T0 + 20)), ts((T0 + 5, T0 + 7))]
        assert coalesce_intersection(sets).intervals == ((T0 + 5, T0 + 7),)

    def test_coalesce_intersection_empty_family_is_always(self):
        assert coalesce_intersection([]).is_always()
