"""Focused tests of the NOW semantics (Clifford et al., the paper's
[20]): a continuously-growing value resolved against a reference."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.temporal.chronon import (
    NOW,
    TIME_MAX,
    day,
    format_day,
    parse_day,
    resolve_endpoint,
)
from repro.temporal.timeset import TimeSet
from repro.temporal.timeslice import valid_timeslice


class TestNowResolution:
    def test_now_grows_with_the_reference(self):
        early = TimeSet.interval(day(1980, 1, 1), NOW,
                                 reference=day(1990, 1, 1))
        late = TimeSet.interval(day(1980, 1, 1), NOW,
                                reference=day(2000, 1, 1))
        assert early.max() < late.max()
        assert day(1995, 1, 1) not in early
        assert day(1995, 1, 1) in late

    def test_unreferenced_now_is_until_changed(self):
        open_ended = TimeSet.interval(day(1980, 1, 1), NOW)
        assert open_ended.max() == TIME_MAX

    def test_now_as_start(self):
        t = TimeSet.interval(NOW, NOW, reference=day(1990, 1, 1))
        assert t.duration() == 1
        assert day(1990, 1, 1) in t

    def test_resolve_endpoint_shapes(self):
        assert resolve_endpoint(NOW, day(1985, 2, 2)) == day(1985, 2, 2)
        assert resolve_endpoint(day(1980, 1, 1),
                                day(1985, 2, 2)) == day(1980, 1, 1)

    def test_parse_format_now(self):
        assert parse_day(format_day(NOW)) is NOW


class TestNowInTheCaseStudy:
    def test_open_rows_survive_any_later_slice(self, valid_time_mo):
        """(1, 9) is valid [01/01/89 - NOW]: every later timeslice must
        still show it."""
        for year in (1990, 2000, 2100):
            snap = valid_timeslice(valid_time_mo, day(year, 6, 1))
            values = snap.relation("Diagnosis").values_of(patient_fact(1))
            assert diagnosis_value(9) in values

    def test_open_rows_absent_before_start(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1988, 6, 1))
        values = snap.relation("Diagnosis").values_of(patient_fact(1))
        assert diagnosis_value(9) not in values

    def test_closed_rows_end(self, valid_time_mo):
        """Value 8's classification validity ends 31/12/79 although its
        Has row runs to 31/12/81 (Table 1's own data): while it is a
        valid classification value the slice shows it, afterwards the
        pair's value is gone from the dimension and the fact falls back
        to ⊤ there."""
        while_classified = valid_timeslice(valid_time_mo,
                                           day(1979, 12, 31))
        assert diagnosis_value(8) in \
            while_classified.relation("Diagnosis").values_of(
                patient_fact(2))
        dangling = valid_timeslice(valid_time_mo, day(1981, 6, 1))
        values = dangling.relation("Diagnosis").values_of(patient_fact(2))
        assert diagnosis_value(8) not in values
        assert dangling.dimension("Diagnosis").top_value in values
        # and after the Has row closes entirely, 9 takes over
        after = valid_timeslice(valid_time_mo, day(1982, 1, 1))
        assert diagnosis_value(9) in \
            after.relation("Diagnosis").values_of(patient_fact(2))

    def test_now_in_characterization_window(self, valid_time_mo):
        """Open-ended rows make open-ended characterizations."""
        rel = valid_time_mo.relation("Diagnosis")
        dim = valid_time_mo.dimension("Diagnosis")
        window = rel.characterization_time(patient_fact(1),
                                           diagnosis_value(11), dim)
        assert window.max() == TIME_MAX
