"""Property-based tests: TimeSet is a Boolean algebra of coalesced
chronon sets (the paper's coalescing invariant holds by construction)."""

from hypothesis import given, settings

from tests.strategies import timesets


@given(timesets(), timesets())
def test_union_commutes(a, b):
    assert a.union(b) == b.union(a)


@given(timesets(), timesets())
def test_intersection_commutes(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(timesets(), timesets(), timesets())
def test_union_associates(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(timesets(), timesets(), timesets())
def test_intersection_distributes_over_union(a, b, c):
    assert a.intersection(b.union(c)) == \
        a.intersection(b).union(a.intersection(c))


@given(timesets(), timesets())
def test_difference_definition(a, b):
    """a - b == a ∩ complement(b)."""
    assert a.difference(b) == a.intersection(b.complement())


@given(timesets())
def test_double_complement(a):
    assert a.complement().complement() == a


@given(timesets(), timesets())
def test_demorgan(a, b):
    assert a.union(b).complement() == \
        a.complement().intersection(b.complement())


@given(timesets())
def test_coalescing_invariant(a):
    """Intervals are sorted, disjoint, and non-adjacent — the maximal
    chronon set representation the paper requires."""
    intervals = a.intervals
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s1 <= e1 and s2 <= e2
        assert e1 + 1 < s2  # disjoint AND non-adjacent


@given(timesets(), timesets())
def test_duration_inclusion_exclusion(a, b):
    assert (a.union(b).duration()
            == a.duration() + b.duration() - a.intersection(b).duration())


@given(timesets(), timesets())
def test_subset_iff_intersection_identity(a, b):
    assert a.issubset(b) == (a.intersection(b) == a)


@given(timesets(), timesets())
def test_difference_then_union_restores(a, b):
    """(a - b) ∪ (a ∩ b) == a."""
    assert a.difference(b).union(a.intersection(b)) == a
