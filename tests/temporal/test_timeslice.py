"""Tests for the valid-/transaction-timeslice operators (paper §4.2)."""

import pytest

from repro.algebra import validate_closed
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.errors import TemporalError
from repro.core.mo import TimeKind
from repro.temporal.chronon import day
from repro.temporal.timeslice import (
    timeslice_dimension,
    transaction_timeslice,
    valid_timeslice,
)


class TestValidTimeslice:
    def test_result_is_snapshot(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1985, 1, 1))
        assert snap.kind is TimeKind.SNAPSHOT

    def test_rejects_snapshot_input(self, snapshot_mo):
        with pytest.raises(TemporalError):
            valid_timeslice(snapshot_mo, day(1985, 1, 1))

    def test_slice_keeps_fact_set(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1975, 6, 1))
        assert snap.facts == valid_time_mo.facts

    def test_slice_1975_shows_old_classification(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1975, 6, 1))
        diag = snap.dimension("Diagnosis")
        assert diagnosis_value(3) in diag      # P11, valid in the 70s
        assert diagnosis_value(9) not in diag  # E10, valid from 1980

    def test_slice_1985_shows_new_classification(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1985, 6, 1))
        diag = snap.dimension("Diagnosis")
        assert diagnosis_value(9) in diag
        assert diagnosis_value(3) not in diag

    def test_slice_restricts_fact_dimension_pairs(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1975, 6, 1))
        pairs = {(f.fid, v.sid)
                 for f, v in snap.relation("Diagnosis").pairs()
                 if not v.is_top}
        assert pairs == {(2, 3), (2, 8)}

    def test_uncharacterized_fact_maps_to_top(self, valid_time_mo):
        # patient 1's only diagnosis starts in 1989
        snap = valid_timeslice(valid_time_mo, day(1975, 6, 1))
        values = snap.relation("Diagnosis").values_of(patient_fact(1))
        assert values == {snap.dimension("Diagnosis").top_value}

    def test_slice_restricts_order(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1975, 6, 1))
        diag = snap.dimension("Diagnosis")
        assert diag.leq(diagnosis_value(3), diagnosis_value(7))
        snap85 = valid_timeslice(valid_time_mo, day(1985, 6, 1))
        diag85 = snap85.dimension("Diagnosis")
        assert diag85.leq(diagnosis_value(9), diagnosis_value(11))

    def test_slice_restricts_representations(self, valid_time_mo):
        snap = valid_timeslice(valid_time_mo, day(1975, 6, 1))
        code = snap.dimension("Diagnosis").representation(
            "Diagnosis Family", "Code")
        assert code.of(diagnosis_value(8)) == "D1"

    def test_slice_result_is_closed(self, valid_time_mo):
        for year in (1972, 1981, 1995):
            snap = valid_timeslice(valid_time_mo, day(year, 6, 1))
            assert validate_closed(snap).ok

    def test_example_10_link_only_after_1980(self, valid_time_mo_ex10):
        before = valid_timeslice(valid_time_mo_ex10, day(1979, 6, 1))
        assert not before.dimension("Diagnosis").leq(
            diagnosis_value(8), diagnosis_value(11))
        # 8 itself is only a member through 1979, so the cross-change
        # link lives on the *order*, queried on the unsliced dimension:
        diag = valid_time_mo_ex10.dimension("Diagnosis")
        assert diag.leq(diagnosis_value(8), diagnosis_value(11),
                        at=day(1985, 1, 1))


class TestTransactionTimeslice:
    def test_requires_transaction_kind(self, valid_time_mo):
        with pytest.raises(TemporalError):
            transaction_timeslice(valid_time_mo, day(1985, 1, 1))

    def test_works_on_transaction_mo(self, valid_time_mo):
        txn = valid_time_mo.with_kind(TimeKind.TRANSACTION)
        snap = transaction_timeslice(txn, day(1985, 1, 1))
        assert snap.kind is TimeKind.SNAPSHOT


class TestTimesliceDimension:
    def test_membership_respected(self, valid_time_mo):
        diag = valid_time_mo.dimension("Diagnosis")
        sliced = timeslice_dimension(diag, day(1975, 1, 1))
        assert diagnosis_value(8) in sliced
        assert diagnosis_value(9) not in sliced

    def test_result_untimed(self, valid_time_mo):
        diag = valid_time_mo.dimension("Diagnosis")
        sliced = timeslice_dimension(diag, day(1975, 1, 1))
        time = sliced.existence_time(diagnosis_value(8))
        assert time.is_always()
