"""Tests for the bitemporal versioned store."""

import pytest

from repro.casestudy import case_study_mo, diagnosis_value
from repro.core.errors import TemporalError
from repro.core.mo import TimeKind
from repro.temporal.chronon import day
from repro.temporal.versioned import VersionedMOStore


@pytest.fixture()
def store():
    s = VersionedMOStore()
    s.commit(case_study_mo(temporal=True), at=day(1990, 1, 1))
    s.commit(case_study_mo(temporal=True, include_example10_link=True),
             at=day(1992, 1, 1))
    return s


class TestCommit:
    def test_versions_accumulate(self, store):
        assert len(store) == 2

    def test_previous_version_closed(self, store):
        first = store.versions[0]
        assert day(1991, 12, 31) in first.transaction_time
        assert day(1992, 1, 1) not in first.transaction_time

    def test_rejects_snapshot_mo(self):
        s = VersionedMOStore()
        with pytest.raises(TemporalError):
            s.commit(case_study_mo(temporal=False), at=day(1990, 1, 1))

    def test_rejects_out_of_order_commit(self, store):
        with pytest.raises(TemporalError):
            store.commit(case_study_mo(temporal=True), at=day(1991, 1, 1))


class TestSlicing:
    def test_transaction_timeslice_picks_version(self, store):
        old = store.transaction_timeslice(day(1991, 1, 1))
        new = store.transaction_timeslice(day(1995, 1, 1))
        v8, v11 = diagnosis_value(8), diagnosis_value(11)
        assert not old.dimension("Diagnosis").leq(v8, v11,
                                                  at=day(1985, 1, 1))
        assert new.dimension("Diagnosis").leq(v8, v11, at=day(1985, 1, 1))

    def test_transaction_timeslice_before_first_commit_raises(self, store):
        with pytest.raises(TemporalError):
            store.transaction_timeslice(day(1980, 1, 1))

    def test_current(self, store):
        assert store.current() is store.versions[-1].mo

    def test_current_of_empty_store_raises(self):
        with pytest.raises(TemporalError):
            VersionedMOStore().current()

    def test_full_bitemporal_snapshot(self, store):
        snap = store.snapshot(day(1995, 1, 1), day(1975, 6, 1))
        assert snap.kind is TimeKind.SNAPSHOT
        pairs = {(f.fid, v.sid)
                 for f, v in snap.relation("Diagnosis").pairs()
                 if not v.is_top}
        assert pairs == {(2, 3), (2, 8)}

    def test_valid_timeslice_history(self, store):
        history = store.valid_timeslice_history(day(1975, 6, 1))
        assert len(history) == 2
        for version in history:
            assert version.mo.kind is TimeKind.SNAPSHOT
