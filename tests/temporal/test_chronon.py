"""Tests for the time domain (chronons, NOW, date parsing)."""

import datetime

import pytest

from repro.core.errors import TemporalError
from repro.temporal.chronon import (
    NOW,
    TIME_MAX,
    TIME_MIN,
    NowType,
    check_chronon,
    day,
    format_day,
    from_date,
    parse_day,
    resolve_endpoint,
    to_date,
)


class TestChrononBasics:
    def test_day_roundtrip(self):
        t = day(1980, 1, 1)
        assert to_date(t) == datetime.date(1980, 1, 1)

    def test_from_date_roundtrip(self):
        d = datetime.date(1999, 12, 31)
        assert to_date(from_date(d)) == d

    def test_domain_is_bounded(self):
        assert TIME_MIN == datetime.date(1900, 1, 1).toordinal()
        assert TIME_MAX == datetime.date(2199, 12, 31).toordinal()

    def test_check_chronon_accepts_bounds(self):
        assert check_chronon(TIME_MIN) == TIME_MIN
        assert check_chronon(TIME_MAX) == TIME_MAX

    def test_check_chronon_rejects_outside(self):
        with pytest.raises(TemporalError):
            check_chronon(TIME_MIN - 1)
        with pytest.raises(TemporalError):
            check_chronon(TIME_MAX + 1)

    def test_check_chronon_rejects_non_int(self):
        with pytest.raises(TemporalError):
            check_chronon("1980")
        with pytest.raises(TemporalError):
            check_chronon(True)

    def test_chronons_are_ordered_days(self):
        assert day(1980, 1, 2) == day(1980, 1, 1) + 1


class TestNow:
    def test_now_is_singleton(self):
        assert NowType() is NOW

    def test_now_compares_above_all_chronons(self):
        assert NOW > day(2199, 12, 30)
        assert day(1970, 1, 1) < NOW
        assert NOW >= NOW
        assert NOW <= NOW
        assert not NOW < NOW

    def test_resolve_endpoint_now(self):
        ref = day(1995, 5, 5)
        assert resolve_endpoint(NOW, ref) == ref

    def test_resolve_endpoint_concrete(self):
        t = day(1980, 1, 1)
        assert resolve_endpoint(t, day(1999, 1, 1)) == t


class TestParseFormat:
    def test_parse_paper_dates(self):
        assert parse_day("01/01/80") == day(1980, 1, 1)
        assert parse_day("31/12/79") == day(1979, 12, 31)
        assert parse_day("25/05/69") == day(1969, 5, 25)

    def test_parse_1950_pivot(self):
        # Jane Doe's 1950 date of birth must land in the 20th century
        assert parse_day("20/03/50") == day(1950, 3, 20)

    def test_parse_21st_century(self):
        assert parse_day("01/01/05") == day(2005, 1, 1)

    def test_parse_four_digit_year(self):
        assert parse_day("01/01/1980") == day(1980, 1, 1)

    def test_parse_now(self):
        assert parse_day("NOW") is NOW
        assert parse_day(" now ") is NOW

    def test_parse_rejects_garbage(self):
        with pytest.raises(TemporalError):
            parse_day("1980-01-01")

    def test_format_day(self):
        assert format_day(day(1980, 1, 1)) == "01/01/80"
        assert format_day(NOW) == "NOW"

    def test_format_parse_roundtrip(self):
        for text in ("01/01/70", "24/12/75", "30/09/82"):
            assert format_day(parse_day(text)) == text
