"""Tests for bitemporal rectangle sets (Tt × Tv)."""

from repro.temporal.bitemporal import BitemporalTimeSet
from repro.temporal.chronon import day
from repro.temporal.timeset import TimeSet

TT = TimeSet.interval(day(1990, 1, 1), day(1994, 12, 31))
TV = TimeSet.interval(day(1980, 1, 1), day(1984, 12, 31))


class TestConstruction:
    def test_empty(self):
        assert BitemporalTimeSet.empty().is_empty()
        assert not BitemporalTimeSet.empty()

    def test_always(self):
        b = BitemporalTimeSet.always()
        assert b.contains(day(2000, 1, 1), day(1950, 1, 1))

    def test_rectangle(self):
        b = BitemporalTimeSet.rectangle(TT, TV)
        assert b.contains(day(1992, 6, 1), day(1982, 6, 1))
        assert not b.contains(day(1995, 6, 1), day(1982, 6, 1))
        assert not b.contains(day(1992, 6, 1), day(1985, 6, 1))

    def test_empty_components_dropped(self):
        b = BitemporalTimeSet.rectangle(TimeSet.empty(), TV)
        assert b.is_empty()

    def test_rectangles_with_same_valid_merge_transaction(self):
        tt2 = TimeSet.interval(day(1995, 1, 1), day(1999, 12, 31))
        b = BitemporalTimeSet(((TT, TV), (tt2, TV)))
        assert len(b.rectangles) == 1
        assert b.contains(day(1997, 1, 1), day(1982, 1, 1))


class TestOperations:
    def test_union(self):
        tv2 = TimeSet.interval(day(1985, 1, 1), day(1989, 12, 31))
        b = BitemporalTimeSet.rectangle(TT, TV).union(
            BitemporalTimeSet.rectangle(TT, tv2))
        assert b.contains(day(1992, 1, 1), day(1987, 1, 1))
        assert b.contains(day(1992, 1, 1), day(1982, 1, 1))

    def test_intersection(self):
        tt2 = TimeSet.interval(day(1993, 1, 1), day(1996, 12, 31))
        a = BitemporalTimeSet.rectangle(TT, TV)
        b = BitemporalTimeSet.rectangle(tt2, TV)
        inter = a.intersection(b)
        assert inter.contains(day(1993, 6, 1), day(1982, 1, 1))
        assert not inter.contains(day(1992, 1, 1), day(1982, 1, 1))

    def test_transaction_slice(self):
        b = BitemporalTimeSet.rectangle(TT, TV)
        assert b.transaction_slice(day(1992, 1, 1)) == TV
        assert b.transaction_slice(day(1999, 1, 1)).is_empty()

    def test_valid_slice(self):
        b = BitemporalTimeSet.rectangle(TT, TV)
        assert b.valid_slice(day(1982, 1, 1)) == TT
        assert b.valid_slice(day(1989, 1, 1)).is_empty()

    def test_equality_normalized(self):
        a = BitemporalTimeSet(((TT, TV),))
        b = BitemporalTimeSet(((TT, TV), (TT, TV)))
        assert a == b
        assert hash(a) == hash(b)
