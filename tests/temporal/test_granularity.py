"""Tests for time granularities and the time-dimension builder."""

import pytest

from repro.core.aggtypes import AggregationType
from repro.core.errors import SchemaError, TemporalError
from repro.core.properties import (
    hierarchy_is_partitioning,
    hierarchy_is_strict,
)
from repro.core.values import DimensionValue
from repro.temporal.chronon import day
from repro.temporal.granularity import (
    STANDARD_GRANULARITIES,
    Granularity,
    build_time_dimension,
)

DATES = [day(1969, 5, 25), day(1950, 3, 20), day(1980, 1, 1),
         day(1979, 12, 31)]


class TestGranularities:
    def test_month_granule(self):
        month = STANDARD_GRANULARITIES["Month"]
        assert month.granule_of(day(1980, 1, 15)) == (1980, 1)
        assert month.label_of(day(1980, 1, 15)) == "1980-01"

    def test_quarter_granule(self):
        quarter = STANDARD_GRANULARITIES["Quarter"]
        assert quarter.granule_of(day(1969, 5, 25)) == (1969, 2)

    def test_iso_week_crosses_year(self):
        week = STANDARD_GRANULARITIES["Week"]
        # 1 Jan 1980 is a Tuesday of ISO week 1980-W01
        assert week.granule_of(day(1980, 1, 1)) == (1980, 1)
        # 31 Dec 1979 (Monday) belongs to the same ISO week
        assert week.granule_of(day(1979, 12, 31)) == (1980, 1)

    def test_decade(self):
        decade = STANDARD_GRANULARITIES["Decade"]
        assert decade.granule_of(day(1969, 5, 25)) == 1960
        assert decade.label_of(day(1969, 5, 25)) == "1960s"

    def test_value_for_identity(self):
        month = STANDARD_GRANULARITIES["Month"]
        assert month.value_for(day(1980, 1, 1)) == \
            month.value_for(day(1980, 1, 31))


class TestBuildTimeDimension:
    def test_default_shape_matches_figure2(self):
        dim = build_time_dimension("DOB", DATES)
        dtype = dim.dtype
        assert dtype.bottom_name == "Day"
        assert dtype.leq("Day", "Week")
        assert dtype.leq("Day", "Month")
        assert dtype.leq("Quarter", "Decade")
        assert not dtype.leq("Week", "Month")
        assert dtype.is_lattice()
        assert dtype.bottom.aggtype is AggregationType.AVERAGE

    def test_strict_and_partitioning(self):
        dim = build_time_dimension("DOB", DATES)
        assert hierarchy_is_strict(dim)
        assert hierarchy_is_partitioning(dim)

    def test_day_values_and_rollup(self):
        dim = build_time_dimension("DOB", DATES)
        john = DimensionValue(sid=day(1969, 5, 25))
        labels = {a.label for a in dim.ancestors(john) if a.label}
        assert {"1969-05", "1969-Q2", "1969", "1960s"} <= labels

    def test_shared_coarse_values_deduplicated(self):
        dim = build_time_dimension(
            "T", [day(1980, 1, 1), day(1980, 1, 2)],
            hierarchies=[("Month", "Year")])
        assert len(dim.category("Month")) == 1
        assert len(dim.category("Year")) == 1

    def test_unknown_granularity_rejected(self):
        with pytest.raises(SchemaError):
            build_time_dimension("T", DATES, hierarchies=[("Fortnight",)])

    def test_non_coarsening_chain_rejected(self):
        """Week does not coarsen into Month (ISO weeks straddle month
        boundaries), so the builder must refuse the chain on data that
        exposes it."""
        straddling = [day(1980, 3, 31), day(1980, 4, 1)]  # one ISO week
        with pytest.raises(TemporalError):
            build_time_dimension("T", straddling,
                                 hierarchies=[("Week", "Month")])

    def test_custom_granularity(self):
        halfyear = Granularity(
            "Half", lambda t: (STANDARD_GRANULARITIES["Year"].granule_of(t),
                               1 if STANDARD_GRANULARITIES["Month"]
                               .granule_of(t)[1] <= 6 else 2),
            lambda t: "H?")
        dim = build_time_dimension(
            "T", DATES, hierarchies=[("Month", "Half")],
            granularities={**STANDARD_GRANULARITIES, "Half": halfyear})
        assert "Half" in dim.dtype

    def test_duplicate_chronons_collapse(self):
        dim = build_time_dimension("T", [day(1980, 1, 1)] * 3,
                                   hierarchies=[("Month",)])
        assert len(dim.category("Day")) == 1
