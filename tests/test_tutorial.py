"""The tutorial's code blocks must keep running as shown."""

import pathlib
import re

TUTORIAL = (pathlib.Path(__file__).resolve().parent.parent
            / "docs" / "TUTORIAL.md")


def test_tutorial_blocks_execute():
    text = TUTORIAL.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 4
    namespace = {}
    for block in blocks:
        exec(block, namespace)  # shared namespace, like a REPL session
