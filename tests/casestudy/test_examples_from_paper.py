"""The paper's Examples 1-12, re-checked literally against the
implementation.  Each test quotes the example it reproduces."""

import pytest

from repro.algebra import SetCount, aggregate, validate_closed
from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.aggtypes import AggregationType
from repro.core.helpers import Band, make_result_spec
from repro.temporal.chronon import day
from repro.temporal.timeset import TimeSet


class TestExample1And8Schema:
    """Example 1/8: fact type Patient; dimension types Diagnosis, DOB,
    Residence, Name, SSN, Age — a six-dimensional MO."""

    def test_schema(self, snapshot_mo):
        assert snapshot_mo.schema.fact_type == "Patient"
        assert set(snapshot_mo.dimension_names) == {
            "Diagnosis", "DOB", "Residence", "Name", "SSN", "Age"}
        assert snapshot_mo.n == 6

    def test_fact_set(self, snapshot_mo):
        assert {f.fid for f in snapshot_mo.facts} == {1, 2}

    def test_simple_dimensions(self, snapshot_mo):
        for name in ("Name", "SSN"):
            dtype = snapshot_mo.dimension(name).dtype
            assert dtype.bottom_name == name
            assert len([c for c in dtype.category_types()]) == 2

    def test_age_groups(self, snapshot_mo):
        dtype = snapshot_mo.dimension("Age").dtype
        assert "Five-year group" in dtype and "Ten-year group" in dtype

    def test_dob_two_hierarchies(self, snapshot_mo):
        dtype = snapshot_mo.dimension("DOB").dtype
        assert dtype.leq("Day", "Week")
        assert dtype.leq("Day", "Month") and dtype.leq("Quarter", "Decade")


class TestExample2CategoryOrder:
    """Example 2: ⊥ = Low-level Diagnosis < Family < Group < ⊤, and
    Pred(Low-level Diagnosis) = {Diagnosis Family}."""

    def test_chain(self, snapshot_mo):
        dtype = snapshot_mo.dimension("Diagnosis").dtype
        assert dtype.bottom_name == "Low-level Diagnosis"
        assert dtype.leq("Low-level Diagnosis", "Diagnosis Family")
        assert dtype.leq("Diagnosis Family", "Diagnosis Group")
        assert dtype.leq("Diagnosis Group", dtype.top_name)

    def test_pred(self, snapshot_mo):
        dtype = snapshot_mo.dimension("Diagnosis").dtype
        assert dtype.pred("Low-level Diagnosis") == {"Diagnosis Family"}


class TestExample3Aggtypes:
    """Example 3: Aggtype(Low-level Diagnosis) = c, Aggtype(Age) = ⊕,
    Aggtype(DOB) = ⊘."""

    def test_aggtypes(self, snapshot_mo):
        assert snapshot_mo.dimension("Diagnosis").dtype.aggtype(
            "Low-level Diagnosis") is AggregationType.CONSTANT
        assert snapshot_mo.dimension("Age").dtype.aggtype("Age") is \
            AggregationType.SUM
        assert snapshot_mo.dimension("DOB").dtype.aggtype("Day") is \
            AggregationType.AVERAGE


class TestExample4Categories:
    """Example 4: the category extensions and the ⊤ value."""

    def test_members(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        assert {v.sid for v in diag.category("Low-level Diagnosis")} == \
            {3, 5, 6}
        assert {v.sid for v in diag.category("Diagnosis Family")} == \
            {4, 7, 8, 9, 10}
        assert {v.sid for v in diag.category("Diagnosis Group")} == {11, 12}

    def test_top_contains_everything(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        for i in range(3, 13):
            assert diag.leq(diagnosis_value(i), diag.top_value)

    def test_order_follows_grouping_table(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        assert diag.leq(diagnosis_value(5), diagnosis_value(4))
        assert diag.leq(diagnosis_value(3), diagnosis_value(7))
        assert diag.leq(diagnosis_value(9), diagnosis_value(11))


class TestExample5Subdimension:
    """Example 5: the subdimension retaining only Diagnosis Group
    and ⊤."""

    def test_subdimension(self, snapshot_mo):
        sub = snapshot_mo.dimension("Diagnosis").subdimension(
            ["Diagnosis Group"])
        non_top = {v.sid for v in sub.values() if not v.is_top}
        assert non_top == {11, 12}


class TestExample6Representations:
    """Example 6: diagnosis values have Code and Text representations
    (per Table 1; the running text's Code(3)='O24' is a known typo —
    Table 1 assigns O24 to value 4)."""

    def test_code_and_text(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        code = diag.representation("Low-level Diagnosis", "Code")
        text = diag.representation("Low-level Diagnosis", "Text")
        assert code.of(diagnosis_value(3)) == "P11"
        assert text.of(diagnosis_value(3)) == "Diabetes, pregnancy"

    def test_code_is_alternate_key(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        code = diag.representation("Diagnosis Family", "Code")
        assert code.value_of("E10") == diagnosis_value(9)


class TestExample7FactDimensionRelation:
    """Example 7: R = {(1,9), (2,3), (2,5), (2,8), (2,9)}, with fact 1
    related at Diagnosis Family granularity."""

    def test_pairs(self, snapshot_mo):
        pairs = {(f.fid, v.sid)
                 for f, v in snapshot_mo.relation("Diagnosis").pairs()}
        assert pairs == {(1, 9), (2, 3), (2, 5), (2, 8), (2, 9)}

    def test_mixed_granularity(self, snapshot_mo):
        diag = snapshot_mo.dimension("Diagnosis")
        assert diag.category_name_of(diagnosis_value(9)) == \
            "Diagnosis Family"
        assert diag.category_name_of(diagnosis_value(5)) == \
            "Low-level Diagnosis"


class TestExample9TemporalAnnotations:
    """Example 9's four kinds of timestamped statements."""

    def test_fact_dimension_time(self, valid_time_mo):
        """(2,3) ∈_[23/03/75 - 24/12/75] R."""
        time = valid_time_mo.relation("Diagnosis").pair_time(
            patient_fact(2), diagnosis_value(3))
        assert time == TimeSet.interval(day(1975, 3, 23), day(1975, 12, 24))

    def test_category_membership_time(self, valid_time_mo):
        """10 ∈_[01/01/80 - NOW] Diagnosis Family."""
        diag = valid_time_mo.dimension("Diagnosis")
        time = diag.category("Diagnosis Family").membership_time(
            diagnosis_value(10))
        assert time.min() == day(1980, 1, 1)
        assert day(1995, 1, 1) in time

    def test_partial_order_time(self, valid_time_mo):
        """7 ≤_[01/01/70 - 31/12/79] 3 — i.e. 3 ≤ 7 during the 70s."""
        diag = valid_time_mo.dimension("Diagnosis")
        time = diag.containment_time(diagnosis_value(3), diagnosis_value(7))
        assert time == TimeSet.interval(day(1970, 1, 1), day(1979, 12, 31))

    def test_representation_time(self, valid_time_mo):
        """Code(8) =_Tv D1.  (Example 9's prose writes 01/01/70 but
        Table 1's row for diagnosis 8 starts 01/10/70; Table 1 is
        authoritative.)"""
        diag = valid_time_mo.dimension("Diagnosis")
        code = diag.representation("Diagnosis Family", "Code")
        assert code.assignment_time(diagnosis_value(8), "D1") == \
            TimeSet.interval(day(1970, 10, 1), day(1979, 12, 31))


class TestExample10CrossChangeAnalysis:
    """Example 10: 8 ≤_[01/01/80 - NOW] 11, so old-diabetes patients
    count with new-diabetes patients from 1970 to the present."""

    def test_link_time(self, valid_time_mo_ex10):
        diag = valid_time_mo_ex10.dimension("Diagnosis")
        time = diag.containment_time(diagnosis_value(8),
                                     diagnosis_value(11))
        assert time.min() == day(1980, 1, 1)
        assert day(1979, 6, 1) not in time

    def test_both_patients_counted(self, valid_time_mo_ex10):
        rel = valid_time_mo_ex10.relation("Diagnosis")
        diag = valid_time_mo_ex10.dimension("Diagnosis")
        counted = rel.facts_characterized_by(diagnosis_value(11), diag)
        assert {f.fid for f in counted} == {1, 2}

    def test_without_link_patient2_still_counts_via_9(self, valid_time_mo):
        rel = valid_time_mo.relation("Diagnosis")
        diag = valid_time_mo.dimension("Diagnosis")
        counted = rel.facts_characterized_by(diagnosis_value(11), diag)
        assert {f.fid for f in counted} == {1, 2}
        # but the old-diagnosis period is NOT covered without the link:
        time = rel.characterization_time(patient_fact(2),
                                         diagnosis_value(11), diag)
        assert time.min() == day(1982, 1, 1)

    def test_with_link_old_period_covered(self, valid_time_mo_ex10):
        rel = valid_time_mo_ex10.relation("Diagnosis")
        diag = valid_time_mo_ex10.dimension("Diagnosis")
        time = rel.characterization_time(patient_fact(2),
                                         diagnosis_value(11), diag)
        assert time.min() == day(1980, 1, 1)


class TestExample11HierarchyProperties:
    """Example 11 is covered in tests/core/test_properties.py; this
    re-asserts the headline claims on the shared fixtures."""

    def test_claims(self, snapshot_mo):
        from repro.core.properties import (
            hierarchy_is_partitioning,
            hierarchy_is_strict,
        )

        residence = snapshot_mo.dimension("Residence")
        assert hierarchy_is_strict(residence)
        assert hierarchy_is_partitioning(residence)
        assert not hierarchy_is_strict(snapshot_mo.dimension("Diagnosis"))


class TestExample12AggregateFormation:
    """Example 12, end to end, with the Figure 3 ranges."""

    def test_full_example(self, snapshot_mo):
        spec = make_result_spec("Result",
                                bands=[Band(0, 2), Band(2, None)])
        agg = aggregate(snapshot_mo, SetCount(),
                        {"Diagnosis": "Diagnosis Group"}, spec)
        assert agg.n == 7  # six restricted dimensions + result
        assert agg.schema.fact_type == "Set-of-Patient"
        r1 = {(frozenset(m.fid for m in f.members), v.sid)
              for f, v in agg.relation("Diagnosis").pairs()}
        r7 = {(frozenset(m.fid for m in f.members), v.sid)
              for f, v in agg.relation("Result").pairs()}
        assert r1 == {(frozenset({1, 2}), 11), (frozenset({2}), 12)}
        assert r7 == {(frozenset({1, 2}), 2), (frozenset({2}), 1)}
        assert validate_closed(agg).ok
