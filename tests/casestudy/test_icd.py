"""Tests for the synthetic ICD-like classification generator."""

import random

import pytest

from repro.casestudy.icd import IcdShape, build_icd_dimension
from repro.core.properties import (
    hierarchy_is_partitioning,
    hierarchy_is_strict,
)
from repro.temporal.chronon import day


def build(shape, seed=0):
    return build_icd_dimension(random.Random(seed), shape)


class TestShape:
    def test_counts_within_bounds(self):
        shape = IcdShape(n_groups=3, families_per_group=(2, 4),
                         lowlevels_per_family=(2, 4))
        icd = build(shape)
        assert len(icd.groups) == 3
        assert 3 * 2 <= len(icd.families) <= 3 * 4
        assert len(icd.families) * 2 <= len(icd.low_levels) <= \
            len(icd.families) * 4

    def test_three_level_hierarchy(self):
        icd = build(IcdShape(n_groups=2, families_per_group=(2, 2),
                             lowlevels_per_family=(2, 2)))
        dim = icd.dimension
        low = icd.low_levels[0]
        group_ancestors = [
            a for a in dim.ancestors(low)
            if not a.is_top and a in dim.category("Diagnosis Group")
        ]
        assert group_ancestors

    def test_deterministic_in_seed(self):
        shape = IcdShape(n_groups=2)
        a = build(shape, seed=42)
        b = build(shape, seed=42)
        assert {v.sid for v in a.low_levels} == {v.sid for v in b.low_levels}


class TestStrictness:
    def test_zero_extra_parents_is_strict(self):
        icd = build(IcdShape(n_groups=2, families_per_group=(2, 3),
                             lowlevels_per_family=(2, 3),
                             extra_parent_prob=0.0))
        assert hierarchy_is_strict(icd.dimension)
        assert hierarchy_is_partitioning(icd.dimension)

    def test_extra_parents_make_non_strict(self):
        icd = build(IcdShape(n_groups=2, families_per_group=(3, 4),
                             lowlevels_per_family=(3, 4),
                             extra_parent_prob=1.0))
        assert not hierarchy_is_strict(icd.dimension)


class TestTwoEras:
    def test_era_membership(self):
        icd = build(IcdShape(n_groups=2, families_per_group=(2, 2),
                             lowlevels_per_family=(2, 2), two_eras=True))
        dim = icd.dimension
        old, new = icd.low_levels_by_era
        assert old and new
        t75, t85 = day(1975, 1, 1), day(1985, 1, 1)
        assert all(t75 in dim.existence_time(v) for v in old)
        assert all(t75 not in dim.existence_time(v) for v in new)
        assert all(t85 in dim.existence_time(v) for v in new)

    def test_cross_era_links(self):
        icd = build(IcdShape(n_groups=2, families_per_group=(2, 2),
                             lowlevels_per_family=(2, 2), two_eras=True))
        dim = icd.dimension
        old_groups = [g for g in icd.groups
                      if day(1975, 1, 1) in dim.existence_time(g)]
        for old in old_groups:
            parents = dim.order.parents(old)
            assert parents, "old group missing its cross-era link"
            (new,) = parents
            assert dim.leq(old, new, at=day(1985, 1, 1))
            assert not dim.leq(old, new, at=day(1975, 1, 1))
