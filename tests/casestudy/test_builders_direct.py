"""Direct tests for the individual case-study dimension builders."""

from repro.casestudy.build import (
    age_dimension,
    dob_dimension,
    name_dimension,
    ssn_dimension,
)
from repro.core.aggtypes import AggregationType
from repro.core.values import DimensionValue
from repro.temporal.chronon import day


class TestDobDimension:
    def test_both_hierarchies_populated(self):
        dim = dob_dimension([day(1969, 5, 25)])
        value = DimensionValue(sid=day(1969, 5, 25))
        parents = {p.label for p in dim.order.parents(value)}
        assert parents == {"1969-W21", "1969-05"}

    def test_shared_ancestors_deduplicated(self):
        dim = dob_dimension([day(1969, 5, 25), day(1969, 6, 1)])
        assert len(dim.category("Year")) == 1
        assert len(dim.category("Decade")) == 1

    def test_bottom_is_ordinal(self):
        dim = dob_dimension([day(1969, 5, 25)])
        assert dim.dtype.bottom.aggtype is AggregationType.AVERAGE


class TestAgeDimension:
    def test_bands_cover_values(self):
        dim = age_dimension([29, 48])
        for age in (29, 48):
            parents = dim.order.parents(DimensionValue(age))
            assert len(parents) == 2  # one five-year + one ten-year band

    def test_additive(self):
        assert age_dimension([29]).dtype.bottom.aggtype is \
            AggregationType.SUM


class TestSimpleDimensions:
    def test_name_values(self):
        dim = name_dimension()
        assert DimensionValue("John Doe") in dim
        assert DimensionValue("Jane Doe") in dim

    def test_ssn_values(self):
        dim = ssn_dimension()
        assert DimensionValue("12345678") in dim
        assert dim.dtype.bottom_name == "SSN"
