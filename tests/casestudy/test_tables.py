"""Tests for the verbatim Table 1 data."""

from repro.casestudy import tables


class TestTable1Verbatim:
    def test_patient_rows(self):
        assert len(tables.PATIENT_ROWS) == 2
        john, jane = tables.PATIENT_ROWS
        assert (john.id, john.name, john.ssn, john.date_of_birth) == \
            (1, "John Doe", "12345678", "25/05/69")
        assert (jane.id, jane.name, jane.ssn, jane.date_of_birth) == \
            (2, "Jane Doe", "87654321", "20/03/50")

    def test_has_rows(self):
        assert len(tables.HAS_ROWS) == 5
        assert (1, 9, "01/01/89", "NOW", "Primary") == tuple(
            getattr(tables.HAS_ROWS[0], a)
            for a in ("patient_id", "diagnosis_id", "valid_from",
                      "valid_to", "type"))
        patient2 = [r for r in tables.HAS_ROWS if r.patient_id == 2]
        assert {r.diagnosis_id for r in patient2} == {3, 8, 5, 9}

    def test_diagnosis_rows(self):
        assert len(tables.DIAGNOSIS_ROWS) == 10
        by_id = {r.id: r for r in tables.DIAGNOSIS_ROWS}
        assert by_id[8].code == "D1" and by_id[8].text == "Diabetes"
        assert by_id[11].code == "E1" and by_id[11].text == "Diabetes"
        assert by_id[9].code == "E10"
        assert by_id[3].valid_to == "31/12/79"
        assert by_id[4].valid_to == "NOW"

    def test_grouping_rows(self):
        assert len(tables.GROUPING_ROWS) == 9
        who = {(r.parent_id, r.child_id)
               for r in tables.GROUPING_ROWS if r.type == "WHO"}
        user = {(r.parent_id, r.child_id)
                for r in tables.GROUPING_ROWS if r.type == "User-defined"}
        assert who == {(4, 5), (4, 6), (7, 3), (11, 9), (11, 10), (12, 4)}
        assert user == {(8, 3), (9, 5), (10, 6)}

    def test_category_assignment_of_example_4(self):
        """Example 4: LLD = {3,5,6}, Family = {4,7,8,9,10},
        Group = {11,12}."""
        assert tables.LOW_LEVEL_IDS == (3, 5, 6)
        assert tables.FAMILY_IDS == (4, 7, 8, 9, 10)
        assert tables.GROUP_IDS == (11, 12)
        assert tables.CATEGORY_OF_DIAGNOSIS[5] == "Low-level Diagnosis"
        assert tables.CATEGORY_OF_DIAGNOSIS[11] == "Diagnosis Group"

    def test_example_10_link(self):
        link = tables.EXAMPLE_10_LINK
        assert (link.parent_id, link.child_id) == (11, 8)
        assert link.valid_from == "01/01/80" and link.valid_to == "NOW"

    def test_synthesized_rows_flagged(self):
        assert all(r.synthesized for r in tables.AREA_ROWS)
        assert all(r.synthesized for r in tables.LIVES_IN_ROWS)
        # each patient has a residence history
        assert {r.patient_id for r in tables.LIVES_IN_ROWS} == {1, 2}
