"""Tests for the case-study MO builder."""

import pytest

from repro.algebra import validate_closed
from repro.casestudy import (
    DEFAULT_REFERENCE,
    case_study_mo,
    diagnosis_dimension,
    diagnosis_value,
    patient_fact,
    residence_dimension,
)
from repro.core.mo import TimeKind
from repro.core.values import DimensionValue
from repro.temporal.chronon import day


class TestCaseStudyMO:
    def test_snapshot_valid(self, snapshot_mo):
        snapshot_mo.validate()
        assert snapshot_mo.kind is TimeKind.SNAPSHOT
        assert validate_closed(snapshot_mo).ok

    def test_temporal_valid(self, valid_time_mo):
        valid_time_mo.validate()
        assert valid_time_mo.kind is TimeKind.VALID
        assert validate_closed(valid_time_mo).ok

    def test_ages_derived_from_dob(self, snapshot_mo):
        ages = {
            f.fid: next(iter(
                snapshot_mo.relation("Age").values_of(f))).sid
            for f in snapshot_mo.facts
        }
        # at the default reference (1 Jan 1999): John (b. 25/05/69) is
        # 29, Jane (b. 20/03/50) is 48
        assert ages == {1: 29, 2: 48}

    def test_reference_shifts_ages(self):
        mo = case_study_mo(temporal=False, reference=day(2020, 6, 1))
        ages = {
            f.fid: next(iter(mo.relation("Age").values_of(f))).sid
            for f in mo.facts
        }
        assert ages == {1: 51, 2: 70}

    def test_age_groups_linked(self, snapshot_mo):
        age = snapshot_mo.dimension("Age")
        v29 = DimensionValue(29)
        labels = {p.label for p in age.order.parents(v29)}
        assert labels == {"25-29", "20-29"}

    def test_dob_rollups(self, snapshot_mo):
        dob = snapshot_mo.dimension("DOB")
        john_dob = next(iter(
            snapshot_mo.relation("DOB").values_of(patient_fact(1))))
        ancestors = {a.label for a in dob.ancestors(john_dob)
                     if a.label and not a.is_top}
        assert "1969" in ancestors
        assert "1960s" in ancestors
        assert "1969-Q2" in ancestors

    def test_residence_relation_temporal(self, valid_time_mo):
        rel = valid_time_mo.relation("Residence")
        values = rel.values_of(patient_fact(2))
        assert {v.sid for v in values} == {102, 103}
        time103 = rel.pair_time(patient_fact(2), DimensionValue(103))
        assert day(1975, 1, 1) in time103
        assert day(1985, 1, 1) not in time103


class TestDiagnosisDimension:
    def test_snapshot_collapses_time(self):
        diag = diagnosis_dimension(temporal=False)
        assert diag.existence_time(diagnosis_value(3)).is_always()

    def test_temporal_membership(self):
        diag = diagnosis_dimension(temporal=True)
        time = diag.existence_time(diagnosis_value(3))
        assert day(1975, 1, 1) in time
        assert day(1985, 1, 1) not in time

    def test_example10_flag(self):
        without = diagnosis_dimension(temporal=True)
        with_link = diagnosis_dimension(temporal=True,
                                        include_example10_link=True)
        v8, v11 = diagnosis_value(8), diagnosis_value(11)
        assert not without.leq(v8, v11)
        assert with_link.leq(v8, v11, at=day(1985, 1, 1))

    def test_representations_per_category(self):
        diag = diagnosis_dimension(temporal=False)
        for category in ("Low-level Diagnosis", "Diagnosis Family",
                         "Diagnosis Group"):
            reps = diag.representations_of(category)
            assert set(reps) == {"Code", "Text"}


class TestResidenceDimension:
    def test_hierarchy(self):
        res = residence_dimension()
        area = DimensionValue(101)
        county = DimensionValue(201)
        region = DimensionValue(301)
        assert res.leq(area, county) and res.leq(county, region)

    def test_names(self):
        res = residence_dimension()
        name = res.representation("Region", "Name")
        assert name.of(DimensionValue(301)) == "Jutland"
