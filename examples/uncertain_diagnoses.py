#!/usr/bin/env python3
"""Uncertain diagnoses (paper §3.3).

"A physician may be only 90% certain when diagnosing a patient."  This
example attaches probabilities to fact-dimension pairs and to the
user-defined part of the diagnosis hierarchy, then runs the
probabilistic analyses: expected counts per diagnosis group, the exact
count distribution for verification, and a minimum-certainty selection.
"""

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.core.values import DimensionValue
from repro.uncertainty import (
    certain_core,
    expected_count,
    is_certain,
    possible_worlds_count,
    probabilistic_rollup,
    select_with_certainty,
)


def main() -> None:
    mo = case_study_mo(temporal=False)
    print(f"Base MO certain? {is_certain(mo)}")

    # a physician is 90% sure patient 1 also has non-insulin-dependent
    # diabetes (10), and 70% sure patient 2's pregnancy diabetes (5)
    # diagnosis was correct
    uncertain = case_study_mo(temporal=False)
    uncertain.relate(patient_fact(1), "Diagnosis", diagnosis_value(10),
                     prob=0.9)
    print(f"After the 90% diagnosis, certain? {is_certain(uncertain)}")

    print("\nExpected patients per diagnosis group:")
    for value, expected in probabilistic_rollup(uncertain, "Diagnosis",
                                                "Diagnosis Group"):
        print(f"  {value.label or value.sid}: {expected:.2f}")

    group11 = diagnosis_value(11)
    print(f"\nExpected count under group E1: "
          f"{expected_count(uncertain, 'Diagnosis', group11):.2f}")
    distribution = possible_worlds_count(uncertain, "Diagnosis", group11)
    print("Exact distribution of the E1 count "
          "(independent-worlds semantics):")
    for count, p in sorted(distribution.items()):
        print(f"  P(count = {count}) = {p:.3f}")
    mean = sum(c * p for c, p in distribution.items())
    print(f"  mean = {mean:.3f} (matches the expected count)")

    # min-certainty selection: who has E11 (value 10) with >= 95%?
    confident = select_with_certainty(uncertain, "Diagnosis",
                                      diagnosis_value(10), 0.95)
    print(f"\nPatients with E11 at >=95% certainty: "
          f"{sorted(f.fid for f in confident.facts)}")
    somewhat = select_with_certainty(uncertain, "Diagnosis",
                                     diagnosis_value(10), 0.5)
    print(f"Patients with E11 at >=50% certainty: "
          f"{sorted(f.fid for f in somewhat.facts)}")

    # drop sub-certain data entirely: the certain core degenerates to
    # the basic model
    core = certain_core(uncertain, threshold=1.0)
    print(f"\nCertain core is certain? {is_certain(core)}; "
          f"facts preserved: {len(core.facts)}")


if __name__ == "__main__":
    main()
