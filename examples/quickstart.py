#!/usr/bin/env python3
"""Quickstart: build a small MO, run the fundamental operators.

This walks the public API end to end on the paper's case study:
construct the "Patient" MO, select, project, and aggregate, and print
the results.  Run with ``python examples/quickstart.py``.
"""

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    project,
    select,
    validate_closed,
)
from repro.casestudy import case_study_mo, diagnosis_value
from repro.core.helpers import Band, make_result_spec


def main() -> None:
    # 1. The case study MO: 2 patients, 6 dimensions (Example 8).
    mo = case_study_mo(temporal=False)
    mo.validate()
    print(f"Built {mo!r}")
    print(f"Dimensions: {', '.join(mo.dimension_names)}")

    # 2. Selection: patients with a diagnosis in the "Diabetes" group
    #    (value 11, code E1).  Characterization follows the dimension
    #    hierarchy, so patients diagnosed at any granularity qualify.
    diabetics = select(mo, characterized_by("Diagnosis",
                                            diagnosis_value(11)))
    print(f"\nPatients characterized by diagnosis group E1: "
          f"{sorted(f.fid for f in diabetics.facts)}")

    # 3. Projection keeps chosen dimensions; facts keep their identity.
    slim = project(mo, ["Diagnosis", "Age"])
    print(f"After projection: {slim!r}")

    # 4. Aggregate formation (Example 12): patients per diagnosis group,
    #    with the Figure 3 result ranges "0-1" and ">1".
    result = make_result_spec("Result", bands=[Band(0, 2), Band(2, None)])
    counts = aggregate(mo, SetCount(), {"Diagnosis": "Diagnosis Group"},
                       result)
    print("\nPatients per diagnosis group:")
    for fact, value in sorted(counts.relation("Diagnosis").pairs(), key=repr):
        members = sorted(m.fid for m in fact.members)
        count = next(iter(counts.relation("Result").values_of(fact))).sid
        print(f"  group {value.label or value.sid}: patients {members} "
              f"-> count {count}")

    # 5. Every operator result is a well-formed MO (Theorem 1).
    report = validate_closed(counts)
    print(f"\nClosure check: {'OK' if report.ok else report.problems}")


if __name__ == "__main__":
    main()
