#!/usr/bin/env python3
"""The paper's clinical scenario, end to end.

"The goal is to investigate whether some diagnoses occur more often in
some areas than in others" (§2.1).  This example renders the case
study's tables and schema, then answers the motivating question —
diagnosis groups by region — and shows how the aggregation-type
mechanism blocks an unsafe follow-up aggregation.
"""

import warnings

from repro.algebra import (
    SetCount,
    Sum,
    aggregate,
    sql_aggregation,
    summarizability_of,
)
from repro.casestudy import case_study_mo
from repro.core.errors import AggregationTypeError, SummarizabilityWarning
from repro.core.helpers import make_result_spec
from repro.report import render_figure2, render_table1


def main() -> None:
    print(render_table1())
    print()

    mo = case_study_mo(temporal=False)
    print(render_figure2(mo))
    print()

    # diagnosis groups × regions: the paper's motivating analysis
    rows = sql_aggregation(
        mo, SetCount(),
        {"Diagnosis": "Diagnosis Group", "Residence": "Region"},
        strict_types=False,
    )
    print("Patients per (diagnosis group, region):")
    for row in rows:
        print(f"  {row}")

    # the same at county level
    rows = sql_aggregation(
        mo, SetCount(),
        {"Diagnosis": "Diagnosis Group", "Residence": "County"},
        strict_types=False,
    )
    print("\nPatients per (diagnosis group, county):")
    for row in rows:
        print(f"  {row}")

    # the summarizability verdict the operator applies internally
    verdict = summarizability_of(
        mo, SetCount(), {"Diagnosis": "Diagnosis Group"})
    print(f"\nSummarizability at Diagnosis Group: {verdict.explain()}")

    # an unsafe follow-up: summing the count results of a non-
    # summarizable aggregation is refused in strict mode
    result = make_result_spec("Count")
    counts = aggregate(mo, SetCount(), {"Diagnosis": "Diagnosis Group"},
                       result, strict_types=False)
    print(f"Result dimension ⊥ aggregation type: "
          f"{counts.dimension('Count').dtype.bottom.aggtype.symbol}")
    try:
        aggregate(counts, Sum("Count"), {}, make_result_spec("Total"))
    except AggregationTypeError as exc:
        print(f"Strict mode refuses SUM over the counts: {exc}")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        aggregate(counts, Sum("Count"), {}, make_result_spec("Total"),
                  strict_types=False)
        if caught and issubclass(caught[0].category, SummarizabilityWarning):
            print("Permissive mode proceeds but warns: "
                  f"{caught[0].message}")


if __name__ == "__main__":
    main()
