#!/usr/bin/env python3
"""Operating the model as a small warehouse.

A day in the life of a deployment: plan which aggregates to
materialize for an expected query mix (summarizability decides), serve
the queries from the store, and watch a measure evolve over time with
the temporal series analytics.
"""

from repro.algebra import SetCount
from repro.casestudy.icd import IcdShape
from repro.engine import (
    PreAggregateStore,
    Query,
    apply_recommendations,
    change_points,
    group_count_series,
    recommend_materializations,
    series_table,
)
from repro.report import render_table
from repro.temporal.chronon import day
from repro.workloads import ClinicalConfig, generate_clinical


def main() -> None:
    workload = generate_clinical(ClinicalConfig(
        n_patients=500,
        icd=IcdShape(n_groups=4, families_per_group=(3, 5),
                     lowlevels_per_family=(3, 5)),
        seed=99))
    mo = workload.mo

    # 1. plan materializations for the expected query mix
    expected = [
        {"Diagnosis": "Low-level Diagnosis"},
        {"Diagnosis": "Diagnosis Family"},
        {"Diagnosis": "Diagnosis Group"},
        {"Residence": "County"},
        {"Residence": "Region"},
    ]
    recommendations = recommend_materializations(mo, expected, budget=2)
    print("Materialization plan:")
    for rec in recommendations:
        grouping = ", ".join(f"{d}@{c}" for d, c in rec.grouping)
        print(f"  [{grouping}] serves {len(rec.serves)} grouping(s): "
              f"{rec.reason}")

    store = PreAggregateStore(mo)
    count = apply_recommendations(store, recommendations)
    print(f"\nMaterialized {count} aggregates; querying through them:")
    for dimension, category in (("Diagnosis", "Diagnosis Group"),
                                ("Residence", "Region")):
        rows = Query(mo, store=store).rollup(dimension, category).counts()
        rendered = {
            (g[dimension].label or g[dimension].sid): v for g, v in rows
        }
        print(f"  {dimension} @ {category}: {rendered}")

    # 2. temporal series over a two-era workload
    temporal = generate_clinical(ClinicalConfig(
        n_patients=200, temporal=True,
        icd=IcdShape(n_groups=2, families_per_group=(2, 3),
                     lowlevels_per_family=(2, 3), two_eras=True),
        seed=7))
    points = change_points(temporal.mo, "Diagnosis")
    print(f"\nThe temporal workload has {len(points)} diagnosis change "
          f"points; sampling group counts at five instants:")
    at = [day(y, 6, 1) for y in (1972, 1978, 1982, 1990, 1998)]
    series = group_count_series(temporal.mo, "Diagnosis",
                                "Diagnosis Group", at)
    rows = series_table(series, at)
    print(render_table(rows[0], rows[1:],
                       title="Patients per diagnosis group over time"))


if __name__ == "__main__":
    main()
