#!/usr/bin/env python3
"""The introduction's retail scenario on the engine layer.

Products are sold to customers at certain times in certain amounts at
certain prices; the model treats the measures (Amount, Price) as
dimensions too.  This example uses the high-level query API, then shows
pre-aggregation: category-level revenue is materialized once and safely
combined into department-level revenue because the product hierarchy is
strict and partitioning — the situation where summarizability permits
reuse.
"""

import time

from repro.algebra import Sum, SumProduct
from repro.engine import PreAggregateStore, Query
from repro.workloads import RetailConfig, generate_retail


def main() -> None:
    workload = generate_retail(RetailConfig(n_purchases=2000, seed=42))
    mo = workload.mo
    print(f"Generated {len(mo.facts)} purchases")

    # fluent queries — true revenue is amount × price per purchase
    rows = Query(mo).rollup("Product", "Department").execute(
        SumProduct("Amount", "Price"))
    print("\nRevenue (amount × price) per department:")
    for group, value in rows:
        label = group["Product"].label or group["Product"].sid
        print(f"  {label}: {value:,.0f}")

    city = workload.cities[0]
    rows = (Query(mo)
            .dice("Customer", city)
            .rollup("Product", "Department")
            .counts())
    print(f"\nPurchases per department in {city.label}:")
    for group, value in rows:
        label = group["Product"].label or group["Product"].sid
        print(f"  {label}: {value}")

    # pre-aggregation: materialize at Category, answer Department
    store = PreAggregateStore(mo)
    revenue = Sum("Price")
    t0 = time.perf_counter()
    stored = store.materialize(revenue, {"Product": "Category"})
    t_materialize = time.perf_counter() - t0
    print(f"\nMaterialized {len(stored.results)} category revenues "
          f"({stored.summarizability.explain()})")

    t0 = time.perf_counter()
    combined = store.roll_up(revenue, {"Product": "Category"},
                             {"Product": "Department"})
    t_reuse = time.perf_counter() - t0
    t0 = time.perf_counter()
    direct = store.compute_from_base(revenue, {"Product": "Department"})
    t_direct = time.perf_counter() - t0

    same = {k[0].sid: v for k, v in combined.items()} == \
        {k[0].sid: v for k, v in direct.items()}
    print(f"Department revenue via reuse == direct: {same}")
    print(f"  materialize: {t_materialize * 1e3:.2f} ms, "
          f"reuse: {t_reuse * 1e3:.2f} ms, direct: {t_direct * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
