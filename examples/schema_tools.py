#!/usr/bin/env python3
"""Interoperability and analysis tooling around the model.

Three things a deployment needs beyond the algebra itself:

* exporting an MO to a relational **star/snowflake schema** — with
  bridge tables, because the model's fact-dimension relations are
  many-to-many and mixed-granularity — and reading it back losslessly;
* **DOT graphs** of the schema lattices (the paper's future-work idea
  of driving a UI from the lattice structure);
* **granularity-aware grouping** that reports imprecisely recorded
  facts instead of silently dropping them.
"""

from repro.casestudy import case_study_mo
from repro.engine import group_with_imprecision, weighted_distribution
from repro.relational import export_star, import_star
from repro.report import dimension_type_dot, schema_dot


def main() -> None:
    mo = case_study_mo(temporal=True)

    # 1. star/snowflake export
    star = export_star(mo)
    print("Star export of the 'Patient' MO:")
    for table in star.table_names():
        size = {
            "fact": len(star.fact_table),
        }.get(table)
        if size is None:
            kind, _, dim = table.partition("_")
            size = len({
                "dim": star.dimension_tables,
                "hier": star.hierarchy_tables,
                "bridge": star.bridge_tables,
            }[kind][dim])
        print(f"  {table}: {size} rows")
    back = import_star(star, mo)
    back.validate()
    same = all(
        {(f.fid, v.sid) for f, v in back.relation(n).pairs()}
        == {(f.fid, v.sid) for f, v in mo.relation(n).pairs()}
        for n in mo.dimension_names
    )
    print(f"  round-trip lossless: {same}")

    # 2. DOT graphs
    print("\nDOT for the Diagnosis lattice "
          "(render with `dot -Tsvg`):")
    print(dimension_type_dot(mo.dimension("Diagnosis").dtype))
    print(f"\nFull schema DOT: "
          f"{len(schema_dot(mo).splitlines())} lines (not shown)")

    # 3. imprecision-aware grouping
    print("\nGrouping at Low-level Diagnosis without dropping "
          "imprecise facts:")
    grouped = group_with_imprecision(mo, "Diagnosis",
                                     "Low-level Diagnosis")
    for label, count in grouped.counts().items():
        print(f"  {label}: {count}")
    print("\nUniformly distributing the imprecise facts instead:")
    for value, count in sorted(
            weighted_distribution(mo, "Diagnosis",
                                  "Low-level Diagnosis").items(),
            key=lambda item: repr(item[0])):
        if count:
            print(f"  {value.label or value.sid}: {count:g}")


if __name__ == "__main__":
    main()
