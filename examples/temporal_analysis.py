#!/usr/bin/env python3
"""Temporal analysis across a classification change (paper §3.2, §4.2).

On 1 January 1980 the case study's disease classification is replaced
(new codes, new hierarchy).  This example shows:

* valid-timeslices of the "Patient" MO before and after the change;
* Example 10's cross-change analysis — counting patients under the new
  "Diabetes" group together with those diagnosed under the old one;
* a bitemporal versioned store answering "what did the database say
  on date X about date Y" (accountability).
"""

from repro.casestudy import case_study_mo, diagnosis_value, patient_fact
from repro.temporal.chronon import day, format_day
from repro.temporal.timeslice import valid_timeslice
from repro.temporal.versioned import VersionedMOStore


def show_slice(mo, t) -> None:
    snap = valid_timeslice(mo, t)
    rel = snap.relation("Diagnosis")
    print(f"  at {format_day(t)}:")
    for fact, value in sorted(rel.pairs(), key=repr):
        label = value.label or value.sid
        print(f"    patient {fact.fid} -> {label}")


def main() -> None:
    mo = case_study_mo(temporal=True, include_example10_link=True)

    print("Valid-timeslices of the patient-diagnosis relation:")
    for t in (day(1975, 6, 1), day(1983, 6, 1), day(1995, 6, 1)):
        show_slice(mo, t)

    # Example 10: 8 ≤ 11 from 1980 on, so patients diagnosed with the
    # old "Diabetes" (8) count under the new "Diabetes" group (11)
    # when analyzing 1970-present data from today's viewpoint.
    rel = mo.relation("Diagnosis")
    dim = mo.dimension("Diagnosis")
    print("\nExample 10 — when is each patient characterized by the new "
          "'Diabetes' group (11/E1)?")
    for pid in (1, 2):
        time = rel.characterization_time(
            patient_fact(pid), diagnosis_value(11), dim)
        print(f"  patient {pid}: {time!r}")
    count = len(rel.facts_characterized_by(diagnosis_value(11), dim))
    print(f"  distinct patients counted under E1 across the change: {count}")

    # transaction time: the database's own history
    print("\nBitemporal store — late-arriving correction:")
    store = VersionedMOStore()
    v1 = case_study_mo(temporal=True)  # without the analysis link
    store.commit(v1, at=day(1990, 1, 1))
    v2 = case_study_mo(temporal=True, include_example10_link=True)
    store.commit(v2, at=day(1992, 1, 1))
    for tt in (day(1991, 6, 1), day(1995, 6, 1)):
        state = store.transaction_timeslice(tt)
        d = state.dimension("Diagnosis")
        linked = d.leq(diagnosis_value(8), diagnosis_value(11),
                       at=day(1985, 1, 1))
        print(f"  as of {format_day(tt)}, the database "
              f"{'did' if linked else 'did not'} record 8 ≤ 11 during 1985")
    snap = store.snapshot(day(1995, 6, 1), day(1975, 6, 1))
    pairs = sorted((f.fid, v.label or str(v.sid))
                   for f, v in snap.relation("Diagnosis").pairs())
    print(f"  DB@1995 about reality@1975: {pairs}")


if __name__ == "__main__":
    main()
