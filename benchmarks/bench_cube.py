"""Cube materialization and greedy view selection over the category
lattice (Gray et al.'s cube generalized to the extended model).

Materializes the full Diagnosis × Residence cuboid lattice of a strict
clinical workload, prints the cuboid sizes, and runs the greedy
view-selection heuristic under a small budget — summarizability decides
which cuboids can answer which, so the same bench on the non-strict
workload shows fewer reuse edges.
"""

from repro.algebra import SetCount
from repro.engine import CubeBuilder, greedy_view_selection
from repro.report import render_table


def test_cube_lattice_and_greedy_selection(benchmark, strict_clinical_1k,
                                           clinical_1k):
    builder = CubeBuilder(strict_clinical_1k.mo,
                          dimensions=["Diagnosis", "Residence"])
    cuboids = benchmark(builder.materialize_all)

    rows = [[" × ".join(c.key), c.size,
             "yes" if c.summarizable else "no"]
            for c in sorted(cuboids, key=lambda c: -c.size)]
    print()
    print(render_table(
        ["cuboid (grouping categories)", "groups", "summarizable"],
        rows, title="Cuboid lattice, strict 1000-patient workload"))

    # the apex cuboid (⊤ × ⊤) has exactly one group
    apex = min(cuboids, key=lambda c: c.size)
    assert apex.size == 1
    # finer cuboids never have fewer groups than coarser ones they cover
    for fine in cuboids:
        for coarse in cuboids:
            if builder.is_coarser_or_equal(fine.key, coarse.key):
                assert fine.size >= coarse.size

    selected = greedy_view_selection(builder, budget=3)
    assert 0 < len(selected) <= 3
    print("\nGreedy view selection (budget 3) picked:")
    for cuboid in selected:
        print(f"  {' × '.join(cuboid.key)}  ({cuboid.size} groups)")

    # ablation: the non-strict workload loses reuse edges
    non_strict = CubeBuilder(clinical_1k.mo, dimensions=["Diagnosis"])
    fine_key = ("Diagnosis Family",)
    strict_builder = CubeBuilder(strict_clinical_1k.mo,
                                 dimensions=["Diagnosis"])
    strict_edges = len(strict_builder.answerable_from(fine_key))
    non_strict_edges = len(non_strict.answerable_from(fine_key))
    assert non_strict_edges == 1 < strict_edges
    print(f"\nReuse edges from the Family cuboid: {strict_edges} on the "
          f"strict hierarchy vs {non_strict_edges} (itself only) on the "
          f"non-strict one — non-summarizable cuboids cannot serve "
          f"coarser queries.")
