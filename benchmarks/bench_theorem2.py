"""Theorem 2 — the algebra is at least as powerful as Klug's relational
algebra with aggregation.

Runs every Klug operator both relationally and through the MO
simulation over a battery of relations, prints the per-operator
equivalence table, and asserts 100% agreement.  The benchmark measures
one full battery.
"""

import random

from repro.core.aggtypes import AggregationType
from repro.relational import Relation, TheoremTwoChecker
from repro.report import render_table

AGGTYPES = {a: AggregationType.SUM for a in ("a", "b", "c")}


def battery(seed=0):
    rng = random.Random(seed)

    def rand_rel(attrs, n):
        return Relation(attrs, [
            tuple(rng.randint(-4, 4) for _ in attrs) for _ in range(n)
        ])

    checker = TheoremTwoChecker(aggtypes=AGGTYPES)
    results = []
    for trial in range(5):
        r1 = rand_rel(("a", "b"), rng.randint(1, 10))
        r2 = rand_rel(("a", "b"), rng.randint(0, 10))
        r3 = rand_rel(("c",), rng.randint(1, 4))
        threshold = rng.randint(-4, 4)
        results.extend([
            checker.check_select(r1, lambda row, t=threshold: row["a"] >= t),
            checker.check_project(r1, ["b"]),
            checker.check_rename(r1, {"a": "x"}),
            checker.check_union(r1, r2),
            checker.check_difference(r1, r2),
            checker.check_product(r1, r3),
        ])
        for fn in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            results.append(checker.check_aggregate(r1, ["b"], fn, "a"))
    return results


def test_theorem2_equivalence(benchmark):
    results = benchmark(battery)

    by_op = {}
    for r in results:
        ok, total = by_op.get(r.operator, (0, 0))
        by_op[r.operator] = (ok + int(r.equal), total + 1)

    rows = [[op, f"{ok}/{total}", "OK" if ok == total else "MISMATCH"]
            for op, (ok, total) in sorted(by_op.items())]
    print()
    print(render_table(
        ["Klug operator", "equivalent results", "verdict"], rows,
        title="Theorem 2 — relational vs. multidimensional simulation"))

    failures = [r for r in results if not r.equal]
    assert not failures, [
        (f.operator, sorted(f.relational.rows), sorted(f.simulated.rows))
        for f in failures]
    print(f"\nAll {len(results)} operator instances agree: the MO "
          f"simulation reproduces Klug's algebra exactly.")
