"""Table 2 — the requirements matrix, regenerated and verified.

Asserts the published matrix cell-for-cell, runs the nine live probes
that back this implementation's row, and prints the full table in the
paper's layout.  The benchmark measures one full probe suite run.
"""

from repro.survey import (
    SURVEYED_MODELS,
    Support,
    as_matrix,
    render_rationale,
    render_table2,
    run_all_probes,
)

F, P, N = Support.FULL, Support.PARTIAL, Support.NONE

PAPER_TABLE_2 = {
    "Rafanelli": (F, N, N, F, P, N, N, N, N),
    "Agrawal":   (P, F, P, N, P, N, N, N, N),
    "Gray":      (N, F, P, P, N, N, N, N, N),
    "Kimball":   (N, N, F, P, N, N, P, N, N),
    "Li":        (P, N, F, P, N, N, N, N, N),
    "Gyssens":   (N, F, P, P, N, N, N, N, N),
    "Datta":     (N, F, P, N, P, N, N, N, N),
    "Lehner":    (F, N, N, F, N, N, N, N, N),
}


def test_table2_matches_paper_and_probes_pass(benchmark):
    matrix = as_matrix()
    assert set(matrix) == set(PAPER_TABLE_2)
    for model, row in PAPER_TABLE_2.items():
        assert matrix[model] == row, f"{model} row deviates from the paper"

    results = benchmark(run_all_probes)
    assert all(r.passed for r in results), [
        r.requirement.name for r in results if not r.passed]

    print()
    print(render_table2(include_ours=True, verify=True))
    print()
    print(f"Matrix verified cell-for-cell for {len(SURVEYED_MODELS)} "
          f"surveyed models; all 9 requirement probes PASS on this "
          f"implementation:")
    for r in results:
        print(f"  {r.requirement.number}. {r.requirement.name}: {r.detail}")
    print()
    print(render_rationale())
