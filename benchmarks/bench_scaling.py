"""Scaling sweep (paper §5 future work — efficient implementation).

Sweeps the clinical workload size and measures the aggregate-formation
path naively (operator over the raw MO) versus through the rollup index,
printing the series.  The expected shape: both grow roughly linearly in
the number of patients, with the index a constant factor faster and the
gap widening as hierarchy walks repeat.
"""

import time

from repro.algebra import SetCount, aggregate
from repro.casestudy.icd import IcdShape
from repro.core.helpers import make_result_spec
from repro.engine import RollupIndex
from repro.report import render_table
from repro.workloads import ClinicalConfig, generate_clinical

SIZES = (100, 300, 1000)
GROUPING = {"Diagnosis": "Diagnosis Group"}


def workload(n):
    return generate_clinical(ClinicalConfig(
        n_patients=n,
        icd=IcdShape(n_groups=5, families_per_group=(3, 6),
                     lowlevels_per_family=(3, 6), extra_parent_prob=0.1),
        seed=42,
    ))


def indexed_counts(mo):
    index = RollupIndex(mo)
    return index.group_counts("Diagnosis", "Diagnosis Group")


def test_scaling_naive_vs_indexed(benchmark):
    rows = []
    agreement = True
    for n in SIZES:
        w = workload(n)
        t0 = time.perf_counter()
        agg = aggregate(w.mo, SetCount(), GROUPING, make_result_spec(),
                        strict_types=False)
        t_naive = time.perf_counter() - t0
        t0 = time.perf_counter()
        counts = indexed_counts(w.mo)
        t_indexed = time.perf_counter() - t0

        operator_counts = {}
        for fact in agg.facts:
            for value in agg.relation("Diagnosis").values_of(fact):
                operator_counts[value] = len(fact.members)
        indexed_nonempty = {v: c for v, c in counts.items() if c}
        agreement &= operator_counts == indexed_nonempty
        rows.append([n, f"{t_naive * 1e3:.1f}",
                     f"{t_indexed * 1e3:.1f}",
                     f"{t_naive / max(t_indexed, 1e-9):.1f}x"])
    assert agreement

    # benchmark the indexed path at the top size
    top = workload(SIZES[-1])
    benchmark(indexed_counts, top.mo)

    print()
    print(render_table(
        ["patients", "operator α (ms)", "rollup index (ms)", "speedup"],
        rows, title="Scaling: set-count by Diagnosis Group"))
    print("\nBoth paths agree on every count; the index answers the "
          "same query from materialized characterization maps.")
