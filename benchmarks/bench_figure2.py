"""Figure 2 — the schema of the "Patient" MO: six dimension lattices.

Asserts every category set and order relationship the figure draws, and
prints the rendered lattices.  The benchmark measures the rendering.
"""

from repro.report import render_figure2

#: Figure 2's lattices: dimension → (bottom, {lower: upper} direct edges)
FIGURE_2 = {
    "Diagnosis": ("Low-level Diagnosis",
                  [("Low-level Diagnosis", "Diagnosis Family"),
                   ("Diagnosis Family", "Diagnosis Group")]),
    "DOB": ("Day",
            [("Day", "Week"), ("Day", "Month"), ("Month", "Quarter"),
             ("Quarter", "Year"), ("Year", "Decade")]),
    "Residence": ("Area", [("Area", "County"), ("County", "Region")]),
    "Name": ("Name", []),
    "SSN": ("SSN", []),
    "Age": ("Age",
            [("Age", "Five-year group"), ("Age", "Ten-year group")]),
}


def test_figure2_schema_matches(benchmark, snapshot_mo):
    for name, (bottom, edges) in FIGURE_2.items():
        dtype = snapshot_mo.dimension(name).dtype
        assert dtype.bottom_name == bottom, name
        for lower, upper in edges:
            assert upper in dtype.pred(lower), \
                f"{name}: missing {lower} -> {upper}"
        assert dtype.is_lattice(), f"{name} is not a lattice"

    # the figure's incomparabilities: Week vs Month, the two age groups
    dob = snapshot_mo.dimension("DOB").dtype
    assert not dob.leq("Week", "Month") and not dob.leq("Month", "Week")
    age = snapshot_mo.dimension("Age").dtype
    assert not age.leq("Five-year group", "Ten-year group")

    text = benchmark(render_figure2, snapshot_mo)
    print()
    print(text)
    print()
    print("All six dimension lattices match Figure 2 "
          "(bottoms, direct edges, lattice property, incomparabilities).")
