"""Pre-aggregation ablation: answering the Department-revenue query of
the retail domain from (a) base data and (b) a materialized
Category-level aggregate.

The retail hierarchies are strict and partitioning, so reuse is safe;
the bench verifies the two answers agree and reports the cost of each
path plus the one-off materialization cost.
"""

import time

from repro.algebra import Sum
from repro.engine import PreAggregateStore
from repro.report import render_table

CATEGORY = {"Product": "Category"}
DEPARTMENT = {"Product": "Department"}


def test_preagg_reuse_on_retail(benchmark, retail_2k):
    store = PreAggregateStore(retail_2k.mo)
    revenue = Sum("Price")

    t0 = time.perf_counter()
    stored = store.materialize(revenue, CATEGORY)
    t_materialize = time.perf_counter() - t0
    assert stored.summarizability.summarizable

    t0 = time.perf_counter()
    # a cold store: the honest cost of going back to the base data
    direct = PreAggregateStore(retail_2k.mo).compute_from_base(
        revenue, DEPARTMENT)
    t_direct = time.perf_counter() - t0

    combined = benchmark(store.roll_up, revenue, CATEGORY, DEPARTMENT)
    t0 = time.perf_counter()
    store.roll_up(revenue, CATEGORY, DEPARTMENT)
    t_reuse = time.perf_counter() - t0

    assert {k[0].sid: v for k, v in combined.items()} == \
        {k[0].sid: v for k, v in direct.items()}
    assert t_reuse < t_direct

    rows = [
        ["materialize Category revenue (once)",
         f"{t_materialize * 1e3:.2f}"],
        ["Department revenue from base data", f"{t_direct * 1e3:.2f}"],
        ["Department revenue from stored Categories",
         f"{t_reuse * 1e3:.2f}"],
    ]
    print()
    print(render_table(["path", "time (ms)"], rows,
                       title="Pre-aggregation on the retail workload "
                             f"({len(retail_2k.mo.facts)} purchases)"))
    print(f"\nReuse is {t_direct / max(t_reuse, 1e-9):.0f}x faster than "
          f"recomputation and returns identical revenues for all "
          f"{len(combined)} departments.")
