"""Examples 9-10 — temporal semantics: timeslices across the 1980
classification change and the cross-change count.

Prints the sliced fact-dimension relations per year and the
characterization windows behind Example 10; the benchmark measures one
valid-timeslice of the full case-study MO.
"""

from repro.casestudy import diagnosis_value, patient_fact
from repro.report import render_table
from repro.temporal.chronon import day, format_day
from repro.temporal.timeslice import valid_timeslice


def test_timeslices_and_example10(benchmark, valid_time_mo_ex10):
    mo = valid_time_mo_ex10

    snap = benchmark(valid_timeslice, mo, day(1985, 6, 1))
    snap.validate()

    rows = []
    for year in (1972, 1975, 1981, 1985, 1990, 1995):
        sliced = valid_timeslice(mo, day(year, 6, 1))
        pairs = sorted(
            f"{f.fid}->{v.label or v.sid}"
            for f, v in sliced.relation("Diagnosis").pairs()
            if not v.is_top
        )
        diagnoses = len(sliced.dimension("Diagnosis").values()) - 1
        rows.append([year, diagnoses, ", ".join(pairs) or "(none)"])
    print()
    print(render_table(
        ["year", "valid diagnoses", "patient diagnoses at that instant"],
        rows, title="Valid-timeslices of the case study"))

    # the old classification disappears, the new one appears, at 1980
    s75 = valid_timeslice(mo, day(1975, 6, 1))
    s85 = valid_timeslice(mo, day(1985, 6, 1))
    assert diagnosis_value(3) in s75.dimension("Diagnosis")
    assert diagnosis_value(3) not in s85.dimension("Diagnosis")
    assert diagnosis_value(9) in s85.dimension("Diagnosis")

    # Example 10's cross-change count
    rel, dim = mo.relation("Diagnosis"), mo.dimension("Diagnosis")
    counted = rel.facts_characterized_by(diagnosis_value(11), dim)
    assert {f.fid for f in counted} == {1, 2}
    windows = []
    for pid in (1, 2):
        time = rel.characterization_time(patient_fact(pid),
                                         diagnosis_value(11), dim)
        windows.append([pid, format_day(time.min()),
                        format_day(time.max())])
    assert windows[1][1] == "01/01/80"  # covers the old-code era
    print()
    print(render_table(
        ["patient", "counted under E1 from", "to"],
        windows,
        title="Example 10 — cross-change characterization windows"))
    print("\nBoth patients count under the new 'Diabetes' group across "
          "the 1980 reclassification.")
