"""§3.3 — uncertainty at scale: expected counts versus crisp counts.

Generates a clinical workload where a configurable share of diagnosis
links is sub-certain, computes expected group counts, and checks the
shape the model predicts: expected counts are bounded above by the
crisp counts, degrade monotonically with the share of uncertain links,
and coincide exactly when every probability is 1.
"""

import pytest

from repro.casestudy.icd import IcdShape
from repro.report import render_table
from repro.uncertainty import expected_group_counts, is_certain
from repro.workloads import ClinicalConfig, generate_clinical


def workload(uncertainty_prob):
    return generate_clinical(ClinicalConfig(
        n_patients=400,
        icd=IcdShape(n_groups=4, families_per_group=(3, 5),
                     lowlevels_per_family=(3, 5)),
        uncertainty_prob=uncertainty_prob,
        seed=7,
    ))


def total_expected(mo):
    counts = expected_group_counts(mo, "Diagnosis", "Diagnosis Group")
    return sum(counts.values())


def test_expected_counts_vs_crisp(benchmark):
    crisp = workload(0.0)
    assert is_certain(crisp.mo)
    baseline = total_expected(crisp.mo)

    rows = [["0.00", f"{baseline:.1f}", "1.000"]]
    previous = baseline
    for share in (0.25, 0.5, 0.75):
        uncertain = workload(share)
        assert not is_certain(uncertain.mo)
        expected = total_expected(uncertain.mo)
        assert expected < previous  # monotone degradation
        rows.append([f"{share:.2f}", f"{expected:.1f}",
                     f"{expected / baseline:.3f}"])
        previous = expected

    benchmark(total_expected, workload(0.5).mo)

    print()
    print(render_table(
        ["uncertain link share", "Σ expected group counts",
         "fraction of crisp"],
        rows,
        title="Expected counts under increasing diagnosis uncertainty"))
    print("\nExpected counts equal the crisp counts at p=1 and decrease "
          "monotonically with the share of sub-certain links.")
