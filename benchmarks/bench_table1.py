"""Table 1 — the case study's base data, regenerated and verified.

Prints the four tables exactly as structured in the paper and asserts
row-for-row equality with the published values; the benchmark measures
building the full six-dimensional "Patient" MO from them.
"""

from repro.casestudy import case_study_mo
from repro.report import render_table1, table1_tuples

#: the paper's Table 1, transcribed (the assertion target)
PAPER_TABLE_1 = {
    "Patient": [
        (1, "John Doe", "12345678", "25/05/69"),
        (2, "Jane Doe", "87654321", "20/03/50"),
    ],
    "Has": [
        (1, 9, "01/01/89", "NOW", "Primary"),
        (2, 3, "23/03/75", "24/12/75", "Secondary"),
        (2, 8, "01/01/70", "31/12/81", "Primary"),
        (2, 5, "01/01/82", "30/09/82", "Secondary"),
        (2, 9, "01/01/82", "NOW", "Primary"),
    ],
    "Diagnosis": [
        (3, "P11", "Diabetes, pregnancy", "01/01/70", "31/12/79"),
        (4, "O24", "Diabetes, pregnancy", "01/01/80", "NOW"),
        (5, "O24.0", "Ins. dep. diab., pregn.", "01/01/80", "NOW"),
        (6, "O24.1", "Non ins. dep. diab., pregn.", "01/01/80", "NOW"),
        (7, "P1", "Other pregnancy diseases", "01/01/70", "31/12/79"),
        (8, "D1", "Diabetes", "01/10/70", "31/12/79"),
        (9, "E10", "Insulin dep. diabetes", "01/01/80", "NOW"),
        (10, "E11", "Non insulin dep. diabetes", "01/01/80", "NOW"),
        (11, "E1", "Diabetes", "01/01/80", "NOW"),
        (12, "O2", "Other pregnancy diseases", "01/10/80", "NOW"),
    ],
    "Grouping": [
        (4, 5, "01/01/80", "NOW", "WHO"),
        (4, 6, "01/01/80", "NOW", "WHO"),
        (7, 3, "01/01/70", "31/12/79", "WHO"),
        (8, 3, "01/01/70", "31/12/79", "User-defined"),
        (9, 5, "01/01/80", "NOW", "User-defined"),
        (10, 6, "01/01/80", "NOW", "User-defined"),
        (11, 9, "01/01/80", "NOW", "WHO"),
        (11, 10, "01/01/80", "NOW", "WHO"),
        (12, 4, "01/01/80", "NOW", "WHO"),
    ],
}


def test_table1_matches_paper_and_builds(benchmark):
    data = table1_tuples()
    for table, rows in PAPER_TABLE_1.items():
        assert data[table] == rows, f"{table} table deviates from the paper"

    mo = benchmark(case_study_mo, True, True)
    mo.validate()

    print()
    print(render_table1())
    print()
    print("Table 1 verified row-for-row against the paper "
          f"({sum(len(r) for r in PAPER_TABLE_1.values())} rows); "
          f"built {mo!r}")
