"""Figure 1 — the ER diagram of the case study, regenerated as a
structural inventory and checked for every entity and relationship the
paper draws."""

from repro.report.figures import ER_ENTITIES, ER_RELATIONSHIPS, render_figure1


def test_figure1_inventory_complete(benchmark):
    text = benchmark(render_figure1)

    for entity in ("Patient", "Diagnosis (supertype)",
                   "Low-level Diagnosis", "Diagnosis Family",
                   "Diagnosis Group", "Area", "County", "Region"):
        assert entity in ER_ENTITIES
        assert entity in text
    assert ER_ENTITIES["Patient"] == ["Name", "SSN", "Date of Birth",
                                      "(Age)"]
    assert ER_ENTITIES["Diagnosis (supertype)"] == [
        "Code", "Text", "Valid From", "Valid To"]
    assert len(ER_RELATIONSHIPS) == 7
    for marker in ("Has(", "Is part of(", "Grouping(", "Lives in("):
        assert any(rel.startswith(marker) for rel in ER_RELATIONSHIPS)

    print()
    print(text)
