"""Figure 3 — the result MO of aggregate formation (Example 12).

Runs α with set-count grouped by Diagnosis Group and the "0-1"/">1"
result ranges, asserts the exact fact-dimension relations the figure
shows, and prints the rendered MO.  The benchmark measures the operator.
"""

from repro.algebra import SetCount, aggregate
from repro.core.helpers import Band, make_result_spec
from repro.report import render_figure3


def run_example_12(mo):
    spec = make_result_spec("Result", bands=[Band(0, 2), Band(2, None)])
    return aggregate(mo, SetCount(), {"Diagnosis": "Diagnosis Group"}, spec)


def test_figure3_result_mo(benchmark, snapshot_mo):
    agg = benchmark(run_example_12, snapshot_mo)

    # R1 = {({1,2}, 11), ({2}, 12)}
    r1 = {(frozenset(m.fid for m in f.members), v.sid)
          for f, v in agg.relation("Diagnosis").pairs()}
    assert r1 == {(frozenset({1, 2}), 11), (frozenset({2}), 12)}
    # R7 = {({1,2}, 2), ({2}, 1)}
    r7 = {(frozenset(m.fid for m in f.members), v.sid)
          for f, v in agg.relation("Result").pairs()}
    assert r7 == {(frozenset({1, 2}), 2), (frozenset({2}), 1)}
    # seven dimensions, five of them trivial
    assert agg.n == 7
    trivial = [
        name for name in agg.dimension_names
        if agg.dimension(name).dtype.bottom_name
        == agg.dimension(name).dtype.top_name
    ]
    assert len(trivial) == 5
    assert agg.schema.fact_type == "Set-of-Patient"

    print()
    print(render_figure3(agg, "Diagnosis", "Result"))
    print()
    print("Figure 3 reproduced: R1 and the result relation match the "
          "paper exactly; each patient counts once per diagnosis group.")
