"""Plan optimization ablation (paper §5 future work).

Two rewrites, measured against their naive plans on the 1000-patient
workload, with result equality asserted:

* **select fusion** — σ[p2](σ[p1](M)) → σ[p1 ∧ p2](M): the naive plan
  pays two full passes (each σ also restricts every fact-dimension
  relation); the fused plan pays one.  This is where the optimizer
  wins.
* **select-past-project** — π[A](σ[p](M)) vs σ[p](π[A](M)): in this
  implementation projection *shares* the untouched dimensions instead
  of copying them, so the orders cost the same; the bench documents
  the (absence of) difference rather than claiming a win.
"""

import time

from repro.algebra import characterized_by
from repro.engine import Base, ProjectNode, SelectNode, evaluate, optimize
from repro.report import render_table


def _assert_same(a, b):
    assert a.facts == b.facts
    for name in a.dimension_names:
        assert set(a.relation(name).pairs()) == \
            set(b.relation(name).pairs())


def test_optimizer_rewrites_ablation(benchmark, clinical_1k):
    mo = clinical_1k.mo
    group = clinical_1k.icd.groups[0]
    family = clinical_1k.icd.families[0]
    p1 = characterized_by("Diagnosis", group)
    p2 = characterized_by("Diagnosis", family)

    # --- select fusion ---------------------------------------------------
    stacked = SelectNode(SelectNode(Base(mo), p1), p2)
    fused = optimize(stacked)
    assert isinstance(fused, SelectNode) and isinstance(fused.child, Base)
    _assert_same(evaluate(stacked), evaluate(fused))
    t0 = time.perf_counter()
    evaluate(stacked)
    t_stacked = time.perf_counter() - t0
    t0 = time.perf_counter()
    evaluate(fused)
    t_fused = time.perf_counter() - t0

    # --- select-past-project ----------------------------------------------
    outside = SelectNode(ProjectNode(Base(mo), ("Diagnosis", "Age")), p1)
    pushed = optimize(outside)
    assert isinstance(pushed, ProjectNode)
    _assert_same(evaluate(outside), evaluate(pushed))
    t0 = time.perf_counter()
    evaluate(outside)
    t_outside = time.perf_counter() - t0
    t0 = time.perf_counter()
    evaluate(pushed)
    t_pushed = time.perf_counter() - t0

    benchmark(evaluate, fused)

    rows = [
        ["σ∘σ as written", f"{t_stacked * 1e3:.1f}"],
        ["σ fused (p1 ∧ p2)", f"{t_fused * 1e3:.1f}"],
        ["σ after π", f"{t_outside * 1e3:.1f}"],
        ["σ pushed below π", f"{t_pushed * 1e3:.1f}"],
    ]
    print()
    print(render_table(
        ["plan", "time (ms)"], rows,
        title=f"Optimizer rewrites on {len(mo.facts)} patients"))
    print(f"\nSame-dimension select fusion: "
          f"{t_stacked / max(t_fused, 1e-9):.1f}x (one pass instead of "
          f"two; the second stacked pass re-restricts every relation). "
          f"Select-past-project is cost-neutral here because π shares "
          f"untouched dimensions instead of copying them.  All plans "
          f"return identical MOs.")
    # modest but consistent win; allow timer noise
    assert t_fused < t_stacked * 1.15