"""§3.4 — summarizability governs pre-aggregate reuse.

The paper's claim: with summarizability, lower-level aggregate results
combine directly into higher-level ones; without it, the base data must
be re-read.  This bench demonstrates both halves on matched workloads
(one strict, one with non-strict links and mixed granularity), verifies
that safe reuse is exact, that naive reuse on the non-strict workload
over-counts, and measures the speedup of reuse over recomputation.
"""

import time

import pytest

from repro.algebra import SetCount
from repro.core.errors import AlgebraError
from repro.engine import PreAggregateStore
from repro.report import render_table

FAMILY = {"Diagnosis": "Diagnosis Family"}
GROUP = {"Diagnosis": "Diagnosis Group"}


def test_summarizability_gates_reuse(benchmark, strict_clinical_1k,
                                     clinical_1k):
    # --- strict workload: reuse is allowed and exact -------------------
    store = PreAggregateStore(strict_clinical_1k.mo)
    stored = store.materialize(SetCount(), FAMILY)
    assert stored.summarizability.summarizable

    combined = benchmark(store.roll_up, SetCount(), FAMILY, GROUP)
    t0 = time.perf_counter()
    # a cold store: the honest cost of going back to the base data
    direct = PreAggregateStore(strict_clinical_1k.mo).compute_from_base(
        SetCount(), GROUP)
    t_direct = time.perf_counter() - t0
    t0 = time.perf_counter()
    store.roll_up(SetCount(), FAMILY, GROUP)
    t_reuse = time.perf_counter() - t0
    assert {k[0].sid: v for k, v in combined.items()} == \
        {k[0].sid: v for k, v in direct.items()}

    # --- non-strict workload: reuse is refused, and rightly so ---------
    bad_store = PreAggregateStore(clinical_1k.mo)
    bad = bad_store.materialize(SetCount(), FAMILY)
    assert not bad.summarizability.summarizable
    with pytest.raises(AlgebraError):
        bad_store.roll_up(SetCount(), FAMILY, GROUP)

    # quantify the error that refusal prevents
    correct = bad_store.compute_from_base(SetCount(), GROUP)
    dim = clinical_1k.mo.dimension("Diagnosis")
    naive = {}
    for (family,), count in bad.results.items():
        for parent in dim.ancestors(family, reflexive=False):
            if parent in dim.category("Diagnosis Group"):
                naive[parent] = naive.get(parent, 0) + count
    over = {
        g.label: (naive[g], correct[(g,)])
        for g in naive if naive[g] != correct[(g,)]
    }
    assert over, "non-strict naive combination should over-count"

    rows = [
        ["strict workload", stored.summarizability.explain(),
         "reuse allowed", f"exact ({len(combined)} groups)"],
        ["non-strict workload", bad.summarizability.explain(),
         "reuse refused",
         f"naive reuse would over-count {len(over)} group(s)"],
    ]
    print()
    print(render_table(
        ["workload", "Lenz-Shoshani verdict", "engine decision", "outcome"],
        rows, title="Summarizability gating (paper §3.4)"))
    worst = max(over.items(), key=lambda kv: kv[1][0] - kv[1][1])
    print(f"\nWorst naive error: group {worst[0]} would report "
          f"{worst[1][0]} instead of {worst[1][1]} patients.")
    print(f"Reuse vs recompute on the strict workload: "
          f"{t_reuse * 1e3:.2f} ms vs {t_direct * 1e3:.2f} ms "
          f"({t_direct / max(t_reuse, 1e-9):.0f}x faster).")
    assert t_reuse < t_direct
