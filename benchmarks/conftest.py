"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.casestudy import case_study_mo
from repro.casestudy.icd import IcdShape
from repro.workloads import (
    ClinicalConfig,
    RetailConfig,
    generate_clinical,
    generate_retail,
)


@pytest.fixture(scope="session")
def snapshot_mo():
    """The case-study MO, untimed."""
    return case_study_mo(temporal=False)


@pytest.fixture(scope="session")
def valid_time_mo_ex10():
    """The valid-time case-study MO with Example 10's link."""
    return case_study_mo(temporal=True, include_example10_link=True)


@pytest.fixture(scope="session")
def clinical_1k():
    """A 1000-patient clinical workload with non-strict links and mixed
    granularity — the scaling substrate."""
    return generate_clinical(ClinicalConfig(
        n_patients=1000,
        icd=IcdShape(n_groups=5, families_per_group=(3, 6),
                     lowlevels_per_family=(3, 6), extra_parent_prob=0.1),
        seed=2024,
    ))


@pytest.fixture(scope="session")
def strict_clinical_1k():
    """A 1000-patient fully strict clinical workload (summarizable)."""
    return generate_clinical(ClinicalConfig(
        n_patients=1000,
        diagnoses_per_patient=(1, 1),
        family_granularity_prob=0.0,
        icd=IcdShape(n_groups=5, families_per_group=(3, 6),
                     lowlevels_per_family=(3, 6), extra_parent_prob=0.0),
        seed=2025,
    ))


@pytest.fixture(scope="session")
def retail_2k():
    """A 2000-purchase retail workload."""
    return generate_retail(RetailConfig(n_purchases=2000, seed=11))
