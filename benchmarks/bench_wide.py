"""Wide schemas (paper §5 future work: "hundreds of dimensions").

Sweeps the number of dimensions at a fixed fact count and measures the
per-dimension costs: validation, projection to a narrow view, selection
on one dimension, and aggregate formation over one deep dimension.
Expected shape: validation, selection, and α grow linearly with the
dimension count (validation and σ's relation restriction touch every
dimension, α restricts every dimension upward); projection is flat —
it shares the untouched dimensions with its input.
"""

import time

from repro.algebra import (
    SetCount,
    aggregate,
    characterized_by,
    project,
    select,
)
from repro.core.helpers import make_result_spec
from repro.report import render_table
from repro.workloads import WideConfig, generate_wide

WIDTHS = (25, 100, 400)


def test_wide_schema_costs(benchmark):
    rows = []
    for width in WIDTHS:
        w = generate_wide(WideConfig(
            n_facts=50, n_flat_dimensions=width, n_deep_dimensions=2,
            seed=5))
        t0 = time.perf_counter()
        w.mo.validate()
        t_validate = time.perf_counter() - t0
        t0 = time.perf_counter()
        project(w.mo, ["F000", "D0"])
        t_project = time.perf_counter() - t0
        value = w.flat_values["F001"][0]
        t0 = time.perf_counter()
        select(w.mo, characterized_by("F001", value))
        t_select = time.perf_counter() - t0
        t0 = time.perf_counter()
        aggregate(w.mo, SetCount(), {"D0": "D0L2"}, make_result_spec(),
                  strict_types=False)
        t_aggregate = time.perf_counter() - t0
        rows.append([
            width + 2, f"{t_validate * 1e3:.1f}", f"{t_project * 1e3:.2f}",
            f"{t_select * 1e3:.1f}", f"{t_aggregate * 1e3:.1f}",
        ])

    widest = generate_wide(WideConfig(
        n_facts=50, n_flat_dimensions=WIDTHS[-1], n_deep_dimensions=2,
        seed=5))
    benchmark(project, widest.mo, ["F000", "D0"])

    print()
    print(render_table(
        ["dimensions", "validate (ms)", "π narrow (ms)", "σ (ms)",
         "α deep (ms)"],
        rows, title="Wide schemas: per-operator cost vs dimensionality "
                    "(50 facts)"))
    print("\nπ stays flat as dimensions grow (it shares untouched "
          "dimensions); validation, σ, and α scale with the schema "
          "width, as they must touch every dimension.")
