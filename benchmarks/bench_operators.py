"""Micro-benchmarks of the seven fundamental operators (Theorem 1's
cast) on the 1000-patient clinical workload.

Each operator's result is closure-validated once; the benchmark rows
give the per-operator cost profile a downstream user can expect.
"""

import pytest

from repro.algebra import (
    JoinPredicate,
    SetCount,
    aggregate,
    characterized_by,
    difference,
    identity_join,
    project,
    rename,
    select,
    union,
    validate_closed,
)
from repro.core.helpers import make_result_spec


@pytest.fixture(scope="module")
def mo(clinical_1k):
    return clinical_1k.mo


@pytest.fixture(scope="module")
def target_value(clinical_1k):
    return clinical_1k.icd.groups[0]


def test_selection(benchmark, mo, target_value):
    result = benchmark(select, mo, characterized_by("Diagnosis",
                                                    target_value))
    assert validate_closed(result).ok
    assert 0 < len(result.facts) <= len(mo.facts)


def test_projection(benchmark, mo):
    result = benchmark(project, mo, ["Diagnosis", "Age"])
    assert result.n == 2


def test_rename(benchmark, mo):
    result = benchmark(rename, mo, None, {"Diagnosis": "Dx"})
    assert "Dx" in result.schema


def test_union(benchmark, mo):
    result = benchmark(union, mo, mo)
    assert result.facts == mo.facts


def test_difference(benchmark, mo):
    result = benchmark(difference, mo, mo)
    assert result.facts == set()


def test_identity_join(benchmark, mo, clinical_1k):
    # join two small projections (the full self-product would be 10^6
    # pairs; equi-join keeps it linear)
    left = project(mo, ["Diagnosis"])
    right = rename(project(mo, ["Age"]), dimension_map={"Age": "Years"})
    result = benchmark(identity_join, left, right, JoinPredicate.EQUAL)
    assert len(result.facts) == len(mo.facts)


def test_aggregate_formation(benchmark, mo):
    result = benchmark(
        aggregate, mo, SetCount(), {"Diagnosis": "Diagnosis Group"},
        make_result_spec(), False)
    assert all(f.is_group for f in result.facts)
