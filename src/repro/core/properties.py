"""Hierarchy properties and summarizability (paper §3.4).

The paper's Definition 1 defines *summarizability* of an aggregate
function over a collection of sets; Definitions 2 and 3 define *strict*
and *partitioning* hierarchies and their *snapshot* variants; and the
cited Lenz-Shoshani result states that summarizability is equivalent to
the aggregate function being distributive, all paths being strict, and
the hierarchies being partitioning in the relevant dimensions.

These properties are what make pre-computed aggregates reusable, and
they drive the aggregate-formation operator's aggregation-type
propagation rule; :mod:`repro.engine.preagg` consumes them to decide
which materialized results may be combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.dimension import Dimension
from repro.core.mo import MultidimensionalObject
from repro.temporal.chronon import Chronon

__all__ = [
    "mapping_is_strict",
    "hierarchy_is_strict",
    "hierarchy_is_partitioning",
    "hierarchy_is_snapshot_strict",
    "hierarchy_is_snapshot_partitioning",
    "has_strict_path",
    "is_summarizable",
    "SummarizabilityCheck",
    "check_summarizability",
    "critical_chronons",
]


def _index_answers_for(index, dimension: Dimension) -> bool:
    """Whether a rollup index can answer hierarchy-property queries for
    this exact dimension object: it must index the same ``Dimension``
    (not merely one of the same name — callers pass subdimensions and
    copies too)."""
    if index is None:
        return False
    try:
        return index.mo.dimension(dimension.name) is dimension
    except Exception:
        return False


def mapping_is_strict(dimension: Dimension, lower_category: str,
                      upper_category: str,
                      at: Optional[Chronon] = None,
                      index=None) -> bool:
    """Definition 2 for one pair of categories: the mapping from
    ``lower_category`` to ``upper_category`` is strict iff no value of
    the lower category is contained in two distinct values of the upper
    one (i.e. each lower value has at most one ancestor per upper
    category).

    ``index`` may be the MO's :class:`repro.engine.rollup_index.RollupIndex`;
    untimed queries about a dimension it indexes are answered from its
    cached ancestor sets (one intersection per lower value) instead of
    this naive O(|lower|·|upper|) containment scan, which the
    equivalence tests keep as the oracle."""
    if at is None and _index_answers_for(index, dimension):
        return index.mapping_strict(dimension.name, lower_category,
                                    upper_category)
    upper_members = dimension.category(upper_category).members(at=at)
    for value in dimension.category(lower_category).members(at=at):
        parents = {
            u for u in upper_members
            if u != value and dimension.leq(value, u, at=at)
        }
        if len(parents) > 1:
            return False
    return True


def _category_pairs(dimension: Dimension) -> Iterable[Tuple[str, str]]:
    names = [c.name for c in dimension.categories()]
    dtype = dimension.dtype
    for lower in names:
        for upper in names:
            if lower != upper and dtype.leq(lower, upper):
                yield lower, upper


def hierarchy_is_strict(dimension: Dimension,
                        at: Optional[Chronon] = None,
                        index=None) -> bool:
    """Definition 2: the dimension's hierarchy is strict iff every
    category-to-category mapping in it is strict.  ``index`` as in
    :func:`mapping_is_strict`."""
    if at is None and _index_answers_for(index, dimension):
        return index.hierarchy_strict(dimension.name)
    return all(
        mapping_is_strict(dimension, lower, upper, at=at)
        for lower, upper in _category_pairs(dimension)
    )


def hierarchy_is_partitioning(dimension: Dimension,
                              at: Optional[Chronon] = None,
                              index=None) -> bool:
    """Definition 3: every value of a non-⊤ category has a direct parent
    in some immediate-predecessor category.  ``index`` as in
    :func:`mapping_is_strict`."""
    if at is None and _index_answers_for(index, dimension):
        return index.hierarchy_partitioning(dimension.name)
    dtype = dimension.dtype
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        pred_names = dtype.pred(category.name)
        for value in category.members(at=at):
            found = False
            for pred_name in pred_names:
                if pred_name == dtype.top_name:
                    found = True  # every value is below ⊤
                    break
                for parent in dimension.category(pred_name).members(at=at):
                    if parent != value and dimension.leq(value, parent, at=at):
                        found = True
                        break
                if found:
                    break
            if not found:
                return False
    return True


def critical_chronons(dimension: Dimension) -> List[Chronon]:
    """Representative chronons at which the dimension's temporal state
    can change: the endpoints of every membership and order-edge chronon
    set.  A property that is piecewise constant between these samples
    (as strictness and partitioning are) holds at all times iff it holds
    at each sample."""
    samples: Set[Chronon] = set()
    for category in dimension.categories():
        for _, time in category.items():
            samples.update(time.sample_chronons())
    for _, _, time, _ in dimension.order.edges():
        samples.update(time.sample_chronons())
    return sorted(samples)


def hierarchy_is_snapshot_strict(dimension: Dimension) -> bool:
    """Definition 2 (snapshot form): strict at every point in time."""
    return all(
        hierarchy_is_strict(dimension, at=t)
        for t in critical_chronons(dimension)
    )


def hierarchy_is_snapshot_partitioning(dimension: Dimension) -> bool:
    """Definition 3 (snapshot form): partitioning at every point in time."""
    return all(
        hierarchy_is_partitioning(dimension, at=t)
        for t in critical_chronons(dimension)
    )


def has_strict_path(mo: MultidimensionalObject, dimension_name: str,
                    category_name: str,
                    at: Optional[Chronon] = None) -> bool:
    """Definition 2's strict-path condition: no fact of ``mo`` is
    characterized by two distinct values of the given category.

    (Paths to the ⊤ category are always strict, as the paper notes.)
    """
    dimension = mo.dimension(dimension_name)
    if category_name == dimension.dtype.top_name:
        return True
    relation = mo.relation(dimension_name)
    members = dimension.category(category_name).members(at=at)
    for fact in mo.facts:
        count = 0
        for value in members:
            if relation.characterizes(fact, value, dimension, at=at):
                count += 1
                if count > 1:
                    return False
    return True


def is_summarizable(
    g: Callable[[Sequence], object],
    sets: Sequence[Sequence],
) -> bool:
    """Definition 1, checked extensionally: ``g({g(S_1), .., g(S_k)}) =
    g(S_1 ∪ .. ∪ S_k)``, with the left side's argument a multi-set.

    ``g`` receives a sequence (so multi-set semantics are preserved) and
    must be total on the given data.
    """
    if not sets:
        return True
    partials = [g(s) for s in sets]
    combined: List = []
    seen: Set = set()
    for s in sets:
        for item in s:
            if item not in seen:
                seen.add(item)
                combined.append(item)
    return g(partials) == g(combined)


@dataclass(frozen=True)
class SummarizabilityCheck:
    """Verdict of the Lenz-Shoshani condition for one aggregation.

    ``summarizable`` holds iff all three component conditions do; the
    aggregate-formation operator uses exactly this conjunction to decide
    the result dimension's aggregation type (paper §4.1).
    """

    function_distributive: bool
    paths_strict: bool
    hierarchies_partitioning: bool

    @property
    def summarizable(self) -> bool:
        """The conjunction of the three conditions."""
        return (self.function_distributive and self.paths_strict
                and self.hierarchies_partitioning)

    def explain(self) -> str:
        """A one-line human-readable explanation."""
        if self.summarizable:
            return "summarizable (distributive, strict paths, partitioning)"
        reasons = []
        if not self.function_distributive:
            reasons.append("function is not distributive")
        if not self.paths_strict:
            reasons.append("a path is non-strict (risk of double counting)")
        if not self.hierarchies_partitioning:
            reasons.append("a hierarchy is non-partitioning (values may be "
                           "missed)")
        return "NOT summarizable: " + "; ".join(reasons)


def check_summarizability(
    mo: MultidimensionalObject,
    grouping: dict,
    function_distributive: bool,
    at: Optional[Chronon] = None,
) -> SummarizabilityCheck:
    """Evaluate the Lenz-Shoshani condition for an aggregate formation.

    ``grouping`` maps dimension names to grouping category names.  Paths
    must be strict from the facts up to each grouping category, and each
    hierarchy must be partitioning *up to* the grouping category (checked
    on the subdimension of categories ≤ the grouping category, plus ⊤
    which is vacuous).
    """
    paths_strict = all(
        has_strict_path(mo, dim_name, cat_name, at=at)
        for dim_name, cat_name in grouping.items()
    )
    partitioning = True
    for dim_name, cat_name in grouping.items():
        dimension = mo.dimension(dim_name)
        dtype = dimension.dtype
        below = [
            c.name for c in dimension.categories()
            if dtype.leq(c.name, cat_name)
        ]
        sub = dimension.subdimension(below)
        if not hierarchy_is_partitioning(sub, at=at):
            partitioning = False
            break
    return SummarizabilityCheck(
        function_distributive=function_distributive,
        paths_strict=paths_strict,
        hierarchies_partitioning=partitioning,
    )
