"""Aggregation types (paper §3.1).

The paper distinguishes three types of aggregate functions in line with
Lehner and Rafanelli & Ricci:

* ``⊕`` — applicable to data that can be **added** together
  (``{SUM, COUNT, AVG, MIN, MAX}`` of the standard SQL functions);
* ``⊘`` — applicable to data that can be used for **average**
  calculations (``{COUNT, AVG, MIN, MAX}``);
* ``c`` — applicable to **constant** data that can only be counted
  (``{COUNT}``).

The types are ordered ``c < ⊘ < ⊕``: data with a higher aggregation type
also possesses the characteristics of the lower ones.  Each category type
of a dimension type carries an aggregation type (the paper's function
``Aggtype_T : C → {⊕, ⊘, c}``); the aggregate-formation operator consults
and propagates these to prevent the user from double counting or adding
non-additive data.
"""

from __future__ import annotations

import enum
import functools
from typing import FrozenSet, Iterable

__all__ = ["AggregationType", "SQLFunction", "min_aggtype"]


class SQLFunction(enum.Enum):
    """The standard SQL aggregation functions the paper considers."""

    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"


@functools.total_ordering
class AggregationType(enum.Enum):
    """One of the paper's three aggregation types, ordered ``c < ⊘ < ⊕``."""

    #: constant data; only counting is meaningful (paper's ``c``).
    CONSTANT = 0
    #: data with an ordering; average/min/max are meaningful (paper's ``⊘``).
    AVERAGE = 1
    #: additive data; all standard functions are meaningful (paper's ``⊕``).
    SUM = 2

    def __lt__(self, other: "AggregationType") -> bool:
        if not isinstance(other, AggregationType):
            return NotImplemented
        return self.value < other.value

    @property
    def symbol(self) -> str:
        """The paper's symbol for this type (``⊕``, ``⊘``, or ``c``)."""
        return {
            AggregationType.SUM: "⊕",
            AggregationType.AVERAGE: "⊘",
            AggregationType.CONSTANT: "c",
        }[self]

    @property
    def allowed_functions(self) -> FrozenSet[SQLFunction]:
        """The SQL aggregate functions applicable to data of this type."""
        if self is AggregationType.SUM:
            return frozenset(SQLFunction)
        if self is AggregationType.AVERAGE:
            return frozenset(SQLFunction) - {SQLFunction.SUM}
        return frozenset({SQLFunction.COUNT})

    def permits(self, function: SQLFunction) -> bool:
        """True iff ``function`` may be applied to data of this type."""
        return function in self.allowed_functions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AggregationType.{self.name}"


def min_aggtype(types: Iterable[AggregationType]) -> AggregationType:
    """The minimum of a collection of aggregation types.

    Used by the aggregate-formation operator's propagation rule
    (``Aggtype(⊥_{D_{n+1}}) = min_{j ∈ Args(g)} Aggtype(⊥_{D_j})``).
    The minimum over an empty collection is ``⊕``, the identity of
    ``min`` on this chain — functions with no argument dimensions, such
    as the paper's *set-count*, constrain nothing.
    """
    result = AggregationType.SUM
    for t in types:
        if t < result:
            result = t
    return result
