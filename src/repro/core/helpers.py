"""Convenience builders for common dimension shapes.

The model's definitions are verbose to instantiate by hand; these
helpers build the recurring shapes of the paper's case study:

* :func:`make_simple_dimension` — a ⊥ + ⊤ dimension like Name or SSN;
* :func:`make_linear_dimension` — a chain like Area < County < Region;
* :func:`make_numeric_dimension` — a measure-like dimension (Age) whose
  values are numbers, optionally banded into range categories (five-year
  and ten-year groups);
* :func:`make_result_spec` — the result dimension of aggregate
  formation, with optional banding like Figure 3's "0-1" / ">1" ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import SchemaError
from repro.core.values import DimensionValue

__all__ = [
    "make_simple_dimension",
    "make_linear_dimension",
    "make_numeric_dimension",
    "Band",
    "ResultSpec",
    "make_result_spec",
]


def make_simple_dimension(
    name: str,
    values: Iterable[Hashable],
    aggtype: AggregationType = AggregationType.CONSTANT,
) -> Dimension:
    """A dimension with only a ⊥ category (named like the dimension) and
    the implicit ⊤ — the shape of the case study's Name and SSN
    dimensions.  ``values`` become the ⊥ category's members, with each
    item used as both surrogate and label.

    A one-category hierarchy cannot violate strictness or partitioning
    (⊥'s only predecessor category is ⊤), so the dimension type is
    declared strict + partitioning for the static analyzer."""
    dtype = DimensionType(
        name,
        [CategoryType(name, aggtype=aggtype, is_bottom=True)],
        edges=[],
        declared_strict=True,
        declared_partitioning=True,
    )
    dimension = Dimension(dtype)
    for item in values:
        dimension.add_value(name, DimensionValue(sid=item, label=str(item)))
    return dimension


def make_linear_dimension(
    name: str,
    levels: Sequence[Tuple[str, AggregationType]],
) -> Dimension:
    """An empty dimension whose category types form a chain,
    bottom-first — the shape of Residence (Area < County < Region).

    Populate it afterwards with :meth:`Dimension.add_value` and
    :meth:`Dimension.add_edge`.
    """
    if not levels:
        raise SchemaError("a linear dimension needs at least one level")
    ctypes = [
        CategoryType(level_name, aggtype=aggtype, is_bottom=(i == 0))
        for i, (level_name, aggtype) in enumerate(levels)
    ]
    edges = [
        (levels[i][0], levels[i + 1][0]) for i in range(len(levels) - 1)
    ]
    return Dimension(DimensionType(name, ctypes, edges))


@dataclass(frozen=True)
class Band:
    """A half-open numeric band ``[lo, hi)`` used as one value of a
    grouping category (``hi = None`` means unbounded above)."""

    lo: float
    hi: Optional[float]

    def contains(self, x: float) -> bool:
        """Membership of ``x`` in the band."""
        if x < self.lo:
            return False
        return self.hi is None or x < self.hi

    @property
    def label(self) -> str:
        """Human-readable band label (``10-19`` or ``>1`` style)."""
        if self.hi is None:
            return f">{self.lo - 1:g}" if self.lo == int(self.lo) else f">={self.lo:g}"
        if self.hi - self.lo == 1:
            return f"{self.lo:g}"
        return f"{self.lo:g}-{self.hi - 1:g}"


def make_numeric_dimension(
    name: str,
    values: Iterable[float],
    bands: Optional[Dict[str, Sequence[Band]]] = None,
    aggtype: AggregationType = AggregationType.SUM,
    declared_strict: Optional[bool] = None,
    declared_partitioning: Optional[bool] = None,
) -> Dimension:
    """A measure-like dimension over numbers — the case study's Age.

    ``values`` populate the ⊥ category (surrogate = the number itself,
    so aggregation functions can read it back).  ``bands`` optionally
    adds grouping categories above ⊥, e.g.::

        make_numeric_dimension("Age", range(0, 120),
            bands={"Five-year group": five_year, "Ten-year group": ten_year})

    Band categories are constant (counting only), as grouped ranges
    cannot be meaningfully added.  Band categories are siblings directly
    above ⊥ (the case study's five- and ten-year groups both group ages).
    """
    bands = bands or {}
    ctypes = [CategoryType(name, aggtype=aggtype, is_bottom=True)]
    edges: List[Tuple[str, str]] = []
    for band_cat in bands:
        ctypes.append(CategoryType(band_cat, aggtype=AggregationType.CONSTANT))
        edges.append((name, band_cat))
    dimension = Dimension(DimensionType(
        name, ctypes, edges,
        declared_strict=declared_strict,
        declared_partitioning=declared_partitioning,
    ))
    numeric_values = list(values)
    for x in numeric_values:
        dimension.add_value(name, DimensionValue(sid=x, label=str(x)))
    for band_cat, band_list in bands.items():
        for band in band_list:
            band_value = DimensionValue(sid=(band_cat, band.lo, band.hi),
                                        label=band.label)
            dimension.add_value(band_cat, band_value)
            for x in numeric_values:
                if band.contains(x):
                    dimension.add_edge(DimensionValue(sid=x, label=str(x)),
                                       band_value)
    return dimension


@dataclass
class ResultSpec:
    """How aggregate formation materializes its result dimension
    ``D_{n+1}``: a dimension plus a mapping from raw aggregate results to
    ⊥ values of that dimension.

    ``dimension`` must contain (or accept) the mapped values; the default
    factory :func:`make_result_spec` inserts result values on demand.
    """

    name: str
    dimension: Dimension
    value_for: Callable[[object], DimensionValue]


def make_result_spec(
    name: str = "Result",
    bands: Optional[Sequence[Band]] = None,
    band_category: str = "Range",
    aggtype: AggregationType = AggregationType.SUM,
) -> ResultSpec:
    """Build a result spec whose dimension grows as results arrive.

    Raw results become ⊥ values (surrogate = the result itself).  With
    ``bands``, a grouping category is added and each result value is
    ordered under the band containing it — exactly Figure 3's Count <
    Range ("0-1", ">1") result dimension.
    """
    ctypes = [CategoryType(name, aggtype=aggtype, is_bottom=True)]
    edges: List[Tuple[str, str]] = []
    if bands:
        ctypes.append(CategoryType(band_category,
                                   aggtype=AggregationType.CONSTANT))
        edges.append((name, band_category))
    dimension = Dimension(DimensionType(name, ctypes, edges))
    band_values: List[Tuple[Band, DimensionValue]] = []
    if bands:
        for band in bands:
            band_value = DimensionValue(sid=(band_category, band.lo, band.hi),
                                        label=band.label)
            dimension.add_value(band_category, band_value)
            band_values.append((band, band_value))

    def value_for(raw: object) -> DimensionValue:
        value = DimensionValue(sid=raw, label=str(raw))
        if value not in dimension:
            dimension.add_value(name, value)
            if isinstance(raw, (int, float)):
                for band, band_value in band_values:
                    if band.contains(raw):
                        dimension.add_edge(value, band_value)
        return value

    return ResultSpec(name=name, dimension=dimension, value_for=value_for)
