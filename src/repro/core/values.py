"""Dimension values and facts (paper §3.1).

The paper argues for *surrogates*: dimension values are identified by an
opaque id distinct from any real-world name ("the names might change or
the same value might have more than one name"); human-readable names live
in *representations* (see :mod:`repro.core.category`).

Facts likewise are "objects with a separate identity": they can be tested
for equality but carry no ordering, and the combination of dimension
values characterizing a fact is *not* a key — several facts may share one
combination.  After aggregate formation, facts are *sets* of argument
facts (type ``2^F``); :meth:`Fact.group` builds such set-facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Optional

__all__ = ["DimensionValue", "Fact", "SurrogateSource", "TOP_LABEL"]

#: The display label used for top values (the paper's ``⊤`` / ``ALL``).
TOP_LABEL = "⊤"


@dataclass(frozen=True, order=False)
class DimensionValue:
    """A dimension value, identified by a surrogate id.

    ``sid`` is any hashable surrogate (the case study uses the integer
    ``ID`` column of Table 1).  ``is_top`` marks the distinguished ``⊤``
    value that logically contains every other value of its dimension
    (the paper relates it to the ``ALL`` construct of Gray et al.).
    ``label`` is a debugging aid only; authoritative names belong in
    representations.
    """

    sid: Hashable
    is_top: bool = False
    label: Optional[str] = field(default=None, compare=False)
    #: the hash of the compare fields, computed once — values are dict
    #: keys on every hot path (closures, group keys, interning), where
    #: the generated dataclass hash would rebuild a tuple per lookup
    _hash: int = field(default=0, compare=False, repr=False, init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.sid, self.is_top)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def top(cls, dimension_name: str) -> "DimensionValue":
        """The ``⊤`` value of the named dimension.

        The surrogate embeds the dimension name so top values of
        different dimensions stay distinct.
        """
        return cls(sid=(TOP_LABEL, dimension_name), is_top=True, label=TOP_LABEL)

    def __repr__(self) -> str:
        if self.is_top:
            return f"⊤({self.sid[1]})" if isinstance(self.sid, tuple) else TOP_LABEL
        if self.label is not None:
            return f"Value({self.sid}:{self.label})"
        return f"Value({self.sid})"


@dataclass(frozen=True, order=False)
class Fact:
    """A fact: an object with separate identity (paper §3.1).

    ``fid`` is a hashable identity.  Base facts use scalars (the case
    study's patients use ``1`` and ``2``); facts produced by aggregate
    formation use a ``frozenset`` of member facts, reflecting the
    operator's result fact type ``2^F``.
    """

    fid: Hashable
    ftype: str = "Fact"
    #: the hash of the compare fields, computed once (see
    #: :class:`DimensionValue`; facts key every relation and group set)
    _hash: int = field(default=0, compare=False, repr=False, init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.fid, self.ftype)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def group(cls, members: Iterable["Fact"], ftype: Optional[str] = None) -> "Fact":
        """Build the set-fact for a group of member facts.

        The fact type defaults to ``Set-of-<member type>``, mirroring the
        paper's Figure 3 caption ("Set-of-Patient").
        """
        member_set: FrozenSet[Fact] = frozenset(members)
        if not member_set:
            raise ValueError("a set-fact must have at least one member")
        if ftype is None:
            member_types = {m.ftype for m in member_set}
            base = member_types.pop() if len(member_types) == 1 else "Fact"
            ftype = f"Set-of-{base}"
        return cls(fid=member_set, ftype=ftype)

    @property
    def is_group(self) -> bool:
        """True iff this fact is a set-fact from aggregate formation."""
        return isinstance(self.fid, frozenset)

    @property
    def members(self) -> FrozenSet["Fact"]:
        """The member facts of a set-fact; raises for base facts."""
        if not self.is_group:
            raise TypeError(f"{self!r} is a base fact, not a set-fact")
        return self.fid

    def __repr__(self) -> str:
        if self.is_group:
            inner = ",".join(sorted(repr(m) for m in self.fid))
            return f"{{{inner}}}"
        return f"{self.ftype}({self.fid})"


class SurrogateSource:
    """A generator of globally unique surrogate ids.

    The case study assumes "surrogate keys, named ID, with globally
    unique values"; synthetic workload generators use one source so the
    values of all dimensions stay disjoint.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def fresh(self) -> int:
        """Return the next unused surrogate id."""
        value = self._next
        self._next += 1
        return value

    def fresh_value(self, label: Optional[str] = None) -> DimensionValue:
        """Return a new :class:`DimensionValue` with a fresh surrogate."""
        return DimensionValue(sid=self.fresh(), label=label)

    def fresh_fact(self, ftype: str = "Fact") -> Fact:
        """Return a new :class:`Fact` with a fresh surrogate."""
        return Fact(fid=self.fresh(), ftype=ftype)
