"""Dimension types and dimensions (paper §3.1).

A *dimension type* ``T = (C, ≤_T, ⊤_T, ⊥_T)`` is a lattice of category
types: one category type is greater than another if members of the
former's extension logically contain members of the latter's.  ``⊤_T``
has exactly one value in its extension (the ``⊤`` value, akin to Gray et
al.'s ``ALL``); ``⊥_T`` holds the values of smallest size.

A *dimension* ``D = (C, ≤)`` of type ``T`` instantiates each category
type with a category of values and imposes a partial order — logical
containment — on the union of all the values.  The order, category
membership, and representations may all carry valid time (§3.2) and the
order and fact-dimension relations may carry probabilities (§3.3);
:class:`Dimension` supports all of these through
:class:`repro.core.order.AnnotatedOrder`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.aggtypes import AggregationType
from repro.core.category import Category, CategoryType, Representation
from repro.core.errors import InstanceError, SchemaError
from repro.core.order import AnnotatedOrder, Annotation
from repro.core.values import DimensionValue
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import ALWAYS, TimeSet

__all__ = ["DimensionType", "Dimension"]


class DimensionType:
    """The intension of a dimension: a lattice of category types.

    Construct with the category types and the *direct* order edges
    between them (``lower ≤ upper``); the constructor validates that the
    result has exactly one top, exactly one bottom, and that every
    category type lies between them.  The paper's ``Pred`` function —
    immediate predecessors, i.e. the next-larger category types — is
    :meth:`pred`.
    """

    def __init__(
        self,
        name: str,
        category_types: Iterable[CategoryType],
        edges: Iterable[Tuple[str, str]],
        add_top: bool = True,
        declared_strict: Optional[bool] = None,
        declared_partitioning: Optional[bool] = None,
    ) -> None:
        self._name = name
        self._declared_strict = declared_strict
        self._declared_partitioning = declared_partitioning
        self._ctypes: Dict[str, CategoryType] = {}
        for ctype in category_types:
            if ctype.name in self._ctypes:
                raise SchemaError(f"duplicate category type {ctype.name!r}")
            self._ctypes[ctype.name] = ctype
        self._order: AnnotatedOrder = AnnotatedOrder()
        for ctype in self._ctypes.values():
            self._order.add_node(ctype.name)
        top_names = [c.name for c in self._ctypes.values() if c.is_top]
        if add_top and not top_names:
            top = CategoryType.top(name)
            self._ctypes[top.name] = top
            self._order.add_node(top.name)
            top_names = [top.name]
        if len(top_names) != 1:
            raise SchemaError(
                f"dimension type {name!r} must have exactly one ⊤ category type"
            )
        self._top_name = top_names[0]
        for lower, upper in edges:
            self._check_known(lower)
            self._check_known(upper)
            self._order.add_edge(lower, upper)
        # connect maximal non-top category types to ⊤
        for ctype_name in list(self._ctypes):
            if ctype_name == self._top_name:
                continue
            parents = self._order.parents(ctype_name)
            if not parents:
                self._order.add_edge(ctype_name, self._top_name)
        bottoms = [n for n in self._order.leaves()]
        if len(bottoms) != 1:
            raise SchemaError(
                f"dimension type {name!r} must have exactly one ⊥ category type; "
                f"found {sorted(bottoms)}"
            )
        self._bottom_name = bottoms[0]
        marked_bottom = [c.name for c in self._ctypes.values() if c.is_bottom]
        if marked_bottom and marked_bottom != [self._bottom_name]:
            raise SchemaError(
                f"category type marked is_bottom does not match the order's "
                f"unique minimal element {self._bottom_name!r}"
            )

    def _check_known(self, name: str) -> None:
        if name not in self._ctypes:
            raise SchemaError(
                f"unknown category type {name!r} in dimension type {self._name!r}"
            )

    # -- queries ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The dimension type's name."""
        return self._name

    @property
    def declared_strict(self) -> Optional[bool]:
        """Schema author's declaration of Definition 2 strictness for
        every dimension of this type; ``None`` means undeclared.  The
        static analyzer (:mod:`repro.analyze`) consumes this and checks
        it for drift against the extension when data is present."""
        return self._declared_strict

    @property
    def declared_partitioning(self) -> Optional[bool]:
        """Schema author's declaration of Definition 3 (partitioning
        hierarchies); ``None`` means undeclared."""
        return self._declared_partitioning

    @property
    def top_name(self) -> str:
        """Name of the ``⊤_T`` category type."""
        return self._top_name

    @property
    def bottom_name(self) -> str:
        """Name of the ``⊥_T`` category type."""
        return self._bottom_name

    @property
    def top(self) -> CategoryType:
        """The ``⊤_T`` category type."""
        return self._ctypes[self._top_name]

    @property
    def bottom(self) -> CategoryType:
        """The ``⊥_T`` category type."""
        return self._ctypes[self._bottom_name]

    def category_types(self) -> List[CategoryType]:
        """All category types, bottom-up topologically ordered."""
        return [self._ctypes[n] for n in self._order.topological()]

    def category_type(self, name: str) -> CategoryType:
        """Look up a category type by name."""
        self._check_known(name)
        return self._ctypes[name]

    def __contains__(self, name: object) -> bool:
        return name in self._ctypes

    def leq(self, lower: str, upper: str) -> bool:
        """The order on category types (``C1 ≤_T C2``)."""
        self._check_known(lower)
        self._check_known(upper)
        return self._order.reaches(lower, upper)

    def pred(self, name: str) -> Set[str]:
        """The paper's ``Pred``: immediate predecessors — the category
        types directly above ``name`` (e.g. ``Pred(Low-level Diagnosis)
        = {Diagnosis Family}``)."""
        self._check_known(name)
        return self._order.parents(name)

    def succ(self, name: str) -> Set[str]:
        """Immediate successors — the category types directly below."""
        self._check_known(name)
        return self._order.children(name)

    def aggtype(self, name: str) -> AggregationType:
        """The paper's ``Aggtype_T`` for a category type."""
        return self.category_type(name).aggtype

    def upward_closure(self, name: str) -> Set[str]:
        """Names of category types ``≥ name`` (including it and ⊤)."""
        self._check_known(name)
        return self._order.ancestors(name, reflexive=True)

    def is_lattice(self) -> bool:
        """Check the lattice property: every pair of category types has a
        unique least upper bound and greatest lower bound."""
        names = list(self._ctypes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                uppers = (self._order.ancestors(a, reflexive=True)
                          & self._order.ancestors(b, reflexive=True))
                if not _has_unique_minimum(self._order, uppers):
                    return False
                lowers = (self._order.descendants(a, reflexive=True)
                          & self._order.descendants(b, reflexive=True))
                if not lowers:
                    continue  # glb may be absent below ⊥ only if disjoint
                if not _has_unique_maximum(self._order, lowers):
                    return False
        return True

    def restricted_upward(self, from_category_type: str,
                          new_name: Optional[str] = None) -> "DimensionType":
        """The dimension type with ``from_category_type`` as new bottom.

        Used by aggregate formation: the argument dimension types are
        restricted to the category types greater than or equal to the
        grouping category's type.
        """
        keep = self.upward_closure(from_category_type)
        ctypes = []
        for name in keep:
            original = self._ctypes[name]
            if name == from_category_type and not original.is_bottom:
                ctypes.append(CategoryType(
                    name=original.name, aggtype=original.aggtype,
                    is_top=original.is_top, is_bottom=False))
            else:
                ctypes.append(original)
        restricted = self._order.restricted_to(keep)
        edges = [(child, parent) for child, parent, _, _ in restricted.edges()]
        # An upward restriction keeps every mapping between retained
        # categories and leaves their Pred sets unchanged, so a declared
        # strict/partitioning hierarchy stays so; a declared violation
        # may lie below the new bottom, so False degrades to undeclared.
        return DimensionType(
            new_name or self._name, ctypes, edges,
            declared_strict=True if self._declared_strict else None,
            declared_partitioning=(
                True if self._declared_partitioning else None),
        )

    def is_isomorphic_to(self, other: "DimensionType") -> bool:
        """Structural equality up to the dimension type's own name: same
        category type names, aggtypes, and order edges.  Used by rename's
        precondition (``D`` isomorphic with ``D'``)."""
        if set(self._ctypes) - {self._top_name} != \
                set(other._ctypes) - {other._top_name}:
            return False
        for name, ctype in self._ctypes.items():
            if name == self._top_name:
                continue
            if other._ctypes[name].aggtype != ctype.aggtype:
                return False
        my_edges = {(c, p) for c, p, _, _ in self._order.edges()
                    if p != self._top_name}
        other_edges = {(c, p) for c, p, _, _ in other._order.edges()
                       if p != other._top_name}
        return my_edges == other_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DimensionType({self._name}, {len(self._ctypes)} category types)"


def _has_unique_minimum(order: AnnotatedOrder, nodes: Set[str]) -> bool:
    minimal = [n for n in nodes
               if not any(order.reaches(m, n) for m in nodes if m != n)]
    return len(minimal) == 1


def _has_unique_maximum(order: AnnotatedOrder, nodes: Set[str]) -> bool:
    maximal = [n for n in nodes
               if not any(order.reaches(n, m) for m in nodes if m != n)]
    return len(maximal) == 1


class Dimension:
    """The extension of a dimension type: categories of values plus the
    containment order on the values.

    The distinguished ``⊤`` value is created automatically and placed in
    the ``⊤_T`` category; per the paper, every value is logically
    contained in it (``∀e: e ≤ ⊤``), which :meth:`leq` and friends
    implement without materialized edges.
    """

    def __init__(self, dtype: DimensionType) -> None:
        self._dtype = dtype
        self._categories: Dict[str, Category] = {
            ctype.name: Category(ctype) for ctype in dtype.category_types()
        }
        self._order = AnnotatedOrder()
        self._value_category: Dict[DimensionValue, str] = {}
        self._representations: Dict[str, Dict[str, Representation]] = {
            name: {} for name in self._categories
        }
        self._top_value = DimensionValue.top(dtype.name)
        self._categories[dtype.top_name].add(self._top_value, ALWAYS)
        self._value_category[self._top_value] = dtype.top_name
        self._order.add_node(self._top_value)

    # -- intension accessors ------------------------------------------------

    @property
    def dtype(self) -> DimensionType:
        """The dimension's type (``Type(D)``)."""
        return self._dtype

    @property
    def name(self) -> str:
        """The dimension's name (shared with its type)."""
        return self._dtype.name

    @property
    def top_value(self) -> DimensionValue:
        """The dimension's ``⊤`` value."""
        return self._top_value

    @property
    def order(self) -> AnnotatedOrder:
        """The annotated partial order on values (without the implicit
        ``e ≤ ⊤`` relationships)."""
        return self._order

    def category(self, name: str) -> Category:
        """Look up a category by (type) name."""
        if name not in self._categories:
            raise SchemaError(
                f"dimension {self.name!r} has no category {name!r}"
            )
        return self._categories[name]

    def categories(self) -> List[Category]:
        """All categories, bottom-up."""
        return [self._categories[c.name] for c in self._dtype.category_types()]

    @property
    def bottom_category(self) -> Category:
        """The ``⊥`` category."""
        return self._categories[self._dtype.bottom_name]

    @property
    def top_category(self) -> Category:
        """The ``⊤`` category (holds only the ``⊤`` value)."""
        return self._categories[self._dtype.top_name]

    # -- population -----------------------------------------------------------

    def add_value(
        self,
        category_name: str,
        value: DimensionValue,
        time: TimeSet = ALWAYS,
    ) -> DimensionValue:
        """Place ``value`` in the named category (``e ∈_Tv C``).

        A value belongs to exactly one category (the paper's
        ``Type(e) = C_j``); placing it in a second raises
        :class:`SchemaError`.  Returns the value for chaining.
        """
        category = self.category(category_name)
        existing = self._value_category.get(value)
        if existing is not None and existing != category_name:
            raise SchemaError(
                f"value {value!r} already belongs to category {existing!r}"
            )
        category.add(value, time)
        self._value_category[value] = category_name
        self._order.add_node(value)
        return value

    def add_edge(
        self,
        child: DimensionValue,
        parent: DimensionValue,
        time: TimeSet = ALWAYS,
        prob: float = 1.0,
    ) -> None:
        """Record the containment ``child ≤ parent`` (``e1 ≤_Tv e2`` /
        ``e1 ≤_p e2``).

        Both values must already be placed in categories; the parent's
        category type must be ≥ the child's in the dimension type's
        lattice (containment cannot point downward).  Edges into ``⊤``
        are implicit and rejected.
        """
        if parent == self._top_value:
            raise SchemaError("e ≤ ⊤ is implicit; do not add edges into ⊤")
        child_cat = self.category_name_of(child)
        parent_cat = self.category_name_of(parent)
        if not self._dtype.leq(child_cat, parent_cat):
            raise SchemaError(
                f"edge {child!r} ≤ {parent!r} violates the category type order "
                f"({child_cat!r} is not ≤ {parent_cat!r})"
            )
        self._order.add_edge(child, parent, time=time, prob=prob)

    def add_representation(self, category_name: str,
                           representation_name: str) -> Representation:
        """Create (or fetch) a representation for a category."""
        self.category(category_name)
        reps = self._representations[category_name]
        if representation_name not in reps:
            reps[representation_name] = Representation(representation_name)
        return reps[representation_name]

    def representation(self, category_name: str,
                       representation_name: str) -> Representation:
        """Look up an existing representation."""
        reps = self._representations.get(category_name, {})
        if representation_name not in reps:
            raise SchemaError(
                f"category {category_name!r} has no representation "
                f"{representation_name!r}"
            )
        return reps[representation_name]

    def representations_of(self, category_name: str) -> Dict[str, Representation]:
        """All representations of a category, by name."""
        self.category(category_name)
        return dict(self._representations[category_name])

    # -- value queries -----------------------------------------------------------

    def category_name_of(self, value: DimensionValue) -> str:
        """The name of the category a value belongs to."""
        name = self._value_category.get(value)
        if name is None:
            raise InstanceError(
                f"value {value!r} is not in dimension {self.name!r}"
            )
        return name

    def category_of(self, value: DimensionValue) -> Category:
        """The category a value belongs to."""
        return self._categories[self.category_name_of(value)]

    def values(self, at: Optional[Chronon] = None) -> Set[DimensionValue]:
        """All values of the dimension (``∪_j C_j``), optionally only
        those whose category membership is current at ``at``."""
        if at is None:
            return set(self._value_category)
        out: Set[DimensionValue] = set()
        for category in self._categories.values():
            out |= category.members(at=at)
        return out

    def __contains__(self, value: object) -> bool:
        """``e ∈ D`` — value membership in the dimension."""
        return value in self._value_category

    def existence_time(self, value: DimensionValue) -> TimeSet:
        """The chronon set during which the value is a member of its
        category."""
        return self.category_of(value).membership_time(value)

    # -- containment queries ------------------------------------------------------

    def leq(self, lower: DimensionValue, upper: DimensionValue,
            at: Optional[Chronon] = None) -> bool:
        """``lower ≤ upper`` — logical containment, optionally at a
        chronon.  ``e ≤ ⊤`` holds whenever ``e`` exists."""
        if upper == self._top_value:
            return True if at is None else at in self.existence_time(lower)
        return self._order.leq(lower, upper, at=at)

    def containment_time(self, lower: DimensionValue,
                         upper: DimensionValue) -> TimeSet:
        """The chronon set during which ``lower ≤ upper`` holds."""
        if upper == self._top_value:
            return self.existence_time(lower) if lower != upper else ALWAYS
        return self._order.containment_time(lower, upper)

    def containment_profile(self, lower: DimensionValue,
                            upper: DimensionValue) -> List[Annotation]:
        """The piecewise ``(time, probability)`` containment profile."""
        if upper == self._top_value and lower != upper:
            time = self.existence_time(lower)
            return [(time, 1.0)] if not time.is_empty() else []
        return self._order.containment_profile(lower, upper)

    def containment_probability(self, lower: DimensionValue,
                                upper: DimensionValue,
                                at: Optional[Chronon] = None) -> float:
        """Probability of ``lower ≤ upper`` (see
        :meth:`AnnotatedOrder.containment_probability`)."""
        if upper == self._top_value and lower != upper:
            if at is None or at in self.existence_time(lower):
                return 1.0
            return 0.0
        return self._order.containment_probability(lower, upper, at=at)

    def ancestors(self, value: DimensionValue,
                  reflexive: bool = True) -> Set[DimensionValue]:
        """All values containing ``value`` (always includes ``⊤``)."""
        result = self._order.ancestors(value, reflexive=reflexive)
        result.add(self._top_value)
        if reflexive:
            result.add(value)
        return result

    def descendants(self, value: DimensionValue,
                    reflexive: bool = False) -> Set[DimensionValue]:
        """All values contained in ``value``.  For ``⊤`` this is every
        value of the dimension."""
        if value == self._top_value:
            result = set(self._value_category)
            if not reflexive:
                result.discard(self._top_value)
            return result
        return self._order.descendants(value, reflexive=reflexive)

    # -- derived dimensions ------------------------------------------------------

    def subdimension(self, category_names: Sequence[str],
                     dtype: Optional[DimensionType] = None) -> "Dimension":
        """The paper's subdimension: keep only the named categories and
        restrict the order to their values.

        The ``⊤`` category is always retained.  ``dtype`` may supply a
        pre-built restricted dimension type (aggregate formation does);
        otherwise one is derived.
        """
        keep = set(category_names) | {self._dtype.top_name}
        for name in keep:
            self.category(name)  # validates
        if dtype is None:
            kept_types = [self._dtype.category_type(n) for n in keep]
            dtype = DimensionType(
                self._dtype.name,
                [_unmark_bottom(t) for t in kept_types],
                self._restrict_type_order(keep),
            )
        result = Dimension(dtype)
        kept_values: Set[DimensionValue] = set()
        for name in keep:
            if name == self._dtype.top_name:
                continue
            for value, time in self._categories[name].items():
                result.add_value(name, value, time)
                kept_values.add(value)
        restricted = self._order.restricted_to(kept_values)
        for child, parent, time, prob in restricted.edges():
            result._order.add_edge(child, parent, time=time, prob=prob)
        for name in keep:
            for rep_name, rep in self._representations.get(name, {}).items():
                result._representations[name][rep_name] = rep.copy()
        return result

    def _restrict_type_order(self, keep: Set[str]) -> List[Tuple[str, str]]:
        edges: List[Tuple[str, str]] = []
        for name in keep:
            for anc in self._dtype.upward_closure(name) & keep:
                if anc == name:
                    continue
                between = {
                    other for other in keep
                    if other not in (name, anc)
                    and self._dtype.leq(name, other) and self._dtype.leq(other, anc)
                }
                if not between:
                    edges.append((name, anc))
        return edges

    def union(self, other: "Dimension") -> "Dimension":
        """The paper's ``∪_D``: union of categories per category type and
        union of the partial orders (with the temporal union rule)."""
        if self._dtype.name != other._dtype.name or \
                set(self._categories) != set(other._categories):
            raise SchemaError(
                f"cannot union dimensions of different types: "
                f"{self.name!r} vs {other.name!r}"
            )
        result = Dimension(self._dtype)
        for source in (self, other):
            for cat_name, category in source._categories.items():
                if cat_name == self._dtype.top_name:
                    continue
                for value, time in category.items():
                    result.add_value(cat_name, value, time)
        merged = self._order.union(other._order)
        for child, parent, time, prob in merged.edges():
            result._order.add_edge(child, parent, time=time, prob=prob)
        for source in (self, other):
            for cat_name, reps in source._representations.items():
                for rep_name, rep in reps.items():
                    target = result.add_representation(cat_name, rep_name)
                    for value, rep_value, time in rep.entries():
                        target.assign(value, rep_value, time)
        return result

    def copy(self) -> "Dimension":
        """An independent deep copy."""
        return self.union(Dimension(self._dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(
            f"{c.name}:{len(c)}" for c in self.categories()
        )
        return f"Dimension({self.name}; {sizes})"


def _unmark_bottom(ctype: CategoryType) -> CategoryType:
    if not ctype.is_bottom:
        return ctype
    return CategoryType(name=ctype.name, aggtype=ctype.aggtype,
                        is_top=ctype.is_top, is_bottom=False)
