"""Interning of facts and dimension values to dense integer ids.

The model identifies facts and dimension values by opaque surrogates
(paper §3.1) — hashable Python objects whose hashing and comparison cost
shows up in every grouping walk.  The rollup-index layer
(:mod:`repro.engine.rollup_index`) interns both kinds of objects into
dense integers so closure tables become plain ``int``-set operations and
deterministic orderings come from ids instead of ``repr`` sorting.

Ids are assigned densely in first-seen order, which is deterministic for
a deterministic construction sequence; an :class:`InternTable` never
reuses or reorders ids, so an id handed out once stays valid for the
table's lifetime (append-only).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set

__all__ = ["InternTable"]


class InternTable:
    """A bijection between hashable objects and dense integer ids.

    Append-only: objects can be added but never removed, so ids are
    stable and the reverse lookup is a plain list indexed by id.
    """

    __slots__ = ("_ids", "_objects")

    def __init__(self, objects: Iterable[Hashable] = ()) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._objects: List[Hashable] = []
        for obj in objects:
            self.intern(obj)

    def intern(self, obj: Hashable) -> int:
        """The id of ``obj``, assigning the next dense id if unseen."""
        existing = self._ids.get(obj)
        if existing is not None:
            return existing
        new_id = len(self._objects)
        self._ids[obj] = new_id
        self._objects.append(obj)
        return new_id

    def intern_all(self, objects: Iterable[Hashable]) -> List[int]:
        """Intern every object, returning the ids in input order."""
        return [self.intern(obj) for obj in objects]

    def id_of(self, obj: Hashable) -> Optional[int]:
        """The id of ``obj`` if already interned, else ``None``."""
        return self._ids.get(obj)

    def ids_of(self, objects: Iterable[Hashable]) -> List[Optional[int]]:
        """Bulk :meth:`id_of`: the ids in input order, ``None`` where an
        object is not interned.  One bound-method dispatch for the whole
        batch instead of one per object — the columnar kernel setup path
        uses this so building id arrays does no per-object attribute
        lookup."""
        return list(map(self._ids.get, objects))

    def values_of(self, ids: Iterable[int]) -> List[Hashable]:
        """Bulk :meth:`object_of`: the objects behind ``ids``, in input
        order (symmetric to :meth:`ids_of`).  One bound-method dispatch
        for the whole batch; the result-cache decode path uses this so
        rebuilding a row template does no per-id attribute lookup.
        Unlike :meth:`objects_of` the result is a list, preserving
        order and multiplicity."""
        return list(map(self._objects.__getitem__, ids))

    def object_of(self, obj_id: int) -> Hashable:
        """The object an id stands for (ids come from :meth:`intern`)."""
        return self._objects[obj_id]

    def objects_of(self, ids: Iterable[int]) -> Set[Hashable]:
        """The set of objects behind a collection of ids."""
        objects = self._objects
        return {objects[i] for i in ids}

    def __contains__(self, obj: object) -> bool:
        return obj in self._ids

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InternTable({len(self._objects)} objects)"
