"""Bounded mutation logs for incremental (delta) index maintenance.

The rollup index (:mod:`repro.engine.rollup_index`) invalidates its
per-dimension closure tables by comparing mutation counters.  Counters
alone only say *that* something changed; to apply a mutation as a
*delta* — patching the existing closures instead of rebuilding them —
the index also needs to know *what* changed.  A :class:`ChangeLog`
records one entry per counter bump: the operation payload for
delta-able mutations (an added fact-dimension pair, an added order
edge/node), or a *barrier* (``None``) for mutations no delta covers
(fact removal).  The log is bounded: when more mutations happen between
two index queries than the log holds, :meth:`since` reports a gap and
the index falls back to a full rebuild — the log never affects
correctness, only whether the cheap path is available.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

__all__ = ["ChangeLog"]

#: Default bound: enough for bursty interactive mutation between
#: queries; bulk loads overflow it and take the (amortized-fine) rebuild.
DEFAULT_CAPACITY = 512


class ChangeLog:
    """One entry per version bump of the structure it shadows.

    Entries are ``(version, op)`` with strictly increasing versions —
    the structure records exactly one entry per counter increment, so a
    contiguity check is a plain count.  ``op`` is an opaque payload the
    consumer interprets; ``None`` marks a barrier (a non-delta-able
    mutation).
    """

    __slots__ = ("_entries",)

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._entries: Deque[Tuple[int, Optional[tuple]]] = deque(
            maxlen=capacity)

    def record(self, version: int, op: Optional[tuple]) -> None:
        """Log the operation that produced ``version`` (``None`` = a
        barrier: consumers must rebuild across it)."""
        self._entries.append((version, op))

    def since(self, version: int,
              current: int) -> Optional[List[tuple]]:
        """The ops for every bump in ``(version, current]``, oldest
        first — or ``None`` when the log cannot prove it covers the
        whole span (an entry aged out of the bounded log) or a barrier
        sits inside it."""
        if current == version:
            return []
        ops = [op for v, op in self._entries if version < v <= current]
        if len(ops) != current - version:
            return None  # a bump aged out of the log: coverage unprovable
        if any(op is None for op in ops):
            return None  # a barrier: this span includes a non-delta-able op
        return ops

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChangeLog({len(self._entries)} entries)"
