"""Annotated partial orders on dimension values (paper §3.1-§3.3).

The heart of the extended model is the partial order ``≤`` on dimension
values: ``e1 ≤ e2`` iff ``e1`` is *logically contained in* ``e2``.  The
basic model uses a plain order; the temporal extension attaches a set of
chronons to each relationship (``e1 ≤_Tv e2``); the uncertainty extension
attaches a probability (``e1 ≤_p e2``).  :class:`AnnotatedOrder` carries
both annotations on every *direct* edge and derives the transitive
relationships:

* time composes by intersection along a path and union across paths,
  exactly the paper's rule
  ``e1 ≤_{T1} e2 ∧ e2 ≤_{T2} e3 ⇒ e1 ≤_{T1∩T2} e3``;
* probability composes by product along a path and — our documented
  completion of the paper's §3.3 sketch — by *noisy-or* across parallel
  paths, under an independence assumption;
* the two compose jointly into a piecewise-constant *containment
  profile*: a partition of time into chronon sets with one probability
  each.

The untimed, certain model is the degenerate case where every edge is
annotated ``(ALWAYS, 1.0)``; all queries then collapse to ordinary DAG
reachability, for which a cached fast path is kept.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.changelog import ChangeLog
from repro.core.errors import SchemaError, UncertaintyError
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import ALWAYS, EMPTY, TimeSet

__all__ = ["AnnotatedOrder", "piecewise_noisy_or", "Annotation"]

Node = Hashable
#: One annotation: the chronon set and probability of a containment.
Annotation = Tuple[TimeSet, float]


def _check_prob(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise UncertaintyError(f"probability {p} outside [0, 1]")
    return float(p)


def piecewise_noisy_or(contributions: Iterable[Annotation]) -> List[Annotation]:
    """Combine parallel containment contributions into a disjoint profile.

    Each contribution says "contained with probability ``p`` during
    ``T``".  The result partitions the union of the ``T``'s into maximal
    chronon sets over which the combined probability — noisy-or,
    ``1 - Π(1 - p_i)`` over the contributions covering the piece — is
    constant.  Contributions with probability 0 are ignored; pieces are
    returned sorted by their first chronon.
    """
    contribs = [(ts, p) for ts, p in contributions if p > 0.0 and not ts.is_empty()]
    if not contribs:
        return []
    cuts: Set[Chronon] = set()
    for ts, _ in contribs:
        for start, end in ts.intervals:
            cuts.add(start)
            cuts.add(end + 1)
    ordered = sorted(cuts)
    by_prob: Dict[float, List[Tuple[Chronon, Chronon]]] = {}
    for lo, hi_excl in zip(ordered, ordered[1:]):
        hi = hi_excl - 1
        complement = 1.0
        covered = False
        for ts, p in contribs:
            if lo in ts:
                covered = True
                complement *= 1.0 - p
        if not covered:
            continue
        prob = 1.0 - complement
        if prob > 0.0:
            by_prob.setdefault(prob, []).append((lo, hi))
    profile = [(TimeSet.of(ivals), p) for p, ivals in by_prob.items()]
    profile.sort(key=lambda item: item[0].intervals)
    return profile


class AnnotatedOrder:
    """A DAG of direct containment edges with time/probability annotations.

    Nodes are arbitrary hashable objects (dimension values in
    :class:`repro.core.dimension.Dimension`, category types in
    :class:`repro.core.dimension.DimensionType`).  The order is the
    reflexive-transitive closure of the edges; reflexivity is implicit
    (``a ≤ a`` always, with probability 1).
    """

    def __init__(self) -> None:
        self._parents: Dict[Node, Dict[Node, List[Annotation]]] = {}
        self._children: Dict[Node, Dict[Node, List[Annotation]]] = {}
        self._nodes: Set[Node] = set()
        self._ancestor_cache: Dict[Node, Set[Node]] = {}
        self._descendant_cache: Dict[Node, Set[Node]] = {}
        self._version = 0
        self._log = ChangeLog()

    @property
    def version(self) -> int:
        """A mutation counter: bumped whenever a node or an effective
        edge is added.  Derived structures (reachability caches, the
        rollup index) compare versions to detect staleness lazily."""
        return self._version

    @property
    def change_log(self) -> ChangeLog:
        """The bounded per-bump mutation log: ``("node", node)`` and
        ``("edge", child, parent)`` entries the rollup index replays to
        patch closures instead of rebuilding them."""
        return self._log

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register a node with no edges (isolated values are legal)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._parents.setdefault(node, {})
            self._children.setdefault(node, {})
            self._version += 1
            self._log.record(self._version, ("node", node))

    def add_edge(
        self,
        child: Node,
        parent: Node,
        time: TimeSet = ALWAYS,
        prob: float = 1.0,
    ) -> None:
        """Record the direct containment ``child ≤ parent``.

        Multiple annotations for one edge are allowed (e.g. a containment
        that held during two periods with different certainty); equal
        probabilities merge their chronon sets to keep the data
        coalesced, as the paper requires.
        """
        _check_prob(prob)
        if child == parent:
            raise SchemaError(f"reflexive edge {child!r} ≤ {child!r} is implicit")
        if time.is_empty() or prob == 0.0:
            self.add_node(child)
            self.add_node(parent)
            return
        if self.reaches(parent, child):
            raise SchemaError(
                f"adding {child!r} ≤ {parent!r} would create a cycle"
            )
        self.add_node(child)
        self.add_node(parent)
        annotations = self._parents[child].setdefault(parent, [])
        merged = False
        for idx, (ts, p) in enumerate(annotations):
            if p == prob:
                annotations[idx] = (ts.union(time), p)
                merged = True
                break
        if not merged:
            annotations.append((time, prob))
        self._children[parent][child] = annotations
        self._ancestor_cache.clear()
        self._descendant_cache.clear()
        self._version += 1
        self._log.record(self._version, ("edge", child, parent))

    # -- structural queries --------------------------------------------------

    @property
    def nodes(self) -> Set[Node]:
        """All registered nodes."""
        return set(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def parents(self, node: Node) -> Set[Node]:
        """Direct parents (immediate containers) of ``node``."""
        return set(self._parents.get(node, ()))

    def children(self, node: Node) -> Set[Node]:
        """Direct children (immediately contained values) of ``node``."""
        return set(self._children.get(node, ()))

    def edges(self) -> Iterator[Tuple[Node, Node, TimeSet, float]]:
        """Iterate all direct edges with their annotations."""
        for child, parent_map in self._parents.items():
            for parent, annotations in parent_map.items():
                for time, prob in annotations:
                    yield child, parent, time, prob

    def edge_annotations(self, child: Node, parent: Node) -> List[Annotation]:
        """Annotations on the direct edge ``child ≤ parent`` (may be [])."""
        return list(self._parents.get(child, {}).get(parent, ()))

    def roots(self) -> Set[Node]:
        """Nodes with no parents (the maximal elements)."""
        return {n for n in self._nodes if not self._parents.get(n)}

    def leaves(self) -> Set[Node]:
        """Nodes with no children (the minimal elements)."""
        return {n for n in self._nodes if not self._children.get(n)}

    # -- reachability (untimed fast path) ------------------------------------

    def _ancestors_of(self, node: Node) -> Set[Node]:
        cached = self._ancestor_cache.get(node)
        if cached is not None:
            return cached
        result: Set[Node] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for parent in self._parents.get(current, ()):
                if parent not in result:
                    result.add(parent)
                    stack.append(parent)
        self._ancestor_cache[node] = result
        return result

    def reaches(self, lower: Node, upper: Node) -> bool:
        """True iff ``lower ≤ upper`` holds via the edges, *ignoring*
        time and probability (i.e., it held at some time with some
        positive probability).  Reflexive."""
        if lower == upper:
            return True
        return upper in self._ancestors_of(lower)

    def ancestors(self, node: Node, reflexive: bool = False) -> Set[Node]:
        """All nodes ``a`` with ``node ≤ a`` (optionally including
        ``node`` itself)."""
        result = set(self._ancestors_of(node))
        if reflexive:
            result.add(node)
        return result

    def _descendants_of(self, node: Node) -> Set[Node]:
        cached = self._descendant_cache.get(node)
        if cached is not None:
            return cached
        result: Set[Node] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for child in self._children.get(current, ()):
                if child not in result:
                    result.add(child)
                    stack.append(child)
        self._descendant_cache[node] = result
        return result

    def descendants(self, node: Node, reflexive: bool = False) -> Set[Node]:
        """All nodes ``d`` with ``d ≤ node``.  Cached symmetrically to
        :meth:`ancestors`; :meth:`add_edge` invalidates both caches."""
        result = set(self._descendants_of(node))
        if reflexive:
            result.add(node)
        return result

    def topological(self) -> List[Node]:
        """Nodes in a bottom-up topological order (children first)."""
        seen: Set[Node] = set()
        order: List[Node] = []

        def visit(node: Node) -> None:
            stack: List[Tuple[Node, bool]] = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if current in seen:
                    continue
                seen.add(current)
                stack.append((current, True))
                for child in self._children.get(current, ()):
                    if child not in seen:
                        stack.append((child, False))

        for node in self._nodes:
            visit(node)
        return order

    # -- annotated containment -------------------------------------------------

    def containment_profile(self, lower: Node, upper: Node) -> List[Annotation]:
        """The piecewise (time, probability) profile of ``lower ≤ upper``.

        Paths compose time by intersection and probability by product;
        parallel paths combine by noisy-or.  ``lower == upper`` yields
        ``[(ALWAYS, 1.0)]``; unrelated nodes yield ``[]``.
        """
        if lower == upper:
            return [(ALWAYS, 1.0)]
        if not self.reaches(lower, upper):
            return []
        contributions = self._path_contributions(lower, upper, {})
        return piecewise_noisy_or(contributions)

    def _path_contributions(
        self,
        lower: Node,
        upper: Node,
        memo: Dict[Node, List[Annotation]],
    ) -> List[Annotation]:
        """All per-path ``(time, prob)`` contributions from lower to upper."""
        if lower == upper:
            return [(ALWAYS, 1.0)]
        if lower in memo:
            return memo[lower]
        memo[lower] = []  # guards against re-entry; DAG has no cycles anyway
        out: List[Annotation] = []
        for parent, annotations in self._parents.get(lower, {}).items():
            if parent != upper and not self.reaches(parent, upper):
                continue
            rest = self._path_contributions(parent, upper, memo)
            for e_time, e_prob in annotations:
                for r_time, r_prob in rest:
                    joint = e_time.intersection(r_time)
                    prob = e_prob * r_prob
                    if not joint.is_empty() and prob > 0.0:
                        out.append((joint, prob))
        memo[lower] = out
        return out

    def containment_time(self, lower: Node, upper: Node) -> TimeSet:
        """The chronon set during which ``lower ≤ upper`` holds with any
        positive probability (union over the profile)."""
        profile = self.containment_profile(lower, upper)
        acc = EMPTY
        for time, _ in profile:
            acc = acc.union(time)
        return acc

    def containment_probability(
        self, lower: Node, upper: Node, at: Optional[Chronon] = None
    ) -> float:
        """The probability that ``lower ≤ upper`` at chronon ``at``
        (or at any time if ``at`` is None, taking the max over pieces)."""
        profile = self.containment_profile(lower, upper)
        if at is None:
            return max((p for _, p in profile), default=0.0)
        for time, p in profile:
            if at in time:
                return p
        return 0.0

    def leq(self, lower: Node, upper: Node, at: Optional[Chronon] = None) -> bool:
        """The certain containment test ``lower ≤ upper``.

        With ``at`` given, containment must hold at that chronon; without
        it, containment at any time qualifies (the untimed view).
        """
        if lower == upper:
            return True
        if at is None:
            return self.reaches(lower, upper)
        return self.containment_probability(lower, upper, at) > 0.0

    def ancestors_at(self, node: Node, at: Chronon) -> Set[Node]:
        """Ancestors of ``node`` whose containment holds at chronon ``at``."""
        return {a for a in self._ancestors_of(node) if self.leq(node, a, at=at)}

    # -- derived orders -----------------------------------------------------------

    def restricted_to(self, nodes: Set[Node]) -> "AnnotatedOrder":
        """The restriction of the order's *closure* to ``nodes``.

        Matches the paper's subdimension definition: ``e1 ≤' e2`` iff
        both survive and ``e1 ≤ e2`` held before.  Edges of the result
        connect each kept node to its kept ancestors that have no kept
        node strictly between them, carrying the full containment
        profile, so the restricted closure equals the restricted order.
        """
        result = AnnotatedOrder()
        kept = {n for n in nodes if n in self._nodes}
        for node in kept:
            result.add_node(node)
        for node in kept:
            ancestors = self._ancestors_of(node) & kept
            for anc in ancestors:
                between = (self._ancestors_of(node) & self.descendants(anc)) & kept
                if between:
                    continue  # an intermediate kept node carries the path
                for time, prob in self.containment_profile(node, anc):
                    result.add_edge(node, anc, time=time, prob=prob)
        return result

    def union(self, other: "AnnotatedOrder") -> "AnnotatedOrder":
        """The union of two orders (paper's ``∪_D`` component).

        Edges present in both merge their chronon sets per the temporal
        union rule ``e1 ≤_{T1} e2 ∧ e1 ≤_{T2} e2 ⇒ e1 ≤_{T1∪T2} e2``;
        equal probabilities coalesce, differing ones are kept side by
        side.
        """
        result = AnnotatedOrder()
        for node in self._nodes | other._nodes:
            result.add_node(node)
        for source in (self, other):
            for child, parent, time, prob in source.edges():
                result.add_edge(child, parent, time=time, prob=prob)
        return result

    def copy(self) -> "AnnotatedOrder":
        """An independent copy of the order."""
        return self.union(AnnotatedOrder())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnnotatedOrder({len(self._nodes)} nodes)"
