"""Fact-dimension relations (paper §3.1-§3.3).

A fact-dimension relation ``R = {(f, e)}`` links facts to dimension
values — at *any* level of the dimension, which is how the model records
data of different granularity (a patient can be linked to the imprecise
"Diabetes" family as well as to a precise low-level diagnosis), and with
arbitrarily many pairs per fact, which is how it captures many-to-many
relationships between facts and dimensions.

Each pair may carry a valid-time chronon set (``(f, e) ∈_Tv R``, §3.2)
and a probability (``(f, e) ∈_p R``, §3.3).  The derived characterization
``f ⇝ e`` — "fact f is characterized by value e" — holds when some base
pair ``(f, e1)`` exists with ``e1 ≤ e``; its temporal/probabilistic
variants compose the pair's annotation with the order's containment
profile.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.changelog import ChangeLog
from repro.core.dimension import Dimension
from repro.core.errors import InstanceError, UncertaintyError
from repro.core.order import Annotation, piecewise_noisy_or
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import ALWAYS, EMPTY, TimeSet

__all__ = ["FactDimensionRelation"]

Pair = Tuple[Fact, DimensionValue]


class FactDimensionRelation:
    """The set of ``(fact, value)`` pairs of one dimension of an MO,
    with optional time and probability annotations per pair."""

    def __init__(self, dimension_name: str) -> None:
        self._dimension_name = dimension_name
        self._entries: Dict[Pair, List[Annotation]] = {}
        self._by_fact: Dict[Fact, Set[DimensionValue]] = {}
        self._by_value: Dict[DimensionValue, Set[Fact]] = {}
        self._version = 0
        self._log = ChangeLog()

    @property
    def dimension_name(self) -> str:
        """Name of the dimension this relation characterizes facts in."""
        return self._dimension_name

    @property
    def version(self) -> int:
        """A mutation counter: bumped on every effective :meth:`add` /
        :meth:`remove_fact`.  The rollup index compares it to the version
        captured at build time to invalidate stale closures lazily.

        Derived relations (:meth:`union`, :meth:`restricted_to_facts`,
        :meth:`copy`) are fresh objects whose counters start over — they
        never inherit this relation's counter, so an index keyed on
        ``(relation identity, version)`` can never confuse a copy with
        its source and observe a stale closure through it.
        """
        return self._version

    @property
    def change_log(self) -> ChangeLog:
        """The bounded per-bump mutation log: ``("add", fact, value)``
        entries for pair additions, barriers for :meth:`remove_fact` —
        the rollup index replays additions as closure deltas and falls
        back to a full rebuild across barriers."""
        return self._log

    # -- population -------------------------------------------------------

    def add(
        self,
        fact: Fact,
        value: DimensionValue,
        time: TimeSet = ALWAYS,
        prob: float = 1.0,
    ) -> None:
        """Record ``(fact, value) ∈_Tv,p R``.

        Annotations with equal probability merge their chronon sets so
        the relation stays coalesced (no value-equivalent pairs).
        """
        if not 0.0 <= prob <= 1.0:
            raise UncertaintyError(f"probability {prob} outside [0, 1]")
        if time.is_empty() or prob == 0.0:
            return
        key = (fact, value)
        annotations = self._entries.setdefault(key, [])
        for idx, (ts, p) in enumerate(annotations):
            if p == prob:
                annotations[idx] = (ts.union(time), p)
                break
        else:
            annotations.append((time, prob))
        self._by_fact.setdefault(fact, set()).add(value)
        self._by_value.setdefault(value, set()).add(fact)
        self._version += 1
        self._log.record(self._version, ("add", fact, value))

    def remove_fact(self, fact: Fact) -> None:
        """Drop every pair involving ``fact``."""
        removed = self._by_fact.pop(fact, set())
        for value in removed:
            self._entries.pop((fact, value), None)
            facts = self._by_value.get(value)
            if facts is not None:
                facts.discard(fact)
                if not facts:
                    del self._by_value[value]
        if removed:
            self._version += 1
            self._log.record(self._version, None)  # not delta-able

    # -- base-pair queries --------------------------------------------------

    def pairs(self) -> Iterator[Pair]:
        """Iterate all base pairs (untimed view)."""
        return iter(self._entries)

    def annotated_pairs(self) -> Iterator[Tuple[Fact, DimensionValue,
                                                TimeSet, float]]:
        """Iterate ``(fact, value, time, prob)`` for every annotation."""
        for (fact, value), annotations in self._entries.items():
            for time, prob in annotations:
                yield fact, value, time, prob

    def annotations(self, fact: Fact, value: DimensionValue) -> List[Annotation]:
        """The annotations of one pair (empty list if absent)."""
        return list(self._entries.get((fact, value), ()))

    def pair_time(self, fact: Fact, value: DimensionValue) -> TimeSet:
        """The chronon set during which ``(fact, value) ∈ R`` with any
        positive probability."""
        acc = EMPTY
        for time, _ in self._entries.get((fact, value), ()):
            acc = acc.union(time)
        return acc

    def contains(self, fact: Fact, value: DimensionValue,
                 at: Optional[Chronon] = None) -> bool:
        """Base-pair membership test (``(f, e) ∈ R``)."""
        annotations = self._entries.get((fact, value))
        if not annotations:
            return False
        if at is None:
            return True
        return any(at in time for time, _ in annotations)

    def facts(self) -> Set[Fact]:
        """All facts appearing in the relation."""
        return set(self._by_fact)

    def values_of(self, fact: Fact) -> Set[DimensionValue]:
        """The base values a fact is directly related to."""
        return set(self._by_fact.get(fact, ()))

    def facts_of(self, value: DimensionValue) -> Set[Fact]:
        """The facts directly related to a value."""
        return set(self._by_value.get(value, ()))

    def values(self) -> Set[DimensionValue]:
        """All values appearing in the relation."""
        return set(self._by_value)

    def __len__(self) -> int:
        return len(self._entries)

    # -- characterization (f ⇝ e) ------------------------------------------------

    def characterizes(
        self,
        fact: Fact,
        value: DimensionValue,
        dimension: Dimension,
        at: Optional[Chronon] = None,
    ) -> bool:
        """The paper's ``f ⇝ e``: some base pair ``(f, e1)`` exists with
        ``e1 ≤ e`` (at chronon ``at`` when given: ``f ⇝_t e``)."""
        for base in self._by_fact.get(fact, ()):
            if not dimension.leq(base, value, at=at):
                continue
            if at is None:
                return True
            if self.contains(fact, base, at=at):
                return True
        return False

    def characterization_time(self, fact: Fact, value: DimensionValue,
                              dimension: Dimension) -> TimeSet:
        """The chronon set during which ``f ⇝ e`` holds: union over base
        values of (pair time ∩ containment time)."""
        acc = EMPTY
        for base in self._by_fact.get(fact, ()):
            pair_time = self.pair_time(fact, base)
            if pair_time.is_empty():
                continue
            containment = dimension.containment_time(base, value)
            acc = acc.union(pair_time.intersection(containment))
        return acc

    def characterization_profile(
        self, fact: Fact, value: DimensionValue, dimension: Dimension
    ) -> List[Annotation]:
        """The piecewise ``(time, probability)`` profile of ``f ⇝ e``.

        Per base pair and per containment piece, probabilities multiply
        (pair certainty × containment certainty); parallel base pairs
        combine by noisy-or, mirroring the order's parallel-path rule.
        """
        contributions: List[Annotation] = []
        for base in self._by_fact.get(fact, ()):
            for pair_time, pair_prob in self._entries.get((fact, base), ()):
                for cont_time, cont_prob in dimension.containment_profile(
                        base, value):
                    joint = pair_time.intersection(cont_time)
                    prob = pair_prob * cont_prob
                    if not joint.is_empty() and prob > 0.0:
                        contributions.append((joint, prob))
        return piecewise_noisy_or(contributions)

    def characterization_probability(
        self,
        fact: Fact,
        value: DimensionValue,
        dimension: Dimension,
        at: Optional[Chronon] = None,
    ) -> float:
        """The probability of ``f ⇝ e`` (max over time when ``at`` is
        omitted)."""
        profile = self.characterization_profile(fact, value, dimension)
        if at is None:
            return max((p for _, p in profile), default=0.0)
        for time, p in profile:
            if at in time:
                return p
        return 0.0

    def facts_characterized_by(
        self,
        value: DimensionValue,
        dimension: Dimension,
        at: Optional[Chronon] = None,
    ) -> Set[Fact]:
        """All facts ``f`` with ``f ⇝ value`` — the workhorse of
        grouping.  Computed from the value's descendants so it does not
        scan unrelated facts.

        This is the *naive* evaluation: one descendant walk per call.
        Hot paths go through :class:`repro.engine.rollup_index.RollupIndex`
        instead, which precomputes the closure once per dimension; this
        method is kept as the fallback and as the oracle the index's
        equivalence tests compare against."""
        candidates: Set[Fact] = set()
        for desc in dimension.descendants(value, reflexive=True):
            candidates |= self._by_value.get(desc, set())
        if at is None:
            return candidates
        return {
            f for f in candidates
            if self.characterizes(f, value, dimension, at=at)
        }

    # -- copying / restriction -------------------------------------------------------

    def restricted_to_facts(self, facts: Set[Fact]) -> "FactDimensionRelation":
        """The relation restricted to the given fact set (selection and
        difference restrict this way)."""
        result = FactDimensionRelation(self._dimension_name)
        for (fact, value), annotations in self._entries.items():
            if fact in facts:
                for time, prob in annotations:
                    result.add(fact, value, time=time, prob=prob)
        return result

    def union(self, other: "FactDimensionRelation") -> "FactDimensionRelation":
        """Set union with the paper's temporal rule: chronon sets of
        pairs present in both operands are unioned."""
        result = FactDimensionRelation(self._dimension_name)
        for source in (self, other):
            for fact, value, time, prob in source.annotated_pairs():
                result.add(fact, value, time=time, prob=prob)
        return result

    def copy(self) -> "FactDimensionRelation":
        """An independent copy."""
        return self.union(FactDimensionRelation(self._dimension_name))

    def validate_against(self, facts: Set[Fact], dimension: Dimension) -> None:
        """Check the MO invariants that concern this relation: every pair's
        fact is in the fact set and its value is in some category of the
        dimension; every fact has at least one pair (no missing values).
        """
        related: Set[Fact] = set()
        for fact, value in self._entries:
            if fact not in facts:
                raise InstanceError(
                    f"relation {self._dimension_name!r} mentions unknown "
                    f"fact {fact!r}"
                )
            if value not in dimension:
                raise InstanceError(
                    f"relation {self._dimension_name!r} mentions value "
                    f"{value!r} outside dimension {dimension.name!r}"
                )
            related.add(fact)
        missing = facts - related
        if missing:
            raise InstanceError(
                f"facts {sorted(missing, key=repr)!r} have no value in "
                f"dimension {self._dimension_name!r}; the paper disallows "
                f"missing values — relate them to ⊤ instead"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FactDimensionRelation({self._dimension_name}, "
                f"{len(self._entries)} pairs)")
