"""Multidimensional objects (paper §3.1-§3.2).

A *multidimensional object* (MO) is a four-tuple ``M = (S, F, D, R)``:
a fact schema, a set of facts, one dimension per dimension type, and one
fact-dimension relation per dimension.  MOs are the operands and results
of the algebra (§4).

Temporal classification (§3.2): an MO is a *snapshot* MO when no time is
attached, a *valid-time* or *transaction-time* MO when one kind of time
is attached, and a *bitemporal* MO when both are (see
:mod:`repro.temporal.bitemporal` and
:class:`repro.temporal.timeslice` for the bitemporal wrapper and the
timeslice operators).  The annotations themselves are uniform —
:class:`~repro.temporal.timeset.TimeSet` chronon sets — so a single
implementation serves all kinds; :class:`TimeKind` records which reading
applies.

A *multidimensional object family* is a collection of MOs, possibly with
shared subdimensions, which can be used to "join" data from separate
MOs; :class:`MOFamily` implements the collection and the shared-
subdimension check.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine layer)
    from repro.engine.rollup_index import RollupIndex

from repro.core.changelog import ChangeLog
from repro.core.dimension import Dimension
from repro.core.errors import InstanceError, SchemaError
from repro.core.factdim import FactDimensionRelation
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import ALWAYS, TimeSet

__all__ = ["TimeKind", "MultidimensionalObject", "MOFamily"]


class TimeKind(enum.Enum):
    """Which kind of time the MO's annotations denote (paper §3.2)."""

    #: no time attached; all annotations are ALWAYS.
    SNAPSHOT = "snapshot"
    #: annotations denote valid time (truth in the modeled reality).
    VALID = "valid-time"
    #: annotations denote transaction time (presence in the database).
    TRANSACTION = "transaction-time"


class MultidimensionalObject:
    """An MO ``M = (S, F, D, R)`` with optional temporal reading.

    Build one by passing the schema and then populating dimensions and
    relations, or use the fluent helpers :meth:`add_fact` /
    :meth:`relate`.  Call :meth:`validate` to check every invariant the
    paper imposes; the algebra validates its results in closure tests.
    """

    def __init__(
        self,
        schema: FactSchema,
        facts: Optional[Iterable[Fact]] = None,
        dimensions: Optional[Dict[str, Dimension]] = None,
        relations: Optional[Dict[str, FactDimensionRelation]] = None,
        kind: TimeKind = TimeKind.SNAPSHOT,
    ) -> None:
        self._schema = schema
        self._facts: Set[Fact] = set(facts or ())
        self._facts_version = 0
        self._fact_log = ChangeLog()
        self._dimensions: Dict[str, Dimension] = {}
        self._relations: Dict[str, FactDimensionRelation] = {}
        self._kind = kind
        for name in schema.dimension_names:
            if dimensions and name in dimensions:
                self._dimensions[name] = dimensions[name]
            else:
                self._dimensions[name] = Dimension(schema.dimension_type(name))
            if relations and name in relations:
                self._relations[name] = relations[name]
            else:
                self._relations[name] = FactDimensionRelation(name)
        extra_dims = set(dimensions or ()) - set(schema.dimension_names)
        extra_rels = set(relations or ()) - set(schema.dimension_names)
        if extra_dims or extra_rels:
            raise SchemaError(
                f"dimensions/relations {extra_dims | extra_rels} not in schema"
            )
        self._rollup_index = None

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self) -> FactSchema:
        """The fact schema ``S``."""
        return self._schema

    @property
    def facts(self) -> Set[Fact]:
        """The fact set ``F`` (a *set*: no duplicate facts)."""
        return set(self._facts)

    @property
    def facts_version(self) -> int:
        """Mutation counter of the fact set ``F`` — bumped whenever a
        fact is actually added, so the rollup index can cache views of
        ``F`` (the fact set only grows; removal happens by constructing
        a new, restricted MO)."""
        return self._facts_version

    @property
    def fact_log(self) -> ChangeLog:
        """The bounded per-bump log of fact insertions (``("add",
        fact)`` entries) — the rollup index patches its interned view of
        ``F`` from it instead of re-interning the whole fact set."""
        return self._fact_log

    @property
    def kind(self) -> TimeKind:
        """The MO's temporal kind."""
        return self._kind

    @property
    def n(self) -> int:
        """Dimensionality."""
        return self._schema.n

    @property
    def dimension_names(self) -> Sequence[str]:
        """The dimension names, in schema order."""
        return self._schema.dimension_names

    def dimension(self, name: str) -> Dimension:
        """The dimension ``D_i`` named ``name``."""
        if name not in self._dimensions:
            raise SchemaError(f"MO has no dimension {name!r}")
        return self._dimensions[name]

    def relation(self, name: str) -> FactDimensionRelation:
        """The fact-dimension relation ``R_i`` for dimension ``name``."""
        if name not in self._relations:
            raise SchemaError(f"MO has no relation for dimension {name!r}")
        return self._relations[name]

    def dimensions(self) -> List[Dimension]:
        """All dimensions, in schema order."""
        return [self._dimensions[n] for n in self._schema.dimension_names]

    def relations(self) -> List[FactDimensionRelation]:
        """All fact-dimension relations, in schema order."""
        return [self._relations[n] for n in self._schema.dimension_names]

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    # -- population helpers ------------------------------------------------------

    def add_fact(self, fact: Fact) -> Fact:
        """Add a fact to ``F`` (idempotent; returns the fact)."""
        if fact.ftype != self._schema.fact_type:
            raise InstanceError(
                f"fact {fact!r} has type {fact.ftype!r}, schema expects "
                f"{self._schema.fact_type!r}"
            )
        if fact not in self._facts:
            self._facts.add(fact)
            self._facts_version += 1
            self._fact_log.record(self._facts_version, ("add", fact))
        return fact

    def relate(
        self,
        fact: Fact,
        dimension_name: str,
        value: DimensionValue,
        time: TimeSet = ALWAYS,
        prob: float = 1.0,
    ) -> None:
        """Record ``(fact, value) ∈ R_i`` (adding the fact if needed)."""
        if fact not in self._facts:
            self.add_fact(fact)
        dimension = self.dimension(dimension_name)
        if value not in dimension:
            raise InstanceError(
                f"value {value!r} is not in dimension {dimension_name!r}"
            )
        self._relations[dimension_name].add(fact, value, time=time, prob=prob)

    def relate_unknown(self, fact: Fact, dimension_name: str,
                       time: TimeSet = ALWAYS) -> None:
        """Record that the fact cannot be characterized in this dimension
        — the pair ``(f, ⊤)`` the paper prescribes instead of a missing
        value."""
        top = self.dimension(dimension_name).top_value
        self.relate(fact, dimension_name, top, time=time)

    # -- characterization shortcuts ---------------------------------------------------

    def rollup_index(self) -> "RollupIndex":
        """The MO's :class:`~repro.engine.rollup_index.RollupIndex`.

        Created lazily on first use and shared by every hot path that
        groups this MO's facts.  The index is *versioned*: it snapshots
        each dimension's order/relation mutation counters and rebuilds
        only the dimensions that changed, so holding on to it across
        mutations is safe (queries after a mutation see fresh closures).
        """
        if self._rollup_index is None:
            from repro.engine.rollup_index import RollupIndex

            self._rollup_index = RollupIndex(self)
        return self._rollup_index

    def characterizes(self, fact: Fact, dimension_name: str,
                      value: DimensionValue,
                      at: Optional[Chronon] = None) -> bool:
        """``f ⇝ e`` in the named dimension."""
        return self._relations[dimension_name].characterizes(
            fact, value, self._dimensions[dimension_name], at=at)

    def group(self, values: Dict[str, DimensionValue],
              at: Optional[Chronon] = None) -> Set[Fact]:
        """The paper's ``Group(e_1, .., e_n)``: the facts characterized
        by every given value.  Dimensions omitted from ``values`` are
        unconstrained (equivalently, constrained by their ⊤ value)."""
        index = self.rollup_index()
        result: Optional[Set[Fact]] = None
        for name, value in values.items():
            matched = index.facts_characterized_by(name, value, at=at)
            result = matched if result is None else (result & matched)
            if not result:
                return set()
        return self._facts & result if result is not None else set(self._facts)

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every instance-level invariant of the paper's definition:

        * each dimension matches its dimension type;
        * each relation's pairs stay within ``F`` and the dimension;
        * no fact lacks a characterization in any dimension (missing
          values are disallowed; use ``(f, ⊤)``);
        * all facts bear the schema's fact type.
        """
        for fact in self._facts:
            if fact.ftype != self._schema.fact_type:
                raise InstanceError(
                    f"fact {fact!r} has type {fact.ftype!r} but schema says "
                    f"{self._schema.fact_type!r}"
                )
        for name in self._schema.dimension_names:
            dimension = self._dimensions[name]
            if dimension.dtype.name != name:
                raise SchemaError(
                    f"dimension under key {name!r} has type "
                    f"{dimension.dtype.name!r}"
                )
            self._relations[name].validate_against(self._facts, dimension)

    def is_valid(self) -> bool:
        """True iff :meth:`validate` passes."""
        try:
            self.validate()
        except (InstanceError, SchemaError):
            return False
        return True

    # -- copying ------------------------------------------------------------------------

    def copy(self) -> "MultidimensionalObject":
        """An independent deep copy."""
        return MultidimensionalObject(
            schema=self._schema,
            facts=self._facts,
            dimensions={n: d.copy() for n, d in self._dimensions.items()},
            relations={n: r.copy() for n, r in self._relations.items()},
            kind=self._kind,
        )

    def with_kind(self, kind: TimeKind) -> "MultidimensionalObject":
        """The same MO re-labeled with another temporal kind (used by the
        timeslice operators, which change the temporal type)."""
        return MultidimensionalObject(
            schema=self._schema, facts=self._facts,
            dimensions=self._dimensions, relations=self._relations, kind=kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MO({self._schema.fact_type}; |F|={len(self._facts)}, "
                f"n={self.n}, {self._kind.value})")


class MOFamily:
    """A collection of MOs, possibly with shared subdimensions.

    The paper introduces MO families so shared subdimensions can "join"
    data from separate MOs; :meth:`shared_dimension_names` surfaces which
    dimension types two members have in common, and
    :meth:`is_subdimension_shared` checks value-level compatibility (the
    categories of one are a sub-extension of the other's).
    """

    def __init__(self) -> None:
        self._members: Dict[str, MultidimensionalObject] = {}

    def add(self, name: str, mo: MultidimensionalObject) -> None:
        """Register a member MO under a name."""
        if name in self._members:
            raise SchemaError(f"MO family already has a member {name!r}")
        self._members[name] = mo

    def member(self, name: str) -> MultidimensionalObject:
        """Fetch a member by name."""
        if name not in self._members:
            raise SchemaError(f"MO family has no member {name!r}")
        return self._members[name]

    def names(self) -> List[str]:
        """Member names, in insertion order."""
        return list(self._members)

    def __iter__(self) -> Iterator[MultidimensionalObject]:
        return iter(self._members.values())

    def __len__(self) -> int:
        return len(self._members)

    def shared_dimension_names(self, first: str, second: str) -> Set[str]:
        """Dimension type names present in both members."""
        a = set(self.member(first).dimension_names)
        b = set(self.member(second).dimension_names)
        return a & b

    def is_subdimension_shared(self, first: str, second: str,
                               dimension_name: str) -> bool:
        """True iff the named dimension of one member is a subdimension
        of the other's (same categories restricted, same order)."""
        da = self.member(first).dimension(dimension_name)
        db = self.member(second).dimension(dimension_name)
        small, large = (da, db) if len(da.values()) <= len(db.values()) else (db, da)
        for category in small.categories():
            large_cat = large.category(category.name)
            for value, time in category.items():
                if not large_cat.membership_time(value).issubset(
                        time.union(large_cat.membership_time(value))):
                    return False
                if value not in large_cat:
                    return False
        for child, parent, time, prob in small.order.edges():
            large_time = large.containment_time(child, parent)
            if not time.issubset(large_time):
                return False
        return True
