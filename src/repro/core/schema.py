"""Fact schemas (paper §3.1).

An *n-dimensional fact schema* is a two-tuple ``S = (F, D)`` where ``F``
is the fact type and ``D = {T_i}`` the corresponding dimension types.
In the case study, ``Patient`` is the fact type and *everything* that
characterizes it — Diagnosis, Residence, Age, Date of Birth, Name, SSN —
is dimensional, including attributes other models would call measures;
this is how the model treats dimensions and measures symmetrically.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.dimension import DimensionType
from repro.core.errors import SchemaError

__all__ = ["FactSchema"]


class FactSchema:
    """An n-dimensional fact schema ``S = (F, {T_1, .., T_n})``.

    Dimension types are identified by their (unique) names; the schema
    preserves their given order for display but compares as a set, per
    the paper's tuple-of-sets definition.
    """

    def __init__(self, fact_type: str,
                 dimension_types: Sequence[DimensionType]) -> None:
        self._fact_type = fact_type
        self._dtypes: Dict[str, DimensionType] = {}
        for dtype in dimension_types:
            if dtype.name in self._dtypes:
                raise SchemaError(
                    f"duplicate dimension type {dtype.name!r} in schema"
                )
            self._dtypes[dtype.name] = dtype

    @property
    def fact_type(self) -> str:
        """The fact type ``F`` (e.g. ``Patient``)."""
        return self._fact_type

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        """The dimension type names, in declaration order."""
        return tuple(self._dtypes)

    @property
    def n(self) -> int:
        """The schema's dimensionality."""
        return len(self._dtypes)

    def dimension_type(self, name: str) -> DimensionType:
        """Look up a dimension type by name."""
        if name not in self._dtypes:
            raise SchemaError(f"schema has no dimension type {name!r}")
        return self._dtypes[name]

    def dimension_types(self) -> List[DimensionType]:
        """All dimension types, in declaration order."""
        return list(self._dtypes.values())

    def __contains__(self, name: object) -> bool:
        return name in self._dtypes

    def __iter__(self) -> Iterator[DimensionType]:
        return iter(self._dtypes.values())

    def __eq__(self, other: object) -> bool:
        """Schemas are equal when fact types match and the dimension
        types are pairwise isomorphic (the precondition of ∪ and \\)."""
        if not isinstance(other, FactSchema):
            return NotImplemented
        if self._fact_type != other._fact_type:
            return False
        if set(self._dtypes) != set(other._dtypes):
            return False
        return all(
            self._dtypes[name].is_isomorphic_to(other._dtypes[name])
            for name in self._dtypes
        )

    def __hash__(self) -> int:
        return hash((self._fact_type, frozenset(self._dtypes)))

    def is_isomorphic_to(self, other: "FactSchema") -> bool:
        """Structural match up to dimension names: same fact type, same
        number of dimensions, and a name-respecting isomorphism is not
        required — rename's precondition."""
        return (self._fact_type == other._fact_type
                and self.n == other.n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(self._dtypes)
        return f"FactSchema({self._fact_type}; {dims})"
