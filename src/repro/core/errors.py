"""Exception hierarchy (public location).

The definitions live in :mod:`repro._errors` — a top-level module with
no package side effects — so that :mod:`repro.temporal` (imported by
the core package) can use them without a circular import.  Import from
here in user code.
"""

from repro._errors import (
    AggregationTypeError,
    AlgebraError,
    InstanceError,
    ReproError,
    SchemaError,
    StaticAnalysisError,
    SummarizabilityWarning,
    TemporalError,
    UncertaintyError,
)

__all__ = [
    "ReproError",
    "SchemaError",
    "InstanceError",
    "AlgebraError",
    "AggregationTypeError",
    "SummarizabilityWarning",
    "StaticAnalysisError",
    "TemporalError",
    "UncertaintyError",
]
