"""Category types, categories, and representations (paper §3.1).

A *category type* names one level of a dimension type and carries its
aggregation type (the paper's ``Aggtype_T``).  A *category* is a set of
dimension values of one category type; membership may be timestamped
(``e ∈_Tv C``, paper §3.2).  A *representation* is a bijective mapping
between a category's values and real-world names — the paper's "alternate
key" (e.g., the ``Code`` and ``Text`` representations of diagnoses); the
mapping may change over time (``Rep(e) =_Tv v``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.core.aggtypes import AggregationType
from repro.core.errors import InstanceError, SchemaError
from repro.core.values import DimensionValue
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import ALWAYS, EMPTY, TimeSet

__all__ = ["CategoryType", "Category", "Representation"]


@dataclass(frozen=True)
class CategoryType:
    """A category type: a named level of a dimension type.

    ``aggtype`` is the aggregation type the paper assigns per category
    type (e.g. ``Aggtype(Age) = ⊕``, ``Aggtype(Low-level Diagnosis) = c``).
    ``is_top`` / ``is_bottom`` mark the ``⊤_T`` and ``⊥_T`` elements of
    the dimension type's lattice.
    """

    name: str
    aggtype: AggregationType = AggregationType.CONSTANT
    is_top: bool = False
    is_bottom: bool = False

    @classmethod
    def top(cls, dimension_name: str) -> "CategoryType":
        """The ``⊤`` category type of the named dimension type.

        Top categories hold the single ``⊤`` value, which can only be
        counted, hence aggregation type ``c``.
        """
        return cls(name=f"⊤{dimension_name}", aggtype=AggregationType.CONSTANT,
                   is_top=True)

    def __repr__(self) -> str:
        return f"CategoryType({self.name}:{self.aggtype.symbol})"


class Category:
    """A category: a timestamped set of dimension values of one type.

    The basic (snapshot) model is the special case where every
    membership is annotated :data:`~repro.temporal.timeset.ALWAYS`.
    """

    def __init__(self, ctype: CategoryType) -> None:
        self._ctype = ctype
        self._members: Dict[DimensionValue, TimeSet] = {}

    @property
    def ctype(self) -> CategoryType:
        """The category's type (the paper's ``Type(C)``)."""
        return self._ctype

    @property
    def name(self) -> str:
        """Shorthand for the category type's name."""
        return self._ctype.name

    def add(self, value: DimensionValue, time: TimeSet = ALWAYS) -> None:
        """Add ``value`` with membership time ``time`` (``e ∈_Tv C``).

        Re-adding a value unions the chronon sets, keeping the
        membership coalesced as the paper requires.
        """
        if time.is_empty():
            return
        current = self._members.get(value, EMPTY)
        self._members[value] = current.union(time)

    def discard(self, value: DimensionValue) -> None:
        """Remove a value entirely (all chronons)."""
        self._members.pop(value, None)

    def membership_time(self, value: DimensionValue) -> TimeSet:
        """The chronon set during which ``value`` belongs to the
        category (empty if it never does)."""
        return self._members.get(value, EMPTY)

    def members(self, at: Optional[Chronon] = None) -> Set[DimensionValue]:
        """The member values — all of them, or those current at ``at``."""
        if at is None:
            return set(self._members)
        return {v for v, ts in self._members.items() if at in ts}

    def contains(self, value: DimensionValue, at: Optional[Chronon] = None) -> bool:
        """Membership test, optionally at a specific chronon."""
        ts = self._members.get(value)
        if ts is None:
            return False
        return True if at is None else at in ts

    def items(self) -> Iterator[Tuple[DimensionValue, TimeSet]]:
        """Iterate ``(value, membership time)`` pairs."""
        return iter(self._members.items())

    def copy(self) -> "Category":
        """An independent copy."""
        dup = Category(self._ctype)
        dup._members = dict(self._members)
        return dup

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[DimensionValue]:
        return iter(self._members)

    def __contains__(self, value: object) -> bool:
        return value in self._members

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Category({self.name}, {len(self._members)} values)"


class Representation:
    """A timestamped bijection between category values and names.

    The paper requires each representation to be bijective — "a value of
    a representation uniquely identifies a single value of a category and
    vice versa" — at every point in time; across time both sides may
    change (Example 6 / Example 9: ``Code(8) =_{[01/01/70-31/12/79]} D1``).
    """

    def __init__(self, name: str) -> None:
        self._name = name
        # per value: list of (rep value, time) with pairwise disjoint times
        self._forward: Dict[DimensionValue, List[Tuple[Hashable, TimeSet]]] = {}
        # per rep value: list of (value, time) with pairwise disjoint times
        self._backward: Dict[Hashable, List[Tuple[DimensionValue, TimeSet]]] = {}

    @property
    def name(self) -> str:
        """The representation's name (e.g. ``Code`` or ``Text``)."""
        return self._name

    def assign(
        self,
        value: DimensionValue,
        rep_value: Hashable,
        time: TimeSet = ALWAYS,
    ) -> None:
        """Record ``Rep(value) =_time rep_value``.

        Raises :class:`SchemaError` if the assignment would break
        bijectivity at any chronon (the same value naming two things, or
        the same name denoting two values, at once).
        """
        if time.is_empty():
            return
        for other_rep, other_time in self._forward.get(value, ()):
            if other_rep != rep_value and other_time.overlaps(time):
                raise SchemaError(
                    f"representation {self._name}: value {value!r} would map to "
                    f"both {other_rep!r} and {rep_value!r} at overlapping times"
                )
        for other_value, other_time in self._backward.get(rep_value, ()):
            if other_value != value and other_time.overlaps(time):
                raise SchemaError(
                    f"representation {self._name}: name {rep_value!r} would denote "
                    f"both {other_value!r} and {value!r} at overlapping times"
                )
        self._merge(self._forward.setdefault(value, []), rep_value, time)
        self._merge(self._backward.setdefault(rep_value, []), value, time)

    @staticmethod
    def _merge(entries: List[Tuple[Hashable, TimeSet]], key: Hashable,
               time: TimeSet) -> None:
        for idx, (existing, ts) in enumerate(entries):
            if existing == key:
                entries[idx] = (existing, ts.union(time))
                return
        entries.append((key, time))

    def of(self, value: DimensionValue,
           at: Optional[Chronon] = None) -> Optional[Hashable]:
        """``Rep(value)`` at chronon ``at`` (or the current/only name when
        ``at`` is None: the name valid latest)."""
        entries = self._forward.get(value, ())
        if not entries:
            return None
        if at is None:
            return max(entries, key=lambda e: e[1].max())[0]
        for rep_value, ts in entries:
            if at in ts:
                return rep_value
        return None

    def value_of(self, rep_value: Hashable,
                 at: Optional[Chronon] = None) -> Optional[DimensionValue]:
        """The inverse lookup: the value named ``rep_value`` at ``at``."""
        entries = self._backward.get(rep_value, ())
        if not entries:
            return None
        if at is None:
            return max(entries, key=lambda e: e[1].max())[0]
        for value, ts in entries:
            if at in ts:
                return value
        return None

    def assignment_time(self, value: DimensionValue,
                        rep_value: Hashable) -> TimeSet:
        """The chronon set during which ``Rep(value) = rep_value``."""
        for existing, ts in self._forward.get(value, ()):
            if existing == rep_value:
                return ts
        return EMPTY

    def entries(self) -> Iterator[Tuple[DimensionValue, Hashable, TimeSet]]:
        """Iterate all ``(value, name, time)`` assignments."""
        for value, assignments in self._forward.items():
            for rep_value, ts in assignments:
                yield value, rep_value, ts

    def values(self) -> Set[DimensionValue]:
        """All values that have a name in this representation."""
        return set(self._forward)

    def copy(self) -> "Representation":
        """An independent copy."""
        dup = Representation(self._name)
        dup._forward = {v: list(entries) for v, entries in self._forward.items()}
        dup._backward = {r: list(entries) for r, entries in self._backward.items()}
        return dup

    def check_bijective_at(self, at: Chronon) -> bool:
        """Verify bijectivity at a chronon (used by validation)."""
        seen_reps: Set[Hashable] = set()
        for value, assignments in self._forward.items():
            current = [rep for rep, ts in assignments if at in ts]
            if len(current) > 1:
                return False
            for rep in current:
                if rep in seen_reps:
                    return False
                seen_reps.add(rep)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Representation({self._name}, {len(self._forward)} values)"


def ensure_member(category: Category, value: DimensionValue) -> None:
    """Raise :class:`InstanceError` unless ``value`` is (ever) a member
    of ``category`` — a convenience guard used by builders."""
    if value not in category:
        raise InstanceError(f"{value!r} is not a member of category {category.name}")


__all__ += ["ensure_member"]
