"""The extended multidimensional data model (paper §3).

Public surface: the value/fact primitives, aggregation types, category
and dimension machinery, fact schemas, fact-dimension relations,
multidimensional objects, and the summarizability property checkers.
"""

from repro.core.aggtypes import AggregationType, SQLFunction, min_aggtype
from repro.core.category import Category, CategoryType, Representation
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import (
    AggregationTypeError,
    AlgebraError,
    InstanceError,
    ReproError,
    SchemaError,
    SummarizabilityWarning,
    TemporalError,
    UncertaintyError,
)
from repro.core.factdim import FactDimensionRelation
from repro.core.interning import InternTable
from repro.core.helpers import (
    Band,
    ResultSpec,
    make_linear_dimension,
    make_numeric_dimension,
    make_result_spec,
    make_simple_dimension,
)
from repro.core.mo import MOFamily, MultidimensionalObject, TimeKind
from repro.core.order import AnnotatedOrder, piecewise_noisy_or
from repro.core.properties import (
    SummarizabilityCheck,
    check_summarizability,
    critical_chronons,
    has_strict_path,
    hierarchy_is_partitioning,
    hierarchy_is_snapshot_partitioning,
    hierarchy_is_snapshot_strict,
    hierarchy_is_strict,
    is_summarizable,
    mapping_is_strict,
)
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact, SurrogateSource

__all__ = [
    "AggregationType",
    "SQLFunction",
    "min_aggtype",
    "Category",
    "CategoryType",
    "Representation",
    "Dimension",
    "DimensionType",
    "AggregationTypeError",
    "AlgebraError",
    "InstanceError",
    "ReproError",
    "SchemaError",
    "SummarizabilityWarning",
    "TemporalError",
    "UncertaintyError",
    "FactDimensionRelation",
    "InternTable",
    "Band",
    "ResultSpec",
    "make_linear_dimension",
    "make_numeric_dimension",
    "make_result_spec",
    "make_simple_dimension",
    "MOFamily",
    "MultidimensionalObject",
    "TimeKind",
    "AnnotatedOrder",
    "piecewise_noisy_or",
    "SummarizabilityCheck",
    "check_summarizability",
    "critical_chronons",
    "has_strict_path",
    "hierarchy_is_partitioning",
    "hierarchy_is_snapshot_partitioning",
    "hierarchy_is_snapshot_strict",
    "hierarchy_is_strict",
    "is_summarizable",
    "mapping_is_strict",
    "FactSchema",
    "DimensionValue",
    "Fact",
    "SurrogateSource",
]
