"""Klug's relational algebra with aggregation functions.

The operators of the algebra the paper's Theorem 2 references: select,
project, rename, union, difference, product (with theta-join as product
plus select), and Klug-style *aggregate formation* — grouping by a set
of attributes and appending the result of an aggregate function over a
column as a new attribute.

All operators are pure functions from :class:`Relation` operands to a
new :class:`Relation`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Sequence

from repro.core.errors import AlgebraError, SchemaError
from repro.relational.relation import Relation, Row

__all__ = [
    "r_select",
    "r_project",
    "r_rename",
    "r_union",
    "r_difference",
    "r_product",
    "r_theta_join",
    "r_aggregate",
    "AGGREGATE_FUNCTIONS",
]


def r_select(relation: Relation,
             predicate: Callable[[Dict[str, Hashable]], bool]) -> Relation:
    """σ: keep the rows satisfying ``predicate`` (given as a dict)."""
    attrs = relation.attributes
    kept = [row for row in relation if predicate(dict(zip(attrs, row)))]
    return Relation(attrs, kept)


def r_project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """π: keep the named attributes; duplicates collapse (set
    semantics)."""
    indices = [relation.index_of(a) for a in attributes]
    rows = [tuple(row[i] for i in indices) for row in relation]
    return Relation(attributes, rows)


def r_rename(relation: Relation, mapping: Dict[str, str]) -> Relation:
    """ρ: rename attributes (unmentioned ones keep their names)."""
    for old in mapping:
        relation.index_of(old)
    attrs = [mapping.get(a, a) for a in relation.attributes]
    return Relation(attrs, relation.rows)


def _require_same_schema(r1: Relation, r2: Relation, op: str) -> None:
    if not r1.same_schema_as(r2):
        raise AlgebraError(
            f"{op} requires identical schemas; got {r1.attributes!r} vs "
            f"{r2.attributes!r}"
        )


def r_union(r1: Relation, r2: Relation) -> Relation:
    """∪ on union-compatible relations."""
    _require_same_schema(r1, r2, "union")
    return Relation(r1.attributes, r1.rows | r2.rows)


def r_difference(r1: Relation, r2: Relation) -> Relation:
    """\\ on union-compatible relations."""
    _require_same_schema(r1, r2, "difference")
    return Relation(r1.attributes, r1.rows - r2.rows)


def r_product(r1: Relation, r2: Relation) -> Relation:
    """× with disjoint attribute sets (rename first otherwise)."""
    overlap = set(r1.attributes) & set(r2.attributes)
    if overlap:
        raise AlgebraError(
            f"product operands share attributes {sorted(overlap)}; "
            f"rename first"
        )
    rows = [row1 + row2 for row1 in r1 for row2 in r2]
    return Relation(r1.attributes + r2.attributes, rows)


def r_theta_join(r1: Relation, r2: Relation,
                 predicate: Callable[[Dict[str, Hashable]], bool]) -> Relation:
    """θ-join: ``σ[predicate](r1 × r2)``."""
    return r_select(r_product(r1, r2), predicate)


def _agg_sum(values: List[float]) -> float:
    return sum(values)


def _agg_count(values: List[float]) -> int:
    return len(values)


def _agg_avg(values: List[float]) -> float:
    return sum(values) / len(values) if values else math.nan


def _agg_min(values: List[float]) -> float:
    return min(values) if values else math.nan


def _agg_max(values: List[float]) -> float:
    return max(values) if values else math.nan


#: The standard SQL aggregate functions, by name.
AGGREGATE_FUNCTIONS: Dict[str, Callable[[List[float]], object]] = {
    "SUM": _agg_sum,
    "COUNT": _agg_count,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
}


def r_aggregate(
    relation: Relation,
    group_by: Sequence[str],
    function: str,
    over: str,
    result_attribute: str = "result",
) -> Relation:
    """Klug's aggregate formation: group by ``group_by``, apply
    ``function`` to the ``over`` column of each group, and return
    ``group_by + (result_attribute,)``.

    With ``group_by`` empty, a single row holding the grand total is
    returned.  Being set-semantics, each group's column is the *set* of
    values in the group (duplicates within a group collapsed with the
    rows that carried them), matching Klug's formal treatment.
    """
    if function not in AGGREGATE_FUNCTIONS:
        raise SchemaError(
            f"unknown aggregate {function!r}; "
            f"expected one of {sorted(AGGREGATE_FUNCTIONS)}"
        )
    if result_attribute in group_by:
        raise SchemaError(
            f"result attribute {result_attribute!r} collides with group-by"
        )
    group_indices = [relation.index_of(a) for a in group_by]
    over_index = relation.index_of(over)
    groups: Dict[Row, List[float]] = {}
    for row in relation:
        key = tuple(row[i] for i in group_indices)
        groups.setdefault(key, []).append(row[over_index])
    func = AGGREGATE_FUNCTIONS[function]
    rows = [key + (func(values),) for key, values in groups.items()]
    return Relation(tuple(group_by) + (result_attribute,), rows)
