"""Star/snowflake export of multidimensional objects.

The paper positions its model against relational star schemas (Kimball
is one of the surveyed models); practical deployments still need to
exchange data with relational tools.  This module exports an MO to the
classical layout:

* one **dimension table** per category, with the surrogate, the
  category name, and one column per representation;
* one **outrigger table** per dimension for the containment order
  (child, parent, valid-from, valid-to, probability) — the snowflake
  edges, which also carry the paper's temporal/uncertain annotations;
* one **bridge table** per dimension linking facts to values — *not* a
  foreign key column, because the model's fact-dimension relations are
  many-to-many and mixed-granularity, which is exactly what classical
  star schemas cannot express without a bridge (requirements 6 and 9);
* one **fact table** listing the facts.

The export is lossless for the model's structure (times become
from/to day ordinals, open ends become NOW-resolved bounds), and
:func:`import_star` reads it back; round-tripping is property-tested.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.core.dimension import Dimension
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.relational.relation import Relation
from repro.temporal.timeset import TimeSet

__all__ = ["export_star", "import_star", "StarSchema"]


class StarSchema:
    """The exported relational tables, by name."""

    def __init__(self, fact_type: str) -> None:
        self.fact_type = fact_type
        self.fact_table: Relation = Relation(("fact_id",), [])
        #: per dimension: the value table
        self.dimension_tables: Dict[str, Relation] = {}
        #: per dimension: the containment (snowflake) table
        self.hierarchy_tables: Dict[str, Relation] = {}
        #: per dimension: the fact-value bridge table
        self.bridge_tables: Dict[str, Relation] = {}

    def table_names(self) -> List[str]:
        """All table names in a deterministic order."""
        names = ["fact"]
        for dim in sorted(self.dimension_tables):
            names.extend([f"dim_{dim}", f"hier_{dim}", f"bridge_{dim}"])
        return names


def _encode_sid(sid: Hashable) -> str:
    """Stable textual encoding of a surrogate (tuples flatten)."""
    return repr(sid)


def _time_rows(time: TimeSet) -> List[Tuple[int, int]]:
    return list(time.intervals)


def export_star(mo: MultidimensionalObject) -> StarSchema:
    """Export an MO to a star/snowflake schema with bridge tables."""
    star = StarSchema(mo.schema.fact_type)
    star.fact_table = Relation(
        ("fact_id",), [( _encode_sid(f.fid),) for f in mo.facts])
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        rep_names = sorted({
            rep_name
            for category in dimension.categories()
            for rep_name in dimension.representations_of(category.name)
        })
        dim_rows = []
        for category in dimension.categories():
            reps = dimension.representations_of(category.name)
            for value, time in category.items():
                row = [_encode_sid(value.sid), category.name,
                       value.label or ""]
                for rep_name in rep_names:
                    rep = reps.get(rep_name)
                    row.append(rep.of(value) if rep else None)
                for start, end in _time_rows(time):
                    dim_rows.append(tuple(row) + (start, end))
        star.dimension_tables[name] = Relation(
            ("value_id", "category", "label", *rep_names,
             "valid_from", "valid_to"),
            dim_rows)

        hier_rows = []
        for child, parent, time, prob in dimension.order.edges():
            for start, end in _time_rows(time):
                hier_rows.append((
                    _encode_sid(child.sid), _encode_sid(parent.sid),
                    start, end, prob))
        star.hierarchy_tables[name] = Relation(
            ("child_id", "parent_id", "valid_from", "valid_to",
             "probability"),
            hier_rows)

        bridge_rows = []
        for fact, value, time, prob in mo.relation(name).annotated_pairs():
            for start, end in _time_rows(time):
                bridge_rows.append((
                    _encode_sid(fact.fid),
                    None if value.is_top else _encode_sid(value.sid),
                    start, end, prob))
        star.bridge_tables[name] = Relation(
            ("fact_id", "value_id", "valid_from", "valid_to",
             "probability"),
            bridge_rows)
    return star


def import_star(star: StarSchema,
                template: MultidimensionalObject) -> MultidimensionalObject:
    """Re-import a star export into an MO.

    ``template`` supplies the schema and dimension *types* (a star
    export does not carry the category-type lattice); values, order,
    relations, and annotations come from the tables.  Representations
    are re-attached untimed from the dimension tables' current names.
    """
    dimensions: Dict[str, Dimension] = {}
    decode: Dict[str, Dict[str, DimensionValue]] = {}
    for name in template.dimension_names:
        source = template.dimension(name)
        dimension = Dimension(source.dtype)
        dimensions[name] = dimension
        table = star.dimension_tables[name]
        label_index = table.index_of("label")
        id_index = table.index_of("value_id")
        cat_index = table.index_of("category")
        from_index = table.index_of("valid_from")
        to_index = table.index_of("valid_to")
        mapping: Dict[str, DimensionValue] = {}
        for row in table:
            encoded = row[id_index]
            value = mapping.get(encoded)
            if value is None:
                original = _find_value(source, encoded)
                value = original if original is not None else \
                    DimensionValue(sid=encoded, label=row[label_index])
                mapping[encoded] = value
            dimension.add_value(
                row[cat_index], value,
                TimeSet.of([(row[from_index], row[to_index])]))
        decode[name] = mapping
        hier = star.hierarchy_tables[name]
        for row in hier.as_dicts():
            dimension.add_edge(
                mapping[row["child_id"]], mapping[row["parent_id"]],
                time=TimeSet.of([(row["valid_from"], row["valid_to"])]),
                prob=row["probability"])

    schema = FactSchema(star.fact_type,
                        [dimensions[n].dtype
                         for n in template.dimension_names])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions,
                                kind=template.kind)
    fact_map: Dict[str, Fact] = {}
    for (encoded,) in star.fact_table:
        original = _find_fact(template, encoded)
        fact = original if original is not None else \
            Fact(fid=encoded, ftype=star.fact_type)
        fact_map[encoded] = fact
        mo.add_fact(fact)
    for name in template.dimension_names:
        bridge = star.bridge_tables[name]
        for row in bridge.as_dicts():
            fact = fact_map[row["fact_id"]]
            if row["value_id"] is None:
                value = dimensions[name].top_value
            else:
                value = decode[name][row["value_id"]]
            mo.relate(fact, name, value,
                      time=TimeSet.of([(row["valid_from"],
                                        row["valid_to"])]),
                      prob=row["probability"])
    return mo


def _find_value(dimension: Dimension, encoded: str):
    for value in dimension.values():
        if _encode_sid(value.sid) == encoded:
            return value
    return None


def _find_fact(mo: MultidimensionalObject, encoded: str):
    for fact in mo.facts:
        if _encode_sid(fact.fid) == encoded:
            return fact
    return None
