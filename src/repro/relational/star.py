"""Star/snowflake export of multidimensional objects.

The paper positions its model against relational star schemas (Kimball
is one of the surveyed models); practical deployments still need to
exchange data with relational tools.  This module exports an MO to the
classical layout:

* one **dimension table** per category, with the surrogate, the
  category name, and one column per representation;
* one **outrigger table** per dimension for the containment order
  (child, parent, valid-from, valid-to, probability) — the snowflake
  edges, which also carry the paper's temporal/uncertain annotations;
* one **bridge table** per dimension linking facts to values — *not* a
  foreign key column, because the model's fact-dimension relations are
  many-to-many and mixed-granularity, which is exactly what classical
  star schemas cannot express without a bridge (requirements 6 and 9);
* one **fact table** listing the facts.

The export is lossless for the model's structure: times become from/to
day ordinals, open ends are resolved against an explicit ``now``
(recorded on the schema, defaulting once at export start) and marked
with an ``is_open`` flag so :func:`import_star` restores them exactly;
round-tripping is property-tested.

Surrogates are encoded with :func:`encode_sid`, a collision-free tagged
textual encoding (``i:5``, ``s:E10``, ``t:i:1,i:2`` …).  The earlier
``repr``-based encoding collided — the string ``"(1, 2)"`` and the
tuple ``(1, 2)`` produced the same key, silently merging distinct
facts/values — and :func:`import_star` keeps a legacy decoder so old
exports still read back.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.dimension import Dimension
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.relational.relation import Relation
from repro.temporal.chronon import TIME_MAX
from repro.temporal.timeset import TimeSet

__all__ = ["export_star", "import_star", "StarSchema",
           "encode_sid", "decode_sid"]


class StarSchema:
    """The exported relational tables, by name.

    ``now`` is the day ordinal open-ended (``NOW``) bounds were
    resolved against at export time — recorded here so a re-export of
    the re-import is byte-identical regardless of the wall clock.
    """

    def __init__(self, fact_type: str, now: Optional[int] = None) -> None:
        self.fact_type = fact_type
        self.now = now
        self.fact_table: Relation = Relation(("fact_id",), [])
        #: per dimension: the value table
        self.dimension_tables: Dict[str, Relation] = {}
        #: per dimension: the containment (snowflake) table
        self.hierarchy_tables: Dict[str, Relation] = {}
        #: per dimension: the fact-value bridge table
        self.bridge_tables: Dict[str, Relation] = {}

    def table_names(self) -> List[str]:
        """The names of the *actual* tables, in a deterministic order.

        A dimension with no containment edges has no ``hier_<dim>``
        table and one with no fact links no ``bridge_<dim>`` table —
        phantom empty relations are not listed (so a SQL loader
        neither creates nor queries them)."""
        names = ["fact"]
        for dim in sorted(self.dimension_tables):
            if len(self.dimension_tables[dim]):
                names.append(f"dim_{dim}")
            if len(self.hierarchy_tables.get(dim, ())):
                names.append(f"hier_{dim}")
            if len(self.bridge_tables.get(dim, ())):
                names.append(f"bridge_{dim}")
        return names

    def tables(self) -> Dict[str, Relation]:
        """``table name → relation`` for every listed table."""
        out: Dict[str, Relation] = {}
        for name in self.table_names():
            if name == "fact":
                out[name] = self.fact_table
            else:
                kind, _, dim = name.partition("_")
                group = {"dim": self.dimension_tables,
                         "hier": self.hierarchy_tables,
                         "bridge": self.bridge_tables}[kind]
                out[name] = group[dim]
        return out


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace(",", "\\,")


def _split_encoded(text: str) -> List[str]:
    """Split a composite payload on unescaped commas and unescape."""
    parts: List[str] = []
    current: List[str] = []
    it = iter(text)
    for ch in it:
        if ch == "\\":
            current.append(next(it, ""))
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def encode_sid(sid: Hashable) -> str:
    """Collision-free tagged textual encoding of a surrogate.

    ``repr`` was not injective across types (``"(1, 2)"`` vs
    ``(1, 2)``); here every encoding starts with a one-letter type tag
    and composites escape their recursively-encoded elements, so
    distinct surrogates never share a key.  The ``r:`` catch-all for
    exotic hashables is best-effort (not decodable)."""
    if sid is None:
        return "n:"
    if isinstance(sid, bool):  # bool before int: True is an int
        return f"b:{int(sid)}"
    if isinstance(sid, int):
        return f"i:{sid}"
    if isinstance(sid, float):
        return f"f:{sid!r}"
    if isinstance(sid, str):
        return f"s:{sid}"
    if isinstance(sid, tuple):
        return "t:" + ",".join(_escape(encode_sid(x)) for x in sid)
    if isinstance(sid, frozenset):
        return "F:" + ",".join(sorted(_escape(encode_sid(x)) for x in sid))
    return f"r:{sid!r}"


def decode_sid(text: str) -> Hashable:
    """Invert :func:`encode_sid`; raises ``ValueError`` for the ``r:``
    catch-all and for strings that are not tagged encodings (e.g. keys
    from a legacy ``repr``-encoded export)."""
    tag, sep, payload = text.partition(":")
    if not sep or len(tag) != 1:
        raise ValueError(f"not a tagged surrogate encoding: {text!r}")
    if tag == "n":
        return None
    if tag == "b":
        return payload == "1"
    if tag == "i":
        return int(payload)
    if tag == "f":
        return float(payload)
    if tag == "s":
        return payload
    if tag in ("t", "F"):
        if not payload:
            items: Tuple[Hashable, ...] = ()
        else:
            items = tuple(decode_sid(part)
                          for part in _split_encoded(payload))
        return items if tag == "t" else frozenset(items)
    raise ValueError(f"undecodable surrogate encoding: {text!r}")


def _decode_or_raw(encoded: str) -> Hashable:
    try:
        return decode_sid(encoded)
    except ValueError:
        return encoded


def _time_rows(time: TimeSet, now: int) -> List[Tuple[int, int, int]]:
    """``(valid_from, valid_to, is_open)`` rows: open ends (``NOW``,
    stored as the domain maximum) resolve to ``now`` and are flagged."""
    rows = []
    for start, end in time.intervals:
        if end == TIME_MAX:
            rows.append((start, max(start, now), 1))
        else:
            rows.append((start, end, 0))
    return rows


def export_star(mo: MultidimensionalObject,
                now: Optional[int] = None) -> StarSchema:
    """Export an MO to a star/snowflake schema with bridge tables.

    ``now`` (a day ordinal) pins the resolution of open-ended time
    bounds; it defaults **once**, at export start, to today — and is
    recorded on the returned schema, so export → import → export with
    the recorded ``now`` is byte-identical across day boundaries."""
    if now is None:
        now = date.today().toordinal()
    star = StarSchema(mo.schema.fact_type, now=now)
    star.fact_table = Relation(
        ("fact_id",), [(encode_sid(f.fid),) for f in mo.facts])
    for name in mo.dimension_names:
        dimension = mo.dimension(name)
        rep_names = sorted({
            rep_name
            for category in dimension.categories()
            for rep_name in dimension.representations_of(category.name)
        })
        dim_rows = []
        for category in dimension.categories():
            reps = dimension.representations_of(category.name)
            for value, time in category.items():
                row = [encode_sid(value.sid), category.name,
                       value.label or ""]
                for rep_name in rep_names:
                    rep = reps.get(rep_name)
                    row.append(rep.of(value) if rep else None)
                for start, end, is_open in _time_rows(time, now):
                    dim_rows.append(tuple(row) + (start, end, is_open))
        star.dimension_tables[name] = Relation(
            ("value_id", "category", "label", *rep_names,
             "valid_from", "valid_to", "is_open"),
            dim_rows)

        hier_rows = []
        for child, parent, time, prob in dimension.order.edges():
            for start, end, is_open in _time_rows(time, now):
                hier_rows.append((
                    encode_sid(child.sid), encode_sid(parent.sid),
                    start, end, prob, is_open))
        star.hierarchy_tables[name] = Relation(
            ("child_id", "parent_id", "valid_from", "valid_to",
             "probability", "is_open"),
            hier_rows)

        bridge_rows = []
        for fact, value, time, prob in mo.relation(name).annotated_pairs():
            for start, end, is_open in _time_rows(time, now):
                bridge_rows.append((
                    encode_sid(fact.fid),
                    None if value.is_top else encode_sid(value.sid),
                    start, end, prob, is_open))
        star.bridge_tables[name] = Relation(
            ("fact_id", "value_id", "valid_from", "valid_to",
             "probability", "is_open"),
            bridge_rows)
    return star


def _interval(row: Dict[str, object],
              valid_from: str = "valid_from",
              valid_to: str = "valid_to") -> Tuple[int, int]:
    """The stored interval, with flagged open ends restored to the
    domain maximum (legacy exports lack the ``is_open`` column and
    pass through unchanged)."""
    end = TIME_MAX if row.get("is_open") else row[valid_to]
    return (row[valid_from], end)  # type: ignore[return-value]


def _value_decoder(source: Dimension) -> Dict[str, DimensionValue]:
    """``encoded surrogate → value`` for a template dimension; legacy
    ``repr`` keys are seeded first so current tagged encodings win on
    (historically possible) collisions."""
    mapping: Dict[str, DimensionValue] = {}
    for value in source.values():
        mapping[repr(value.sid)] = value
    for value in source.values():
        mapping[encode_sid(value.sid)] = value
    return mapping


def _fact_decoder(mo: MultidimensionalObject) -> Dict[str, Fact]:
    mapping: Dict[str, Fact] = {}
    for fact in mo.facts:
        mapping[repr(fact.fid)] = fact
    for fact in mo.facts:
        mapping[encode_sid(fact.fid)] = fact
    return mapping


def import_star(star: StarSchema,
                template: MultidimensionalObject) -> MultidimensionalObject:
    """Re-import a star export into an MO.

    ``template`` supplies the schema and dimension *types* (a star
    export does not carry the category-type lattice); values, order,
    relations, and annotations come from the tables.  Representations
    are re-attached untimed from the dimension tables' current names.
    Rows flagged ``is_open`` restore their open (``NOW``) upper bound,
    so importing is independent of the ``now`` the export resolved
    against.  Both the current tagged surrogate encoding and the legacy
    ``repr`` encoding of older exports are recognized.
    """
    dimensions: Dict[str, Dimension] = {}
    decode: Dict[str, Dict[str, DimensionValue]] = {}
    for name in template.dimension_names:
        source = template.dimension(name)
        dimension = Dimension(source.dtype)
        dimensions[name] = dimension
        table = star.dimension_tables[name]
        mapping = _value_decoder(source)
        for row in table.as_dicts():
            encoded = row["value_id"]
            value = mapping.get(encoded)
            if value is None:
                value = DimensionValue(sid=_decode_or_raw(encoded),
                                       label=row["label"])
                mapping[encoded] = value
            dimension.add_value(
                row["category"], value, TimeSet.of([_interval(row)]))
        decode[name] = mapping
        hier = star.hierarchy_tables[name]
        for row in hier.as_dicts():
            dimension.add_edge(
                mapping[row["child_id"]], mapping[row["parent_id"]],
                time=TimeSet.of([_interval(row)]),
                prob=row["probability"])

    schema = FactSchema(star.fact_type,
                        [dimensions[n].dtype
                         for n in template.dimension_names])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions,
                                kind=template.kind)
    fact_map = _fact_decoder(template)
    for (encoded,) in star.fact_table:
        fact = fact_map.get(encoded)
        if fact is None:
            fact = Fact(fid=_decode_or_raw(encoded), ftype=star.fact_type)
            fact_map[encoded] = fact
        mo.add_fact(fact)
    for name in template.dimension_names:
        bridge = star.bridge_tables[name]
        for row in bridge.as_dicts():
            fact = fact_map[row["fact_id"]]
            if row["value_id"] is None:
                value = dimensions[name].top_value
            else:
                value = decode[name][row["value_id"]]
            mo.relate(fact, name, value,
                      time=TimeSet.of([_interval(row)]),
                      prob=row["probability"])
    return mo
