"""Relational substrate for Theorem 2: a minimal set-semantics
relational engine, Klug's relational algebra with aggregation, the
relation ↔ MO compiler plus per-operator equivalence checker, and the
SQL pushdown backend that runs optimizer plans on an embedded engine
(sqlite by default) over the star export."""

from repro.relational.algebra import (
    AGGREGATE_FUNCTIONS,
    r_aggregate,
    r_difference,
    r_product,
    r_project,
    r_rename,
    r_select,
    r_theta_join,
    r_union,
)
from repro.relational.backend import (
    PushdownUnsupported,
    SqlBackend,
    SqlBackendUnavailable,
    sql_backend_for,
)
from repro.relational.relation import Relation
from repro.relational.star import (
    StarSchema,
    decode_sid,
    encode_sid,
    export_star,
    import_star,
)
from repro.relational.translate import (
    TheoremTwoChecker,
    mo_to_relation,
    relation_to_mo,
    sim_aggregate,
    sim_difference,
    sim_product,
    sim_project,
    sim_rename,
    sim_select,
    sim_union,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "r_aggregate",
    "r_difference",
    "r_product",
    "r_project",
    "r_rename",
    "r_select",
    "r_theta_join",
    "r_union",
    "Relation",
    "StarSchema",
    "encode_sid",
    "decode_sid",
    "export_star",
    "import_star",
    "SqlBackend",
    "sql_backend_for",
    "PushdownUnsupported",
    "SqlBackendUnavailable",
    "TheoremTwoChecker",
    "mo_to_relation",
    "relation_to_mo",
    "sim_aggregate",
    "sim_difference",
    "sim_product",
    "sim_project",
    "sim_rename",
    "sim_select",
    "sim_union",
]
