"""Relational substrate for Theorem 2: a minimal set-semantics
relational engine, Klug's relational algebra with aggregation, and the
relation ↔ MO compiler plus per-operator equivalence checker."""

from repro.relational.algebra import (
    AGGREGATE_FUNCTIONS,
    r_aggregate,
    r_difference,
    r_product,
    r_project,
    r_rename,
    r_select,
    r_theta_join,
    r_union,
)
from repro.relational.relation import Relation
from repro.relational.star import StarSchema, export_star, import_star
from repro.relational.translate import (
    TheoremTwoChecker,
    mo_to_relation,
    relation_to_mo,
    sim_aggregate,
    sim_difference,
    sim_product,
    sim_project,
    sim_rename,
    sim_select,
    sim_union,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "r_aggregate",
    "r_difference",
    "r_product",
    "r_project",
    "r_rename",
    "r_select",
    "r_theta_join",
    "r_union",
    "Relation",
    "StarSchema",
    "export_star",
    "import_star",
    "TheoremTwoChecker",
    "mo_to_relation",
    "relation_to_mo",
    "sim_aggregate",
    "sim_difference",
    "sim_product",
    "sim_project",
    "sim_rename",
    "sim_select",
    "sim_union",
]
