"""A minimal in-memory relational engine (substrate for Theorem 2).

Theorem 2 states that the multidimensional algebra is at least as
powerful as Klug's relational algebra with aggregation functions.  To
*check* that constructively we need relations to compare against:
:class:`Relation` implements set-semantics relations over named
attributes, the operand type of :mod:`repro.relational.algebra`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.core.errors import SchemaError

__all__ = ["Relation"]

Row = Tuple[Hashable, ...]


class Relation:
    """An immutable relation: named attributes and a set of rows.

    Rows are tuples aligned with :attr:`attributes`; duplicate rows
    collapse (set semantics, as in Klug's algebra).
    """

    __slots__ = ("_attributes", "_rows")

    def __init__(self, attributes: Sequence[str],
                 rows: Iterable[Sequence[Hashable]] = ()) -> None:
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attributes in {attributes!r}")
        if not attributes:
            raise SchemaError("a relation needs at least one attribute")
        self._attributes: Tuple[str, ...] = tuple(attributes)
        materialized = []
        for row in rows:
            row = tuple(row)
            if len(row) != len(self._attributes):
                raise SchemaError(
                    f"row {row!r} does not match attributes "
                    f"{self._attributes!r}"
                )
            materialized.append(row)
        self._rows: FrozenSet[Row] = frozenset(materialized)

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names, in declaration order."""
        return self._attributes

    @property
    def rows(self) -> FrozenSet[Row]:
        """The set of rows."""
        return self._rows

    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def index_of(self, attribute: str) -> int:
        """Position of an attribute; raises :class:`SchemaError` if
        absent."""
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation has no attribute {attribute!r} "
                f"(has {self._attributes!r})"
            ) from None

    def as_dicts(self) -> List[Dict[str, Hashable]]:
        """The rows as attribute-keyed dicts (sorted for determinism)."""
        out = [dict(zip(self._attributes, row)) for row in self._rows]
        out.sort(key=lambda d: tuple(repr(d[a]) for a in self._attributes))
        return out

    @classmethod
    def from_dicts(cls, attributes: Sequence[str],
                   dicts: Iterable[Dict[str, Hashable]]) -> "Relation":
        """Build a relation from attribute-keyed dicts."""
        return cls(attributes,
                   [tuple(d[a] for a in attributes) for d in dicts])

    def same_schema_as(self, other: "Relation") -> bool:
        """True iff both relations have identical attribute lists."""
        return self._attributes == other._attributes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (self._attributes == other._attributes
                and self._rows == other._rows)

    def __hash__(self) -> int:
        return hash((self._attributes, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self._attributes}, {len(self._rows)} rows)"
