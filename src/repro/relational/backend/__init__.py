"""SQL pushdown backend over the star export.

``SqlBackend`` owns one embedded-engine connection per MO: it exports
the MO (:func:`~repro.relational.star.export_star`), loads the star
into sqlite (or DuckDB, optional) via
:mod:`~repro.relational.backend.loader`, compiles optimizer plans to
SQL via the pure :mod:`~repro.relational.backend.compiler`, and
decodes result sets back into the exact objects the in-memory engine
returns — the same ``(grouping values, raw result)`` rows for a root
α, the same :class:`~repro.core.values.Fact` objects for a fact-set
plan.  Results are byte-identical by construction and property-tested
3-way (SQL ≡ columnar kernel ≡ naive) in
``tests/relational/test_sql_equivalence.py``.

Version stamps on the MO's fact set, relations, and orders make the
backend self-invalidating: a mutation reloads the star on the next
use.  ``sql_backend_for`` caches one backend per MO (weakly — an MO
going away drops its connection) and is **bounded**: at most
``MAX_CACHED_BACKENDS`` backends stay cached, least-recently-used ones
are closed and dropped (``sql.backend.evicted``) — each backend holds
a live database connection, so unbounded growth was an fd leak waiting
for the first many-MO workload.

Plans outside the pushable subset raise
:class:`~repro.relational.backend.compiler.PushdownUnsupported`; the
query layer (``Query.execute(backend="sql")``) catches it, counts
``sql.pushdown.fallback``, and answers in memory.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.core.mo import MultidimensionalObject
from repro.core.values import Fact
from repro.engine.optimizer import Plan
from repro.engine.query import QueryResultRow
from repro.obs import metrics, trace
from repro.relational.backend.compiler import (
    AggPushdown,
    CompiledNode,
    CompiledPlan,
    PushdownUnsupported,
    StarCatalog,
    compile_plan,
    raw_result,
    rows_kind_groups,
)
from repro.relational.backend.loader import (
    LoadedStar,
    SqlBackendUnavailable,
    connect,
    load_star,
)
from repro.relational.star import export_star

__all__ = [
    "SqlBackend",
    "sql_backend_for",
    "PushdownUnsupported",
    "SqlBackendUnavailable",
    "StarCatalog",
    "CompiledPlan",
    "CompiledNode",
    "AggPushdown",
    "compile_plan",
    "raw_result",
    "connect",
    "load_star",
]

_COMPILED = metrics.counter("sql.pushdown.compiled")
_NODE_COMPILED = metrics.counter("sql.pushdown.node_compiled")


class SqlBackend:
    """One MO's SQL execution surface: export → load → compile → run.

    Loading is lazy and version-stamped: the first use (and the first
    use after any mutation of the fact set, a fact-dimension relation,
    or a containment order) re-exports and re-loads the star.
    """

    def __init__(self, mo: MultidimensionalObject,
                 engine: str = "sqlite",
                 now: Optional[int] = None) -> None:
        self._mo = mo
        self._engine = engine
        self._now = now
        self._loaded: Optional[LoadedStar] = None
        self._catalog: Optional[StarCatalog] = None
        self._stamp: Optional[Tuple[object, ...]] = None

    @property
    def engine(self) -> str:
        return self._engine

    def _version_stamp(self) -> Tuple[object, ...]:
        mo = self._mo
        return (mo.facts_version, tuple(
            (name, mo.relation(name).version,
             mo.dimension(name).order.version)
            for name in mo.dimension_names))

    @property
    def stale(self) -> bool:
        """Whether the loaded star lags the MO (or nothing is loaded)."""
        return self._loaded is None or \
            self._stamp != self._version_stamp()

    def ensure_loaded(self) -> LoadedStar:
        """Load (or reload, after mutations) the star export."""
        if self.stale:
            if self._loaded is not None:
                self._loaded.close()
            star = export_star(self._mo, now=self._now)
            self._loaded = load_star(star, self._mo, engine=self._engine)
            self._catalog = StarCatalog.of(self._mo)
            self._stamp = self._version_stamp()
        assert self._loaded is not None
        return self._loaded

    def compile(self, plan: Plan) -> CompiledPlan:
        """Compile a plan against the (freshly ensured) catalogue;
        raises :class:`PushdownUnsupported` outside the subset."""
        self.ensure_loaded()
        assert self._catalog is not None
        with trace.span("sql.compile", engine=self._engine):
            compiled = compile_plan(plan, self._catalog)
        _COMPILED.inc()
        _NODE_COMPILED.inc(len(compiled.nodes))
        return compiled

    def execute_rows(self, plan: Plan) -> List[QueryResultRow]:
        """Compile and run a root-α plan; returns exactly the rows the
        in-memory ``Query`` produces."""
        return self.run_rows(self.compile(plan))

    def execute_facts(self, plan: Plan) -> Set[Fact]:
        """Compile and run a fact-set plan; returns the qualifying
        base :class:`Fact` objects."""
        return self.run_facts(self.compile(plan))

    def run_rows(self, compiled: CompiledPlan) -> List[QueryResultRow]:
        """Run a compiled ``"rows"`` plan and decode the result set
        with α's merge-and-re-expand semantics."""
        if compiled.kind != "rows" or compiled.aggregate is None:
            raise ValueError("run_rows needs a compiled root-α plan")
        loaded = self.ensure_loaded()
        agg = compiled.aggregate
        with trace.span("sql.execute", kind="rows", engine=self._engine):
            cursor = loaded.conn.cursor()
            combo_rows = cursor.execute(
                compiled.sql, compiled.params).fetchall()
            stats: Dict[str, Tuple[int, float, float, float]] = {}
            if agg.measure_sql:
                for fact_id, cnt, s, mn, mx in cursor.execute(
                        agg.measure_sql,
                        agg.measure_params).fetchall():
                    stats[fact_id] = (int(cnt), s, mn, mx)
            merged = rows_kind_groups(combo_rows, len(agg.names))
            rows: List[QueryResultRow] = []
            for fact_set in sorted(merged, key=sorted):
                raw = raw_result(agg.function, fact_set, stats)
                per_dim = [
                    sorted({loaded.value_maps[agg.origins[k]][combo[k]]
                            for combo in merged[fact_set]}, key=repr)
                    for k in range(len(agg.names))
                ]
                expansion: List[Dict[str, object]] = [{}]
                for k, name in enumerate(agg.names):
                    expansion = [{**combo, name: value}
                                 for combo in expansion
                                 for value in per_dim[k]]
                for group in expansion:
                    rows.append((group, raw))
            # the engine's row order: combo reprs, then the value repr
            # as the tiebreak between merged groups presenting the same
            # combination
            rows.sort(key=lambda row: (
                tuple(repr(row[0][name]) for name in agg.names),
                repr(row[1])))
            return rows

    def run_facts(self, compiled: CompiledPlan) -> Set[Fact]:
        """Run a compiled ``"facts"`` plan and decode the fact ids."""
        if compiled.kind != "facts":
            raise ValueError("run_facts needs a compiled fact-set plan")
        loaded = self.ensure_loaded()
        with trace.span("sql.execute", kind="facts", engine=self._engine):
            cursor = loaded.conn.cursor()
            found = cursor.execute(compiled.sql, compiled.params).fetchall()
            return {loaded.fact_map[fact_id] for (fact_id,) in found}

    def explain_sql(self, plan: Plan) -> str:
        """The emitted SQL, one block per compiled plan node."""
        compiled = self.compile(plan)
        blocks = [f"-- {node.label}\n{node.sql}"
                  for node in compiled.nodes]
        return "\n".join(blocks)

    def close(self) -> None:
        if self._loaded is not None:
            self._loaded.close()
            self._loaded = None
            self._stamp = None


_BACKENDS: "weakref.WeakKeyDictionary[MultidimensionalObject, Dict[str, SqlBackend]]" = \
    weakref.WeakKeyDictionary()

#: how many (MO, engine) backends stay cached before LRU eviction
MAX_CACHED_BACKENDS = 8

#: recency order of live backends; values are weakrefs so this side
#: table never keeps an MO alive (a dead ref is skipped at eviction)
_RECENT: "OrderedDict[Tuple[int, str], weakref.ref]" = OrderedDict()

#: owns ``_BACKENDS``/``_RECENT``: lookup, insertion, recency update,
#: and LRU eviction are one read-modify-write — two threads interleaved
#: mid-sequence could both evict the same backend (double close) or
#: resurrect a key the other just evicted
_REGISTRY_LOCK = threading.Lock()

_EVICTED = metrics.counter("sql.backend.evicted")


def sql_backend_for(mo: MultidimensionalObject,
                    engine: str = "sqlite") -> SqlBackend:
    """The cached backend for ``mo`` (one per engine; created lazily,
    dropped with the MO or evicted least-recently-used beyond
    :data:`MAX_CACHED_BACKENDS` — each backend owns a connection, so
    the cache is bounded like the result cache is)."""
    with _REGISTRY_LOCK:
        per_engine = _BACKENDS.setdefault(mo, {})
        backend = per_engine.get(engine)
        if backend is None:
            backend = SqlBackend(mo, engine=engine)
            per_engine[engine] = backend
        key = (id(mo), engine)
        _RECENT.pop(key, None)
        _RECENT[key] = weakref.ref(mo)
        while len(_RECENT) > MAX_CACHED_BACKENDS:
            (_old_id, old_engine), ref = _RECENT.popitem(last=False)
            old_mo = ref()
            if old_mo is None:
                continue  # the MO died; WeakKeyDictionary cleaned up
            old_per_engine = _BACKENDS.get(old_mo)
            if not old_per_engine:
                continue
            old_backend = old_per_engine.pop(old_engine, None)
            if old_backend is not None:
                old_backend.close()
                _EVICTED.inc()
            if not old_per_engine:
                del _BACKENDS[old_mo]
        return backend
