"""Load a star export into an embedded SQL engine.

The loader creates two layers of tables:

* the **star layout itself** — ``fact``, ``dim_<d>``, ``hier_<d>``,
  ``bridge_<d>`` exactly as :meth:`StarSchema.table_names` lists them
  (unpopulated hier/bridge tables are not created — the
  ``table_names`` contract), with explicit column types so the same
  DDL works on sqlite and DuckDB;
* **auxiliary query tables** per dimension *index* (identifier-safe
  regardless of dimension names), which are what the compiler's SQL
  actually probes: ``bridgef_i`` (facts with any characterization,
  including ⊤), ``bridgev_i`` (distinct fact–value pairs, ⊤ excluded),
  ``closure_i`` (the reflexive–transitive containment closure,
  computed *in SQL* by a recursive CTE over the hierarchy rows),
  ``cat_i`` (value → category), and ``val_i`` (numeric surrogates for
  measure pushdown).

sqlite3 is the zero-dependency default; DuckDB is an optional extra
behind the same interface (``SqlBackendUnavailable`` if absent).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue, Fact
from repro.obs import metrics, trace
from repro.relational.relation import Relation
from repro.relational.star import StarSchema, encode_sid

__all__ = ["SqlBackendUnavailable", "LoadedStar", "connect", "load_star"]

_LOADS = metrics.counter("sql.backend.loads")
_LOAD_ROWS = metrics.histogram("sql.load.rows")


class SqlBackendUnavailable(RuntimeError):
    """The requested SQL engine is not importable in this environment
    (only DuckDB can be missing — sqlite3 is stdlib)."""


def connect(engine: str = "sqlite"):
    """An in-memory connection to the requested engine."""
    if engine == "sqlite":
        return sqlite3.connect(":memory:")
    if engine == "duckdb":
        try:
            import duckdb
        except ImportError as exc:
            raise SqlBackendUnavailable(
                "duckdb is not installed; use engine='sqlite'") from exc
        return duckdb.connect(":memory:")
    raise ValueError(f"unknown SQL engine {engine!r}")


@dataclass
class LoadedStar:
    """A populated connection plus the decode maps back to objects."""

    conn: object
    engine: str
    dims: Tuple[str, ...]
    value_maps: Dict[str, Dict[str, DimensionValue]]
    fact_map: Dict[str, Fact]
    n_rows: int

    def close(self) -> None:
        self.conn.close()


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _column_type(name: str) -> str:
    if name in ("valid_from", "valid_to"):
        return "BIGINT"
    if name in ("probability", "num"):
        return "DOUBLE"
    if name == "is_open":
        return "SMALLINT"
    return "VARCHAR"


def _adapt(column: str, value: object) -> object:
    """Star cells as the typed DDL accepts them (representation values
    can be arbitrary objects; they are display data, never queried by
    the pushdown, so stringifying is lossless enough)."""
    if value is None or _column_type(column) != "VARCHAR":
        return value
    return value if isinstance(value, str) else repr(value)


def _create(cursor, name: str, columns: Tuple[str, ...]) -> None:
    decls = ", ".join(f"{_quote(c)} {_column_type(c)}" for c in columns)
    cursor.execute(f"CREATE TABLE {_quote(name)} ({decls})")


def _insert_rows(cursor, name: str, columns: Tuple[str, ...],
                 rows: List[Tuple[object, ...]]) -> int:
    if rows:
        marks = ", ".join("?" for _ in columns)
        cursor.executemany(
            f"INSERT INTO {_quote(name)} VALUES ({marks})", rows)
    return len(rows)


def _load_relation(cursor, name: str, relation: Relation) -> int:
    _create(cursor, name, relation.attributes)
    rows = [tuple(_adapt(c, v) for c, v in zip(relation.attributes, row))
            for row in relation]
    return _insert_rows(cursor, name, relation.attributes, rows)


def _closure_rows(cursor, i: int,
                  hier_table: Optional[str]) -> List[Tuple[str, str]]:
    """The reflexive–transitive closure of the containment order,
    computed by the SQL engine itself: seeds are every value the
    catalogue or a bridge knows, recursion follows hierarchy edges
    upward."""
    seed = (f"SELECT value_id FROM cat_{i} "
            f"UNION SELECT value_id FROM bridgev_{i}")
    if hier_table is None:
        sql = f"SELECT value_id, value_id FROM ({seed}) AS seeds"
    else:
        sql = (
            f"WITH RECURSIVE reach(child, ancestor) AS ("
            f"SELECT value_id, value_id FROM ({seed}) AS seeds "
            f"UNION "
            f"SELECT reach.child, h.parent_id "
            f"FROM reach JOIN {_quote(hier_table)} h "
            f"ON h.child_id = reach.ancestor) "
            f"SELECT DISTINCT child, ancestor FROM reach")
    return cursor.execute(sql).fetchall()


def load_star(star: StarSchema, mo: MultidimensionalObject,
              engine: str = "sqlite") -> LoadedStar:
    """Create and populate all tables for one export; returns the
    connection plus decode maps keyed by the tagged surrogate
    encoding."""
    with trace.span("sql.load", engine=engine,
                    fact_type=star.fact_type):
        conn = connect(engine)
        cursor = conn.cursor()
        n_rows = 0
        tables = star.tables()
        for name, relation in tables.items():
            n_rows += _load_relation(cursor, name, relation)

        # Auxiliary tables are indexed in *schema* order — the same
        # order StarCatalog.index uses when compiling probes.
        dims = tuple(mo.dimension_names)
        for i, dim in enumerate(dims):
            bridge = star.bridge_tables.get(dim)
            bridge_rows = list(bridge.as_dicts()) if bridge is not None \
                else []
            facts = sorted({row["fact_id"] for row in bridge_rows})
            pairs = sorted({(row["fact_id"], row["value_id"])
                            for row in bridge_rows
                            if row["value_id"] is not None})
            _create(cursor, f"bridgef_{i}", ("fact_id",))
            n_rows += _insert_rows(cursor, f"bridgef_{i}", ("fact_id",),
                                   [(f,) for f in facts])
            _create(cursor, f"bridgev_{i}", ("fact_id", "value_id"))
            n_rows += _insert_rows(cursor, f"bridgev_{i}",
                                   ("fact_id", "value_id"), pairs)

            dim_table = star.dimension_tables[dim]
            cats = sorted({(row["value_id"], row["category"])
                           for row in dim_table.as_dicts()})
            _create(cursor, f"cat_{i}", ("value_id", "category"))
            n_rows += _insert_rows(cursor, f"cat_{i}",
                                   ("value_id", "category"), cats)

            nums = []
            for value in sorted(mo.dimension(dim).values(), key=repr):
                sid = value.sid
                if value.is_top or isinstance(sid, bool) or \
                        not isinstance(sid, (int, float)):
                    continue
                nums.append((encode_sid(sid), float(sid)))
            _create(cursor, f"val_{i}", ("value_id", "num"))
            n_rows += _insert_rows(cursor, f"val_{i}",
                                   ("value_id", "num"), nums)

            hier_name = f"hier_{dim}" if f"hier_{dim}" in tables else None
            closure = _closure_rows(cursor, i, hier_name)
            _create(cursor, f"closure_{i}", ("child", "ancestor"))
            n_rows += _insert_rows(cursor, f"closure_{i}",
                                   ("child", "ancestor"), closure)
            for column in ("child", "ancestor"):
                cursor.execute(
                    f"CREATE INDEX idx_closure_{i}_{column} "
                    f"ON closure_{i} ({column})")
            cursor.execute(f"CREATE INDEX idx_bridgev_{i}_fact "
                           f"ON bridgev_{i} (fact_id)")
            cursor.execute(f"CREATE INDEX idx_bridgev_{i}_value "
                           f"ON bridgev_{i} (value_id)")

        conn.commit()
        value_maps = {
            dim: {encode_sid(v.sid): v
                  for v in mo.dimension(dim).values() if not v.is_top}
            for dim in dims
        }
        fact_map = {encode_sid(f.fid): f for f in mo.facts}
        _LOADS.inc()
        _LOAD_ROWS.observe(n_rows)
        return LoadedStar(conn=conn, engine=engine, dims=dims,
                          value_maps=value_maps, fact_map=fact_map,
                          n_rows=n_rows)
