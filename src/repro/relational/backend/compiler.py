"""Compile optimizer plans to SQL over the star export (pure — no DB).

The compiler translates the pushable subset of
:mod:`repro.engine.optimizer` plans into SQL over the tables
:mod:`repro.relational.backend.loader` creates from a
:func:`~repro.relational.star.export_star` export:

* a fact-set pipeline (``Base`` → σ/π/ρ/∪/\\) becomes a nested
  ``SELECT fact_id`` with one ``EXISTS`` subquery per constrained
  dimension — a bridge-table probe when every target is the
  dimension's ⊤, otherwise a bridge ⋈ closure probe
  (``∃ related r: ∀ targets v: r ≤ v``, which by transitivity of the
  containment order is exactly the algebra's existential
  single-witness semantics);
* a root α becomes a grouping-membership join (bridge ⋈ closure ⋈
  category per grouped dimension) returning ``(grouping values, fact)``
  pairs, plus one ``GROUP BY fact_id`` statement pushing
  COUNT/SUM/MIN/MAX of the argument dimension's measures down to the
  engine.  The backend finishes groups exactly the way α does —
  merging value combinations that select the same fact set and
  re-expanding the merged combinations as a cross product — so results
  are byte-identical, including the in-memory empty-group conventions
  (``sum([]) == 0`` is an int; AVG/MIN/MAX of nothing is ``nan``).

Everything outside that subset raises :class:`PushdownUnsupported`
with a stable ``MD05x`` diagnostic code — the same exception the
static analyzer's :func:`repro.analyze.pushdown.analyze_pushdown`
reports and the query layer's fallback counts — so the analyzer's
prediction and the backend's behavior can never drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.algebra.functions import (
    AggregationFunction,
    Avg,
    CountDim,
    Max,
    Min,
    SetCount,
    Sum,
)
from repro.algebra.predicates import Predicate
from repro.core.aggtypes import min_aggtype
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.values import TOP_LABEL, DimensionValue
from repro.engine.optimizer import (
    AggregateNode,
    Base,
    DifferenceNode,
    JoinNode,
    Plan,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    node_label,
)
from repro.relational.star import encode_sid

__all__ = [
    "PushdownUnsupported",
    "StarCatalog",
    "CompiledNode",
    "CompiledPlan",
    "AggPushdown",
    "compile_plan",
    "raw_result",
    "PUSHABLE_FUNCTIONS",
]

#: exactly these function classes compile to SQL scalars (subclasses
#: do not — their overridden ``apply`` could mean anything).
PUSHABLE_FUNCTIONS = (SetCount, CountDim, Sum, Avg, Min, Max)


class PushdownUnsupported(Exception):
    """A plan (or part of one) is outside the pushable subset.

    ``code`` is a stable ``MD05x`` analyzer code, ``location`` the
    offending plan node's label, ``reason`` the human-readable why.
    The query layer catches this to fall back to the in-memory path;
    the static analyzer reports it as a diagnostic."""

    def __init__(self, code: str, location: str, reason: str) -> None:
        super().__init__(f"{code} at {location}: {reason}")
        self.code = code
        self.location = location
        self.reason = reason


@dataclass(frozen=True)
class StarCatalog:
    """What the compiler needs to know about one MO's star export:
    the dimension order (auxiliary tables are named by index) and
    which dimensions are *poisoned* for measures (some related value
    has a non-numeric surrogate, so ``measures_of`` would raise)."""

    mo: MultidimensionalObject
    dims: Tuple[str, ...]
    poisoned: FrozenSet[str]

    @classmethod
    def of(cls, mo: MultidimensionalObject) -> "StarCatalog":
        dims = tuple(mo.dimension_names)
        poisoned = set()
        for name in dims:
            for _fact, value in mo.relation(name).pairs():
                if value.is_top:
                    continue
                sid = value.sid
                if isinstance(sid, bool) or not isinstance(sid, (int, float)):
                    poisoned.add(name)
        return cls(mo=mo, dims=dims, poisoned=frozenset(poisoned))

    def index(self, name: str) -> int:
        return self.dims.index(name)


@dataclass(frozen=True)
class CompiledNode:
    """One plan node's contribution to the emitted SQL, for EXPLAIN."""

    label: str
    sql: str


@dataclass(frozen=True)
class AggPushdown:
    """The root α's decode recipe: which result columns are grouping
    values of which original dimension, and the per-fact measure
    statement whose pushed-down scalars :func:`raw_result` finishes."""

    function: AggregationFunction
    names: Tuple[str, ...]          # sorted current grouping dim names
    origins: Tuple[str, ...]        # parallel: original dimension names
    measure_sql: Optional[str] = None
    measure_params: Tuple[object, ...] = ()


@dataclass(frozen=True)
class CompiledPlan:
    """A fully compiled plan: the SQL plus the metadata to decode its
    result set back into engine objects.  ``kind`` is ``"facts"`` (the
    statement returns qualifying fact ids) or ``"rows"`` (the root is
    an α; the statement returns ``(grouping values…, fact id)``
    pairs)."""

    kind: str
    sql: str
    params: Tuple[object, ...]
    nodes: Tuple[CompiledNode, ...]
    fact_type: str
    mapping: Tuple[Tuple[str, str], ...]  # current name -> original name
    aggregate: Optional[AggPushdown] = None


@dataclass
class _FactsQuery:
    """Mutable compile state for the fact-set pipeline."""

    sql: str
    params: List[object]
    mapping: Dict[str, str]         # current dim name -> original name
    fact_type: str
    nodes: List[CompiledNode] = field(default_factory=list)


def _unsupported(code: str, plan: Plan, reason: str) -> PushdownUnsupported:
    return PushdownUnsupported(code, node_label(plan), reason)


def _atoms(predicate: Predicate,
           plan: Plan) -> List[Tuple[str, DimensionValue]]:
    """Flatten a predicate into ``characterized_by`` atoms; anything
    else in the tree is not translatable."""
    if predicate.kind == "characterized_by":
        name, value = predicate.payload  # type: ignore[misc]
        return [(name, value)]
    if predicate.kind == "conjunction":
        out: List[Tuple[str, DimensionValue]] = []
        for operand in predicate.payload:  # type: ignore[union-attr]
            out.extend(_atoms(operand, plan))
        return out
    raise _unsupported(
        "MD051", plan,
        f"predicate {predicate.description!r} is opaque (only "
        f"characterized_by atoms and conjunctions compile)")


def _is_current_top(value: DimensionValue, current_name: str) -> bool:
    """Whether ``value`` is the ⊤ of the dimension *as currently
    named* — after ρ the dimension carries a fresh ⊤ whose surrogate
    embeds the new name, so the base dimension's ⊤ is the wrong
    object to compare against."""
    return value.is_top and value.sid == (TOP_LABEL, current_name)


def _predicate_condition(predicate: Predicate, plan: Plan,
                         state: _FactsQuery,
                         catalog: StarCatalog) -> Tuple[str, List[object]]:
    """The ``WHERE`` condition of one σ node: per constrained
    dimension, one EXISTS probe shared by all of that dimension's
    atoms (the algebra's single-witness-per-dimension semantics —
    one related value must lie below *all* targets)."""
    by_dim: Dict[str, List[DimensionValue]] = {}
    for name, value in _atoms(predicate, plan):
        if name not in state.mapping:
            raise _unsupported(
                "MD051", plan,
                f"predicate constrains dimension {name!r} which is not "
                f"in the (possibly projected) schema")
        by_dim.setdefault(name, []).append(value)

    conditions: List[str] = []
    params: List[object] = []
    for name in sorted(by_dim):
        i = catalog.index(state.mapping[name])
        # A ⊤ target is vacuously satisfied by any witness; the
        # remaining targets need one related value below all of them.
        # An alien value (another dimension's ⊤, or a value unknown to
        # this dimension) stays as a closure target that matches
        # nothing — exactly the in-memory "no witness" outcome.
        targets = [v for v in by_dim[name]
                   if not _is_current_top(v, name)]
        if not targets:
            conditions.append(
                f"EXISTS (SELECT 1 FROM bridgef_{i} b "
                f"WHERE b.fact_id = f.fact_id)")
            continue
        joins = []
        for j, value in enumerate(targets):
            joins.append(f"JOIN closure_{i} c{j} "
                         f"ON c{j}.child = b.value_id AND c{j}.ancestor = ?")
            params.append(encode_sid(value.sid))
        conditions.append(
            f"EXISTS (SELECT 1 FROM bridgev_{i} b "
            + " ".join(joins)
            + " WHERE b.fact_id = f.fact_id)")
    return " AND ".join(conditions) if conditions else "1 = 1", params


def _compile_facts(plan: Plan, catalog: StarCatalog) -> _FactsQuery:
    """Recursively compile the fact-set pipeline below the root."""
    if isinstance(plan, Base):
        if plan.mo is not catalog.mo:
            raise _unsupported(
                "MD050", plan,
                "plan reads a different MO than the loaded star export")
        state = _FactsQuery(
            sql="SELECT fact_id FROM fact",
            params=[],
            mapping={name: name for name in catalog.dims},
            fact_type=catalog.mo.schema.fact_type)
        state.nodes.append(CompiledNode(node_label(plan), state.sql))
        return state

    if isinstance(plan, SelectNode):
        state = _compile_facts(plan.child, catalog)
        condition, params = _predicate_condition(
            plan.predicate, plan, state, catalog)
        state.sql = (f"SELECT fact_id FROM ({state.sql}) f "
                     f"WHERE {condition}")
        state.params.extend(params)
        state.nodes.append(CompiledNode(node_label(plan),
                                        f"WHERE {condition}"))
        return state

    if isinstance(plan, ProjectNode):
        state = _compile_facts(plan.child, catalog)
        missing = [d for d in plan.dimensions if d not in state.mapping]
        if missing:
            raise _unsupported(
                "MD050", plan,
                f"projection names unknown dimensions {missing!r}")
        state.mapping = {d: state.mapping[d] for d in plan.dimensions}
        state.nodes.append(CompiledNode(
            node_label(plan),
            "-- fact set unchanged; schema keeps "
            + ", ".join(plan.dimensions)))
        return state

    if isinstance(plan, RenameNode):
        state = _compile_facts(plan.child, catalog)
        renames = dict(plan.dimension_map)
        unknown = [old for old in renames if old not in state.mapping]
        if unknown:
            raise _unsupported(
                "MD050", plan,
                f"rename of unknown dimensions {unknown!r}")
        state.mapping = {renames.get(old, old): origin
                         for old, origin in state.mapping.items()}
        if plan.new_fact_type is not None:
            state.fact_type = plan.new_fact_type
        state.nodes.append(CompiledNode(
            node_label(plan), "-- fact set unchanged; names remapped"))
        return state

    if isinstance(plan, (UnionNode, DifferenceNode)):
        left = _compile_facts(plan.left, catalog)
        right = _compile_facts(plan.right, catalog)
        if left.mapping != right.mapping or \
                left.fact_type != right.fact_type:
            raise _unsupported(
                "MD050", plan,
                "operand schemas are not common (the in-memory "
                "operator would reject them)")
        operator = "UNION" if isinstance(plan, UnionNode) else "EXCEPT"
        state = _FactsQuery(
            sql=(f"SELECT fact_id FROM ({left.sql}) "
                 f"{operator} SELECT fact_id FROM ({right.sql})"),
            params=left.params + right.params,
            mapping=left.mapping,
            fact_type=left.fact_type,
            nodes=left.nodes + right.nodes)
        state.nodes.append(CompiledNode(node_label(plan), operator))
        return state

    if isinstance(plan, JoinNode):
        raise _unsupported("MD050", plan,
                           "identity join is not pushed down")
    if isinstance(plan, AggregateNode):
        raise _unsupported("MD050", plan,
                           "nested aggregate formation is not pushed "
                           "down (only a root α compiles)")
    raise _unsupported("MD050", plan, "unknown plan node")


def _check_function(plan: AggregateNode, state: _FactsQuery,
                    catalog: StarCatalog) -> None:
    function = plan.function
    if type(function) not in PUSHABLE_FUNCTIONS:
        raise _unsupported(
            "MD052", plan,
            f"{function.name} has no SQL scalar translation (only "
            f"{', '.join(c.__name__ for c in PUSHABLE_FUNCTIONS)} "
            f"push down)")
    if plan.strict_types:
        raise _unsupported(
            "MD052", plan,
            "strict aggregation-type mode may raise; the in-memory "
            "path owns that behavior")
    for arg in function.args:
        if arg not in state.mapping:
            raise _unsupported(
                "MD052", plan,
                f"argument dimension {arg!r} is not in the schema")
        origin = state.mapping[arg]
        if origin in catalog.poisoned:
            raise _unsupported(
                "MD052", plan,
                f"dimension {origin!r} has non-numeric surrogates; "
                f"measures_of would raise")
    if function.args:
        bottoms = [catalog.mo.dimension(state.mapping[arg]).dtype
                   .bottom.aggtype for arg in function.args]
        if not min_aggtype(bottoms).permits(function.required_function):
            raise _unsupported(
                "MD052", plan,
                f"{function.name} is not applicable to the argument "
                f"types; the in-memory path owns the warning")


def _compile_aggregate(plan: AggregateNode,
                       catalog: StarCatalog) -> CompiledPlan:
    if catalog.mo.kind is not TimeKind.SNAPSHOT:
        raise _unsupported(
            "MD050", plan,
            "only snapshot MOs push down (temporal grouping resolves "
            "per chronon)")
    state = _compile_facts(plan.child, catalog)
    _check_function(plan, state, catalog)

    grouping = dict(plan.grouping)
    for name, category in plan.grouping:
        if name not in state.mapping:
            raise _unsupported(
                "MD050", plan, f"unknown grouping dimension {name!r}")
        origin = state.mapping[name]
        dimension = catalog.mo.dimension(origin)
        if category not in dimension.dtype:
            raise _unsupported(
                "MD050", plan,
                f"dimension {name!r} has no category {category!r}")
        if category == dimension.dtype.top_name:
            raise _unsupported(
                "MD052", plan,
                "grouping at the ⊤ category is not pushed down")

    names = tuple(sorted(grouping))
    origins = tuple(state.mapping[n] for n in names)
    params = list(state.params)

    select_cols: List[str] = []
    join_sql: List[str] = []
    for k, name in enumerate(names):
        i = catalog.index(state.mapping[name])
        select_cols.append(f"g{k}.value_id")
        join_sql.append(
            f"JOIN (SELECT DISTINCT b.fact_id, c.ancestor AS value_id "
            f"FROM bridgev_{i} b "
            f"JOIN closure_{i} c ON c.child = b.value_id "
            f"JOIN cat_{i} cat ON cat.value_id = c.ancestor "
            f"AND cat.category = ?) g{k} ON g{k}.fact_id = f.fact_id")
        params.append(grouping[name])

    # Dimensions of the current schema that are *not* grouped land at
    # the implicit ⊤ category: a fact with no characterization there
    # has no grouping value at all and drops out of every group.
    implicit: List[str] = []
    for name in sorted(state.mapping):
        if name not in grouping:
            i = catalog.index(state.mapping[name])
            implicit.append(
                f"EXISTS (SELECT 1 FROM bridgef_{i} b "
                f"WHERE b.fact_id = f.fact_id)")

    sql = "SELECT " + ", ".join(select_cols + ["f.fact_id"])
    sql += f" FROM ({state.sql}) f"
    for join in join_sql:
        sql += " " + join
    if implicit:
        sql += " WHERE " + " AND ".join(implicit)

    measure_sql: Optional[str] = None
    if plan.function.args:
        i = catalog.index(state.mapping[plan.function.args[0]])
        measure_sql = (
            f"SELECT b.fact_id, COUNT(*) AS cnt, SUM(v.num) AS s, "
            f"MIN(v.num) AS mn, MAX(v.num) AS mx "
            f"FROM bridgev_{i} b JOIN val_{i} v "
            f"ON v.value_id = b.value_id GROUP BY b.fact_id")

    nodes = state.nodes + [CompiledNode(node_label(plan), sql)]
    if measure_sql:
        nodes.append(CompiledNode(
            f"measures[{plan.function.args[0]}]", measure_sql))
    return CompiledPlan(
        kind="rows", sql=sql, params=tuple(params), nodes=tuple(nodes),
        fact_type=state.fact_type,
        mapping=tuple(sorted(state.mapping.items())),
        aggregate=AggPushdown(function=plan.function, names=names,
                              origins=origins, measure_sql=measure_sql))


def compile_plan(plan: Plan, catalog: StarCatalog) -> CompiledPlan:
    """Compile a plan to SQL, or raise :class:`PushdownUnsupported`
    (``MD050`` plan shape, ``MD051`` predicate, ``MD052``
    aggregation)."""
    if isinstance(plan, AggregateNode):
        return _compile_aggregate(plan, catalog)
    state = _compile_facts(plan, catalog)
    if state.fact_type != catalog.mo.schema.fact_type:
        raise _unsupported(
            "MD050", plan,
            "fact-type rename changes fact identity; a fact-set "
            "result cannot decode through the template")
    return CompiledPlan(
        kind="facts", sql=state.sql, params=tuple(state.params),
        nodes=tuple(state.nodes), fact_type=state.fact_type,
        mapping=tuple(sorted(state.mapping.items())))


def raw_result(function: AggregationFunction,
               fact_ids: FrozenSet[str],
               measure_stats: Mapping[str, Tuple[int, float, float, float]],
               ) -> object:
    """Finish one group from pushed-down per-fact scalars into exactly
    what the in-memory ``apply`` returns.  ``measure_stats`` maps a
    fact id to its ``(count, sum, min, max)`` over the argument
    dimension's measures (facts with no measures are simply absent)."""
    if isinstance(function, SetCount):
        return len(fact_ids)
    stats = [measure_stats[f] for f in fact_ids if f in measure_stats]
    count = sum(s[0] for s in stats)
    if isinstance(function, CountDim):
        return count
    if isinstance(function, Sum):
        # the batch kernel's convention (0.0 for an empty group) — the
        # path Query.execute actually takes for every pushable plan;
        # the naive apply's int 0 is == but not repr-equal
        return float(sum(s[1] for s in stats))
    if isinstance(function, Avg):
        return (float(sum(s[1] for s in stats)) / count
                if count else math.nan)
    if isinstance(function, Min):
        return float(min(s[2] for s in stats)) if count else math.nan
    if isinstance(function, Max):
        return float(max(s[3] for s in stats)) if count else math.nan
    raise ValueError(f"no finisher for {function.name}")  # pragma: no cover


def rows_kind_groups(
    combo_rows: Iterable[Tuple[object, ...]],
    n_names: int,
) -> Dict[FrozenSet[str], List[Tuple[str, ...]]]:
    """Group the ``(value ids…, fact id)`` result set the way α does:
    first by grouping-value combination, then merging combinations
    that select the same fact set (those become one set-fact related
    to every merged combination's values)."""
    by_combo: Dict[Tuple[str, ...], set] = {}
    for row in combo_rows:
        combo = tuple(row[:n_names])
        by_combo.setdefault(combo, set()).add(row[n_names])
    merged: Dict[FrozenSet[str], List[Tuple[str, ...]]] = {}
    for combo, facts in by_combo.items():
        merged.setdefault(frozenset(facts), []).append(combo)
    return merged
