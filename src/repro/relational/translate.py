"""The constructive side of Theorem 2.

Theorem 2: *the algebra is at least as powerful as Klug's relational
algebra with aggregation functions.*  The classical proof compiles
relations into multidimensional objects and simulates each relational
operator with multidimensional ones; this module implements that
compilation so the theorem can be checked mechanically:

* :func:`relation_to_mo` — each row becomes a fact; each attribute
  becomes a simple (⊥ + ⊤) dimension; the fact is related to its
  attribute value (or to ⊤ for a NULL);
* :func:`mo_to_relation` — reads the rows back (set semantics collapse
  duplicates, matching relational projection);
* ``sim_*`` — one simulation per Klug operator, each a composition of
  the paper's fundamental operators;
* :class:`TheoremTwoChecker` — runs an operator both ways and compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as _cartesian
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set

from repro.algebra import (
    Avg,
    CountDim,
    JoinPredicate,
    Max,
    Min,
    Predicate,
    SelectionContext,
    Sum,
    aggregate,
    duplicate_removal,
    identity_join,
    project,
    rename,
    select,
)
from repro.core.aggtypes import AggregationType
from repro.core.errors import SchemaError
from repro.core.helpers import make_result_spec, make_simple_dimension
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.relational.algebra import (
    r_aggregate,
    r_difference,
    r_product,
    r_project,
    r_rename,
    r_select,
    r_union,
)
from repro.relational.relation import Relation

__all__ = [
    "relation_to_mo",
    "mo_to_relation",
    "sim_select",
    "sim_project",
    "sim_rename",
    "sim_union",
    "sim_difference",
    "sim_product",
    "sim_aggregate",
    "TheoremTwoChecker",
]

_MEASURE_FUNCTIONS = {
    "SUM": Sum,
    "COUNT": CountDim,
    "AVG": Avg,
    "MIN": Min,
    "MAX": Max,
}


def _infer_aggtype(values: Sequence[Hashable]) -> AggregationType:
    numeric = all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values if v is not None
    )
    return AggregationType.SUM if numeric else AggregationType.CONSTANT


def relation_to_mo(
    relation: Relation,
    fact_type: str = "Tuple",
    aggtypes: Optional[Dict[str, AggregationType]] = None,
) -> MultidimensionalObject:
    """Compile a relation into an MO: rows as facts, attributes as
    simple dimensions.

    ``aggtypes`` fixes each attribute dimension's ⊥ aggregation type
    (inferred from the data when omitted — all-numeric columns become
    additive).  Pass the same mapping for relations that will meet in
    ∪ or \\ so their schemas compare equal.
    """
    aggtypes = aggtypes or {}
    dimensions = {}
    for attr in relation.attributes:
        index = relation.index_of(attr)
        domain = sorted(
            {row[index] for row in relation if row[index] is not None},
            key=repr,
        )
        aggtype = aggtypes.get(attr, _infer_aggtype(domain))
        dimensions[attr] = make_simple_dimension(attr, domain, aggtype=aggtype)
    schema = FactSchema(fact_type, [d.dtype for d in dimensions.values()])
    mo = MultidimensionalObject(schema=schema, dimensions=dimensions)
    for row in relation:
        fact = Fact(fid=row, ftype=fact_type)
        mo.add_fact(fact)
        for attr, cell in zip(relation.attributes, row):
            if cell is None:
                mo.relate_unknown(fact, attr)
            else:
                mo.relate(fact, attr,
                          DimensionValue(sid=cell, label=str(cell)))
    return mo


def mo_to_relation(
    mo: MultidimensionalObject,
    attributes: Optional[Sequence[str]] = None,
) -> Relation:
    """Read an MO back as a relation over its dimensions.

    Each fact yields the combinations of its base values per dimension
    (usually exactly one); ⊤ reads back as ``None``.  Set semantics
    collapse duplicates, so distinct facts with equal value combinations
    become one row — exactly relational projection's behaviour.
    """
    attributes = list(attributes or mo.dimension_names)
    rows: Set[tuple] = set()
    for fact in mo.facts:
        cell_options: List[List[Hashable]] = []
        for name in attributes:
            values = mo.relation(name).values_of(fact)
            cells = sorted(
                (None if v.is_top else v.sid for v in values), key=repr
            )
            cell_options.append(cells or [None])
        for combo in _cartesian(*cell_options):
            rows.add(tuple(combo))
    return Relation(attributes, rows)


# -- per-operator simulations --------------------------------------------------


def sim_select(
    mo: MultidimensionalObject,
    predicate: Callable[[Dict[str, Hashable]], bool],
) -> MultidimensionalObject:
    """Relational σ simulated by multidimensional σ: the row predicate
    is evaluated over the fact's ⊥-category values (⊤ reads as None)."""
    names = tuple(mo.dimension_names)

    def test(values: Dict[str, DimensionValue],
             ctx: SelectionContext) -> bool:
        row: Dict[str, Hashable] = {}
        for name in names:
            value = values[name]
            # the witness must be one of the fact's base values: the
            # row's actual cells, with an explicit (f, ⊤) pair as NULL
            if value not in ctx.mo.relation(name).values_of(ctx.fact):
                return False
            row[name] = None if value.is_top else value.sid
        return predicate(row)

    return select(mo, Predicate(dims=names, test=test,
                                description="row predicate"))


def sim_project(mo: MultidimensionalObject,
                attributes: Sequence[str]) -> MultidimensionalObject:
    """Relational π simulated by multidimensional π followed by the
    derived duplicate-removal (relational projection collapses
    duplicates; facts have identity, so the collapse is explicit)."""
    return duplicate_removal(project(mo, attributes))


def sim_rename(mo: MultidimensionalObject,
               mapping: Dict[str, str]) -> MultidimensionalObject:
    """Relational ρ simulated by multidimensional ρ."""
    return rename(mo, dimension_map=mapping)


def sim_union(m1: MultidimensionalObject,
              m2: MultidimensionalObject) -> MultidimensionalObject:
    """Relational ∪ simulated by multidimensional ∪ (facts are rows, so
    set union of facts is set union of rows)."""
    from repro.algebra import union as mo_union

    return mo_union(m1, m2)


def sim_difference(m1: MultidimensionalObject,
                   m2: MultidimensionalObject) -> MultidimensionalObject:
    """Relational \\ simulated by multidimensional \\."""
    from repro.algebra import difference as mo_difference

    return mo_difference(m1, m2)


def sim_product(m1: MultidimensionalObject,
                m2: MultidimensionalObject) -> MultidimensionalObject:
    """Relational × simulated by the identity-based join with the
    constant-true predicate."""
    return identity_join(m1, m2, JoinPredicate.TRUE)


def sim_aggregate(
    mo: MultidimensionalObject,
    group_by: Sequence[str],
    function: str,
    over: str,
    result_attribute: str = "result",
) -> MultidimensionalObject:
    """Klug's aggregate formation simulated by α: group on the ⊥
    categories of the group-by attributes (⊤ elsewhere), apply the
    matching aggregation function over the measure dimension, keep the
    group-by dimensions plus the result."""
    if function not in _MEASURE_FUNCTIONS:
        raise SchemaError(f"unknown aggregate {function!r}")
    g = _MEASURE_FUNCTIONS[function](over)
    grouping = {
        name: mo.dimension(name).dtype.bottom_name for name in group_by
    }
    result = make_result_spec(name=result_attribute)
    aggregated = aggregate(mo, g, grouping, result, strict_types=False)
    keep = list(group_by) + [result_attribute]
    return project(aggregated, keep)


# -- the checker ------------------------------------------------------------------


@dataclass
class ComparisonResult:
    """Both sides of one Theorem 2 check."""

    operator: str
    relational: Relation
    simulated: Relation

    @property
    def equal(self) -> bool:
        """True iff the simulated result equals the relational one."""
        return (set(self.relational.attributes)
                == set(self.simulated.attributes)
                and _normalized(self.relational) == _normalized(self.simulated))


def _normalized(relation: Relation) -> Set[tuple]:
    order = sorted(relation.attributes)
    indices = [relation.index_of(a) for a in order]
    return {tuple(row[i] for i in indices) for row in relation}


class TheoremTwoChecker:
    """Runs each Klug operator both relationally and via the MO
    simulation, and compares the results — the mechanical check behind
    Theorem 2."""

    def __init__(self, aggtypes: Optional[Dict[str, AggregationType]] = None):
        self._aggtypes = aggtypes or {}

    def _compile(self, relation: Relation) -> MultidimensionalObject:
        return relation_to_mo(relation, aggtypes=self._aggtypes)

    def _compile_pair(self, r1: Relation, r2: Relation):
        """Compile two same-schema relations with *joint* aggregation
        types, so empty or skewed operands still produce equal schemas
        for ∪ and \\."""
        aggtypes = dict(self._aggtypes)
        for attr in r1.attributes:
            if attr in aggtypes:
                continue
            i1, i2 = r1.index_of(attr), r2.index_of(attr)
            joint = [row[i1] for row in r1] + [row[i2] for row in r2]
            aggtypes[attr] = _infer_aggtype(joint)
        return (relation_to_mo(r1, aggtypes=aggtypes),
                relation_to_mo(r2, aggtypes=aggtypes))

    def check_select(self, relation: Relation,
                     predicate: Callable[[Dict[str, Hashable]], bool]
                     ) -> ComparisonResult:
        """Compare σ both ways."""
        return ComparisonResult(
            "select",
            r_select(relation, predicate),
            mo_to_relation(sim_select(self._compile(relation), predicate)),
        )

    def check_project(self, relation: Relation,
                      attributes: Sequence[str]) -> ComparisonResult:
        """Compare π both ways."""
        return ComparisonResult(
            "project",
            r_project(relation, attributes),
            mo_to_relation(sim_project(self._compile(relation), attributes),
                           attributes),
        )

    def check_rename(self, relation: Relation,
                     mapping: Dict[str, str]) -> ComparisonResult:
        """Compare ρ both ways."""
        return ComparisonResult(
            "rename",
            r_rename(relation, mapping),
            mo_to_relation(sim_rename(self._compile(relation), mapping)),
        )

    def check_union(self, r1: Relation, r2: Relation) -> ComparisonResult:
        """Compare ∪ both ways."""
        m1, m2 = self._compile_pair(r1, r2)
        return ComparisonResult(
            "union",
            r_union(r1, r2),
            mo_to_relation(sim_union(m1, m2)),
        )

    def check_difference(self, r1: Relation,
                         r2: Relation) -> ComparisonResult:
        """Compare \\ both ways."""
        m1, m2 = self._compile_pair(r1, r2)
        return ComparisonResult(
            "difference",
            r_difference(r1, r2),
            mo_to_relation(sim_difference(m1, m2)),
        )

    def check_product(self, r1: Relation, r2: Relation) -> ComparisonResult:
        """Compare × both ways."""
        return ComparisonResult(
            "product",
            r_product(r1, r2),
            mo_to_relation(sim_product(self._compile(r1), self._compile(r2))),
        )

    def check_aggregate(self, relation: Relation, group_by: Sequence[str],
                        function: str, over: str) -> ComparisonResult:
        """Compare aggregate formation both ways."""
        relational = r_aggregate(relation, group_by, function, over)
        simulated_mo = sim_aggregate(self._compile(relation), group_by,
                                     function, over)
        simulated = mo_to_relation(simulated_mo,
                                   list(group_by) + ["result"])
        return ComparisonResult("aggregate", relational, simulated)
