"""Probability-aware algebra operations (paper §3.3 / §4).

"The probabilities are also handled by the algebra."  The fundamental
operators already carry probability annotations through unchanged (they
copy fact-dimension entries verbatim); this module adds the operations
whose *semantics* involve the probabilities:

* :func:`select_with_certainty` — σ restricted to facts characterized
  with at least a minimum certainty (the natural probabilistic
  selection);
* :func:`probabilistic_rollup` — aggregate formation under expected-
  value semantics for counting: each group value receives the expected
  number of qualifying facts rather than a crisp count;
* :func:`possible_worlds_count` — the exact distribution of the count
  for small groups, by enumeration of the independent-pair worlds,
  against which the expectation is property-tested.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.algebra.predicates import characterized_with_certainty
from repro.algebra.selection import select
from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue
from repro.temporal.chronon import Chronon
from repro.uncertainty.probability import expected_group_counts

__all__ = [
    "select_with_certainty",
    "probabilistic_rollup",
    "possible_worlds_count",
]


def select_with_certainty(
    mo: MultidimensionalObject,
    dimension_name: str,
    value: DimensionValue,
    min_prob: float,
) -> MultidimensionalObject:
    """σ keeping the facts characterized by ``value`` with probability at
    least ``min_prob`` — e.g. "patients diagnosed with diabetes with at
    least 90% certainty"."""
    return select(
        mo, characterized_with_certainty(dimension_name, value, min_prob))


def probabilistic_rollup(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
    at: Optional[Chronon] = None,
) -> List[Tuple[DimensionValue, float]]:
    """Expected set-count per value of the grouping category, sorted by
    value repr — the uncertain counterpart of Example 12."""
    counts = expected_group_counts(mo, dimension_name, category_name, at=at)
    return sorted(counts.items(), key=lambda item: repr(item[0]))


def possible_worlds_count(
    mo: MultidimensionalObject,
    dimension_name: str,
    value: DimensionValue,
    at: Optional[Chronon] = None,
) -> Dict[int, float]:
    """The exact probability distribution of "number of facts
    characterized by ``value``", assuming the facts' characterizations
    are independent.

    Enumerates the 2^k worlds over the k facts with a positive
    characterization probability, so it is intended for verification on
    small MOs; its expectation equals :func:`expected_count` exactly.
    """
    relation = mo.relation(dimension_name)
    dimension = mo.dimension(dimension_name)
    probs: List[float] = []
    for fact in sorted(relation.facts_characterized_by(value, dimension),
                       key=repr):
        p = relation.characterization_probability(fact, value, dimension,
                                                  at=at)
        if p > 0.0:
            probs.append(p)
    distribution: Dict[int, float] = {}
    for world in product((True, False), repeat=len(probs)):
        weight = 1.0
        count = 0
        for included, p in zip(world, probs):
            weight *= p if included else (1.0 - p)
            count += included
        distribution[count] = distribution.get(count, 0.0) + weight
    return {count: p for count, p in distribution.items() if p > 0.0}
