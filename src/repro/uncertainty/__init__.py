"""Uncertainty support (paper §3.3): probabilities on the dimension
partial order and the fact-dimension relations, with noisy-or
composition, expected-count analytics, and certainty thresholds."""

from repro.uncertainty.operators import (
    possible_worlds_count,
    probabilistic_rollup,
    select_with_certainty,
)
from repro.uncertainty.probability import (
    certain_core,
    characterization_probability,
    expected_count,
    expected_group_counts,
    expected_sum,
    is_certain,
)

__all__ = [
    "possible_worlds_count",
    "probabilistic_rollup",
    "select_with_certainty",
    "certain_core",
    "characterization_probability",
    "expected_count",
    "expected_group_counts",
    "expected_sum",
    "is_certain",
]
