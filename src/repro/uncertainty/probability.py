"""Uncertainty handling (paper §3.3).

"The basic idea is to add probabilities p to the parts of the model
where it makes sense": the partial order on dimension values
(``e1 ≤_p e2``) and the fact-dimension relations (``(f, e) ∈_p R``).
The ICDE paper sketches this and defers the details to the companion
technical report; this module implements the natural completion used
throughout the library and documents its assumptions:

* probabilities compose multiplicatively along a containment path and a
  fact-dimension pair (a 90%-certain diagnosis placed in an 80%-certain
  family yields a 72%-certain characterization);
* parallel derivations combine by noisy-or under an assumption of
  independence;
* when every probability is 1 the model degenerates to the certain
  model (property-tested).

The low-level machinery lives on :class:`~repro.core.order.AnnotatedOrder`
and :class:`~repro.core.factdim.FactDimensionRelation`; this module adds
the analysis-level operations: expected counts, certainty thresholds,
and extraction of the certain core of an uncertain MO.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.dimension import Dimension
from repro.core.errors import UncertaintyError
from repro.core.factdim import FactDimensionRelation
from repro.core.mo import MultidimensionalObject
from repro.core.values import DimensionValue, Fact
from repro.temporal.chronon import Chronon

__all__ = [
    "characterization_probability",
    "expected_count",
    "expected_group_counts",
    "expected_sum",
    "certain_core",
    "is_certain",
]


def characterization_probability(
    mo: MultidimensionalObject,
    fact: Fact,
    dimension_name: str,
    value: DimensionValue,
    at: Optional[Chronon] = None,
) -> float:
    """``P(f ⇝ value)`` in the named dimension (see
    :meth:`FactDimensionRelation.characterization_probability`)."""
    return mo.relation(dimension_name).characterization_probability(
        fact, value, mo.dimension(dimension_name), at=at)


def expected_count(
    mo: MultidimensionalObject,
    dimension_name: str,
    value: DimensionValue,
    at: Optional[Chronon] = None,
) -> float:
    """The expected number of facts characterized by ``value``:
    ``Σ_f P(f ⇝ value)``.

    This is the probabilistic counterpart of Example 12's set-count —
    by linearity of expectation it needs no independence assumption
    across facts.
    """
    relation = mo.relation(dimension_name)
    dimension = mo.dimension(dimension_name)
    total = 0.0
    for fact in relation.facts_characterized_by(value, dimension):
        total += relation.characterization_probability(
            fact, value, dimension, at=at)
    return total


def expected_group_counts(
    mo: MultidimensionalObject,
    dimension_name: str,
    category_name: str,
    at: Optional[Chronon] = None,
) -> Dict[DimensionValue, float]:
    """Expected set-counts for every value of a grouping category — the
    probabilistic aggregate formation for counting."""
    dimension = mo.dimension(dimension_name)
    return {
        value: expected_count(mo, dimension_name, value, at=at)
        for value in dimension.category(category_name).members(at=at)
    }


def expected_sum(
    mo: MultidimensionalObject,
    group_dimension: str,
    group_value: DimensionValue,
    measure_dimension: str,
    at: Optional[Chronon] = None,
) -> float:
    """The expected sum of a measure over the facts characterized by
    ``group_value``: ``Σ_f P(f ⇝ group_value) · measure(f)``.

    A fact's measure is the sum of its numeric base values in the
    measure dimension, each weighted by its own pair probability.
    """
    group_relation = mo.relation(group_dimension)
    group_dim = mo.dimension(group_dimension)
    measure_relation = mo.relation(measure_dimension)
    total = 0.0
    for fact in group_relation.facts_characterized_by(group_value, group_dim):
        p_group = group_relation.characterization_probability(
            fact, group_value, group_dim, at=at)
        if p_group == 0.0:
            continue
        for value in measure_relation.values_of(fact):
            if value.is_top:
                continue
            sid = value.sid
            if isinstance(sid, bool) or not isinstance(sid, (int, float)):
                raise UncertaintyError(
                    f"value {value!r} has a non-numeric surrogate; cannot "
                    f"take its expectation"
                )
            p_pair = max(
                (p for _, p in measure_relation.annotations(fact, value)),
                default=0.0,
            )
            total += p_group * p_pair * float(sid)
    return total


def certain_core(mo: MultidimensionalObject,
                 threshold: float = 1.0) -> MultidimensionalObject:
    """The certain (or ``≥ threshold``-certain) part of an uncertain MO:
    fact-dimension pairs below the threshold are dropped, and facts left
    without a pair in some dimension are related to ⊤ there (the paper's
    marker for "cannot characterize").

    With ``threshold=1.0`` and a fully certain input this is the
    identity (the degeneration property).
    """
    if not 0.0 <= threshold <= 1.0:
        raise UncertaintyError(f"threshold {threshold} outside [0, 1]")
    relations = {}
    for name in mo.dimension_names:
        result = FactDimensionRelation(name)
        for fact, value, time, prob in mo.relation(name).annotated_pairs():
            if prob >= threshold:
                result.add(fact, value, time=time, prob=prob)
        for fact in mo.facts - result.facts():
            result.add(fact, mo.dimension(name).top_value)
        relations[name] = result
    return MultidimensionalObject(
        schema=mo.schema,
        facts=mo.facts,
        dimensions={n: mo.dimension(n) for n in mo.dimension_names},
        relations=relations,
        kind=mo.kind,
    )


def is_certain(mo: MultidimensionalObject) -> bool:
    """True iff no annotation of the MO carries probability < 1 — i.e.
    the MO lies in the basic (certain) model."""
    for name in mo.dimension_names:
        for _, _, _, prob in mo.relation(name).annotated_pairs():
            if prob < 1.0:
                return False
        for _, _, _, prob in mo.dimension(name).order.edges():
            if prob < 1.0:
                return False
    return True
