"""Temporal support for the model (paper §3.2 and §4.2).

Chronons, coalesced chronon sets, and bitemporal rectangles are
importable eagerly.  The modules that build on the core model —
granularities (:mod:`repro.temporal.granularity`), the timeslice
operators (:mod:`repro.temporal.timeslice`), and the versioned store
(:mod:`repro.temporal.versioned`) — are re-exported lazily to avoid a
core ↔ temporal import cycle; attribute access loads them on demand.
"""

from repro.temporal.bitemporal import BitemporalTimeSet
from repro.temporal.chronon import (
    NOW,
    TIME_MAX,
    TIME_MIN,
    Chronon,
    NowType,
    day,
    format_day,
    from_date,
    parse_day,
    to_date,
)
from repro.temporal.timeset import (
    ALWAYS,
    EMPTY,
    TimeSet,
    coalesce_intersection,
    coalesce_union,
)

_LAZY = {
    "Granularity": "repro.temporal.granularity",
    "STANDARD_GRANULARITIES": "repro.temporal.granularity",
    "build_time_dimension": "repro.temporal.granularity",
    "timeslice_dimension": "repro.temporal.timeslice",
    "transaction_timeslice": "repro.temporal.timeslice",
    "valid_timeslice": "repro.temporal.timeslice",
    "Version": "repro.temporal.versioned",
    "VersionedMOStore": "repro.temporal.versioned",
}

__all__ = [
    "BitemporalTimeSet",
    "NOW",
    "TIME_MAX",
    "TIME_MIN",
    "Chronon",
    "NowType",
    "day",
    "format_day",
    "from_date",
    "parse_day",
    "to_date",
    "ALWAYS",
    "EMPTY",
    "TimeSet",
    "coalesce_intersection",
    "coalesce_union",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    """Lazily resolve the core-dependent temporal modules' exports."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
