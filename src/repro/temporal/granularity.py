"""Time granularities (paper §3.2, citing Bettini et al.'s glossary).

The paper fixes the chronon at one day and builds its DOB dimension's
Week/Month/Quarter/Year/Decade levels by hand.  This module provides
the general machinery: *granularities* map chronons to granules (the
classical granularity notion — each granule is a set of consecutive
chronons), and :func:`build_time_dimension` assembles a time dimension
over any set of dates from declared granularity paths, producing
exactly the case study's DOB shape when asked for
``[("Week",), ("Month", "Quarter", "Year", "Decade")]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.core.aggtypes import AggregationType
from repro.core.category import CategoryType
from repro.core.dimension import Dimension, DimensionType
from repro.core.errors import SchemaError, TemporalError
from repro.core.values import DimensionValue
from repro.temporal.chronon import Chronon, to_date

__all__ = ["Granularity", "STANDARD_GRANULARITIES", "build_time_dimension"]


@dataclass(frozen=True)
class Granularity:
    """A calendar granularity: a name plus the mapping from a chronon
    to its granule's identity and label."""

    name: str
    granule_of: Callable[[Chronon], Hashable]
    label_of: Callable[[Chronon], str]

    def value_for(self, chronon: Chronon) -> DimensionValue:
        """The dimension value of the granule containing ``chronon``."""
        return DimensionValue(
            sid=(self.name, self.granule_of(chronon)),
            label=self.label_of(chronon),
        )


def _iso_week(t: Chronon) -> Hashable:
    iso = to_date(t).isocalendar()
    return (iso[0], iso[1])


def _month(t: Chronon) -> Hashable:
    d = to_date(t)
    return (d.year, d.month)


def _quarter(t: Chronon) -> Hashable:
    d = to_date(t)
    return (d.year, (d.month - 1) // 3 + 1)


def _year(t: Chronon) -> Hashable:
    return to_date(t).year


def _decade(t: Chronon) -> Hashable:
    return to_date(t).year // 10 * 10


#: The calendar granularities of the paper's Figure 2, by name.
STANDARD_GRANULARITIES: Dict[str, Granularity] = {
    "Week": Granularity(
        "Week", _iso_week,
        lambda t: "{0}-W{1:02d}".format(*_iso_week(t))),
    "Month": Granularity(
        "Month", _month,
        lambda t: "{0}-{1:02d}".format(*_month(t))),
    "Quarter": Granularity(
        "Quarter", _quarter,
        lambda t: "{0}-Q{1}".format(*_quarter(t))),
    "Year": Granularity("Year", _year, lambda t: str(_year(t))),
    "Decade": Granularity("Decade", _decade,
                          lambda t: f"{_decade(t)}s"),
}


def build_time_dimension(
    name: str,
    chronons: Iterable[Chronon],
    hierarchies: Sequence[Sequence[str]] = (("Week",),
                                            ("Month", "Quarter", "Year",
                                             "Decade")),
    bottom_name: str = "Day",
    bottom_aggtype: AggregationType = AggregationType.AVERAGE,
    granularities: Dict[str, Granularity] = STANDARD_GRANULARITIES,
) -> Dimension:
    """Build a multi-hierarchy time dimension over the given chronons.

    ``hierarchies`` lists upward chains starting just above the day
    level; each name must be a known granularity and each chain must
    genuinely coarsen (every coarser granule contains the finer one),
    which is validated on the data.  Day values use the chronon as
    surrogate and the paper's dd/mm/yy label.
    """
    ctypes: List[CategoryType] = [
        CategoryType(bottom_name, bottom_aggtype, is_bottom=True)]
    edges: List[Tuple[str, str]] = []
    seen: set = set()
    for chain in hierarchies:
        previous = bottom_name
        for level in chain:
            if level not in granularities:
                raise SchemaError(f"unknown granularity {level!r}")
            if level not in seen:
                ctypes.append(CategoryType(level,
                                           AggregationType.CONSTANT))
                seen.add(level)
            edges.append((previous, level))
            previous = level
    dimension = Dimension(DimensionType(name, ctypes,
                                        list(dict.fromkeys(edges))))

    chronon_list = sorted(set(chronons))
    day_values: Dict[Chronon, DimensionValue] = {}
    for t in chronon_list:
        d = to_date(t)
        value = DimensionValue(sid=t, label=d.strftime("%d/%m/%y"))
        dimension.add_value(bottom_name, value)
        day_values[t] = value

    for chain in hierarchies:
        for t in chronon_list:
            previous_value = day_values[t]
            for level in chain:
                granule = granularities[level].value_for(t)
                if granule not in dimension:
                    dimension.add_value(level, granule)
                if not dimension.order.edge_annotations(previous_value,
                                                        granule):
                    dimension.add_edge(previous_value, granule)
                previous_value = granule
    _validate_coarsening(dimension, hierarchies, day_values,
                         granularities)
    return dimension


def _validate_coarsening(
    dimension: Dimension,
    hierarchies: Sequence[Sequence[str]],
    day_values: Dict[Chronon, DimensionValue],
    granularities: Dict[str, Granularity],
) -> None:
    """Each chain must coarsen: two days in one finer granule must land
    in one coarser granule (otherwise the chain is not a granularity
    hierarchy and grouping along it would split granules)."""
    for chain in hierarchies:
        for finer, coarser in zip(chain, chain[1:]):
            seen: Dict[Hashable, Hashable] = {}
            for t in day_values:
                f = granularities[finer].granule_of(t)
                c = granularities[coarser].granule_of(t)
                if f in seen and seen[f] != c:
                    raise TemporalError(
                        f"{finer} does not coarsen into {coarser}: "
                        f"granule {f!r} spans {seen[f]!r} and {c!r}"
                    )
                seen[f] = c
