"""Bitemporal chronon sets (paper §3.2, ``Tt × Tv``).

The paper notes that transaction time is *orthogonal* to valid time and
uses ``Tt × Tv`` to denote sets of bitemporal chronons.  A
:class:`BitemporalTimeSet` is a finite union of rectangles
``Tt_i × Tv_i`` where each component is a coalesced :class:`TimeSet`.

The representation keeps the rectangles normalized by transaction
component: rectangles whose valid components are equal and whose
transaction components are adjacent or overlapping are merged, which
is sufficient for the equality and slicing operations the algebra's
temporal rules need.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.temporal.chronon import Chronon
from repro.temporal.timeset import TimeSet

__all__ = ["BitemporalTimeSet"]

Rectangle = Tuple[TimeSet, TimeSet]  # (transaction component, valid component)


def _normalize(rects: Iterable[Rectangle]) -> Tuple[Rectangle, ...]:
    """Drop empty rectangles and merge rectangles sharing a component.

    Two passes: first merge transaction components of rectangles with the
    same valid component, then merge valid components of rectangles with
    the same transaction component.  The result is canonical for the
    rectangle unions produced by the algebra rules (which only combine
    whole rectangles), giving a usable equality.
    """
    by_valid: dict[TimeSet, TimeSet] = {}
    for tt, tv in rects:
        if tt.is_empty() or tv.is_empty():
            continue
        by_valid[tv] = by_valid.get(tv, TimeSet.empty()).union(tt)
    by_txn: dict[TimeSet, TimeSet] = {}
    for tv, tt in by_valid.items():
        by_txn[tt] = by_txn.get(tt, TimeSet.empty()).union(tv)
    return tuple(sorted(
        ((tt, tv) for tt, tv in by_txn.items()),
        key=lambda r: (r[0].intervals, r[1].intervals),
    ))


class BitemporalTimeSet:
    """A finite union of bitemporal rectangles ``Tt × Tv``."""

    __slots__ = ("_rects",)

    def __init__(self, rectangles: Iterable[Rectangle] = ()) -> None:
        self._rects: Tuple[Rectangle, ...] = _normalize(rectangles)

    @classmethod
    def rectangle(cls, transaction: TimeSet, valid: TimeSet) -> "BitemporalTimeSet":
        """A single rectangle ``transaction × valid``."""
        return cls(((transaction, valid),))

    @classmethod
    def always(cls) -> "BitemporalTimeSet":
        """The full bitemporal plane."""
        return cls(((TimeSet.always(), TimeSet.always()),))

    @classmethod
    def empty(cls) -> "BitemporalTimeSet":
        """The empty bitemporal set."""
        return cls(())

    @property
    def rectangles(self) -> Tuple[Rectangle, ...]:
        """The normalized rectangles as ``(transaction, valid)`` pairs."""
        return self._rects

    def is_empty(self) -> bool:
        """True iff no bitemporal chronon is covered."""
        return not self._rects

    def __bool__(self) -> bool:
        return bool(self._rects)

    def contains(self, transaction: Chronon, valid: Chronon) -> bool:
        """Membership of the bitemporal chronon ``(transaction, valid)``."""
        return any(transaction in tt and valid in tv for tt, tv in self._rects)

    def union(self, other: "BitemporalTimeSet") -> "BitemporalTimeSet":
        """Union of the rectangle sets (re-normalized)."""
        return BitemporalTimeSet(self._rects + other._rects)

    def intersection(self, other: "BitemporalTimeSet") -> "BitemporalTimeSet":
        """Pairwise rectangle intersection."""
        out: list[Rectangle] = []
        for tt1, tv1 in self._rects:
            for tt2, tv2 in other._rects:
                out.append((tt1.intersection(tt2), tv1.intersection(tv2)))
        return BitemporalTimeSet(out)

    def transaction_slice(self, t: Chronon) -> TimeSet:
        """The valid-time set current in the database at transaction
        time ``t`` — the valid component of the transaction-timeslice
        operator τ_t."""
        acc = TimeSet.empty()
        for tt, tv in self._rects:
            if t in tt:
                acc = acc.union(tv)
        return acc

    def valid_slice(self, t: Chronon) -> TimeSet:
        """The transaction-time set during which the statement was
        recorded as valid at real-world time ``t`` — the transaction
        component of the valid-timeslice operator τ_v on bitemporal
        data."""
        acc = TimeSet.empty()
        for tt, tv in self._rects:
            if t in tv:
                acc = acc.union(tt)
        return acc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitemporalTimeSet):
            return NotImplemented
        return self._rects == other._rects

    def __hash__(self) -> int:
        return hash(self._rects)

    def __repr__(self) -> str:
        if not self._rects:
            return "BitemporalTimeSet(∅)"
        parts = ", ".join(f"{tt!r}×{tv!r}" for tt, tv in self._rects)
        return f"BitemporalTimeSet({parts})"
