"""Coalesced sets of chronons (paper §3.2).

The paper attaches *sets of chronons* to the dimension partial order, to
representations, to category membership, and to fact-dimension relations,
and requires that each attached set is the **maximal** set of chronons
during which the datum is valid, so the data is always *coalesced* and
there are no "value-equivalent" entries.

:class:`TimeSet` implements such a set as an immutable, sorted sequence of
disjoint, non-adjacent, closed integer intervals, guaranteeing the
coalescing invariant by construction.  All the set algebra the temporal
algebra rules need is provided: union, intersection, difference,
containment, and slicing at a chronon.

The paper's examples write chronon sets in interval notation such as
``[01/01/80 - NOW]``; :func:`repro.temporal.chronon.parse_day` plus
:meth:`TimeSet.interval` reproduce that notation, with ``NOW`` resolved
against a reference time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro._errors import TemporalError
from repro.temporal.chronon import (
    TIME_MAX,
    TIME_MIN,
    Chronon,
    Endpoint,
    NowType,
    check_chronon,
    format_day,
    resolve_endpoint,
)

__all__ = ["TimeSet", "ALWAYS", "EMPTY"]

Interval = Tuple[Chronon, Chronon]


def _normalize(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    """Sort, validate, and coalesce closed intervals.

    Overlapping or adjacent intervals (``end + 1 == next start``) merge,
    establishing the paper's coalescing invariant.
    """
    items = sorted(intervals)
    out: list[Interval] = []
    for start, end in items:
        check_chronon(start)
        check_chronon(end)
        if start > end:
            raise TemporalError(f"interval start {start} after end {end}")
        if out and start <= out[-1][1] + 1:
            prev_start, prev_end = out[-1]
            out[-1] = (prev_start, max(prev_end, end))
        else:
            out.append((start, end))
    return tuple(out)


class TimeSet:
    """An immutable, coalesced set of chronons.

    Construct via the classmethods: :meth:`interval` for a single closed
    interval (endpoints may be ``NOW``, resolved against ``reference``),
    :meth:`of` for an explicit iterable of intervals, :meth:`point` for a
    single chronon, :meth:`always` / :meth:`empty` for the extremes.

    Instances are hashable and ordered by their interval sequence, so
    they can key dictionaries in timestamped collections.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: Tuple[Interval, ...] = _normalize(intervals)

    # -- constructors ---------------------------------------------------

    @classmethod
    def of(cls, intervals: Iterable[Interval]) -> "TimeSet":
        """Build a time set from an iterable of ``(start, end)`` pairs."""
        return cls(intervals)

    @classmethod
    def interval(
        cls,
        start: Endpoint,
        end: Endpoint,
        reference: Chronon | None = None,
    ) -> "TimeSet":
        """Build the closed interval ``[start, end]``.

        ``NOW`` endpoints are resolved against ``reference``; when
        ``reference`` is omitted, ``NOW`` resolves to the domain maximum,
        which models "valid until further notice" and matches how the
        case study's open rows behave under any later timeslice.
        """
        ref = TIME_MAX if reference is None else reference
        lo = resolve_endpoint(start, ref)
        hi = resolve_endpoint(end, ref)
        return cls(((lo, hi),))

    @classmethod
    def point(cls, t: Chronon) -> "TimeSet":
        """Build the singleton set ``{t}``."""
        return cls(((t, t),))

    @classmethod
    def always(cls) -> "TimeSet":
        """The whole bounded time domain (data with no time attached is
        *always* valid, per the paper)."""
        return _ALWAYS

    @classmethod
    def empty(cls) -> "TimeSet":
        """The empty chronon set."""
        return _EMPTY

    # -- basic queries ---------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The coalesced closed intervals, in ascending order."""
        return self._intervals

    def is_empty(self) -> bool:
        """True iff the set contains no chronon."""
        return not self._intervals

    def is_always(self) -> bool:
        """True iff the set is the entire bounded domain."""
        return self._intervals == ((TIME_MIN, TIME_MAX),)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __contains__(self, t: object) -> bool:
        if isinstance(t, NowType):
            t = TIME_MAX
        if not isinstance(t, int):
            return False
        return any(start <= t <= end for start, end in self._intervals)

    def duration(self) -> int:
        """Number of chronons in the set."""
        return sum(end - start + 1 for start, end in self._intervals)

    def min(self) -> Chronon:
        """Smallest chronon in the set; raises on the empty set."""
        if not self._intervals:
            raise TemporalError("empty time set has no minimum")
        return self._intervals[0][0]

    def max(self) -> Chronon:
        """Largest chronon in the set; raises on the empty set."""
        if not self._intervals:
            raise TemporalError("empty time set has no maximum")
        return self._intervals[-1][1]

    def chronons(self) -> Iterator[Chronon]:
        """Iterate every chronon in the set (ascending).  Beware of very
        long intervals; intended for tests and small examples."""
        for start, end in self._intervals:
            yield from range(start, end + 1)

    def sample_chronons(self) -> Iterator[Chronon]:
        """Iterate a small set of *representative* chronons: each interval
        contributes its endpoints.  Any property that is piecewise
        constant between the critical chronons of the data (as all the
        model's temporal properties are) can be checked at these samples.
        """
        for start, end in self._intervals:
            yield start
            if end != start:
                yield end

    # -- set algebra -----------------------------------------------------

    def union(self, other: "TimeSet") -> "TimeSet":
        """Set union; result is coalesced."""
        return TimeSet(self._intervals + other._intervals)

    def intersection(self, other: "TimeSet") -> "TimeSet":
        """Set intersection via an ordered merge of the interval lists."""
        out: list[Interval] = []
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return TimeSet(out)

    def difference(self, other: "TimeSet") -> "TimeSet":
        """Set difference ``self - other``."""
        out: list[Interval] = []
        for start, end in self._intervals:
            cur = start
            for ostart, oend in other._intervals:
                if oend < cur:
                    continue
                if ostart > end:
                    break
                if ostart > cur:
                    out.append((cur, ostart - 1))
                cur = max(cur, oend + 1)
                if cur > end:
                    break
            if cur <= end:
                out.append((cur, end))
        return TimeSet(out)

    def complement(self) -> "TimeSet":
        """Complement within the bounded time domain."""
        return TimeSet.always().difference(self)

    def issubset(self, other: "TimeSet") -> bool:
        """True iff every chronon of ``self`` is in ``other``.

        The paper notes that data valid during ``T`` is, by implication,
        valid during any subset of ``T``; this predicate implements that
        implication check.
        """
        return self.difference(other).is_empty()

    def overlaps(self, other: "TimeSet") -> bool:
        """True iff the two sets share at least one chronon."""
        return not self.intersection(other).is_empty()

    # operator sugar
    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __le__ = issubset

    # -- dunder plumbing ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        if self.is_empty():
            return "TimeSet(∅)"
        if self.is_always():
            return "TimeSet(ALWAYS)"
        parts = ", ".join(
            f"[{format_day(s)} - {format_day(e)}]" for s, e in self._intervals
        )
        return f"TimeSet({parts})"


_ALWAYS = TimeSet(((TIME_MIN, TIME_MAX),))
_EMPTY = TimeSet(())

#: The whole bounded time domain.
ALWAYS: TimeSet = _ALWAYS

#: The empty chronon set.
EMPTY: TimeSet = _EMPTY


def coalesce_union(sets: Sequence[TimeSet]) -> TimeSet:
    """Union an arbitrary sequence of time sets (coalesced)."""
    intervals: list[Interval] = []
    for ts in sets:
        intervals.extend(ts.intervals)
    return TimeSet(intervals)


def coalesce_intersection(sets: Sequence[TimeSet]) -> TimeSet:
    """Intersect an arbitrary non-empty sequence of time sets."""
    if not sets:
        return ALWAYS
    acc = sets[0]
    for ts in sets[1:]:
        acc = acc.intersection(ts)
        if acc.is_empty():
            break
    return acc


__all__ += ["coalesce_union", "coalesce_intersection"]
