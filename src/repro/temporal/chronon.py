"""The time domain of the model (paper §3.2).

The paper assumes a time domain that is *discrete and bounded*, i.e.,
isomorphic with a bounded subset of the natural numbers, whose values are
called *chronons*.  The examples in the paper use a chronon size of one
day, with dates written ``dd/mm/yy``; this module fixes the same
convention:

* a chronon is an ``int`` equal to the proleptic Gregorian ordinal of a
  calendar day (``datetime.date.toordinal``);
* the domain is bounded by :data:`TIME_MIN` and :data:`TIME_MAX`;
* the special, continuously-growing value ``NOW`` (Clifford et al.,
  cited as [20] in the paper) is represented by the sentinel
  :data:`NOW`, which is resolved against a caller-supplied *reference
  time* when concrete chronon sets are needed.

The paper's Table 1 writes two-digit years; we interpret years ``30``-``99``
as 19xx and ``00``-``29`` as 20xx, which matches the case study's 1950-1989
dates while staying usable for present-day data.
"""

from __future__ import annotations

import datetime as _dt
from typing import Final, Union

from repro._errors import TemporalError

__all__ = [
    "Chronon",
    "TIME_MIN",
    "TIME_MAX",
    "NOW",
    "NowType",
    "day",
    "from_date",
    "to_date",
    "parse_day",
    "format_day",
    "check_chronon",
    "resolve_endpoint",
]

#: A chronon: one day, encoded as a proleptic Gregorian ordinal.
Chronon = int

#: Smallest chronon in the bounded domain (1 January 1900).
TIME_MIN: Final[Chronon] = _dt.date(1900, 1, 1).toordinal()

#: Largest chronon in the bounded domain (31 December 2199).
TIME_MAX: Final[Chronon] = _dt.date(2199, 12, 31).toordinal()


class NowType:
    """Singleton sentinel for the continuously-growing value ``NOW``.

    ``NOW`` compares greater than every concrete chronon so that interval
    constructors can validate ``start <= end`` uniformly.
    """

    _instance: "NowType | None" = None

    def __new__(cls) -> "NowType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NOW"

    def __lt__(self, other: object) -> bool:
        if isinstance(other, (int, NowType)):
            return False
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, NowType):
            return True
        if isinstance(other, int):
            return False
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, int):
            return True
        if isinstance(other, NowType):
            return False
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, (int, NowType)):
            return True
        return NotImplemented

    def __hash__(self) -> int:
        return hash("repro.temporal.NOW")


#: The sentinel ``NOW`` used as the open upper endpoint of validity.
NOW: Final[NowType] = NowType()

#: An interval endpoint: a concrete chronon or ``NOW``.
Endpoint = Union[Chronon, NowType]


def check_chronon(t: Chronon) -> Chronon:
    """Validate that ``t`` lies inside the bounded time domain.

    Raises :class:`TemporalError` otherwise and returns ``t`` unchanged
    so the function can be used inline.
    """
    if not isinstance(t, int) or isinstance(t, bool):
        raise TemporalError(f"chronon must be an int, got {t!r}")
    if not TIME_MIN <= t <= TIME_MAX:
        raise TemporalError(
            f"chronon {t} outside bounded domain [{TIME_MIN}, {TIME_MAX}]"
        )
    return t


def day(year: int, month: int, dayofmonth: int) -> Chronon:
    """Build the chronon for a calendar day, e.g. ``day(1980, 1, 1)``."""
    return check_chronon(_dt.date(year, month, dayofmonth).toordinal())


def from_date(d: _dt.date) -> Chronon:
    """Convert a :class:`datetime.date` to a chronon."""
    return check_chronon(d.toordinal())


def to_date(t: Chronon) -> _dt.date:
    """Convert a chronon back to a :class:`datetime.date`."""
    check_chronon(t)
    return _dt.date.fromordinal(t)


def parse_day(text: str) -> Endpoint:
    """Parse a paper-style ``dd/mm/yy`` (or ``dd/mm/yyyy``) date, or ``NOW``.

    Two-digit years 30-99 map to 19xx and 00-29 to 20xx, matching the
    case study's date range.

    >>> parse_day("01/01/80") == day(1980, 1, 1)
    True
    >>> parse_day("NOW") is NOW
    True
    """
    text = text.strip()
    if text.upper() == "NOW":
        return NOW
    parts = text.split("/")
    if len(parts) != 3:
        raise TemporalError(f"cannot parse date {text!r}; expected dd/mm/yy")
    d, m, y = (int(p) for p in parts)
    if y < 100:
        y += 1900 if y >= 30 else 2000
    return day(y, m, d)


def format_day(t: Endpoint) -> str:
    """Render an endpoint in the paper's ``dd/mm/yy`` notation."""
    if isinstance(t, NowType):
        return "NOW"
    d = to_date(t)
    return f"{d.day:02d}/{d.month:02d}/{d.year % 100:02d}"


def resolve_endpoint(endpoint: Endpoint, reference: Chronon) -> Chronon:
    """Resolve an endpoint against a reference time.

    ``NOW`` resolves to ``reference`` (the semantics of a continuously
    growing value observed at ``reference``); concrete chronons resolve
    to themselves.
    """
    if isinstance(endpoint, NowType):
        return check_chronon(reference)
    return check_chronon(endpoint)
