"""Bitemporal MOs as versioned stores (paper §3.2).

The paper adds transaction time orthogonally to valid time: a bitemporal
MO records, for every statement, both when it was true in reality and
when it was current in the database, "for accountability and
traceability purposes".

:class:`VersionedMOStore` realizes a bitemporal MO as an append-only
sequence of database states: each *version* is a valid-time MO together
with the transaction-time interval during which it was the current
database state.  The two timeslice operators then compose exactly as the
paper describes:

* ``transaction_timeslice(t)`` returns the valid-time MO current at
  transaction time ``t`` (bitemporal → valid-time);
* ``valid_timeslice(t)`` applied to that result gives a snapshot
  (valid-time → snapshot);
* applying valid-timeslice across *all* versions gives the transaction-
  time history of one real-world instant (bitemporal → transaction-time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.errors import TemporalError
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.temporal.chronon import TIME_MAX, Chronon, check_chronon
from repro.temporal.timeset import TimeSet
from repro.temporal.timeslice import valid_timeslice

__all__ = ["Version", "VersionedMOStore"]


@dataclass(frozen=True)
class Version:
    """One database state and its transaction-time extent."""

    mo: MultidimensionalObject
    transaction_time: TimeSet


class VersionedMOStore:
    """An append-only bitemporal store of valid-time MOs.

    Append states in transaction-time order with :meth:`commit`; the
    previous current version is closed at the new version's start.
    """

    def __init__(self) -> None:
        self._versions: List[Version] = []

    def commit(self, mo: MultidimensionalObject, at: Chronon) -> None:
        """Make ``mo`` the current database state from transaction time
        ``at`` on.  ``mo`` must be a valid-time MO; commits must be in
        non-decreasing transaction-time order."""
        check_chronon(at)
        if mo.kind is not TimeKind.VALID:
            raise TemporalError(
                f"a bitemporal store holds valid-time MOs, got {mo.kind.value}"
            )
        if self._versions:
            last = self._versions[-1]
            last_start = last.transaction_time.min()
            if at <= last_start:
                raise TemporalError(
                    f"commit at {at} does not follow the previous commit "
                    f"at {last_start}"
                )
            self._versions[-1] = Version(
                mo=last.mo,
                transaction_time=TimeSet.interval(last_start, at - 1),
            )
        self._versions.append(
            Version(mo=mo, transaction_time=TimeSet.interval(at, TIME_MAX))
        )

    @property
    def versions(self) -> List[Version]:
        """All versions, oldest first."""
        return list(self._versions)

    def __len__(self) -> int:
        return len(self._versions)

    def transaction_timeslice(self, t: Chronon) -> MultidimensionalObject:
        """``τ_t``: the valid-time MO current in the database at ``t``."""
        check_chronon(t)
        for version in self._versions:
            if t in version.transaction_time:
                return version.mo
        raise TemporalError(f"no database state current at {t}")

    def current(self) -> MultidimensionalObject:
        """The latest database state."""
        if not self._versions:
            raise TemporalError("the store has no versions")
        return self._versions[-1].mo

    def snapshot(self, transaction_t: Chronon,
                 valid_t: Chronon) -> MultidimensionalObject:
        """The full bitemporal slice: the snapshot MO describing what the
        database at ``transaction_t`` said reality was like at
        ``valid_t``."""
        return valid_timeslice(self.transaction_timeslice(transaction_t),
                               valid_t)

    def valid_timeslice_history(
        self, valid_t: Chronon
    ) -> List[Version]:
        """``τ_v`` across the store: for one real-world instant, every
        recorded belief about it, as (snapshot MO, transaction time)
        versions — the bitemporal → transaction-time reading."""
        out: List[Version] = []
        for version in self._versions:
            out.append(Version(
                mo=valid_timeslice(version.mo, valid_t),
                transaction_time=version.transaction_time,
            ))
        return out
