"""The timeslice operators (paper §4.2).

``τ_v(M, t)`` — the *valid-timeslice* — returns the parts of the MO that
are valid at chronon ``t``, **with no valid time attached**: category
membership, the partial order, representations, and fact-dimension
relations are all restricted to ``t`` and the result's temporal type
drops from valid-time to snapshot (or from bitemporal to
transaction-time; see :mod:`repro.temporal.versioned` for the
transaction dimension).

``τ_t`` — the *transaction-timeslice* — is defined the same way on
transaction-time MOs; since both kinds annotate with the same chronon-set
machinery, one implementation serves both, dispatching on the MO's kind.
"""

from __future__ import annotations

from repro.core.dimension import Dimension
from repro.core.errors import TemporalError
from repro.core.factdim import FactDimensionRelation
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.values import Fact
from repro.temporal.chronon import Chronon, check_chronon

__all__ = ["valid_timeslice", "transaction_timeslice", "timeslice_dimension"]


def timeslice_dimension(dimension: Dimension, t: Chronon) -> Dimension:
    """The dimension as it was at chronon ``t``: members, order
    relationships, and representation assignments current at ``t``,
    re-attached with no time."""
    check_chronon(t)
    result = Dimension(dimension.dtype)
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        for value in category.members(at=t):
            result.add_value(category.name, value)
    for child, parent, time, prob in dimension.order.edges():
        if t in time and child in result and parent in result:
            result.add_edge(child, parent, prob=prob)
    for category in dimension.categories():
        if category.ctype.is_top:
            continue
        for rep_name, rep in dimension.representations_of(category.name).items():
            target = result.add_representation(category.name, rep_name)
            for value, rep_value, time in rep.entries():
                if t in time and value in result:
                    target.assign(value, rep_value)
    return result


def _timeslice(mo: MultidimensionalObject, t: Chronon,
               new_kind: TimeKind) -> MultidimensionalObject:
    dimensions = {
        name: timeslice_dimension(mo.dimension(name), t)
        for name in mo.dimension_names
    }
    relations = {}
    facts: set[Fact] = set()
    for name in mo.dimension_names:
        relation = FactDimensionRelation(name)
        for fact, value, time, prob in mo.relation(name).annotated_pairs():
            if t in time and value in dimensions[name]:
                relation.add(fact, value, prob=prob)
                facts.add(fact)
        relations[name] = relation
    # the paper keeps F' = F; facts with no pair at t would violate the
    # no-missing-values invariant, so they are characterized by ⊤ — the
    # "cannot characterize f within this dimension (at t)" marker.
    for name in mo.dimension_names:
        related = relations[name].facts()
        for fact in mo.facts - related:
            relations[name].add(fact, dimensions[name].top_value)
    return MultidimensionalObject(
        schema=mo.schema,
        facts=mo.facts,
        dimensions=dimensions,
        relations=relations,
        kind=new_kind,
    )


def valid_timeslice(mo: MultidimensionalObject,
                    t: Chronon) -> MultidimensionalObject:
    """``τ_v(M, t)``: the snapshot of a valid-time MO at real-world time
    ``t``.  Raises :class:`TemporalError` on MOs without valid time."""
    if mo.kind is not TimeKind.VALID:
        raise TemporalError(
            f"valid-timeslice needs a valid-time MO, got {mo.kind.value}"
        )
    return _timeslice(mo, t, TimeKind.SNAPSHOT)


def transaction_timeslice(mo: MultidimensionalObject,
                          t: Chronon) -> MultidimensionalObject:
    """``τ_t(M, t)``: the snapshot of a transaction-time MO as the
    database stood at time ``t``."""
    if mo.kind is not TimeKind.TRANSACTION:
        raise TemporalError(
            f"transaction-timeslice needs a transaction-time MO, got "
            f"{mo.kind.value}"
        )
    return _timeslice(mo, t, TimeKind.SNAPSHOT)
