"""Schema-level static analysis: intensional summarizability and
hierarchy-property drift.

The paper's §3.4 summarizability test (Lenz–Shoshani: distributive
function ∧ strict fact paths ∧ partitioning hierarchies) is extensional
— it scans the data.  This module adds the *intensional* layer: schema
authors declare strictness/partitioning on the dimension type
(:attr:`~repro.core.dimension.DimensionType.declared_strict` /
``declared_partitioning``), the analyzer derives a verdict from the
declarations alone, and — when an MO with data is at hand — checks the
declarations for *drift* against the extension, so the soundness
guarantee

    static SAFE  ⇒  ``check_summarizability(...)`` passes

is earned, not assumed: :func:`static_summarizability` only answers
``SAFE`` after confirming the declarations against the rollup index's
cached extensional facts (the same cached pieces the engine's fast path
uses), and answers ``UNKNOWN`` — never a guess — when it cannot.
"""

from __future__ import annotations

import enum
from typing import Dict, Union

from repro.analyze.diagnostics import AnalysisReport
from repro.core.dimension import Dimension, DimensionType
from repro.core.mo import MultidimensionalObject
from repro.core.schema import FactSchema
from repro.algebra.functions import AggregationFunction
from repro.temporal.chronon import Chronon
from repro.temporal.timeset import EMPTY

__all__ = ["StaticVerdict", "intensional_summarizability",
           "grouping_summarizability", "static_summarizability",
           "analyze_schema", "analyze_timeslice", "recorded_valid_time"]


class StaticVerdict(enum.Enum):
    """What the analyzer can say about a grouping without fact data.

    ``SAFE`` is *sound*: the extensional check is guaranteed to pass.
    ``UNSAFE`` means the schema itself rules summarizability out (a
    non-distributive function, or a declared property violation).
    ``UNKNOWN`` means the declarations don't decide it — the engine
    must run the extensional check."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"


def intensional_summarizability(
    schema: FactSchema,
    grouping: Dict[str, str],
    function: AggregationFunction,
) -> StaticVerdict:
    """The declarations-only verdict for aggregating ``function`` over
    ``grouping`` — no MO, no data, just the fact schema.

    A non-distributive function is ``UNSAFE`` outright (first
    Lenz–Shoshani condition).  A grouped dimension declared non-strict
    or non-partitioning is ``UNSAFE``.  All grouped dimensions declared
    strict *and* partitioning yields ``SAFE`` — sound **relative to the
    declarations**; :func:`static_summarizability` upgrades this to an
    absolute guarantee by confirming them against the extension.
    Anything undeclared is ``UNKNOWN``."""
    if not function.distributive:
        return StaticVerdict.UNSAFE
    verdict = StaticVerdict.SAFE
    for name in grouping:
        dtype = schema.dimension_type(name)
        if dtype.declared_strict is False or \
                dtype.declared_partitioning is False:
            return StaticVerdict.UNSAFE
        if dtype.declared_strict is None or \
                dtype.declared_partitioning is None:
            verdict = StaticVerdict.UNKNOWN
    return verdict


def grouping_summarizability(
    mo: MultidimensionalObject,
    grouping: Dict[str, str],
) -> StaticVerdict:
    """The hierarchy-only half of the summarizability verdict: strict
    fact paths and partitioning hierarchies for the grouped dimensions,
    independent of which function merges the partials.

    This is what the shardability analysis needs for ALGEBRAIC
    functions (e.g. AVG): ``function.distributive`` is False — so
    :func:`static_summarizability` would answer ``UNSAFE`` outright —
    yet the *grouping* can still be safe to partition-and-merge once
    the function is decomposed into distributive accumulators.  Same
    soundness discipline: ``SAFE`` only after the declarations are
    confirmed against the extension through the rollup index."""
    verdict = StaticVerdict.SAFE
    for name in grouping:
        dtype = mo.schema.dimension_type(name)
        if dtype.declared_strict is False or \
                dtype.declared_partitioning is False:
            return StaticVerdict.UNSAFE
        if dtype.declared_strict is None or \
                dtype.declared_partitioning is None:
            verdict = StaticVerdict.UNKNOWN
    if verdict is not StaticVerdict.SAFE:
        return verdict
    index = mo.rollup_index()
    if index.summarizability(grouping, True).summarizable:
        return StaticVerdict.SAFE
    return StaticVerdict.UNKNOWN


def static_summarizability(
    mo: MultidimensionalObject,
    grouping: Dict[str, str],
    function: AggregationFunction,
) -> StaticVerdict:
    """The sound static verdict for an MO: the intensional verdict,
    with ``SAFE`` *confirmed* against the extension through the rollup
    index's version-cached checks (so repeated calls are cheap and the
    guarantee "``SAFE`` ⇒ the extensional
    :func:`~repro.core.properties.check_summarizability` passes"
    holds even for drifted declarations — drift demotes the
    answer to ``UNKNOWN`` and is reported by :func:`analyze_schema`)."""
    if not function.distributive:
        return StaticVerdict.UNSAFE
    return grouping_summarizability(mo, grouping)


def _aggtype_inversions(dtype: DimensionType):
    """Category pairs whose aggregation type grows upward (finer data
    constant, coarser data additive) — legal, but usually a schema
    mistake worth an info diagnostic.  Normal hierarchies *lose*
    additivity as data coarsens (``Aggtype`` is monotonically
    non-increasing up the lattice); the flagged pairs gain it."""
    by_name = {c.name: c for c in dtype.category_types()}
    inversions = []
    for child in dtype.category_types():
        if child.is_top:
            continue
        for parent_name in dtype.pred(child.name):
            if parent_name == dtype.top_name:
                continue
            parent = by_name[parent_name]
            if parent.aggtype > child.aggtype:
                inversions.append((child.name, parent_name))
    return inversions


def _analyze_dimension(report: AnalysisReport, mo: MultidimensionalObject,
                       dimension: Dimension) -> None:
    """Drift + extensional hierarchy diagnostics for one dimension."""
    dtype = dimension.dtype
    location = f"dimension {dimension.name}"
    index = mo.rollup_index()
    strict = index.hierarchy_strict(dimension.name)
    partitioning = index.hierarchy_partitioning(dimension.name)

    if dtype.declared_strict is True and not strict:
        report.emit("MD020",
                    "declared strict, but the extension is not",
                    location,
                    hint="fix the offending mappings or declare "
                         "declared_strict=False")
    if dtype.declared_partitioning is True and not partitioning:
        report.emit("MD021",
                    "declared partitioning, but the extension is not",
                    location,
                    hint="link the orphaned values to parents or declare "
                         "declared_partitioning=False")
    if dtype.declared_strict is False and strict:
        report.emit("MD022",
                    "declared non-strict, but the extension is strict",
                    location,
                    hint="declare declared_strict=True to enable the "
                         "engine's static fast path")
    if dtype.declared_partitioning is False and partitioning:
        report.emit("MD022",
                    "declared non-partitioning, but the extension is "
                    "partitioning",
                    location,
                    hint="declare declared_partitioning=True to enable "
                         "the engine's static fast path")
    if dtype.declared_strict is None and dtype.declared_partitioning is None:
        report.emit("MD025",
                    "hierarchy properties undeclared",
                    location,
                    hint="declare strictness/partitioning on the "
                         "dimension type so groupings can be vouched "
                         "for statically")

    if not strict:
        report.emit("MD023",
                    "hierarchy is non-strict (some value has several "
                    "parents in one category)",
                    location,
                    hint="aggregate results above the offending levels "
                         "must be computed from base data, not reused")
    if not partitioning:
        report.emit("MD024",
                    "hierarchy is non-partitioning (some value has no "
                    "parent in an immediate predecessor category)",
                    location,
                    hint="use mixed-granularity-aware groupings or "
                         "link every value upward")

    # fact-path strictness per category: a schema-level property of the
    # *relation*, not the hierarchy — double counting starts here
    for ctype in dtype.category_types():
        if ctype.is_top:
            continue
        per_fact = index.grouping_values_per_fact(dimension.name, ctype.name)
        offending = sum(1 for values in per_fact.values()
                        if len(values) > 1)
        if offending:
            report.emit("MD028",
                        f"{offending} fact(s) map to several values of "
                        f"category {ctype.name!r}",
                        location,
                        hint="SUM-class aggregates grouped here double "
                             "count; prefer COUNT-class functions or "
                             "finer groupings")

    for lower, upper in _aggtype_inversions(dtype):
        report.emit("MD026",
                    f"category {lower!r} has a lower aggregation type "
                    f"than its parent category {upper!r}",
                    location,
                    hint="coarser data rarely supports more functions "
                         "than the finer data it summarizes; check the "
                         "Aggtype declarations")


def _analyze_uncertainty(report: AnalysisReport,
                         mo: MultidimensionalObject) -> None:
    """§3.3 lint: per fact and dimension, alternative characterizations
    carry probabilities; mass above 1 is inconsistent."""
    for name in mo.dimension_names:
        relation = mo.relation(name)
        mass: Dict[object, float] = {}
        partial: Dict[object, bool] = {}
        for fact, _value, _time, prob in relation.annotated_pairs():
            mass[fact] = mass.get(fact, 0.0) + prob
            if prob < 1.0:
                partial[fact] = True
        offending = [fact for fact, total in mass.items()
                     if partial.get(fact) and total > 1.0 + 1e-9]
        if offending:
            report.emit("MD032",
                        f"{len(offending)} fact(s) have probability "
                        f"mass > 1 over their alternative values in "
                        f"dimension {name!r}",
                        f"relation {name}",
                        hint="alternative (p < 1) characterizations of "
                             "one fact should have mass ≤ 1")


def analyze_schema(
    mo_or_schema: Union[MultidimensionalObject, FactSchema],
) -> AnalysisReport:
    """Lint a fact schema — or an MO, which additionally enables the
    drift and extensional hierarchy checks.

    With only a :class:`FactSchema` (no data anywhere), the analysis is
    purely intensional: declarations and aggregation-type structure.
    With an MO the declarations are checked for drift and the
    extensional hierarchy/path/uncertainty lints run, answered from the
    rollup index's caches."""
    if isinstance(mo_or_schema, FactSchema):
        schema = mo_or_schema
        report = AnalysisReport(f"schema {schema.fact_type}")
        for dtype in schema:
            location = f"dimension type {dtype.name}"
            if dtype.declared_strict is None and \
                    dtype.declared_partitioning is None:
                report.emit("MD025", "hierarchy properties undeclared",
                            location,
                            hint="declare strictness/partitioning so "
                                 "groupings can be vouched for "
                                 "statically")
            for lower, upper in _aggtype_inversions(dtype):
                report.emit("MD026",
                            f"category {lower!r} has a lower aggregation "
                            f"type than its parent category {upper!r}",
                            location,
                            hint="check the Aggtype declarations")
        return report.sort()

    mo = mo_or_schema
    report = AnalysisReport(f"schema {mo.schema.fact_type}")
    for name in mo.dimension_names:
        _analyze_dimension(report, mo, mo.dimension(name))
    _analyze_uncertainty(report, mo)
    return report.sort()


def recorded_valid_time(mo: MultidimensionalObject):
    """The union of every relation pair's and order edge's chronon
    set — the span within which a timeslice can see anything."""
    span = EMPTY
    for name in mo.dimension_names:
        for _fact, _value, time, _prob in mo.relation(name).annotated_pairs():
            span = span.union(time)
        for _child, _parent, time, _prob in mo.dimension(name).order.edges():
            span = span.union(time)
    return span


def analyze_timeslice(mo: MultidimensionalObject,
                      at: Chronon) -> AnalysisReport:
    """§4.2 lint: warn when ``τ(M, t)`` is taken at a chronon outside
    the recorded valid-time span — legal, but every fact then falls to
    the ⊤ "cannot characterize" marker in every dimension."""
    report = AnalysisReport(f"timeslice of {mo.schema.fact_type} at {at}")
    span = recorded_valid_time(mo)
    if span.is_always():
        return report
    if at not in span:
        bounds = ("empty recorded span" if span.is_empty() else
                  f"recorded span [{span.min()}, {span.max()}]")
        report.emit("MD031",
                    f"chronon {at} lies outside the {bounds}",
                    f"timeslice at {at}",
                    hint="slice within the recorded span, or expect "
                         "every fact to be characterized by ⊤ only")
    return report
