"""Static plan typechecking: Theorem 1's closure, made executable.

Theorem 1 says the algebra is closed — every operator applied to MOs
yields an MO, with a fact schema derivable from the operands' schemas.
The runtime operators each expose that derivation as a pure
``*_schema`` hook (:func:`repro.algebra.select_schema` and friends);
this module folds the hooks over a :mod:`repro.engine.optimizer` plan
tree *before* any evaluation, so malformed plans are rejected with a
diagnostic naming the offending node instead of failing mid-query.

Aggregation-type safety needs more care than the schema fold, because
α's output types depend on a summarizability verdict the analyzer may
not be able to decide statically.  Each node therefore carries a
*pair* of schemas:

* the **optimistic** schema assumes every undecided verdict came out
  summarizable (output bottom types as high as they could be);
* the **pessimistic** schema assumes the opposite (every undecided α
  degrades its result bottom to ``c``).

A function whose type floor fails even optimistically is a *definite*
violation (``MD001`` when the node would raise, i.e. strict mode);
one that fails only pessimistically is a *possible* violation
(``MD002``).  Decided verdicts collapse the pair.  Verdicts are
decided soundly by :func:`repro.analyze.schema.static_summarizability`
when the α sits on a chain of fact-narrowing operators (σ, π, \\)
above a :class:`~repro.engine.optimizer.Base` — those operators never
add facts, values, or hierarchy edges, so the base MO's extensional
SAFE carries up the chain."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analyze.diagnostics import AnalysisReport
from repro.analyze.schema import StaticVerdict, static_summarizability
from repro.core.aggtypes import min_aggtype
from repro.core.errors import AlgebraError, SchemaError
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.engine.optimizer import (
    AggregateNode,
    Base,
    DifferenceNode,
    JoinNode,
    Plan,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    node_label,
)
from repro.algebra.aggregate import aggregate_schema
from repro.algebra.functions import has_batch_kernel
from repro.algebra.join import join_schema
from repro.algebra.projection import project_schema
from repro.algebra.rename import rename_schema
from repro.algebra.selection import select_schema
from repro.algebra.setops import difference_schema, union_schema

__all__ = ["PlanTypes", "typecheck_plan", "analyze_plan"]


@dataclass(frozen=True)
class PlanTypes:
    """The inferred type of one plan node.

    ``None`` schemas mean inference was poisoned by an error below this
    node (the diagnostic for the root cause is already in the report —
    ancestors stay silent rather than cascading).  ``base`` is the MO a
    fact-narrowing chain bottoms out at, when there is one — the handle
    the summarizability verdict is verified against."""

    optimistic: Optional[FactSchema]
    pessimistic: Optional[FactSchema]
    kind: Optional[TimeKind] = None
    base: Optional[MultidimensionalObject] = None

    @property
    def poisoned(self) -> bool:
        return self.optimistic is None or self.pessimistic is None


_POISONED = PlanTypes(optimistic=None, pessimistic=None)


def _floor_fails(schema: FactSchema, function) -> bool:
    """True when ``function`` is not applicable to its argument
    dimensions' bottom aggregation types under ``schema`` — the static
    mirror of :meth:`AggregationFunction.check_applicable`."""
    missing = [d for d in function.args if d not in schema]
    if missing:
        return False  # reported separately as MD016 by aggregate_schema
    floor = min_aggtype(
        schema.dimension_type(d).bottom.aggtype for d in function.args
    )
    return not floor.permits(function.required_function)


def _aggregate_types(node: AggregateNode, child: PlanTypes,
                     location: str,
                     report: AnalysisReport) -> PlanTypes:
    grouping = dict(node.grouping)
    assert child.optimistic is not None and child.pessimistic is not None

    if child.base is not None:
        verdict = static_summarizability(child.base, grouping,
                                         node.function)
        if verdict is StaticVerdict.UNKNOWN:
            report.emit("MD033",
                        "summarizability of this grouping cannot be "
                        "decided statically (hierarchy properties "
                        "undeclared, or declarations drifted)",
                        location,
                        hint="declare strictness/partitioning on the "
                             "grouped dimension types")
    else:
        verdict = StaticVerdict.UNKNOWN
        report.emit("MD033",
                    "summarizability of this grouping cannot be decided "
                    "statically (no fact-narrowing chain to a base MO)",
                    location,
                    hint="the engine will run the extensional check at "
                         "evaluation time")
    if verdict is StaticVerdict.UNSAFE:
        report.emit("MD030",
                    f"grouping {sorted(grouping)} with "
                    f"{node.function.name} is not summarizable; the "
                    f"result's bottom type degrades to c (count-only)",
                    location,
                    hint="group by strict+partitioning levels or use a "
                         "distributive, count-class function")

    # the schema pair: optimistic assumes summarizable unless the
    # verdict says UNSAFE; pessimistic assumes not, unless SAFE
    optimistic = aggregate_schema(
        child.optimistic, node.function, grouping, node.result,
        summarizable=verdict is not StaticVerdict.UNSAFE)
    pessimistic = aggregate_schema(
        child.pessimistic, node.function, grouping, node.result,
        summarizable=verdict is StaticVerdict.SAFE)

    # aggregation-type safety of *this* node's function against the
    # child's bottom types
    definite = _floor_fails(child.optimistic, node.function)
    possible = _floor_fails(child.pessimistic, node.function)
    if definite:
        if node.strict_types:
            report.emit("MD001",
                        f"{node.function.name} is not applicable to its "
                        f"argument dimensions' bottom aggregation types; "
                        f"evaluation will raise AggregationTypeError",
                        location,
                        hint="use a function the bottom types permit "
                             "(e.g. a COUNT-class one), or aggregate "
                             "before the types degrade")
        else:
            report.emit("MD002",
                        f"{node.function.name} is not applicable to its "
                        f"argument dimensions' bottom aggregation types; "
                        f"evaluation will warn and proceed "
                        f"(strict_types=False)",
                        location,
                        hint="treat the result as count-only data")
    elif possible:
        report.emit("MD002",
                    f"{node.function.name} may not be applicable: an "
                    f"inner aggregate's summarizability is undecided, "
                    f"and if it fails, these bottom types degrade to c",
                    location,
                    hint="group the inner aggregate by declared "
                         "strict+partitioning levels so the verdict "
                         "is decidable")

    # execution-path costing: a kernel-less function forces the per-
    # group object path even when the columnar layout is available
    if not has_batch_kernel(node.function):
        report.emit("MD040",
                    f"{node.function.name} has no columnar batch "
                    f"kernel; this α will evaluate per group on the "
                    f"object path",
                    location,
                    hint="override batch_apply (paired with apply) on "
                         "the function to use the columnar fast path")

    # an α result is a new MO over set-facts; further narrowing chains
    # would need the *aggregated* MO, which does not exist yet
    return PlanTypes(optimistic=optimistic, pessimistic=pessimistic,
                     kind=child.kind, base=None)


def _typecheck(plan: Plan, path: str,
               report: AnalysisReport) -> PlanTypes:
    location = f"{path}: {node_label(plan)}"

    if isinstance(plan, Base):
        schema = plan.mo.schema
        return PlanTypes(optimistic=schema, pessimistic=schema,
                         kind=plan.mo.kind, base=plan.mo)

    if isinstance(plan, (UnionNode, DifferenceNode, JoinNode)):
        left = _typecheck(plan.left, f"{path}.left", report)
        right = _typecheck(plan.right, f"{path}.right", report)
        if left.optimistic is None or left.pessimistic is None or \
                right.optimistic is None or right.pessimistic is None:
            return _POISONED
        if left.kind is not None and right.kind is not None and \
                left.kind is not right.kind:
            report.emit("MD015",
                        f"operand temporal kinds differ: "
                        f"{left.kind.value} vs {right.kind.value}",
                        location,
                        hint="convert one operand (e.g. via timeslice) "
                             "so the kinds match")
            return _POISONED
        code, hook = {
            UnionNode: ("MD013", union_schema),
            DifferenceNode: ("MD013", difference_schema),
            JoinNode: ("MD014", join_schema),
        }[type(plan)]
        try:
            optimistic = hook(left.optimistic, right.optimistic)
            pessimistic = hook(left.pessimistic, right.pessimistic)
        except (SchemaError, AlgebraError) as exc:
            report.emit(code, str(exc), location,
                        hint="apply ρ to align the operand schemas"
                        if isinstance(plan, JoinNode)
                        else "union/difference need structurally equal "
                             "schemas; reshape with ρ/π first")
            return _POISONED
        # difference narrows the left operand's facts; union may add
        # facts/values, so it breaks the verification chain
        base = left.base if isinstance(plan, DifferenceNode) else None
        return PlanTypes(optimistic=optimistic, pessimistic=pessimistic,
                         kind=left.kind, base=base)

    child = _typecheck(plan.child, f"{path}.child", report)
    if child.optimistic is None or child.pessimistic is None:
        return _POISONED

    if isinstance(plan, SelectNode):
        try:
            optimistic = select_schema(child.optimistic, plan.predicate)
            pessimistic = select_schema(child.pessimistic, plan.predicate)
        except SchemaError as exc:
            report.emit("MD010", str(exc), location,
                        hint="constrain only dimensions present in the "
                             "input schema")
            return _POISONED
        return PlanTypes(optimistic=optimistic, pessimistic=pessimistic,
                         kind=child.kind, base=child.base)

    if isinstance(plan, ProjectNode):
        try:
            optimistic = project_schema(child.optimistic,
                                        list(plan.dimensions))
            pessimistic = project_schema(child.pessimistic,
                                         list(plan.dimensions))
        except SchemaError as exc:
            report.emit("MD011", str(exc), location,
                        hint="project onto a non-empty, duplicate-free "
                             "subset of the input dimensions")
            return _POISONED
        return PlanTypes(optimistic=optimistic, pessimistic=pessimistic,
                         kind=child.kind, base=child.base)

    if isinstance(plan, RenameNode):
        try:
            optimistic = rename_schema(child.optimistic,
                                       plan.new_fact_type,
                                       dict(plan.dimension_map))
            pessimistic = rename_schema(child.pessimistic,
                                        plan.new_fact_type,
                                        dict(plan.dimension_map))
        except SchemaError as exc:
            report.emit("MD012", str(exc), location,
                        hint="rename existing dimensions to fresh, "
                             "distinct names")
            return _POISONED
        # ρ preserves facts and hierarchies, but the grouping names of
        # any α above no longer match the base MO's — keep it simple
        # and end the verification chain here
        return PlanTypes(optimistic=optimistic, pessimistic=pessimistic,
                         kind=child.kind, base=None)

    if isinstance(plan, AggregateNode):
        grouping = dict(plan.grouping)
        try:
            aggregate_schema(child.optimistic, plan.function, grouping,
                             plan.result, summarizable=True)
        except SchemaError as exc:
            report.emit("MD016", str(exc), location,
                        hint="group by existing dimensions at existing "
                             "categories, with argument dimensions in "
                             "the input and a fresh result name")
            return _POISONED
        return _aggregate_types(plan, child, location, report)

    raise TypeError(f"unknown plan node {plan!r}")


def typecheck_plan(plan: Plan) -> Tuple[AnalysisReport, PlanTypes]:
    """Fold the schema hooks over ``plan``.  Returns the report and the
    root's inferred :class:`PlanTypes` (poisoned when an error below
    made the output schema underivable)."""
    report = AnalysisReport(f"plan {node_label(plan)}")
    types = _typecheck(plan, "plan", report)
    return report, types


def analyze_plan(plan: Plan) -> AnalysisReport:
    """Statically analyze an algebra plan: schema inference through
    every operator (Theorem 1's closure), aggregation-type safety with
    optimistic/pessimistic propagation, summarizability verdicts, and
    temporal-kind checks.  No fact data is touched except the sound
    extensional confirmation of declared-SAFE groupings."""
    report, _types = typecheck_plan(plan)
    return report.sort()
