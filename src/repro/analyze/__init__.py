"""Static schema/plan analysis — diagnostics without fact data.

Given only fact schemas, dimension-type lattices, declared hierarchy
properties, and an algebra plan, the analyzer emits structured
:class:`~repro.analyze.diagnostics.Diagnostic` findings with stable
``MDnnn`` codes:

* **aggregation-type safety** (``MD00x``) — §3.1's ``Aggtype_T``
  propagated through every operator; SUM-over-⊘ and silent type
  downgrades are caught before evaluation;
* **plan typechecking** (``MD01x``) — Theorem 1's closure made
  executable: input/output fact schemas inferred through
  σ/π/ρ/∪/\\/⋈/α, malformed plans rejected with the offending node
  named;
* **summarizability** (``MD02x``) — the intensional Lenz–Shoshani
  verdict from declared strictness/partitioning, with drift checks
  against the extension so "static ``SAFE``" soundly implies the
  extensional check passes;
* **temporal/uncertainty lints** (``MD03x``) — timeslices outside the
  recorded valid-time span, probability mass above 1;
* **SQL pushdown coverage** (``MD05x``) — :func:`analyze_pushdown`
  dry-runs the relational backend's compiler and reports exactly why a
  plan would fall back to the in-memory path;
* **result-cache coverage** (``MD06x``) — :func:`analyze_cacheability`
  dry-runs the canonical plan fingerprint and reports exactly why a
  plan would bypass the versioned result cache;
* **shard safety** (``MD07x``) — :func:`analyze_shardability`
  classifies aggregation functions as distributive / algebraic /
  holistic from their AST (every static DISTRIBUTIVE verdict backed by
  an extensional merge-equivalence check), runs a purity/determinism
  analysis over user callables, and folds partition safety through the
  plan so partition-and-merge execution is provably exact.

Three surfaces: the :func:`analyze_schema` / :func:`analyze_plan` /
:func:`analyze_timeslice` APIs here, ``Query.check()`` on the fluent
engine API (run by ``execute`` unless opted out), and the
``python -m repro analyze`` CLI over the case study and workloads.
``docs/ANALYSIS.md`` is the full diagnostic catalogue."""

from repro.analyze.diagnostics import (
    CATALOG,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analyze.cacheability import analyze_cacheability
from repro.analyze.plan import PlanTypes, analyze_plan, typecheck_plan
from repro.analyze.purity import (
    PurityFinding,
    PurityReport,
    PurityVerdict,
    analyze_callable,
    analyze_function_purity,
    analyze_predicate_purity,
)
from repro.analyze.pushdown import analyze_pushdown
from repro.analyze.schema import (
    StaticVerdict,
    analyze_schema,
    analyze_timeslice,
    grouping_summarizability,
    intensional_summarizability,
    recorded_valid_time,
    static_summarizability,
)
from repro.analyze.shardability import (
    FunctionClass,
    FunctionClassification,
    ShardVerdict,
    analyze_shardability,
    classify_function,
    merge_equivalence_check,
    shardability_of,
)

__all__ = [
    "CATALOG",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "PlanTypes",
    "analyze_cacheability",
    "analyze_plan",
    "analyze_pushdown",
    "typecheck_plan",
    "StaticVerdict",
    "analyze_schema",
    "analyze_timeslice",
    "grouping_summarizability",
    "intensional_summarizability",
    "recorded_valid_time",
    "static_summarizability",
    "PurityFinding",
    "PurityReport",
    "PurityVerdict",
    "analyze_callable",
    "analyze_function_purity",
    "analyze_predicate_purity",
    "FunctionClass",
    "FunctionClassification",
    "ShardVerdict",
    "analyze_shardability",
    "classify_function",
    "merge_equivalence_check",
    "shardability_of",
]
