"""Static shard-safety analysis: which plans survive partition-and-merge?

The ROADMAP's sharded-execution item partitions the fact set into
per-shard sub-MOs, evaluates per shard, and merges per-group partials
with ``function.combine``.  That is only exact when three independent
things hold, and each one is decided statically here:

1. **The function decomposes.**  :func:`classify_function` labels every
   :class:`~repro.algebra.functions.AggregationFunction` subclass from
   its AST (never from its ``distributive`` *claim*):

   * a ``combine`` override that is associative-shaped (a single
     reduction — ``sum``/``min``/``max``/``prod``/set-union — over the
     partials) and side-effect-free is a **DISTRIBUTIVE** candidate,
     confirmed by an *extensional merge-equivalence check*
     ``combine([apply(P₁), apply(P₂)]) ≡ apply(P₁ ∪ P₂)`` over
     synthesized partitions of a synthetic MO — the same
     "static SAFE ⇒ extensional check passes" soundness discipline the
     summarizability analyzer established.  A lying ``combine`` fails
     the check and is demoted to **UNKNOWN**, never trusted;
   * an AVG-style paired-accumulator shape (a pure ``sum/len``-class
     ratio in ``apply``/``batch_apply``, no combine) is **ALGEBRAIC**:
     shardable by merging accumulator *states*, not finished results;
   * everything else — medians, impure or source-less callables,
     unrecognized shapes — is **HOLISTIC**/**UNKNOWN**: no shard plan.

2. **The grouping is summarizable.**  Partition-and-merge merges
   per-shard cells per group combination; non-strict fact paths or
   non-partitioning hierarchies make shard cells overlap, so the merge
   double-counts exactly when the Lenz–Shoshani conditions fail.  The
   analyzer requires
   :func:`~repro.analyze.schema.grouping_summarizability` = ``SAFE``
   (the hierarchy half alone, so ALGEBRAIC functions qualify too).

3. **The operators commute with partitioning.**
   :func:`analyze_shardability` folds partition-safety through the
   plan: σ/π are per-fact and preserve it; ρ and ∪ preserve it but end
   the base chain the grouping verdict is verified against; ``\\`` and
   ``⋈`` poison it (operands would need cross-shard alignment); α is
   shardable iff (1) and (2) hold.  σ predicates of the opaque kind are
   additionally run through :mod:`repro.analyze.purity` — an impure
   predicate evaluates differently across shards and re-runs.

Verdicts surface as ``MD070``–``MD076`` diagnostics (stable codes,
``analyze.diagnostics.*`` counters), via :meth:`Query.check`, and via
``python -m repro analyze --shardability``.  The reference executor
the verdicts are tested against is
:func:`repro.algebra.aggregate.aggregate_sharded`.
"""

from __future__ import annotations

import ast
import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.functions import AggregationFunction
from repro.analyze.diagnostics import AnalysisReport
from repro.analyze.purity import (
    PurityReport,
    PurityVerdict,
    analyze_function_purity,
    analyze_predicate_purity,
    _source_tree,
)
from repro.analyze.schema import StaticVerdict, grouping_summarizability
from repro.core.factdim import FactDimensionRelation
from repro.core.helpers import make_numeric_dimension
from repro.core.mo import MultidimensionalObject, TimeKind
from repro.core.schema import FactSchema
from repro.core.values import DimensionValue, Fact
from repro.engine.optimizer import (
    AggregateNode,
    Base,
    DifferenceNode,
    JoinNode,
    Plan,
    ProjectNode,
    RenameNode,
    SelectNode,
    UnionNode,
    node_label,
)
from repro.obs import metrics

__all__ = [
    "FunctionClass",
    "FunctionClassification",
    "ShardVerdict",
    "classify_function",
    "merge_equivalence_check",
    "shardability_of",
    "analyze_shardability",
]

_CLASSIFIED = metrics.counter("analyze.shardability.classified")
_MERGE_FAILED = metrics.counter("analyze.shardability.merge_check_failed")


class FunctionClass(enum.Enum):
    """The Gray et al. taxonomy, assigned structurally."""

    DISTRIBUTIVE = "distributive"
    ALGEBRAIC = "algebraic"
    HOLISTIC = "holistic"
    #: statically distributive-shaped but extensionally refuted, or
    #: otherwise unanalyzable — never sharded, never trusted.
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class FunctionClassification:
    """The classifier's full answer for one function.

    ``merge_check`` is the extensional merge-equivalence outcome: True
    (passed — required for every DISTRIBUTIVE verdict), False (refuted:
    a lying combine, whatever its shape), or None (not attempted — no
    combine override, or the combine is impure/opaque so running it
    would prove nothing).  ``purity`` maps each
    overridden method to its :class:`PurityReport`; ``notes`` carries
    human-readable reasons for non-DISTRIBUTIVE outcomes."""

    function_class: FunctionClass
    merge_check: Optional[bool] = None
    purity: Mapping[str, PurityReport] = None  # type: ignore[assignment]
    notes: Tuple[str, ...] = ()


class ShardVerdict(enum.Enum):
    """Whether partition-and-merge execution of a plan is provably
    exact (``SHARDABLE`` is sound: it agrees with single-partition
    evaluation), provably not, or undecided."""

    SHARDABLE = "shardable"
    NOT_SHARDABLE = "not-shardable"
    UNKNOWN = "unknown"

    @property
    def rank(self) -> int:
        return {"not-shardable": 0, "unknown": 1, "shardable": 2}[
            self.value]


def _meet(a: ShardVerdict, b: ShardVerdict) -> ShardVerdict:
    """The conservative combination: the worse of the two."""
    return a if a.rank <= b.rank else b


# --------------------------------------------------------------------
# function classification
# --------------------------------------------------------------------

#: reduction callables an associative-shaped combine may apply.
_REDUCERS = {"sum", "min", "max", "prod"}
#: attribute reducers (``math.prod``, ``frozenset.union``).
_REDUCER_ATTRS = {"prod", "union"}

_CLASSIFICATIONS: Dict[Tuple[type, Tuple[str, ...]],
                       FunctionClassification] = {}


def _mentions(node: ast.AST, name: str) -> bool:
    return any(isinstance(child, ast.Name) and child.id == name
               for child in ast.walk(node))


def _first_param(fn: ast.FunctionDef) -> Optional[str]:
    """The first non-self parameter name."""
    params = [a.arg for a in fn.args.args if a.arg != "self"]
    return params[0] if params else None


def _associative_shaped(fn: ast.FunctionDef) -> bool:
    """True when every return of ``fn`` is a single recognized
    reduction over the partials parameter — the static shape of an
    associative, identity-respecting merge.  Purely syntactic; the
    extensional check below is what *verifies* the semantics."""
    partials = _first_param(fn)
    if partials is None:
        return False
    returns = [node for node in ast.walk(fn)
               if isinstance(node, ast.Return)]
    if not returns:
        return False
    for ret in returns:
        value = ret.value
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        named = (isinstance(func, ast.Name) and func.id in _REDUCERS)
        attred = (isinstance(func, ast.Attribute)
                  and func.attr in _REDUCER_ATTRS)
        if not (named or attred):
            return False
        if not _mentions(value, partials):
            return False
    return True


def _ratio_of_aggregates(node: ast.expr) -> bool:
    """An AVG-shaped expression: a division whose numerator and
    denominator are both aggregate reads (a ``sum``/``len`` call, a
    subscripted accumulator, or a plain accumulator name)."""
    def aggregate_read(side: ast.expr) -> bool:
        if isinstance(side, ast.Call):
            return (isinstance(side.func, ast.Name)
                    and side.func.id in {"sum", "len"})
        return isinstance(side, (ast.Subscript, ast.Name))

    return (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div)
            and aggregate_read(node.left) and aggregate_read(node.right))


def _algebraic_shaped(cls: type) -> bool:
    """The paired-accumulator test: some override computes its result
    as a ratio of aggregates (AVG's ``sum(xs) / len(xs)`` or its
    batched ``sums[key] / count``) — decomposable into distributive
    accumulator states merged per shard."""
    for method_name in ("apply", "batch_apply"):
        override = getattr(cls, method_name, None)
        if override is None or override is getattr(
                AggregationFunction, method_name, None):
            continue
        node, _reason = _source_tree(override)
        if node is None:
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.expr) and _ratio_of_aggregates(child):
                return True
    return False


#: fixed integer measure columns for the synthetic check MO — integral
#: so float addition is exact and the equivalence is byte-level, with
#: negatives, zero, and a duplicate to exercise non-trivial merges.
_MEASURE_COLUMNS = (
    (3, -2, 7, 0, 11, 5, 2),
    (2, 4, -1, 3, 6, 1, 2),
    (5, 1, -3, 8, 2, 0, 4),
)


def _synthesize_mo(args: Tuple[str, ...]) -> MultidimensionalObject:
    """A small precise MO purpose-built for the merge-equivalence
    check: one numeric dimension per argument of the function (so
    ``measures_of`` works), seven facts with integer measures, and one
    deliberately multi-valued characterization (fact 0 carries two
    measures in the first argument dimension — the bridge-table case
    ``combine`` must also survive)."""
    facts = [Fact(fid=i, ftype="ShardCheck") for i in range(7)]
    dimensions = {}
    relations = {}
    dtypes = []
    # one dimension per UNIQUE argument: SumProduct("Age", "Age") is a
    # legal function over a single dimension, not a two-dimension schema
    unique_args = tuple(dict.fromkeys(args))
    for i, name in enumerate(unique_args):
        column = _MEASURE_COLUMNS[i % len(_MEASURE_COLUMNS)]
        extra = 13 + i  # the second measure of fact 0
        members = sorted(set(column) | {extra})
        dimension = make_numeric_dimension(name, members)
        relation = FactDimensionRelation(name)
        for fact, measure in zip(facts, column):
            relation.add(fact,
                         DimensionValue(sid=measure, label=str(measure)))
        if i == 0:
            relation.add(facts[0],
                         DimensionValue(sid=extra, label=str(extra)))
        dimensions[name] = dimension
        relations[name] = relation
        dtypes.append(dimension.dtype)
    return MultidimensionalObject(
        schema=FactSchema("ShardCheck", dtypes),
        facts=set(facts),
        dimensions=dimensions,
        relations=relations,
        kind=TimeKind.SNAPSHOT,
    )


def _splits(facts: Sequence[Fact]) -> List[List[List[Fact]]]:
    """The synthesized partition shapes: binary, uneven, three-way,
    and fully singleton — each a list of non-empty disjoint parts
    covering ``facts``.  Parts are never empty: a sharded executor
    only combines cells of groups that exist in a shard."""
    facts = list(facts)
    return [
        [facts[:1], facts[1:]],
        [facts[:3], facts[3:]],
        [facts[:5], facts[5:]],
        [facts[:2], facts[2:4], facts[4:]],
        [facts[0::2], facts[1::2]],
        [[fact] for fact in facts],
    ]


def _agree(a: object, b: object) -> bool:
    """Exact agreement, with the one float caveat that nan ≠ nan."""
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return type(a) is type(b) and a == b


def merge_equivalence_check(function: AggregationFunction) -> bool:
    """The extensional half of every DISTRIBUTIVE verdict:
    ``combine([apply(P₁), …, apply(Pₖ)]) ≡ apply(P₁ ∪ … ∪ Pₖ)`` over
    the synthesized partitions of :func:`_synthesize_mo`.  Any
    disagreement — or any exception out of the user's code — refutes
    the candidate (the analyzer then answers UNKNOWN, never SAFE)."""
    try:
        mo = _synthesize_mo(tuple(function.args))
        facts = sorted(mo.facts, key=lambda fact: repr(fact.fid))
        whole = function.apply(set(facts), mo)
        for split in _splits(facts):
            partials = [function.apply(set(part), mo) for part in split]
            if not _agree(function.combine(partials), whole):
                return False
        return True
    except Exception:
        return False


def classify_function(
        function: AggregationFunction) -> FunctionClassification:
    """Classify one aggregation function structurally (cached per
    ``(type, args)``, so repeated plan analyses re-use the AST walk
    and the merge-equivalence execution)."""
    key = (type(function), tuple(function.args))
    cached = _CLASSIFICATIONS.get(key)
    if cached is not None:
        return cached
    result = _classify(function)
    _CLASSIFIED.inc()
    return _CLASSIFICATIONS.setdefault(key, result)


def _classify(function: AggregationFunction) -> FunctionClassification:
    cls = type(function)
    purity = analyze_function_purity(function)
    impure = sorted(name for name, report in purity.items()
                    if report.verdict is PurityVerdict.IMPURE)
    opaque = sorted(name for name, report in purity.items()
                    if report.verdict is PurityVerdict.OPAQUE)
    notes: List[str] = []
    notes.extend(purity[name].summary() for name in impure)
    notes.extend(f"{cls.__name__}.{name}: source unavailable"
                 for name in opaque)

    has_combine = cls.combine is not AggregationFunction.combine
    if has_combine:
        if impure or opaque:
            # a side-effecting merge can't be vouched for, whatever
            # its shape
            return FunctionClassification(
                FunctionClass.UNKNOWN, merge_check=None, purity=purity,
                notes=tuple(notes))
        node, reason = _source_tree(cls.combine)
        shaped = node is not None and _associative_shaped(node)
        if not merge_equivalence_check(function):
            # Extensionally refuted: whatever the combine's shape, it
            # disagrees with apply on at least one synthesized split.
            _MERGE_FAILED.inc()
            notes.append(
                f"{cls.__name__}.combine disagrees with apply on "
                f"synthesized partitions")
            return FunctionClassification(
                FunctionClass.UNKNOWN, merge_check=False, purity=purity,
                notes=tuple(notes))
        if not shaped:
            # Passing the finite extensional check is necessary but not
            # sufficient; without a recognized associative shape there
            # is no structural argument, so the verdict stays UNKNOWN.
            why = reason or \
                "shape is not a recognized reduction over the partials"
            notes.append(f"{cls.__name__}.combine: {why}")
            return FunctionClassification(
                FunctionClass.UNKNOWN, merge_check=True, purity=purity,
                notes=tuple(notes))
        return FunctionClassification(
            FunctionClass.DISTRIBUTIVE, merge_check=True,
            purity=purity, notes=tuple(notes))

    if not impure and not opaque and _algebraic_shaped(cls):
        return FunctionClassification(
            FunctionClass.ALGEBRAIC, merge_check=None, purity=purity,
            notes=tuple(notes))
    notes.append(f"{cls.__name__}: no combine override and no "
                 f"paired-accumulator shape")
    return FunctionClassification(
        FunctionClass.HOLISTIC, merge_check=None, purity=purity,
        notes=tuple(notes))


# --------------------------------------------------------------------
# the plan fold
# --------------------------------------------------------------------

@dataclass(frozen=True)
class _ShardState:
    """The fold state at one node: the verdict so far, and the base MO
    a fact-narrowing chain bottoms out at (the summarizability
    subject), mirroring the typechecker's base tracking."""

    verdict: ShardVerdict
    base: Optional[MultidimensionalObject] = None


def _fold(plan: Plan, path: str, report: AnalysisReport) -> _ShardState:
    location = f"{path}: {node_label(plan)}"

    if isinstance(plan, Base):
        return _ShardState(ShardVerdict.SHARDABLE, base=plan.mo)

    if isinstance(plan, (UnionNode, DifferenceNode, JoinNode)):
        left = _fold(plan.left, f"{path}.left", report)
        right = _fold(plan.right, f"{path}.right", report)
        if isinstance(plan, UnionNode):
            # ∪ is per-fact under a consistent partitioning, but may
            # merge two bases: the verification chain ends here
            return _ShardState(_meet(left.verdict, right.verdict),
                               base=None)
        kind = "set-difference" if isinstance(plan, DifferenceNode) \
            else "join"
        report.emit(
            "MD073",
            f"{kind} below an α poisons partition-safety: its operands "
            f"would need cross-shard alignment before per-shard "
            f"results are meaningful",
            location,
            hint="evaluate the set operation once, then shard the "
                 "aggregation over its materialized result")
        return _ShardState(ShardVerdict.NOT_SHARDABLE, base=None)

    child = _fold(plan.child, f"{path}.child", report)

    if isinstance(plan, SelectNode):
        verdict = child.verdict
        purity = analyze_predicate_purity(plan.predicate)
        if purity is not None:
            if purity.verdict is PurityVerdict.IMPURE:
                report.emit("MD074", purity.summary(), location,
                            hint="make the predicate a pure function "
                                 "of its characterizing values")
                verdict = _meet(verdict, ShardVerdict.UNKNOWN)
            elif purity.verdict is PurityVerdict.OPAQUE:
                report.emit("MD075", purity.summary(), location,
                            hint="define the predicate as a plain "
                                 "inspectable function (not a builtin "
                                 "or C callable)")
                verdict = _meet(verdict, ShardVerdict.UNKNOWN)
        # a *pure* opaque-kind predicate is still per-fact: σ commutes
        # with any partitioning of the facts it filters
        return _ShardState(verdict, base=child.base)

    if isinstance(plan, ProjectNode):
        return child

    if isinstance(plan, RenameNode):
        # ρ preserves facts but detaches grouping names from the base
        # MO's — same chain cut as the typechecker
        return _ShardState(child.verdict, base=None)

    if isinstance(plan, AggregateNode):
        return _aggregate_state(plan, child, location, report)

    raise TypeError(f"unknown plan node {plan!r}")


def _aggregate_state(node: AggregateNode, child: _ShardState,
                     location: str,
                     report: AnalysisReport) -> _ShardState:
    function = node.function
    classification = classify_function(function)
    builtin = type(function).__module__ == "repro.algebra.functions"

    for method_name, purity in sorted(classification.purity.items()):
        if purity.verdict is PurityVerdict.IMPURE:
            report.emit("MD074", purity.summary(), location,
                        hint="aggregation methods must be pure "
                             "functions of the group and MO")
        elif purity.verdict is PurityVerdict.OPAQUE and not builtin:
            report.emit("MD075",
                        f"{purity.subject}: source unavailable, "
                        f"purity undecidable", location,
                        hint="define the function as a plain "
                             "inspectable method")
    if classification.merge_check is False:
        report.emit(
            "MD076",
            f"{function.name} has a distributive-shaped combine that "
            f"disagrees with apply on synthesized partitions; demoted "
            f"to UNKNOWN",
            location,
            hint="fix combine so merged partials equal the whole-"
                 "group result")

    if classification.function_class is FunctionClass.HOLISTIC:
        report.emit(
            "MD070",
            f"{function.name} is holistic "
            f"({'; '.join(classification.notes) or 'no decomposition'}): "
            f"this α cannot be partitioned and merged",
            location,
            hint="evaluate this α unsharded, or switch to a "
                 "distributive/algebraic function")
        return _ShardState(ShardVerdict.NOT_SHARDABLE, base=None)

    if classification.function_class is FunctionClass.UNKNOWN:
        if classification.merge_check is not False and \
                not any(p.verdict is not PurityVerdict.PURE
                        for p in classification.purity.values()):
            report.emit(
                "MD075",
                f"{function.name} is unanalyzable: "
                f"{'; '.join(classification.notes) or 'unrecognized'}",
                location,
                hint="shape combine as a plain reduction over the "
                     "partials so the analyzer can classify it")
        return _ShardState(ShardVerdict.UNKNOWN, base=None)

    if classification.function_class is FunctionClass.ALGEBRAIC:
        report.emit(
            "MD071",
            f"{function.name} is algebraic: shard by merging partial "
            f"accumulator states (e.g. (sum, count) pairs), never the "
            f"finished per-shard results",
            location,
            hint="the sharded executor must use the decomposed "
                 "accumulator form of this function")

    verdict = ShardVerdict.SHARDABLE
    grouping = dict(node.grouping)
    if child.base is None or any(
            name not in child.base.schema for name in grouping):
        # the second disjunct: a malformed grouping (MD016 territory)
        # that the base MO cannot even be asked about
        report.emit(
            "MD072",
            f"grouping summarizability of {sorted(grouping)} cannot "
            f"be verified (no fact-narrowing chain to a base MO)",
            location,
            hint="shard only αs that sit on σ/π chains over a base MO")
        verdict = ShardVerdict.UNKNOWN
    else:
        nontrivial = {
            name: cat for name, cat in grouping.items()
            if cat != child.base.dimension(name).dtype.top_name
        }
        grouping_verdict = grouping_summarizability(child.base,
                                                    nontrivial)
        if grouping_verdict is StaticVerdict.UNSAFE:
            report.emit(
                "MD072",
                f"grouping {sorted(grouping)} is not summarizable: "
                f"per-shard cells overlap and partition-and-merge "
                f"double-counts",
                location,
                hint="group by declared strict+partitioning levels")
            verdict = ShardVerdict.NOT_SHARDABLE
        elif grouping_verdict is StaticVerdict.UNKNOWN:
            report.emit(
                "MD072",
                f"grouping summarizability of {sorted(grouping)} is "
                f"not statically SAFE (undeclared or drifted "
                f"hierarchy properties)",
                location,
                hint="declare strictness/partitioning on the grouped "
                     "dimension types")
            verdict = ShardVerdict.UNKNOWN

    return _ShardState(_meet(child.verdict, verdict), base=None)


def shardability_of(
        plan: Plan) -> Tuple[ShardVerdict, AnalysisReport]:
    """The plan's shard-safety verdict plus the diagnostics behind it.

    ``SHARDABLE`` is the sound answer: partition the base fact set any
    way, evaluate the plan per partition, merge α cells per group
    combination with ``combine`` (or the algebraic accumulator form),
    and the result equals single-partition evaluation —
    :func:`repro.algebra.aggregate.aggregate_sharded` is the
    executable statement of that claim."""
    report = AnalysisReport(f"shardability of {node_label(plan)}")
    state = _fold(plan, "plan", report)
    report.sort()
    return state.verdict, report


def analyze_shardability(plan: Plan) -> AnalysisReport:
    """The MD07x diagnostics for ``plan`` (the report half of
    :func:`shardability_of`)."""
    _verdict, report = shardability_of(plan)
    return report
