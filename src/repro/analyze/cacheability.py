"""Static result-cache analysis: will the versioned result cache key a
plan, and if not, why not?

:func:`analyze_cacheability` dry-runs the *actual* canonicalizer
(:func:`repro.engine.plan_fingerprint.fingerprint`) against the plan —
nothing is cached — and reports any
:class:`~repro.engine.plan_fingerprint.Unfingerprintable` as an
``MD060`` diagnostic.  Because the analyzer and the query layer share
one canonicalizer, the prediction cannot drift from the behaviour: a
clean report means ``Query.execute()`` will consult the cache; a
finding names the construct the query layer will count as
``query.cache.bypass``.

When the canonicalizer attaches the offending construct as the
exception ``payload``, the finding runs the ``MD07x`` purity analyzer
over its callable and says whether the opacity is *conservative* (the
callable is pure, only unserializable) or *essential* (the callable is
impure — caching it would be wrong even with a serialization).

``MD060`` is :attr:`~repro.analyze.Severity.INFO` — cache coverage is
a performance observation, never a correctness issue (the bypass
recomputes, byte-identically).
"""

from __future__ import annotations

from typing import Optional

from repro.analyze.diagnostics import AnalysisReport
from repro.analyze.purity import (
    PurityVerdict,
    analyze_function_purity,
    analyze_predicate_purity,
)
from repro.engine.optimizer import Plan, node_label
from repro.engine.plan_fingerprint import Unfingerprintable, fingerprint

__all__ = ["analyze_cacheability"]


def _purity_note(payload: object) -> Optional[str]:
    """One clause describing the payload's purity, or None when the
    payload is absent / not a construct the purity analyzer covers."""
    reports = []
    if payload is None:
        return None
    if hasattr(payload, "kind") and hasattr(payload, "test"):
        report = analyze_predicate_purity(payload)
        if report is not None:
            reports.append(report)
    elif hasattr(payload, "apply") and hasattr(payload, "combine"):
        reports.extend(analyze_function_purity(payload).values())
    if not reports:
        return None
    impure = [r for r in reports if r.verdict is PurityVerdict.IMPURE]
    if impure:
        findings = "; ".join(
            f.detail for r in impure for f in r.findings[:2])
        return (f"its callable is impure ({findings}) — caching would "
                f"be unsound even with a serialization")
    if any(r.verdict is PurityVerdict.OPAQUE for r in reports):
        return "its callable's source is unavailable to the analyzer"
    return ("its callable is pure — the bypass is conservative "
            "(unserializable, not incorrect)")


def analyze_cacheability(plan: Plan) -> AnalysisReport:
    """Report whether the result cache can fingerprint ``plan`` (empty
    report = cacheable; one ``MD060`` INFO finding otherwise)."""
    report = AnalysisReport(subject=node_label(plan))
    try:
        fingerprint(plan)
    except Unfingerprintable as exc:
        message = exc.reason
        note = _purity_note(exc.payload)
        if note is not None:
            message = f"{message}; {note}"
        report.emit("MD060", message, location=exc.location,
                    hint="executions will recompute "
                         "(query.cache.bypass); use characterized_by/"
                         "conjunction predicates and builtin "
                         "aggregation functions to cache")
    return report.sort()
