"""Static result-cache analysis: will the versioned result cache key a
plan, and if not, why not?

:func:`analyze_cacheability` dry-runs the *actual* canonicalizer
(:func:`repro.engine.plan_fingerprint.fingerprint`) against the plan —
nothing is cached — and reports any
:class:`~repro.engine.plan_fingerprint.Unfingerprintable` as an
``MD060`` diagnostic.  Because the analyzer and the query layer share
one canonicalizer, the prediction cannot drift from the behaviour: a
clean report means ``Query.execute()`` will consult the cache; a
finding names the construct the query layer will count as
``query.cache.bypass``.

``MD060`` is :attr:`~repro.analyze.Severity.INFO` — cache coverage is
a performance observation, never a correctness issue (the bypass
recomputes, byte-identically).
"""

from __future__ import annotations

from repro.analyze.diagnostics import AnalysisReport
from repro.engine.optimizer import Plan, node_label
from repro.engine.plan_fingerprint import Unfingerprintable, fingerprint

__all__ = ["analyze_cacheability"]


def analyze_cacheability(plan: Plan) -> AnalysisReport:
    """Report whether the result cache can fingerprint ``plan`` (empty
    report = cacheable; one ``MD060`` INFO finding otherwise)."""
    report = AnalysisReport(subject=node_label(plan))
    try:
        fingerprint(plan)
    except Unfingerprintable as exc:
        report.emit("MD060", exc.reason, location=exc.location,
                    hint="executions will recompute "
                         "(query.cache.bypass); use characterized_by/"
                         "conjunction predicates and builtin "
                         "aggregation functions to cache")
    return report
