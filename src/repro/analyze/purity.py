"""Purity/determinism analysis of user-supplied callables.

Sharding a plan runs its σ predicates and aggregation-function methods
many times, concurrently, over partitions of the fact set — and the
result cache replays old answers instead of running them at all.  Both
are only sound for callables that are *pure* (no observable effects)
and *deterministic* (same inputs ⇒ same output).  This module answers
that question statically, from the callable's AST, without running it:

* **global-state mutation** — ``global``/``nonlocal`` rebinding,
  assignment through a free variable (``CACHE[k] = v``), mutator-method
  calls on free variables (``SEEN.append(f)``), and accumulation on
  ``self`` inside apply-style methods (state that leaks across calls);
* **I/O** — ``open``/``print``/``input`` and calls into ``os``/``sys``/
  ``subprocess``/``socket``/``shutil``/``pathlib`` reached as free
  variables;
* **randomness and time** — ``random``/``secrets``/``uuid``/
  ``os.urandom`` and clock reads (``time.*``, ``datetime.now`` and
  friends, ``perf_counter``), which make re-execution nondeterministic;
* **iteration-order-dependent accumulation** — a heuristic: a
  non-commutative augmented assignment (``-=``, ``/=``, ``**=``, …)
  inside a loop folds its operand order into the result, so partition
  order changes the answer even though each step is pure.

Verdicts are deliberately three-valued.  ``PURE`` is the analyzer
vouching for the callable; ``IMPURE`` carries the findings; ``OPAQUE``
means the source is unavailable (a C builtin, a lambda the inspector
cannot recover, a REPL definition) and the caller must stay
conservative.  Like every static pass here, the discipline is "never
guess on the safe side": anything unanalyzable is OPAQUE, not PURE.
"""

from __future__ import annotations

import ast
import enum
import inspect
import textwrap
import types
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.obs import metrics

__all__ = [
    "PurityVerdict",
    "PurityFinding",
    "PurityReport",
    "analyze_callable",
    "analyze_function_purity",
    "analyze_predicate_purity",
]


class PurityVerdict(enum.Enum):
    """What the analyzer can say about a callable without running it."""

    PURE = "pure"
    IMPURE = "impure"
    OPAQUE = "opaque"


@dataclass(frozen=True)
class PurityFinding:
    """One reason a callable is not (provably) pure.

    ``category`` is one of ``global-mutation``, ``io``, ``randomness``,
    ``time``, ``order-dependence``, ``opaque``; ``detail`` names the
    offending construct; ``line`` is 1-based within the callable's
    source (0 when there is no source to point at)."""

    category: str
    detail: str
    line: int = 0

    def render(self) -> str:
        return f"{self.category}: {self.detail}"


@dataclass(frozen=True)
class PurityReport:
    """The verdict for one callable plus every finding behind it."""

    subject: str
    verdict: PurityVerdict
    findings: Tuple[PurityFinding, ...] = ()

    @property
    def is_pure(self) -> bool:
        return self.verdict is PurityVerdict.PURE

    def summary(self) -> str:
        """A one-line rendering for diagnostic messages."""
        if self.verdict is PurityVerdict.PURE:
            return f"{self.subject} is pure"
        reasons = "; ".join(f.render() for f in self.findings) or \
            self.verdict.value
        return f"{self.subject} is {self.verdict.value} ({reasons})"


#: free-variable roots whose attribute calls are I/O.
_IO_MODULES = {"os", "sys", "subprocess", "socket", "shutil", "pathlib",
               "io", "requests", "urllib", "http"}
#: free-variable call roots that are I/O outright.
_IO_CALLS = {"open", "print", "input"}
#: free-variable roots whose attribute calls are nondeterministic.
_RANDOM_MODULES = {"random", "secrets", "uuid"}
#: attribute names that read a clock, whatever the root.
_CLOCK_ATTRS = {"now", "utcnow", "today", "time", "monotonic",
                "perf_counter", "process_time", "time_ns",
                "monotonic_ns", "perf_counter_ns"}
#: method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end",
    "appendleft", "popleft", "sort", "reverse", "write", "writelines",
    "intern", "record", "inc", "dec", "set", "observe",
}
#: augmented-assignment operators whose fold is order-sensitive.
_NON_COMMUTATIVE = (ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
                    ast.LShift, ast.RShift, ast.MatMult)


def _bound_names(fn: ast.AST) -> Set[str]:
    """Every name the function binds locally: parameters, assignment
    targets, loop/with/except targets, comprehension variables, inner
    defs.  A name *not* in this set is free — reads are fine, but
    mutation through it is global-state mutation."""
    bound: Set[str] = set()

    class _Collector(ast.NodeVisitor):
        def visit_arguments(self, node: ast.arguments) -> None:
            for arg in (list(node.posonlyargs) + list(node.args)
                        + list(node.kwonlyargs)):
                bound.add(arg.arg)
            if node.vararg:
                bound.add(node.vararg.arg)
            if node.kwarg:
                bound.add(node.kwarg.arg)

        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            bound.add(node.name)
            self.generic_visit(node)

        def visit_AsyncFunctionDef(self, node) -> None:
            bound.add(node.name)
            self.generic_visit(node)

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            bound.add(node.name)
            self.generic_visit(node)

    collector = _Collector()
    for child in ast.walk(fn):
        collector.visit(child)
    return bound


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` of an attribute/subscript chain, or None
    when the chain roots in a call/literal."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering of a call target for messages."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)) or "<expr>"


class _PurityVisitor(ast.NodeVisitor):
    """Collects findings over one function body."""

    def __init__(self, bound: Set[str], is_method: bool) -> None:
        self.bound = bound
        self.is_method = is_method
        self.findings: List[PurityFinding] = []
        self._loop_depth = 0

    def _flag(self, category: str, detail: str, node: ast.AST) -> None:
        self.findings.append(PurityFinding(
            category=category, detail=detail,
            line=getattr(node, "lineno", 0)))

    # --- bindings that escape the call -------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self._flag("global-mutation",
                   f"rebinds global name(s) {', '.join(node.names)}",
                   node)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._flag("global-mutation",
                   f"rebinds enclosing name(s) {', '.join(node.names)}",
                   node)

    # --- mutation through free variables and self --------------------
    def _check_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, node)
            return
        if isinstance(target, ast.Name):
            return  # local rebinding is fine
        root = _root_name(target)
        if root == "self":
            if self.is_method:
                self._flag("global-mutation",
                           f"mutates instance state "
                           f"{_dotted(target) or 'self attribute'} "
                           f"(leaks across calls)", node)
            return
        if root is not None and root not in self.bound:
            self._flag("global-mutation",
                       f"assigns through free variable {root!r}", node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        if self._loop_depth and isinstance(node.op, _NON_COMMUTATIVE):
            symbol = type(node.op).__name__
            self._flag("order-dependence",
                       f"non-commutative accumulation ({symbol}) inside "
                       f"a loop folds iteration order into the result",
                       node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # --- calls: mutators on free state, I/O, clocks, randomness ------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _IO_CALLS and func.id not in self.bound:
                self._flag("io", f"calls {func.id}()", node)
            elif func.id in _CLOCK_ATTRS and func.id not in self.bound:
                # `from time import time; time()` style bare clock read
                self._flag("time", f"calls {func.id}() (reads a clock)",
                           node)
        elif isinstance(func, ast.Attribute):
            root = _root_name(func)
            free = root is not None and root not in self.bound \
                and root != "self"
            if func.attr in MUTATOR_METHODS:
                if root == "self" and self.is_method:
                    self._flag("global-mutation",
                               f"mutates instance state via "
                               f"{_dotted(func)}() (leaks across calls)",
                               node)
                elif free:
                    self._flag("global-mutation",
                               f"mutates free variable via "
                               f"{_dotted(func)}()", node)
            if free and root in _IO_MODULES:
                if root == "os" and func.attr == "urandom":
                    self._flag("randomness",
                               f"calls {_dotted(func)}()", node)
                else:
                    self._flag("io", f"calls {_dotted(func)}()", node)
            elif free and root in _RANDOM_MODULES:
                self._flag("randomness", f"calls {_dotted(func)}()",
                           node)
            elif func.attr in _CLOCK_ATTRS and (
                    free or not isinstance(func.value, ast.Name)):
                self._flag("time", f"calls {_dotted(func)}() (reads a "
                           f"clock)", node)
        self.generic_visit(node)


def _file_tree_at(fn: object) -> Optional[ast.Module]:
    """A module wrapping the single lambda/def in ``fn``'s source file
    that starts on its code object's first line, or None."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    try:
        path = inspect.getsourcefile(fn)  # type: ignore[arg-type]
        if path is None:
            return None
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (TypeError, OSError, SyntaxError):
        return None
    matches = [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef))
        and node.lineno == code.co_firstlineno
    ]
    if len(matches) != 1:
        return None  # none found, or ambiguous (two lambdas, one line)
    return ast.Module(body=[ast.Expr(value=matches[0])]  # type: ignore
                      if isinstance(matches[0], ast.Lambda)
                      else [matches[0]], type_ignores=[])


def _source_tree(fn: object) -> Tuple[Optional[ast.FunctionDef],
                                      Optional[str]]:
    """The (FunctionDef, None) of ``fn``'s source, or (None, reason)
    when the source cannot be recovered or parsed."""
    try:
        source = inspect.getsource(fn)  # type: ignore[arg-type]
    except (TypeError, OSError):
        return None, "source unavailable"
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:
        # a lambda mid-expression: getsource returns the surrounding
        # line(s), which need not parse standalone.  Re-parse the whole
        # file and find the lambda by its code object's line number.
        tree = _file_tree_at(fn)
        if tree is None:
            return None, "source fragment does not parse standalone"
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node, None  # type: ignore[return-value]
        if isinstance(node, ast.Lambda):
            # wrap the lambda body as a function-shaped node
            wrapper = ast.FunctionDef(
                name="<lambda>", args=node.args,
                body=[ast.Return(value=node.body)],
                decorator_list=[], returns=None, type_comment=None)
            ast.copy_location(wrapper, node)
            ast.fix_missing_locations(wrapper)
            return wrapper, None
    return None, "no function definition in source"


def analyze_callable(fn: object, subject: str = "",
                     is_method: bool = False) -> PurityReport:
    """Statically analyze one callable for purity and determinism.

    ``subject`` names it in findings (defaults to its ``__qualname__``);
    ``is_method`` marks apply-style methods whose ``self`` mutation is
    cross-call state (and whose first parameter is not free state).
    """
    name = subject or getattr(fn, "__qualname__",
                              getattr(fn, "__name__", repr(fn)))
    metrics.counter("analyze.purity.analyzed").inc()
    node, reason = _source_tree(fn)
    if node is None:
        return PurityReport(
            subject=name, verdict=PurityVerdict.OPAQUE,
            findings=(PurityFinding("opaque", reason or "unanalyzable"),))
    bound = _bound_names(node)
    visitor = _PurityVisitor(bound, is_method=is_method)
    for statement in node.body:
        visitor.visit(statement)
    if visitor.findings:
        return PurityReport(subject=name, verdict=PurityVerdict.IMPURE,
                            findings=tuple(visitor.findings))
    return PurityReport(subject=name, verdict=PurityVerdict.PURE)


def analyze_function_purity(function: object) -> Dict[str, PurityReport]:
    """Purity reports for every aggregation-function method a subclass
    overrides (``apply``/``combine``/``batch_apply``), keyed by method
    name.  Inherited base implementations are skipped: the base
    ``batch_apply`` returns None and the base ``combine`` raises —
    neither runs user code."""
    from repro.algebra.functions import AggregationFunction
    out: Dict[str, PurityReport] = {}
    cls = type(function)
    for method_name in ("apply", "combine", "batch_apply"):
        override = getattr(cls, method_name, None)
        inherited = getattr(AggregationFunction, method_name, None)
        if override is None or override is inherited:
            continue
        out[method_name] = analyze_callable(
            override, subject=f"{cls.__name__}.{method_name}",
            is_method=True)
    return out


_VERDICT_RANK = {PurityVerdict.PURE: 0, PurityVerdict.OPAQUE: 1,
                 PurityVerdict.IMPURE: 2}


def analyze_predicate_purity(predicate: object) -> Optional[PurityReport]:
    """The purity report for an *opaque* σ predicate's test callable
    (``characterized_by``/``conjunction`` predicates run no user code
    and return None).

    The constructors in :mod:`repro.algebra.predicates` wrap the user's
    callable in a pure ``test`` closure, so the user code sits one
    level down in the closure cells — captured plain functions and
    lambdas are analyzed too and the worst verdict wins."""
    kind = getattr(predicate, "kind", "opaque")
    if kind in ("characterized_by", "conjunction"):
        return None
    test = getattr(predicate, "test", None)
    if test is None:
        return None
    description = getattr(predicate, "description", "predicate")
    subject = f"predicate {description!r}"
    report = analyze_callable(test, subject=subject)
    verdict, findings = report.verdict, list(report.findings)
    for cell in getattr(test, "__closure__", None) or ():
        try:
            captured = cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            continue
        if not isinstance(captured, types.FunctionType):
            continue
        inner = analyze_callable(captured, subject=subject)
        findings.extend(inner.findings)
        if _VERDICT_RANK[inner.verdict] > _VERDICT_RANK[verdict]:
            verdict = inner.verdict
    return PurityReport(subject=subject, verdict=verdict,
                        findings=tuple(findings))
