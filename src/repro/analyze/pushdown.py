"""Static SQL-pushdown analysis: will the relational backend take a
plan, and if not, why not?

:func:`analyze_pushdown` dry-runs the *actual* backend compiler
(:func:`repro.relational.backend.compiler.compile_plan`) against the
plan — no database is touched — and reports any
:class:`~repro.relational.backend.compiler.PushdownUnsupported` as an
``MD05x`` diagnostic.  Because the analyzer and the runtime share one
compiler, the prediction cannot drift from the behavior: a clean
report means ``Query.execute(backend="sql")`` pushes down; a finding
names the node and reason the backend will count as
``sql.pushdown.fallback``.

All ``MD05x`` findings are :attr:`~repro.analyze.Severity.INFO` —
pushdown coverage is a performance observation, never a correctness
issue (the fallback answers in memory, byte-identically).
"""

from __future__ import annotations

from typing import Optional

from repro.analyze.diagnostics import AnalysisReport
from repro.engine.optimizer import Base, Plan, children_of, node_label

__all__ = ["analyze_pushdown"]


def _find_base(plan: Plan) -> Optional[Base]:
    if isinstance(plan, Base):
        return plan
    for child in children_of(plan):
        found = _find_base(child)
        if found is not None:
            return found
    return None


def analyze_pushdown(plan: Plan) -> AnalysisReport:
    """Report whether the SQL backend can compile ``plan`` (empty
    report = full pushdown; one ``MD05x`` INFO finding otherwise)."""
    from repro.relational.backend.compiler import (
        PushdownUnsupported,
        StarCatalog,
        compile_plan,
    )

    report = AnalysisReport(subject=node_label(plan))
    base = _find_base(plan)
    if base is None:
        report.emit("MD050", "plan has no Base node to read facts from",
                    location=node_label(plan),
                    hint="build plans over Base(mo)")
        return report
    try:
        compile_plan(plan, StarCatalog.of(base.mo))
    except PushdownUnsupported as exc:
        report.emit(exc.code, exc.reason, location=exc.location,
                    hint="the sql backend will answer this in memory "
                         "(sql.pushdown.fallback)")
    return report
